//! Micro-benchmarks of the HIDE protocol primitives: the Client UDP
//! Port Table (the τ_ins/τ_del/τ_lp of Eqs. 25–26), Algorithm 1, and
//! the wire codecs on the beacon fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hide_core::ap::{
    calculate_broadcast_flags, AccessPoint, ApCtx, BTreePortTable, BroadcastBuffer, ClientPortTable,
};
use hide_wifi::bitmap::PartialVirtualBitmap;
use hide_wifi::frame::{Beacon, BroadcastDataFrame, UdpPortMessage};
use hide_wifi::ie::{Btim, InformationElement};
use hide_wifi::mac::{Aid, MacAddr};
use hide_wifi::udp::UdpDatagram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn seeded_table(clients: u16, ports_each: usize, seed: u64) -> ClientPortTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = ClientPortTable::new();
    for c in 1..=clients {
        let ports: Vec<u16> = (0..ports_each)
            .map(|_| rng.gen_range(1024..u16::MAX))
            .collect();
        table.update_client(Aid::new(c).unwrap(), &ports);
    }
    table
}

fn port_table_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("port_table");
    // The paper's measurement seeds the table with N * 50% * 50 pairs;
    // we sweep the client count.
    for clients in [10u16, 50, 200] {
        let ports: Vec<u16> = (3000..3050).collect();
        group.bench_with_input(
            BenchmarkId::new("refresh_50_ports", clients),
            &clients,
            |b, &clients| {
                let mut table = seeded_table(clients, 50, 7);
                let probe = Aid::new(2000).unwrap();
                b.iter(|| {
                    table.update_client(probe, black_box(&ports));
                    table.remove_client(probe);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lookup", clients),
            &clients,
            |b, &clients| {
                let table = seeded_table(clients, 50, 7);
                b.iter(|| black_box(table.clients_for_port(black_box(30000))))
            },
        );
    }
    group.finish();
}

fn seeded_btree(clients: u16, ports_each: usize, seed: u64) -> BTreePortTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = BTreePortTable::new();
    for c in 1..=clients {
        let ports: Vec<u16> = (0..ports_each)
            .map(|_| rng.gen_range(1024..u16::MAX))
            .collect();
        table.update_client(Aid::new(c).unwrap(), &ports);
    }
    table
}

fn port_table_scale(c: &mut Criterion) {
    // The hash-map table vs. the BTree baseline it replaced, at BSS
    // sizes where the asymptotics show (the paper's capacity analysis
    // goes to ~50 nodes; stress well beyond that).
    let mut group = c.benchmark_group("port_table_scale");
    let refresh: Vec<u16> = (3000..3100).collect();
    for clients in [1000u16, 2000] {
        group.bench_with_input(
            BenchmarkId::new("hash/refresh_100_ports", clients),
            &clients,
            |b, &clients| {
                let mut table = seeded_table(clients, 100, 7);
                let probe = Aid::new(2005).unwrap();
                b.iter(|| {
                    table.update_client(probe, black_box(&refresh));
                    table.remove_client(probe);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("btree/refresh_100_ports", clients),
            &clients,
            |b, &clients| {
                let mut table = seeded_btree(clients, 100, 7);
                let probe = Aid::new(2005).unwrap();
                b.iter(|| {
                    table.update_client(probe, black_box(&refresh));
                    table.remove_client(probe);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hash/lookup", clients),
            &clients,
            |b, &clients| {
                let table = seeded_table(clients, 100, 7);
                b.iter(|| black_box(table.postings_for_port(black_box(30000)).len()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("btree/lookup", clients),
            &clients,
            |b, &clients| {
                let table = seeded_btree(clients, 100, 7);
                b.iter(|| black_box(table.clients_for_port(black_box(30000)).len()))
            },
        );
    }
    group.finish();
}

fn btim_codec(c: &mut Criterion) {
    // The BTIM is rebuilt every DTIM beacon; encode must not allocate.
    let mut flags = PartialVirtualBitmap::new();
    for v in (1..=1000u16).step_by(3) {
        flags.set(Aid::new(v).unwrap());
    }
    let btim = Btim::new(flags);
    let body = btim.encode_body();
    let mut scratch: Vec<u8> = Vec::with_capacity(body.len());
    c.bench_function("codec/btim_encode_1000_aids", |b| {
        b.iter(|| {
            scratch.clear();
            btim.append_body_to(&mut scratch);
            black_box(scratch.len())
        })
    });
    c.bench_function("codec/btim_decode_1000_aids", |b| {
        b.iter(|| black_box(Btim::decode_body(&body).unwrap()))
    });
}

fn algorithm_one(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1");
    for buffered in [1usize, 10, 100] {
        let table = seeded_table(50, 50, 11);
        let mut buffer = BroadcastBuffer::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..buffered {
            let d = UdpDatagram::new(
                [10, 0, 0, 1],
                [255; 4],
                4000,
                rng.gen_range(1024..u16::MAX),
                vec![0; 100],
            );
            buffer.push(BroadcastDataFrame::new(MacAddr::station(0), d, false));
        }
        group.bench_with_input(
            BenchmarkId::new("calc_flags", buffered),
            &buffered,
            |b, _| b.iter(|| black_box(calculate_broadcast_flags(&buffer, &table))),
        );
    }
    group.finish();
}

fn wire_codecs(c: &mut Criterion) {
    let mut flags = PartialVirtualBitmap::new();
    for v in (1..200).step_by(7) {
        flags.set(Aid::new(v).unwrap());
    }
    let beacon = Beacon::builder(MacAddr::station(0))
        .dtim(0, 1)
        .element(InformationElement::Btim(Btim::new(flags)))
        .build();
    let beacon_bytes = beacon.to_bytes();
    c.bench_function("codec/beacon_encode", |b| {
        b.iter(|| black_box(beacon.to_bytes()))
    });
    c.bench_function("codec/beacon_parse", |b| {
        b.iter(|| black_box(Beacon::parse(&beacon_bytes).unwrap()))
    });

    let msg = UdpPortMessage::new(
        MacAddr::station(1),
        MacAddr::station(0),
        (0..100u16).map(|i| 1024 + i),
    )
    .unwrap();
    let msg_bytes = msg.to_bytes();
    c.bench_function("codec/port_message_parse", |b| {
        b.iter(|| black_box(UdpPortMessage::parse(&msg_bytes).unwrap()))
    });

    let dgram = UdpDatagram::new([10, 0, 0, 1], [255; 4], 4000, 1900, vec![0; 300]);
    let frame = BroadcastDataFrame::new(MacAddr::station(0), dgram, false);
    let body = frame.body().to_vec();
    c.bench_function("codec/peek_udp_port", |b| {
        b.iter(|| black_box(UdpDatagram::peek_dst_port(&body).unwrap()))
    });
}

fn dtim_cycle(c: &mut Criterion) {
    // The AP's per-DTIM work end to end: flags + beacon build + drain.
    let mut ap = AccessPoint::new(MacAddr::station(0));
    let mut rng = StdRng::seed_from_u64(5);
    for i in 1..=50u32 {
        let mac = MacAddr::station(i);
        ap.associate(mac).unwrap();
        let ports: Vec<u16> = (0..50).map(|_| rng.gen_range(1024..u16::MAX)).collect();
        let msg = UdpPortMessage::new(mac, ap.bssid(), ports).unwrap();
        ap.process_port_message(&msg, &mut ApCtx::untimed())
            .unwrap();
    }
    c.bench_function("ap/dtim_cycle_10_frames", |b| {
        let mut index = 0u64;
        b.iter(|| {
            for _ in 0..10 {
                let d = UdpDatagram::new(
                    [10, 0, 0, 1],
                    [255; 4],
                    4000,
                    rng.gen_range(1024..u16::MAX),
                    vec![0; 200],
                );
                ap.enqueue_broadcast(BroadcastDataFrame::new(ap.bssid(), d, false));
            }
            let beacon = ap.dtim_beacon(index);
            index += 1;
            let burst = ap.deliver_broadcasts();
            black_box((beacon, burst))
        })
    });
}

criterion_group!(
    micro,
    port_table_ops,
    port_table_scale,
    algorithm_one,
    wire_codecs,
    btim_codec,
    dtim_cycle
);
criterion_main!(micro);
