//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * BTIM bitmap compression vs. shipping the full 251-byte bitmap
//!   (beacon overhead bytes);
//! * port-based vs. Bernoulli useful-marking (energy result must not
//!   hinge on the port structure);
//! * UDP Port Message interval sweep (energy overhead vs. delay
//!   overhead trade-off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hide_analysis::delay::{DelayAnalysis, DelayConfig};
use hide_energy::profile::NEXUS_ONE;
use hide_sim::simulation::MarkingStrategy;
use hide_sim::solution::Solution;
use hide_sim::SimulationBuilder;
use hide_traces::scenario::Scenario;
use hide_wifi::bitmap::PartialVirtualBitmap;
use hide_wifi::ie::Btim;
use hide_wifi::mac::Aid;
use std::hint::black_box;

fn btim_compression(c: &mut Criterion) {
    // A realistic sparse flag set: 8 of 50 clients flagged.
    let mut flags = PartialVirtualBitmap::new();
    for v in [3u16, 7, 12, 19, 23, 31, 40, 48] {
        flags.set(Aid::new(v).unwrap());
    }
    let btim = Btim::new(flags);
    let compressed = btim.encode_body().len();
    let full = 1 + hide_wifi::bitmap::VIRTUAL_BITMAP_BYTES;
    println!(
        "[ablation] BTIM body: compressed {compressed} B vs full bitmap {full} B \
         ({}x smaller)",
        full / compressed.max(1)
    );
    c.bench_function("ablation/btim_encode_compressed", |b| {
        b.iter(|| black_box(btim.encode_body()))
    });
    // The uncompressed strawman: serialize all 251 bytes.
    c.bench_function("ablation/btim_encode_full_strawman", |b| {
        b.iter(|| {
            let mut body = Vec::with_capacity(full);
            body.push(0u8);
            for v in 1..=hide_wifi::mac::MAX_AID {
                let aid = Aid::new(v).unwrap();
                let _ = aid;
            }
            body.resize(full, 0);
            black_box(body)
        })
    });
}

fn marking_strategies(c: &mut Criterion) {
    let trace = Scenario::CsDept.generate(300.0, 2016);
    let mut group = c.benchmark_group("ablation/marking");
    group.sample_size(10);
    for (name, strategy) in [
        ("port_based", MarkingStrategy::PortBased),
        ("bernoulli", MarkingStrategy::Bernoulli { seed: 9 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    SimulationBuilder::new(&trace, NEXUS_ONE)
                        .solution(Solution::hide(0.10))
                        .marking(strategy)
                        .run(),
                )
            })
        });
    }
    // Print the energy agreement once.
    let pb = SimulationBuilder::new(&trace, NEXUS_ONE)
        .solution(Solution::hide(0.10))
        .run();
    let bn = SimulationBuilder::new(&trace, NEXUS_ONE)
        .solution(Solution::hide(0.10))
        .marking(MarkingStrategy::Bernoulli { seed: 9 })
        .run();
    println!(
        "[ablation] HIDE:10% avg power, port-based {:.1} mW vs bernoulli {:.1} mW",
        pb.energy.average_power_mw(),
        bn.energy.average_power_mw()
    );
    group.finish();
}

fn sync_interval_tradeoff(c: &mut Criterion) {
    let trace = Scenario::CsDept.generate(300.0, 2016);
    let mut group = c.benchmark_group("ablation/sync_interval");
    group.sample_size(10);
    println!("[ablation] sync interval: energy overhead (mW) vs delay overhead (%)");
    for interval in [1.0f64, 10.0, 60.0, 600.0] {
        let sim = SimulationBuilder::new(&trace, NEXUS_ONE)
            .solution(Solution::hide(0.10))
            .sync_interval_secs(interval)
            .run();
        let cfg = DelayConfig {
            sync_interval_secs: interval,
            ..DelayConfig::default()
        };
        let delay = DelayAnalysis::new(cfg).point(50);
        println!(
            "[ablation]   1/f={interval:>5}s: Eo/T = {:.3} mW, rtt +{:.3}%",
            sim.energy.breakdown.overhead / sim.energy.duration * 1e3,
            delay.overhead * 100.0
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(interval as u64),
            &interval,
            |b, &interval| {
                b.iter(|| {
                    black_box(
                        SimulationBuilder::new(&trace, NEXUS_ONE)
                            .solution(Solution::hide(0.10))
                            .sync_interval_secs(interval)
                            .run(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn dtim_period_batching(c: &mut Criterion) {
    // AP-side delivery batching: larger DTIM periods coalesce wake-ups
    // at the cost of delivery latency.
    let trace = Scenario::Classroom.generate(300.0, 2016);
    let mut group = c.benchmark_group("ablation/dtim_period");
    group.sample_size(10);
    println!("[ablation] DTIM period: receive-all avg power");
    for period in [1u8, 2, 3, 5] {
        let r = SimulationBuilder::new(&trace, NEXUS_ONE)
            .dtim_period(period)
            .run();
        println!(
            "[ablation]   period {period}: {:.1} mW, {} wake cycles",
            r.energy.average_power_mw(),
            r.energy.resume_count
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(period),
            &period,
            |b, &period| {
                b.iter(|| {
                    black_box(
                        SimulationBuilder::new(&trace, NEXUS_ONE)
                            .dtim_period(period)
                            .run(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn hybrid_vs_pure(c: &mut Criterion) {
    // The future-work combination: how much of HIDE:4%'s saving does
    // hybrid(10%,4%) recover when the AP's port filter is coarse?
    let trace = Scenario::Wml.generate(300.0, 2016);
    let mut group = c.benchmark_group("ablation/hybrid");
    group.sample_size(10);
    for (name, solution) in [
        ("hide_10", Solution::hide(0.10)),
        ("hybrid_10_4", Solution::hybrid(0.10, 0.04)),
        ("hide_4", Solution::hide(0.04)),
    ] {
        let r = SimulationBuilder::new(&trace, NEXUS_ONE)
            .solution(solution)
            .run();
        println!(
            "[ablation] {name}: {:.1} mW ({} received, {} woke)",
            r.energy.average_power_mw(),
            r.received_frames,
            r.wake_frames
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    SimulationBuilder::new(&trace, NEXUS_ONE)
                        .solution(solution)
                        .run(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    btim_compression,
    marking_strategies,
    sync_interval_tradeoff,
    dtim_period_batching,
    hybrid_vs_pure
);
criterion_main!(ablations);
