//! Calendar-queue scaling: the fleet kernel's hierarchical timing
//! wheel ([`hide_fleet::EventQueue`]) against the retained binary-heap
//! baseline ([`hide_fleet::HeapEventQueue`]) at 1k / 100k / 1M resident
//! events, under two schedule horizons:
//!
//! * `near` — every reschedule lands within ~1 s (the fleet's DTIM /
//!   refresh cadence, dense low-rung traffic);
//! * `wide` — horizons spread over five decades up to a day (churn
//!   dwells and far-future timers, exercising the top rungs and the
//!   reladder path).
//!
//! Each measured iteration is one steady-state pop + reschedule at
//! constant queue depth, i.e. the hold pattern a discrete-event kernel
//! sustains, so nanoseconds/iteration compare directly across depths.

use criterion::{criterion_group, criterion_main, Criterion};
use hide_fleet::{EventQueue, HeapEventQueue};
use std::hint::black_box;

/// Deterministic horizon stream (SplitMix64), decoupled from the
/// queues' internal tie seeds so both structures replay identical
/// schedules.
struct Horizons {
    state: u64,
    wide: bool,
}

impl Horizons {
    fn next(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let u = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
        if self.wide {
            // Log-uniform over [1 ms, ~1 day]: five decades of horizon.
            1e-3 * 10f64.powf(u * 5.0)
        } else {
            // Uniform over (0, 1 s]: DTIM/refresh cadence.
            1e-3 + u
        }
    }
}

macro_rules! bench_queue {
    ($c:expr, $label:literal, $ty:ident, $depth:expr, $wide:expr) => {{
        let depth: usize = $depth;
        let mut queue = $ty::with_seed(42);
        let mut horizons = Horizons {
            state: 7,
            wide: $wide,
        };
        for i in 0..depth {
            queue.schedule(horizons.next(), i as u32);
        }
        let name = format!(
            "event_queue_scale/{}/{}/{}k",
            $label,
            if $wide { "wide" } else { "near" },
            depth / 1000
        );
        $c.bench_function(&name, |b| {
            b.iter(|| {
                let (t, ev) = queue.pop().expect("queue is held at constant depth");
                queue.schedule(t + horizons.next(), ev);
                black_box(t)
            })
        });
    }};
}

fn event_queue_scale(c: &mut Criterion) {
    for &depth in &[1_000usize, 100_000, 1_000_000] {
        for &wide in &[false, true] {
            bench_queue!(c, "wheel", EventQueue, depth, wide);
            bench_queue!(c, "heap", HeapEventQueue, depth, wide);
        }
    }
}

criterion_group!(benches, event_queue_scale);
criterion_main!(benches);
