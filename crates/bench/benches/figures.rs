//! One Criterion bench per table/figure: times the computation that
//! regenerates each result and prints the headline numbers once, so
//! `cargo bench` doubles as a quick reproduction pass (short traces;
//! the `reproduce` binary runs the canonical 45-minute ones).

use criterion::{criterion_group, criterion_main, Criterion};
use hide_analysis::capacity::{CapacityAnalysis, NetworkConfig};
use hide_analysis::delay::{DelayAnalysis, DelayConfig};
use hide_energy::profile::{GALAXY_S4, NEXUS_ONE};
use hide_sim::experiment::{self, PAPER_FRACTIONS};
use hide_sim::solution::Solution;
use hide_sim::SimulationBuilder;
use hide_traces::record::Trace;
use hide_traces::scenario::Scenario;
use std::hint::black_box;

const BENCH_TRACE_SECS: f64 = 120.0;

fn bench_traces() -> Vec<Trace> {
    Scenario::generate_all(BENCH_TRACE_SECS, 2016)
}

fn table1_table2(c: &mut Criterion) {
    // Tables I/II are constant renders; benching them checks the
    // formatting path stays trivial.
    c.bench_function("table1_render", |b| {
        b.iter(|| black_box(hide_bench::table_1()))
    });
    c.bench_function("table2_render", |b| {
        b.iter(|| black_box(hide_bench::table_2()))
    });
}

fn fig6_trace_cdf(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for scenario in Scenario::ALL {
        group.bench_function(format!("generate_{scenario}"), |b| {
            b.iter(|| black_box(scenario.generate(BENCH_TRACE_SECS, 2016)))
        });
    }
    let traces = bench_traces();
    group.bench_function("volume_stats", |b| {
        b.iter(|| black_box(experiment::trace_volumes(&traces)))
    });
    group.finish();
}

fn fig7_energy_nexus(c: &mut Criterion) {
    let traces = bench_traces();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("energy_comparison_nexus_one", |b| {
        b.iter(|| {
            black_box(experiment::energy_comparison(
                NEXUS_ONE,
                &traces,
                &PAPER_FRACTIONS,
            ))
        })
    });
    group.finish();
}

fn fig8_energy_s4(c: &mut Criterion) {
    let traces = bench_traces();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("energy_comparison_galaxy_s4", |b| {
        b.iter(|| {
            black_box(experiment::energy_comparison(
                GALAXY_S4,
                &traces,
                &PAPER_FRACTIONS,
            ))
        })
    });
    group.finish();
}

fn fig9_suspend_fraction(c: &mut Criterion) {
    let traces = bench_traces();
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("suspend_fractions", |b| {
        b.iter(|| black_box(experiment::suspend_fractions(NEXUS_ONE, &traces)))
    });
    group.finish();
}

fn fig10_capacity(c: &mut Criterion) {
    let analysis = CapacityAnalysis::new(NetworkConfig::table_ii());
    c.bench_function("fig10/bianchi_point_n50", |b| {
        b.iter(|| black_box(analysis.point(50, 0.75).unwrap()))
    });
    c.bench_function("fig10/full_sweep", |b| {
        b.iter(|| black_box(analysis.figure_10().unwrap()))
    });
}

fn fig11_fig12_delay(c: &mut Criterion) {
    let analysis = DelayAnalysis::new(DelayConfig::default());
    c.bench_function("fig11/interval_sweep", |b| {
        b.iter(|| black_box(analysis.figure_11()))
    });
    c.bench_function("fig12/port_sweep", |b| {
        b.iter(|| black_box(analysis.figure_12()))
    });
}

fn single_simulation(c: &mut Criterion) {
    // The innermost unit of Figs. 7-9: one trace, one solution.
    let trace = Scenario::Wml.generate(BENCH_TRACE_SECS, 2016);
    let mut group = c.benchmark_group("simulation");
    for (name, solution) in [
        ("receive_all", Solution::ReceiveAll),
        ("client_side", Solution::client_side_lower_bound()),
        ("hide_10pct", Solution::hide(0.10)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    SimulationBuilder::new(&trace, NEXUS_ONE)
                        .solution(solution)
                        .run(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    figures,
    table1_table2,
    fig6_trace_cdf,
    fig7_energy_nexus,
    fig8_energy_s4,
    fig9_suspend_fraction,
    fig10_capacity,
    fig11_fig12_delay,
    single_simulation
);
criterion_main!(figures);
