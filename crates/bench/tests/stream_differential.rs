//! Differential battery pinning the out-of-core export pipeline to
//! the in-memory path: at 1000 churning BSSes, every artifact the
//! streamed pipeline emits — trace JSONL, Chrome trace, attribution
//! CSV and JSONL, the energy-extended `hide-metrics/1` document, the
//! derived-scalar summary, and the ring-bound drop count — must be
//! **byte-identical** to what the accumulate-in-RAM path produces,
//! for every `--jobs` count and for adversarial spill-chunk and
//! window sizes.
//!
//! Why bytes and not semantic equality: the `(time, source, seq)`
//! event key is a strict total order over distinct events, so any
//! correct merge — the in-memory tree fold or the on-disk k-way merge
//! at any run partitioning — yields the *identical sequence*. A merge
//! that is merely "equivalent" (stable-sorted, re-rounded, reordered
//! ties) is a bug this battery is designed to catch.

use hide_bench as harness;
use hide_fleet::{ChurnConfig, FleetConfig, StreamExportConfig, StreamSinks};
use hide_obs::export;

/// The deployment-scale scenario `determinism.rs` pins, reused here so
/// the streamed path is compared against a configuration with refresh
/// loss, port churn, and expiries all active.
fn battery_config() -> FleetConfig {
    FleetConfig {
        bss_count: 1000,
        clients_per_bss: 8,
        adoption: 0.75,
        duration_secs: 15.0,
        seed: harness::TRACE_SEED,
        churn: ChurnConfig {
            mean_present_secs: 60.0,
            mean_absent_secs: 15.0,
            mean_active_secs: 8.0,
            mean_suspended_secs: 20.0,
            refresh_interval_secs: 4.0,
            refresh_loss: 0.2,
            port_churn: 0.25,
            stale_timeout_secs: 9.0,
            ..ChurnConfig::default()
        },
        ..FleetConfig::default()
    }
}

/// Everything the in-memory reference path can emit, rendered once.
struct Reference {
    jsonl: String,
    chrome: String,
    attr_csv: String,
    attr_jsonl: String,
    metrics: String,
    summary: String,
    dropped: u64,
    events: u64,
}

fn in_memory_reference(cfg: &FleetConfig) -> Reference {
    let (result, flight) = cfg
        .try_run_traced_with_jobs(2, hide_obs::DEFAULT_TRACE_CAPACITY)
        .expect("valid fleet config");
    Reference {
        jsonl: export::to_jsonl(&flight),
        chrome: export::to_chrome_trace(&flight, None),
        attr_csv: result.attribution().to_csv(),
        attr_jsonl: result.attribution().to_jsonl(),
        metrics: result.metrics_json_with_energy(),
        summary: result.summary_json(),
        dropped: flight.dropped(),
        events: flight.len() as u64,
    }
}

/// Streamed run at the given jobs/chunk/window, all sinks captured.
struct Streamed {
    jsonl: Vec<u8>,
    chrome: Vec<u8>,
    attr_csv: Vec<u8>,
    metrics: String,
    summary: String,
    dropped: u64,
    events: u64,
}

fn streamed_run(cfg: &FleetConfig, jobs: usize, chunk: usize, window: usize) -> Streamed {
    let mut stream = StreamExportConfig::new(std::env::temp_dir());
    stream.chunk_events = chunk;
    stream.window = window;
    let mut attr_csv = Vec::new();
    let streamed = cfg
        .try_run_streamed_with_jobs(
            jobs,
            &stream,
            StreamSinks {
                attribution_csv: Some(&mut attr_csv),
                attribution_jsonl: None,
            },
        )
        .expect("valid fleet config");
    let mut jsonl = Vec::new();
    let jsonl_events = streamed
        .write_trace_jsonl(&mut jsonl)
        .expect("spill file survives until cleanup");
    let mut chrome = Vec::new();
    streamed
        .write_chrome_trace(None, &mut chrome)
        .expect("merge is repeatable");
    assert_eq!(jsonl_events, streamed.events(), "merge lost or grew events");
    let out = Streamed {
        jsonl,
        chrome,
        attr_csv,
        metrics: streamed.metrics_json_with_energy(),
        summary: streamed.result.summary_json(),
        dropped: streamed.dropped(),
        events: streamed.events(),
    };
    streamed.cleanup().expect("spill file removable");
    out
}

/// The headline battery: jobs {1, 4, 8} × adversarial chunk/window
/// pairs, every artifact byte-compared against the in-memory render.
/// Chunk size 7 forces many tiny frames per run; window 3 forces ~334
/// spilled runs into the k-way merge at jobs 8.
#[test]
fn streamed_artifacts_match_in_memory_at_1000_bss() {
    let cfg = battery_config();
    let reference = in_memory_reference(&cfg);
    assert!(reference.events > 0, "reference run logged nothing");

    for (jobs, chunk, window) in [(1, 4096, 0), (4, 7, 64), (8, 1024, 3)] {
        let streamed = streamed_run(&cfg, jobs, chunk, window);
        let tag = format!("jobs {jobs} chunk {chunk} window {window}");
        assert_eq!(
            streamed.jsonl.as_slice(),
            reference.jsonl.as_bytes(),
            "trace JSONL diverged ({tag})"
        );
        assert_eq!(
            streamed.chrome.as_slice(),
            reference.chrome.as_bytes(),
            "Chrome trace diverged ({tag})"
        );
        assert_eq!(
            streamed.attr_csv.as_slice(),
            reference.attr_csv.as_bytes(),
            "attribution CSV diverged ({tag})"
        );
        assert_eq!(
            streamed.metrics, reference.metrics,
            "metrics diverged ({tag})"
        );
        assert_eq!(
            streamed.summary, reference.summary,
            "summary diverged ({tag})"
        );
        assert_eq!(
            streamed.dropped, reference.dropped,
            "drop count diverged ({tag})"
        );
        assert_eq!(
            streamed.events, reference.events,
            "event count diverged ({tag})"
        );
    }
}

/// The JSONL attribution lane matches the ledger's `to_jsonl` the same
/// way the CSV lane matches `to_csv` — shard-ascending `(bss, aid)`
/// keys mean streamed concatenation equals the merged-ledger render.
#[test]
fn streamed_attribution_jsonl_matches_ledger() {
    let cfg = FleetConfig {
        bss_count: 120,
        clients_per_bss: 8,
        duration_secs: 10.0,
        ..battery_config()
    };
    let reference = in_memory_reference(&cfg);
    let mut stream = StreamExportConfig::new(std::env::temp_dir());
    stream.window = 5;
    let mut attr_jsonl = Vec::new();
    let streamed = cfg
        .try_run_streamed_with_jobs(
            3,
            &stream,
            StreamSinks {
                attribution_csv: None,
                attribution_jsonl: Some(&mut attr_jsonl),
            },
        )
        .expect("valid fleet config");
    streamed.cleanup().expect("spill file removable");
    assert_eq!(
        attr_jsonl.as_slice(),
        reference.attr_jsonl.as_bytes(),
        "attribution JSONL diverged from the ledger render"
    );
    assert!(!attr_jsonl.is_empty(), "no attribution rows streamed");
}

/// A trace capacity far below the event volume forces ring-bound drops
/// inside every shard; the streamed pipeline must reproduce the
/// in-memory path's drop accounting and its (truncated) event log
/// exactly, because both bound each shard's ring the same way before
/// the merge.
#[test]
fn constrained_capacity_drop_accounting_matches() {
    let cfg = FleetConfig {
        bss_count: 200,
        clients_per_bss: 8,
        duration_secs: 10.0,
        ..battery_config()
    };
    let capacity = 16;
    let (_, flight) = cfg
        .try_run_traced_with_jobs(4, capacity)
        .expect("valid fleet config");
    assert!(flight.dropped() > 0, "capacity 16 must force drops");

    let mut stream = StreamExportConfig::new(std::env::temp_dir());
    stream.trace_capacity = capacity;
    stream.window = 7;
    let streamed = cfg
        .try_run_streamed_with_jobs(6, &stream, StreamSinks::default())
        .expect("valid fleet config");
    let mut jsonl = Vec::new();
    streamed
        .write_trace_jsonl(&mut jsonl)
        .expect("merge succeeds");
    streamed.cleanup().expect("spill file removable");

    assert_eq!(
        streamed.dropped(),
        flight.dropped(),
        "spill boundaries changed the drop count"
    );
    assert_eq!(
        jsonl.as_slice(),
        export::to_jsonl(&flight).as_bytes(),
        "drop-truncated trace diverged"
    );
}
