//! The parallel experiment engine must be invisible in the output:
//! any `--jobs` count produces byte-identical results.
//!
//! Single `#[test]` on purpose — the job count is process-global, so
//! concurrent tests inside this binary would race on it.

use hide_bench as harness;
use hide_energy::profile::NEXUS_ONE;
use hide_sim::experiment::{self, PAPER_FRACTIONS};
use hide_traces::scenario::Scenario;

#[test]
fn parallel_and_sequential_runs_are_identical() {
    let traces = Scenario::generate_all(120.0, harness::TRACE_SEED);

    hide_par::set_default_jobs(1);
    let seq_cmp = experiment::energy_comparison(NEXUS_ONE, &traces, &PAPER_FRACTIONS);
    let seq_suspend = experiment::suspend_fractions(NEXUS_ONE, &traces);
    let seq_ext = experiment::unicast_sensitivity(NEXUS_ONE, &traces[1], &[0.0, 0.5, 2.0]);
    let seq_dir = std::env::temp_dir().join("hide_determinism_seq");
    harness::write_csvs(&traces, &seq_dir).unwrap();

    hide_par::set_default_jobs(4);
    let par_cmp = experiment::energy_comparison(NEXUS_ONE, &traces, &PAPER_FRACTIONS);
    let par_suspend = experiment::suspend_fractions(NEXUS_ONE, &traces);
    let par_ext = experiment::unicast_sensitivity(NEXUS_ONE, &traces[1], &[0.0, 0.5, 2.0]);
    let par_dir = std::env::temp_dir().join("hide_determinism_par");
    harness::write_csvs(&traces, &par_dir).unwrap();

    hide_par::set_default_jobs(0);

    // Bit-exact struct equality, not approximate: the engine reorders
    // scheduling, never arithmetic.
    assert_eq!(seq_cmp, par_cmp);
    assert_eq!(seq_suspend, par_suspend);
    assert_eq!(seq_ext, par_ext);

    // And the serialized artifacts match byte for byte.
    for file in harness::CSV_FILES {
        let seq_bytes = std::fs::read(seq_dir.join(file)).unwrap();
        let par_bytes = std::fs::read(par_dir.join(file)).unwrap();
        assert_eq!(seq_bytes, par_bytes, "{file} differs between job counts");
        assert!(!seq_bytes.is_empty(), "{file} is empty");
    }

    std::fs::remove_dir_all(&seq_dir).ok();
    std::fs::remove_dir_all(&par_dir).ok();
}
