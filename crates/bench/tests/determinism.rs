//! The parallel experiment engine must be invisible in the output:
//! any `--jobs` count produces byte-identical results — including the
//! `hide-metrics/1` JSON the observability layer serializes.
//!
//! Single `#[test]` on purpose — the job count is process-global, so
//! concurrent tests inside this binary would race on it.

use hide_bench as harness;
use hide_energy::profile::NEXUS_ONE;
use hide_obs::Recorder;
use hide_sim::experiment::{self, PAPER_FRACTIONS};
use hide_traces::scenario::Scenario;

/// Runs the full instrumented suite at the current job count and
/// returns the merged recorder plus the rendered figure text.
fn instrumented_suite(traces: &[hide_traces::Trace]) -> (Recorder, String) {
    let mut recorder = Recorder::new();
    let mut text = String::new();
    text.push_str(
        &harness::figure_7_or_8_with(NEXUS_ONE, traces, &mut recorder).expect("traces are valid"),
    );
    text.push_str(&harness::figure_9_with(traces, &mut recorder).expect("traces are valid"));
    text.push_str(&harness::extensions_with(traces, &mut recorder));
    (recorder, text)
}

#[test]
fn parallel_and_sequential_runs_are_identical() {
    let traces = Scenario::generate_all(120.0, harness::TRACE_SEED);

    hide_par::set_default_jobs(1);
    let seq_cmp = experiment::energy_comparison(NEXUS_ONE, &traces, &PAPER_FRACTIONS);
    let seq_suspend = experiment::suspend_fractions(NEXUS_ONE, &traces);
    let seq_ext = experiment::unicast_sensitivity(NEXUS_ONE, &traces[1], &[0.0, 0.5, 2.0]);
    let seq_dir = std::env::temp_dir().join("hide_determinism_seq");
    harness::write_csvs(&traces, &seq_dir).unwrap();
    let (seq_rec, seq_text) = instrumented_suite(&traces);

    hide_par::set_default_jobs(4);
    let par_cmp = experiment::energy_comparison(NEXUS_ONE, &traces, &PAPER_FRACTIONS);
    let par_suspend = experiment::suspend_fractions(NEXUS_ONE, &traces);
    let par_ext = experiment::unicast_sensitivity(NEXUS_ONE, &traces[1], &[0.0, 0.5, 2.0]);
    let par_dir = std::env::temp_dir().join("hide_determinism_par");
    harness::write_csvs(&traces, &par_dir).unwrap();
    let (par_rec, par_text) = instrumented_suite(&traces);

    hide_par::set_default_jobs(0);

    // Bit-exact struct equality, not approximate: the engine reorders
    // scheduling, never arithmetic.
    assert_eq!(seq_cmp, par_cmp);
    assert_eq!(seq_suspend, par_suspend);
    assert_eq!(seq_ext, par_ext);

    // And the serialized artifacts match byte for byte.
    for file in harness::CSV_FILES {
        let seq_bytes = std::fs::read(seq_dir.join(file)).unwrap();
        let par_bytes = std::fs::read(par_dir.join(file)).unwrap();
        assert_eq!(seq_bytes, par_bytes, "{file} differs between job counts");
        assert!(!seq_bytes.is_empty(), "{file} is empty");
    }

    // The observability layer inherits the guarantee: per-worker
    // recorders merge in input order, and wall-clock span timings are
    // excluded from serialization, so the metrics JSON is byte-
    // identical at any job count (and so is the rendered text).
    assert_eq!(seq_text, par_text, "figure text differs between job counts");
    let seq_json = seq_rec.to_json();
    let par_json = par_rec.to_json();
    assert_eq!(
        seq_json, par_json,
        "metrics JSON differs between job counts"
    );
    assert!(seq_json.contains("\"schema\": \"hide-metrics/1\""));
    assert!(!seq_rec.is_empty(), "instrumented suite recorded nothing");
    assert!(
        seq_json.contains("\"btim_beacons\""),
        "protocol counters missing from metrics JSON"
    );

    std::fs::remove_dir_all(&seq_dir).ok();
    std::fs::remove_dir_all(&par_dir).ok();
}
