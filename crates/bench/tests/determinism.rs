//! The parallel experiment engine must be invisible in the output:
//! any `--jobs` count produces byte-identical results — including the
//! `hide-metrics/1` JSON the observability layer serializes.
//!
//! The experiment-engine test is a single `#[test]` on purpose — its
//! job count is process-global, so concurrent copies inside this
//! binary would race on it. The fleet test is exempt: it passes the
//! job count explicitly through `try_run_with_jobs`, never touching
//! the global.

use hide_bench as harness;
use hide_energy::profile::NEXUS_ONE;
use hide_fleet::{ChurnConfig, FleetConfig, StreamExportConfig, StreamSinks};
use hide_obs::{HashingWriter, Recorder};
use hide_sim::experiment::{self, PAPER_FRACTIONS};
use hide_traces::scenario::Scenario;

/// Runs the full instrumented suite at the current job count and
/// returns the merged recorder plus the rendered figure text.
fn instrumented_suite(traces: &[hide_traces::Trace]) -> (Recorder, String) {
    let mut recorder = Recorder::new();
    let mut text = String::new();
    text.push_str(
        &harness::figure_7_or_8_with(NEXUS_ONE, traces, &mut recorder).expect("traces are valid"),
    );
    text.push_str(&harness::figure_9_with(traces, &mut recorder).expect("traces are valid"));
    text.push_str(&harness::extensions_with(traces, &mut recorder));
    (recorder, text)
}

#[test]
fn parallel_and_sequential_runs_are_identical() {
    let traces = Scenario::generate_all(120.0, harness::TRACE_SEED);

    hide_par::set_default_jobs(1);
    let seq_cmp = experiment::energy_comparison(NEXUS_ONE, &traces, &PAPER_FRACTIONS);
    let seq_suspend = experiment::suspend_fractions(NEXUS_ONE, &traces);
    let seq_ext = experiment::unicast_sensitivity(NEXUS_ONE, &traces[1], &[0.0, 0.5, 2.0]);
    let seq_dir = std::env::temp_dir().join("hide_determinism_seq");
    harness::write_csvs(&traces, &seq_dir).unwrap();
    let (seq_rec, seq_text) = instrumented_suite(&traces);

    hide_par::set_default_jobs(4);
    let par_cmp = experiment::energy_comparison(NEXUS_ONE, &traces, &PAPER_FRACTIONS);
    let par_suspend = experiment::suspend_fractions(NEXUS_ONE, &traces);
    let par_ext = experiment::unicast_sensitivity(NEXUS_ONE, &traces[1], &[0.0, 0.5, 2.0]);
    let par_dir = std::env::temp_dir().join("hide_determinism_par");
    harness::write_csvs(&traces, &par_dir).unwrap();
    let (par_rec, par_text) = instrumented_suite(&traces);

    hide_par::set_default_jobs(0);

    // Bit-exact struct equality, not approximate: the engine reorders
    // scheduling, never arithmetic.
    assert_eq!(seq_cmp, par_cmp);
    assert_eq!(seq_suspend, par_suspend);
    assert_eq!(seq_ext, par_ext);

    // And the serialized artifacts match byte for byte.
    for file in harness::CSV_FILES {
        let seq_bytes = std::fs::read(seq_dir.join(file)).unwrap();
        let par_bytes = std::fs::read(par_dir.join(file)).unwrap();
        assert_eq!(seq_bytes, par_bytes, "{file} differs between job counts");
        assert!(!seq_bytes.is_empty(), "{file} is empty");
    }

    // The observability layer inherits the guarantee: per-worker
    // recorders merge in input order, and wall-clock span timings are
    // excluded from serialization, so the metrics JSON is byte-
    // identical at any job count (and so is the rendered text).
    assert_eq!(seq_text, par_text, "figure text differs between job counts");
    let seq_json = seq_rec.to_json();
    let par_json = par_rec.to_json();
    assert_eq!(
        seq_json, par_json,
        "metrics JSON differs between job counts"
    );
    assert!(seq_json.contains("\"schema\": \"hide-metrics/1\""));
    assert!(!seq_rec.is_empty(), "instrumented suite recorded nothing");
    assert!(
        seq_json.contains("\"btim_beacons\""),
        "protocol counters missing from metrics JSON"
    );

    std::fs::remove_dir_all(&seq_dir).ok();
    std::fs::remove_dir_all(&par_dir).ok();
}

/// The fleet simulator inherits the same guarantee at deployment
/// scale: 1000 churning BSSes produce byte-identical `hide-metrics/1`
/// JSON (and derived-scalar summary JSON) at `--jobs 1` and
/// `--jobs 8`, with refresh loss and port churn active. A loss-free
/// control run must report zero missed wakeups — the AP's view can
/// only fall behind the truth when refreshes are actually lost.
#[test]
fn fleet_runs_are_identical_across_job_counts() {
    let cfg = FleetConfig {
        bss_count: 1000,
        clients_per_bss: 8,
        adoption: 0.75,
        duration_secs: 15.0,
        seed: harness::TRACE_SEED,
        churn: ChurnConfig {
            mean_present_secs: 60.0,
            mean_absent_secs: 15.0,
            mean_active_secs: 8.0,
            mean_suspended_secs: 20.0,
            refresh_interval_secs: 4.0,
            refresh_loss: 0.2,
            port_churn: 0.25,
            stale_timeout_secs: 9.0,
            ..ChurnConfig::default()
        },
        ..FleetConfig::default()
    };

    let serial = cfg.try_run_with_jobs(1).expect("valid fleet config");
    let parallel = cfg.try_run_with_jobs(8).expect("valid fleet config");

    let seq_json = serial.metrics_json();
    assert_eq!(
        seq_json,
        parallel.metrics_json(),
        "fleet metrics JSON differs between job counts"
    );
    assert_eq!(
        serial.summary_json(),
        parallel.summary_json(),
        "fleet summary JSON differs between job counts"
    );
    assert_eq!(serial.report, parallel.report);
    assert!(seq_json.contains("\"schema\": \"hide-metrics/1\""));
    assert!(seq_json.contains("\"fleet_bss_runs\""));
    assert!(serial.report.events > 0 && serial.report.refreshes_lost > 0);

    // The per-client energy ledger inherits the guarantee at the same
    // scale: integer-nanojoule shard ledgers merge in input order, so
    // the energy-extended metrics artifact and both per-client exports
    // (what `fleet_sim --energy-attribution --attribution-out` writes)
    // are byte-identical across job counts.
    let energy_json = serial.metrics_json_with_energy();
    assert_eq!(
        energy_json,
        parallel.metrics_json_with_energy(),
        "energy-attribution metrics JSON differs between job counts"
    );
    assert!(energy_json.contains("\"energy\": {\"clients\":"));
    assert_eq!(
        serial.attribution().to_csv(),
        parallel.attribution().to_csv(),
        "attribution CSV differs between job counts"
    );
    assert_eq!(
        serial.attribution().to_jsonl(),
        parallel.attribution().to_jsonl(),
        "attribution JSONL differs between job counts"
    );
    // Differential invariant at deployment scale: the ledger's spent
    // column reproduces the aggregate joule tally (±0.5 nJ per charge).
    let spent_j = serial.attribution().spent_nj() as f64 / 1e9;
    let total_j = serial.report.total_energy_j;
    assert!(
        (spent_j - total_j).abs() / total_j < 1e-5,
        "attributed {spent_j} J vs aggregate {total_j} J"
    );
    // With refresh loss active some missed-wakeup energy must appear,
    // and it stays out of the spent column by construction.
    assert!(serial.attribution().totals().missed_forgone_nj.total() > 0);

    let mut lossless = cfg.clone();
    lossless.churn.refresh_loss = 0.0;
    let control = lossless.try_run_with_jobs(8).expect("valid fleet config");
    assert_eq!(
        control.report.missed_wakeups, 0,
        "missed wakeups with zero refresh loss"
    );
    assert!(control.report.useful_opportunities > 0);

    // The flight recorder inherits the guarantee: per-shard event logs
    // merge in input order, so the exported trace — JSONL and Chrome
    // JSON alike — is byte-identical at any job count, on the same
    // 1000-BSS churning scenario.
    let (traced, serial_flight) = cfg
        .try_run_traced_with_jobs(1, hide_obs::DEFAULT_TRACE_CAPACITY)
        .expect("valid fleet config");
    let (_, parallel_flight) = cfg
        .try_run_traced_with_jobs(8, hide_obs::DEFAULT_TRACE_CAPACITY)
        .expect("valid fleet config");
    let serial_jsonl = hide_obs::export::to_jsonl(&serial_flight);
    assert_eq!(
        serial_jsonl,
        hide_obs::export::to_jsonl(&parallel_flight),
        "fleet trace JSONL differs between job counts"
    );
    assert_eq!(
        hide_obs::export::to_chrome_trace(&serial_flight, None),
        hide_obs::export::to_chrome_trace(&parallel_flight, None),
        "fleet Chrome trace differs between job counts"
    );
    assert_eq!(serial_flight, parallel_flight);
    assert!(!serial_flight.is_empty(), "traced fleet run logged nothing");

    // Tracing is an observer: the metrics artifact is unchanged, and
    // with churn active every missed and spurious wakeup still carries
    // a concrete cause — nothing in the log is `unknown`.
    assert_eq!(traced.metrics_json(), seq_json);
    for line in serial_jsonl.lines() {
        assert!(
            !line.contains("\"cause\":\"unknown\""),
            "unattributed wakeup in trace: {line}"
        );
    }
}

/// Metro scale: the out-of-core pipeline inherits the determinism
/// guarantee at 100k BSSes, where full goldens are too big to pin
/// (the rendered trace alone is ~1.6 GB), so the gate is a content
/// hash: the streamed JSONL render, the attribution CSV lane, and the
/// energy-extended metrics document must be identical at `--jobs 1`
/// and `--jobs 8`. Ignored by default — the workload needs a release
/// build (CI runs it explicitly with `--ignored`); run locally with
/// `cargo test --release -p hide-bench --test determinism -- --ignored`.
#[test]
#[ignore = "metro-scale workload; CI runs it in release with --ignored"]
fn streamed_100k_bss_run_is_hash_identical_across_job_counts() {
    let cfg = FleetConfig {
        bss_count: 100_000,
        clients_per_bss: 100,
        duration_secs: 2.0,
        seed: 42,
        ..FleetConfig::default()
    };

    let run = |jobs: usize| {
        let mut stream = StreamExportConfig::new(std::env::temp_dir());
        stream.chunk_events = 1024;
        let mut attr = HashingWriter::new(std::io::sink());
        let streamed = cfg
            .try_run_streamed_with_jobs(
                jobs,
                &stream,
                StreamSinks {
                    attribution_csv: Some(&mut attr),
                    attribution_jsonl: None,
                },
            )
            .expect("valid fleet config");
        let mut trace = HashingWriter::new(std::io::sink());
        let events = streamed
            .write_trace_jsonl(&mut trace)
            .expect("merge the spill file");
        let metrics = streamed.metrics_json_with_energy();
        let out = (
            trace.hash(),
            trace.bytes(),
            attr.hash(),
            attr.bytes(),
            events,
            streamed.dropped(),
            metrics,
        );
        streamed.cleanup().expect("remove spill file");
        out
    };

    let serial = run(1);
    let parallel = run(8);
    assert!(serial.4 > 1_000_000, "metro run logged too few events");
    assert_eq!(
        (serial.0, serial.1),
        (parallel.0, parallel.1),
        "streamed 100k-BSS trace hash differs between job counts"
    );
    assert_eq!(
        (serial.2, serial.3),
        (parallel.2, parallel.3),
        "streamed 100k-BSS attribution hash differs between job counts"
    );
    assert_eq!(serial.5, parallel.5, "drop accounting differs");
    assert_eq!(serial.6, parallel.6, "metrics JSON differs");
}
