//! Regression pins for the canonical reproduction: the seeded trace
//! generator and the energy pipeline must keep producing the numbers
//! EXPERIMENTS.md documents (within loose tolerances that absorb
//! honest recalibration but catch accidental behavioural drift).

use hide_bench::{TRACE_DURATION_SECS, TRACE_SEED};
use hide_energy::profile::NEXUS_ONE;
use hide_sim::solution::Solution;
use hide_sim::SimulationBuilder;
use hide_traces::scenario::Scenario;

/// Fig. 6 pins: mean frames/second of each canonical trace.
#[test]
fn canonical_trace_volumes_pinned() {
    let pins = [
        (Scenario::Classroom, 17.3),
        (Scenario::CsDept, 8.1),
        (Scenario::Wml, 25.1),
        (Scenario::Starbucks, 1.4),
        (Scenario::Wrl, 3.2),
    ];
    for (i, (scenario, expected)) in pins.into_iter().enumerate() {
        let trace = scenario.generate(TRACE_DURATION_SECS, TRACE_SEED + i as u64);
        let mean = trace.mean_fps();
        assert!(
            (mean - expected).abs() < 0.15,
            "{scenario}: mean {mean:.2} drifted from pinned {expected}"
        );
    }
}

/// Fig. 7 pins: the Classroom/Nexus One bar heights EXPERIMENTS.md
/// reports (±3 mW).
#[test]
fn canonical_classroom_bars_pinned() {
    let trace = Scenario::Classroom.generate(TRACE_DURATION_SECS, TRACE_SEED);
    let pins = [
        (Solution::ReceiveAll, 265.7),
        (Solution::client_side_lower_bound(), 308.9),
        (Solution::hide(0.10), 131.8),
        (Solution::hide(0.02), 55.9),
    ];
    for (solution, expected) in pins {
        let r = SimulationBuilder::new(&trace, NEXUS_ONE)
            .solution(solution)
            .run();
        let mw = r.energy.average_power_mw();
        assert!(
            (mw - expected).abs() < 3.0,
            "{solution}: {mw:.1} mW drifted from pinned {expected}"
        );
    }
}
