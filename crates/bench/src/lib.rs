//! Shared helpers for the reproduction harness: canonical experiment
//! settings and renderers for every table and figure of the paper.
//!
//! The `reproduce` binary drives these; the Criterion benches in
//! `benches/` time the underlying computations.
//!
//! Every trace-driven renderer has a `*_with` twin taking a
//! [`hide_obs::Recorder`] and returning `Result<_, HideError>`: it
//! streams the simulation metrics into the recorder (per-section
//! recorders fan in, in declaration order, so the merged totals are
//! independent of the `--jobs` count) and surfaces failures instead of
//! panicking. The original names are thin shims over the `*_with`
//! versions for callers that only want the rendered text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hide::HideError;
use hide_analysis::capacity::{CapacityAnalysis, NetworkConfig};
use hide_analysis::delay::{DelayAnalysis, DelayConfig};
use hide_energy::profile::{DeviceProfile, GALAXY_S4, NEXUS_ONE};
use hide_obs::Recorder;
use hide_sim::experiment::{self, ScenarioComparison, PAPER_FRACTIONS};
use hide_sim::report;
use hide_traces::record::Trace;
use hide_traces::scenario::Scenario;
use std::fmt::Write as _;

/// Canonical trace duration for the reproduction: the paper's captures
/// are 30–60 minutes; we use the 45-minute midpoint.
pub const TRACE_DURATION_SECS: f64 = 2700.0;

/// Canonical seed so every run of the harness reproduces identical
/// numbers.
pub const TRACE_SEED: u64 = 2016;

/// Generates the five canonical traces.
pub fn canonical_traces() -> Vec<Trace> {
    Scenario::generate_all(TRACE_DURATION_SECS, TRACE_SEED)
}

/// Renders Table I (device energy/power constants).
pub fn table_1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<11} {:>5} {:>7} {:>7} {:>9} {:>9} {:>8} {:>7} {:>7} {:>7} {:>6} {:>6}",
        "device", "tau", "Trm", "Tsp", "Erm", "Esp", "Eu_b", "Pr", "Pt", "Pidle", "Pss", "Psa"
    );
    for p in [NEXUS_ONE, GALAXY_S4] {
        let _ = writeln!(
            out,
            "{:<11} {:>4}s {:>5}ms {:>5}ms {:>7.2}mJ {:>7.2}mJ {:>6.2}mJ {:>6}mW {:>6}mW {:>6}mW {:>5}mW {:>5}mW",
            p.name,
            p.wakelock_secs,
            p.resume_secs * 1e3,
            p.suspend_secs * 1e3,
            p.resume_energy * 1e3,
            p.suspend_energy * 1e3,
            p.beacon_energy * 1e3,
            p.rx_power * 1e3,
            p.tx_power * 1e3,
            p.idle_power * 1e3,
            p.suspend_power * 1e3,
            p.active_idle_power * 1e3,
        );
    }
    out
}

/// Renders Table II (network configuration for the overhead analysis).
pub fn table_2() -> String {
    let cfg = NetworkConfig::table_ii();
    let d = &cfg.dcf;
    let mut out = String::new();
    let rows: Vec<(&str, String)> = vec![
        ("min contention window", d.cw_min.to_string()),
        ("max contention window", d.cw_max.to_string()),
        ("slot time", format!("{} us", d.slot_time_us)),
        ("SIFS", format!("{} us", d.sifs_us)),
        ("DIFS", format!("{} us", d.difs_us)),
        ("propagation delay", format!("{} us", d.propagation_us)),
        (
            "channel data rate",
            format!("{} Mbits/s", d.channel_rate_bps / 1e6),
        ),
        ("MAC header", format!("{} bits", d.mac_header_bits)),
        (
            "PHY preamble + header",
            format!("{} bits", d.phy_header_bits),
        ),
        (
            "average data payload size",
            format!("{} bits", d.payload_bits),
        ),
    ];
    for (k, v) in rows {
        let _ = writeln!(out, "{k:<28} {v}");
    }
    out
}

/// Renders Fig. 6 (broadcast traffic volumes).
pub fn figure_6(traces: &[Trace]) -> String {
    report::render_trace_volumes(&experiment::trace_volumes(traces))
}

/// Runs and renders Fig. 7 (Nexus One) or Fig. 8 (Galaxy S4).
pub fn figure_7_or_8(profile: DeviceProfile, traces: &[Trace]) -> String {
    figure_7_or_8_with(profile, traces, &mut Recorder::new()).expect("canonical traces are valid")
}

/// Checked, instrumented [`figure_7_or_8`].
///
/// # Errors
///
/// Returns [`HideError::Sim`] when a trace is degenerate or the
/// comparison lacks a required bar.
pub fn figure_7_or_8_with(
    profile: DeviceProfile,
    traces: &[Trace],
    recorder: &mut Recorder,
) -> Result<String, HideError> {
    let comparisons =
        experiment::try_energy_comparison(profile, traces, &PAPER_FRACTIONS, recorder)?;
    let mut out = report::render_energy_comparison(&comparisons);
    out.push('\n');
    out.push_str(&headline(&comparisons)?);
    Ok(out)
}

fn headline(comparisons: &[ScenarioComparison]) -> Result<String, HideError> {
    let mut out = String::new();
    for fraction in [0.10, 0.02] {
        let s = experiment::try_savings_summary(comparisons, fraction)?;
        let _ = writeln!(
            out,
            "HIDE:{:.0}% saves {:.0}%-{:.0}% vs receive-all on {} \
             (avg +{:.0}% over client-side)",
            fraction * 100.0,
            s.min_saving * 100.0,
            s.max_saving * 100.0,
            s.device,
            s.mean_extra_vs_client_side * 100.0
        );
    }
    Ok(out)
}

/// Runs and renders Fig. 9 (suspend-mode time fractions, Nexus One).
pub fn figure_9(traces: &[Trace]) -> String {
    figure_9_with(traces, &mut Recorder::new()).expect("canonical traces are valid")
}

/// Checked, instrumented [`figure_9`].
///
/// # Errors
///
/// Returns [`HideError::Sim`] when a trace is degenerate.
pub fn figure_9_with(traces: &[Trace], recorder: &mut Recorder) -> Result<String, HideError> {
    Ok(report::render_suspend_fractions(
        &experiment::try_suspend_fractions(NEXUS_ONE, traces, recorder)?,
    ))
}

/// Runs and renders Fig. 10 (network capacity decrease).
pub fn figure_10() -> String {
    let analysis = CapacityAnalysis::new(NetworkConfig::table_ii());
    let points = analysis.figure_10().expect("standard sweep solves");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>8} {:>8} {:>8} {:>8}",
        "nodes", "p=5%", "p=25%", "p=50%", "p=75%"
    );
    for (i, &n) in [5u32, 10, 20, 30, 40, 50].iter().enumerate() {
        let _ = write!(out, "{n:<8}");
        for j in 0..4 {
            let pt = &points[j * 6 + i];
            let _ = write!(out, " {:>7.3}%", pt.decrease * 100.0);
        }
        let _ = writeln!(out);
    }
    out
}

/// Runs and renders Fig. 11 (delay overhead vs sync interval).
pub fn figure_11() -> String {
    let analysis = DelayAnalysis::new(DelayConfig::default());
    let sweeps = analysis.figure_11();
    let mut out = String::new();
    let _ = write!(out, "{:<8}", "nodes");
    for (interval, _) in &sweeps {
        let _ = write!(out, " {:>9}", format!("1/f={interval}s"));
    }
    let _ = writeln!(out);
    for (i, &n) in [5u32, 10, 20, 30, 40, 50].iter().enumerate() {
        let _ = write!(out, "{n:<8}");
        for (_, pts) in &sweeps {
            let _ = write!(out, " {:>8.3}%", pts[i].overhead * 100.0);
        }
        let _ = writeln!(out);
    }
    out
}

/// Runs and renders Fig. 12 (delay overhead vs open ports).
pub fn figure_12() -> String {
    let analysis = DelayAnalysis::new(DelayConfig::default());
    let sweeps = analysis.figure_12();
    let mut out = String::new();
    let _ = write!(out, "{:<8}", "nodes");
    for (ports, _) in &sweeps {
        let _ = write!(out, " {:>9}", format!("no={ports}"));
    }
    let _ = writeln!(out);
    for (i, &n) in [5u32, 10, 20, 30, 40, 50].iter().enumerate() {
        let _ = write!(out, "{n:<8}");
        for (_, pts) in &sweeps {
            let _ = write!(out, " {:>8.3}%", pts[i].overhead * 100.0);
        }
        let _ = writeln!(out);
    }
    out
}

/// Runs and renders the extension experiments (beyond the paper):
/// hybrid solution, DTIM batching, unicast sensitivity, fleet adoption
/// and sync-loss robustness.
///
/// The sections are mutually independent, so each renders on its own
/// worker; concatenating in declaration order keeps the report
/// byte-identical to the sequential version.
pub fn extensions(traces: &[Trace]) -> String {
    extensions_with(traces, &mut Recorder::new())
}

/// Instrumented [`extensions`]: each section's simulations stream into
/// a section-local recorder; locals merge into `recorder` in
/// declaration order, so the totals match a sequential run at any job
/// count.
pub fn extensions_with(traces: &[Trace], recorder: &mut Recorder) -> String {
    let trace = &traces[1]; // CS_Dept: the mid-volume trace
    let sections: [fn(&Trace, &mut Recorder) -> String; 8] = [
        ext_hybrid,
        ext_dtim,
        ext_unicast,
        ext_fleet,
        ext_sync_loss,
        ext_wakelock,
        ext_latency,
        ext_protocol,
    ];
    let rendered = hide_par::par_map(&sections, |render| {
        let mut local = Recorder::new();
        let out = render(trace, &mut local);
        (out, local)
    });
    let mut out = String::new();
    for (text, local) in rendered {
        recorder.merge_from(&local);
        out.push_str(&text);
    }
    out
}

/// Runs and renders the cross-policy × cross-device comparison over
/// the policy registry.
pub fn policy_matrix(policy: Option<&str>, device: Option<&str>) -> Result<String, HideError> {
    policy_matrix_with(policy, device, &mut Recorder::new())
}

/// Instrumented [`policy_matrix`]: one small fleet per (device, policy)
/// pair — HIDE, legacy PSM and scheduled wake over every registry
/// device (or the `--policy`/`--device` filtered subset), with the
/// battery-lifetime projection each run extrapolates onto that
/// device's battery. Sequential and seed-pinned, so the rendered table
/// and the merged counters are byte-identical on every run.
///
/// # Errors
///
/// Returns [`HideError::Fleet`] on an invalid fleet configuration and
/// a usage-style [`HideError::Sim`] is never produced here — unknown
/// filter names simply select nothing and render an empty table.
pub fn policy_matrix_with(
    policy: Option<&str>,
    device: Option<&str>,
    recorder: &mut Recorder,
) -> Result<String, HideError> {
    use hide::policy::{builtin, WakePolicy};
    use hide_fleet::{ChurnConfig, FleetConfig};

    let policies = [
        WakePolicy::Hide,
        WakePolicy::LegacyPsm,
        WakePolicy::ScheduledWake(hide::policy::ScheduleConfig::default()),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<14} {:>10} {:>9} {:>8} {:>8} {:>11} {:>9}",
        "device", "policy", "energy J", "saving%", "wakes", "missed", "lifetime h", "gain%"
    );
    for entry in builtin() {
        if let Some(d) = device {
            if !d.eq_ignore_ascii_case(entry.key) {
                continue;
            }
        }
        for p in policies {
            if let Some(name) = policy {
                if WakePolicy::parse(name).map(|q| q.kind_id()) != Ok(p.kind_id()) {
                    continue;
                }
            }
            let cfg = FleetConfig {
                bss_count: 20,
                clients_per_bss: 8,
                adoption: 1.0,
                duration_secs: 10.0,
                scenario: Scenario::CsDept,
                seed: TRACE_SEED,
                profile: entry.profile,
                policy: p,
                battery: entry.battery(),
                churn: ChurnConfig {
                    refresh_interval_secs: 3.0,
                    refresh_loss: 0.0,
                    ..ChurnConfig::default()
                },
            };
            let result = cfg.try_run()?;
            recorder.merge_from(&result.recorder);
            let r = &result.report;
            let lt = &result.lifetime;
            let _ = writeln!(
                out,
                "{:<12} {:<14} {:>10.3} {:>9.2} {:>8} {:>8} {:>11.1} {:>+9.2}",
                entry.key,
                p.name(),
                r.total_energy_j,
                result.fleet_saving * 100.0,
                r.wakeups,
                r.missed_wakeups,
                lt.projected_secs as f64 / 3600.0,
                lt.lifetime_gain_ppm as f64 / 1e4,
            );
        }
    }
    Ok(out)
}

fn ext_hybrid(trace: &Trace, recorder: &mut Recorder) -> String {
    use hide_sim::solution::Solution;
    use hide_sim::SimulationBuilder;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "--- hybrid HIDE + client-side (future work, Sec. VIII) ---"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>10}",
        "solution", "total mW", "received", "wake-ups"
    );
    for solution in [
        Solution::hide(0.10),
        Solution::hybrid(0.10, 0.04),
        Solution::hide(0.04),
    ] {
        let r = SimulationBuilder::new(trace, NEXUS_ONE)
            .solution(solution)
            .try_run_observed(recorder)
            .expect("canonical trace is valid");
        let _ = writeln!(
            out,
            "{:<16} {:>10.2} {:>10} {:>10}",
            solution.label(),
            r.energy.average_power_mw(),
            r.received_frames,
            r.wake_frames
        );
    }
    out
}

fn ext_dtim(trace: &Trace, recorder: &mut Recorder) -> String {
    use hide_sim::solution::Solution;
    use hide_sim::SimulationBuilder;
    let mut out = String::new();
    let _ = writeln!(out, "\n--- DTIM period (AP-side delivery batching) ---");
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>10}",
        "period", "receive-all", "HIDE:10%"
    );
    for period in [1u8, 2, 3] {
        let all = SimulationBuilder::new(trace, NEXUS_ONE)
            .dtim_period(period)
            .try_run_observed(recorder)
            .expect("canonical trace is valid");
        let hide = SimulationBuilder::new(trace, NEXUS_ONE)
            .solution(Solution::hide(0.10))
            .dtim_period(period)
            .try_run_observed(recorder)
            .expect("canonical trace is valid");
        let _ = writeln!(
            out,
            "{:<8} {:>9.1} mW {:>7.1} mW",
            period,
            all.energy.average_power_mw(),
            hide.energy.average_power_mw()
        );
    }
    out
}

fn ext_unicast(trace: &Trace, recorder: &mut Recorder) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n--- unicast sensitivity (HIDE:10% saving vs unicast load) ---"
    );
    let rows =
        experiment::try_unicast_sensitivity(NEXUS_ONE, trace, &[0.0, 0.1, 0.5, 1.0, 2.0], recorder)
            .expect("canonical trace is valid");
    let _ = writeln!(
        out,
        "{:>12} {:>12} {:>10} {:>8}",
        "unicast fps", "receive-all", "HIDE:10%", "saving"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>12.1} {:>9.1} mW {:>7.1} mW {:>7.1}%",
            r.unicast_rate,
            r.receive_all_mw,
            r.hide_mw,
            r.saving * 100.0
        );
    }
    out
}

fn ext_fleet(trace: &Trace, _recorder: &mut Recorder) -> String {
    use hide_sim::network::{fleet, NetworkSimulation};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n--- fleet adoption (20 Nexus Ones on the CS_Dept trace) ---"
    );
    for adoption in [0.25, 0.50, 1.00] {
        let r = NetworkSimulation::new(trace, NEXUS_ONE, fleet(20, adoption, 7)).run();
        let _ = writeln!(
            out,
            "adoption {:>4.0}%: fleet saving {:>5.1}%, {:.2} port msgs/s",
            adoption * 100.0,
            r.fleet_saving * 100.0,
            r.port_messages_per_sec
        );
    }
    out
}

fn ext_sync_loss(trace: &Trace, _recorder: &mut Recorder) -> String {
    use hide_sim::reliability::{self, ReliabilityConfig};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n--- sync-loss robustness (churn every 2 min, 3 retries) ---"
    );
    let losses = [0.1, 0.5, 0.9];
    let configs: Vec<ReliabilityConfig> = losses
        .iter()
        .map(|&loss| ReliabilityConfig {
            loss_probability: loss,
            churn_interval_secs: 120.0,
            ..ReliabilityConfig::default()
        })
        .collect();
    for (loss, r) in losses.iter().zip(reliability::run_sweep(trace, &configs)) {
        let _ = writeln!(
            out,
            "loss {:>3.0}%: {:>3}/{} syncs failed, {:.3}% useful missed, {:.1}% stale",
            loss * 100.0,
            r.syncs_failed,
            r.syncs_attempted,
            r.missed_useful_fraction * 100.0,
            r.stale_time_fraction * 100.0
        );
    }
    out
}

fn ext_wakelock(trace: &Trace, _recorder: &mut Recorder) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n--- sensitivity: wakelock duration tau (paper fixes 1 s) ---"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>10} {:>8}",
        "tau", "receive-all", "HIDE:10%", "saving"
    );
    for p in hide_sim::sensitivity::wakelock_sweep(trace, NEXUS_ONE, &[0.25, 0.5, 1.0, 2.0, 5.0]) {
        let _ = writeln!(
            out,
            "{:>7}s {:>9.1} mW {:>7.1} mW {:>7.1}%",
            p.value,
            p.receive_all_mw,
            p.hide_mw,
            p.hide_saving * 100.0
        );
    }
    out
}

fn ext_latency(trace: &Trace, _recorder: &mut Recorder) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n--- broadcast delivery latency vs DTIM period ---");
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "period", "mean", "p50", "p99", "max"
    );
    for report in hide_sim::latency::latency_sweep(trace, 0.1024, &[1, 2, 3, 5]) {
        let _ = writeln!(
            out,
            "{:<8} {:>7.1} ms {:>7.1} ms {:>7.1} ms {:>7.1} ms",
            report.dtim_period,
            report.mean_secs * 1e3,
            report.p50_secs * 1e3,
            report.p99_secs * 1e3,
            report.max_secs * 1e3
        );
    }
    out
}

fn ext_protocol(trace: &Trace, recorder: &mut Recorder) -> String {
    use hide_sim::protocol_sim::ProtocolSimulation;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n--- protocol cross-validation (real AP + client, encoded beacons) ---"
    );
    let sim = ProtocolSimulation::new(trace, NEXUS_ONE, 0.10);
    let protocol = sim
        .run_observed(recorder)
        .expect("canonical trace is valid");
    let marked = sim
        .marking_equivalent()
        .try_run_observed(recorder)
        .expect("canonical trace is valid");
    let _ = writeln!(
        out,
        "protocol: {} beacons, {:.1} BTIM bytes/beacon, {} frames consumed",
        protocol.stats.beacons,
        protocol.stats.btim_bytes as f64 / protocol.stats.beacons.max(1) as f64,
        protocol.stats.frames_consumed,
    );
    let a = protocol.energy.breakdown.total();
    let b = marked.energy.breakdown.total();
    let _ = writeln!(
        out,
        "marking:  {} frames received; energy {:.1} J vs {:.1} J ({:+.1}% divergence)",
        marked.received_frames,
        a,
        b,
        (a - b) / b * 100.0
    );
    out
}

/// The figure CSV files [`write_csvs`] produces, in figure order.
pub const CSV_FILES: [&str; 7] = [
    "fig6_cdf.csv",
    "fig7_nexus.csv",
    "fig8_s4.csv",
    "fig9_suspend.csv",
    "fig10_capacity.csv",
    "fig11_delay_interval.csv",
    "fig12_delay_ports.csv",
];

/// Writes plot-ready CSV files for every figure into `dir`.
///
/// Each figure's content is computed on its own worker; files are then
/// written sequentially in figure order, so both the bytes of each file
/// and the order they land on disk are independent of the job count.
///
/// # Errors
///
/// Returns any filesystem error encountered.
pub fn write_csvs(traces: &[Trace], dir: &std::path::Path) -> std::io::Result<()> {
    write_csvs_with(traces, dir, &mut Recorder::new()).map_err(|e| match e {
        HideError::Io(io) => io,
        other => std::io::Error::other(other.to_string()),
    })
}

/// Checked, instrumented [`write_csvs`]: per-file metrics merge into
/// `recorder` in figure order.
///
/// # Errors
///
/// Returns [`HideError::Io`] for filesystem failures and the
/// originating layer's error when a figure computation fails.
pub fn write_csvs_with(
    traces: &[Trace],
    dir: &std::path::Path,
    recorder: &mut Recorder,
) -> Result<(), HideError> {
    std::fs::create_dir_all(dir)?;
    let contents = hide_par::par_map(&CSV_FILES, |&file| {
        let mut local = Recorder::new();
        let csv = csv_content(file, traces, &mut local);
        (csv, local)
    });
    for (file, (csv, local)) in CSV_FILES.iter().zip(contents) {
        recorder.merge_from(&local);
        std::fs::write(dir.join(file), csv?)?;
    }
    Ok(())
}

/// Renders one figure's CSV (`file` is a [`CSV_FILES`] entry).
fn csv_content(file: &str, traces: &[Trace], recorder: &mut Recorder) -> Result<String, HideError> {
    use hide_analysis::capacity::{CapacityAnalysis, NetworkConfig};
    use hide_analysis::delay::{DelayAnalysis, DelayConfig};

    match file {
        "fig6_cdf.csv" => {
            let mut csv = String::from("scenario,frames_per_sec,cumulative_probability\n");
            for v in experiment::trace_volumes(traces) {
                for (x, p) in &v.cdf_points {
                    let _ = writeln!(csv, "{},{x:.3},{p:.5}", v.scenario);
                }
            }
            Ok(csv)
        }
        "fig7_nexus.csv" | "fig8_s4.csv" => {
            let profile = if file == "fig7_nexus.csv" {
                NEXUS_ONE
            } else {
                GALAXY_S4
            };
            let mut csv =
                String::from("scenario,solution,eb_mw,ef_mw,est_mw,ewl_mw,eo_mw,total_mw,saving\n");
            for c in experiment::try_energy_comparison(profile, traces, &PAPER_FRACTIONS, recorder)?
            {
                for b in &c.bars {
                    let [eb, ef, est, ewl, eo] = b.stacked_mw;
                    let _ = writeln!(
                        csv,
                        "{},{},{eb:.4},{ef:.4},{est:.4},{ewl:.4},{eo:.4},{:.4},{:.5}",
                        c.scenario, b.label, b.total_mw, b.saving_vs_receive_all
                    );
                }
            }
            Ok(csv)
        }
        "fig9_suspend.csv" => {
            let mut csv = String::from("scenario,solution,suspend_fraction\n");
            for row in experiment::try_suspend_fractions(NEXUS_ONE, traces, recorder)? {
                for (label, v) in &row.fractions {
                    let _ = writeln!(csv, "{},{label},{v:.5}", row.scenario);
                }
            }
            Ok(csv)
        }
        "fig10_capacity.csv" => {
            let analysis = CapacityAnalysis::new(NetworkConfig::table_ii());
            let mut csv = String::from("nodes,hide_fraction,capacity_decrease\n");
            for p in analysis.figure_10()? {
                let _ = writeln!(csv, "{},{},{:.6}", p.nodes, p.hide_fraction, p.decrease);
            }
            Ok(csv)
        }
        "fig11_delay_interval.csv" => {
            let delay = DelayAnalysis::new(DelayConfig::default());
            let mut csv = String::from("sync_interval_s,nodes,overhead\n");
            for (interval, pts) in delay.figure_11() {
                for p in pts {
                    let _ = writeln!(csv, "{interval},{},{:.6}", p.nodes, p.overhead);
                }
            }
            Ok(csv)
        }
        "fig12_delay_ports.csv" => {
            let delay = DelayAnalysis::new(DelayConfig::default());
            let mut csv = String::from("open_ports,nodes,overhead\n");
            for (ports, pts) in delay.figure_12() {
                for p in pts {
                    let _ = writeln!(csv, "{ports},{},{:.6}", p.nodes, p.overhead);
                }
            }
            Ok(csv)
        }
        other => unreachable!("unknown csv file {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let t1 = table_1();
        assert!(t1.contains("Nexus One"));
        assert!(t1.contains("Galaxy S4"));
        let t2 = table_2();
        assert!(t2.contains("min contention window"));
        assert!(t2.contains("11 Mbits/s"));
    }

    #[test]
    fn analysis_figures_render() {
        assert!(figure_10().contains("p=75%"));
        assert!(figure_11().contains("1/f=600s"));
        assert!(figure_12().contains("no=100"));
    }

    #[test]
    fn short_trace_figures_render() {
        let traces = Scenario::generate_all(60.0, 1);
        assert!(figure_6(&traces).contains("Starbucks"));
        let fig9 = figure_9(&traces[..1]);
        assert!(fig9.contains("HIDE:2%"));
    }

    #[test]
    fn extensions_render() {
        let traces = Scenario::generate_all(120.0, 1);
        let out = extensions(&traces);
        assert!(out.contains("hybrid:10/4%"));
        assert!(out.contains("DTIM period"));
        assert!(out.contains("fleet saving"));
        assert!(out.contains("syncs failed"));
        assert!(out.contains("protocol cross-validation"));
    }

    #[test]
    fn csvs_written() {
        let traces = Scenario::generate_all(60.0, 1);
        let dir = std::env::temp_dir().join("hide_csv_test");
        write_csvs(&traces, &dir).unwrap();
        for f in [
            "fig6_cdf.csv",
            "fig7_nexus.csv",
            "fig8_s4.csv",
            "fig9_suspend.csv",
            "fig10_capacity.csv",
            "fig11_delay_interval.csv",
            "fig12_delay_ports.csv",
        ] {
            let content = std::fs::read_to_string(dir.join(f)).unwrap();
            assert!(content.lines().count() > 1, "{f} is empty");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
