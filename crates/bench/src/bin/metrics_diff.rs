//! `hide-metrics-diff`: structural regression gate for `hide-metrics/1`
//! artifacts.
//!
//! ```text
//! hide-metrics-diff <golden.json> <candidate.json>
//!                   [--profile FILE.toml]
//!                   [--tol KEY=REL]... [--ignore KEY]... [--tol-default REL]
//! ```
//!
//! Both files must carry the `hide-metrics/1` schema identifier. Every
//! numeric leaf is flattened to a dotted key (`counters.fleet_events`,
//! `distributions.frames_per_dtim.sum`, `stages.fleet.calls`; histogram
//! buckets become `...buckets.<bucket>`), and golden and candidate are
//! compared key by key:
//!
//! * a key present on one side only is a structural regression;
//! * values must match exactly unless a tolerance applies — `--tol
//!   KEY=REL` allows a relative drift of `REL` (|a−b| / max(a, 1)) for
//!   `KEY` and everything under `KEY.`, `--tol-default REL` for all
//!   keys;
//! * `--ignore KEY` drops `KEY` and everything under it entirely.
//!
//! `--profile FILE.toml` loads the same rules from a checked-in TOML
//! file (see `golden/tolerances.toml`), replacing long ad-hoc flag
//! lists in CI:
//!
//! ```toml
//! default_tolerance = 0.0
//!
//! [[rule]]            # loosen a whole subtree
//! key = "stages"
//! tolerance = 0.05
//!
//! [[rule]]            # or drop one entirely
//! key = "distributions.noisy"
//! ignore = true
//! ```
//!
//! Profile rules load before the command-line flags, and the longest
//! matching key still wins; when a profile rule and a flag name the
//! *same* key, the flag wins. `--tol-default` likewise overrides the
//! profile's `default_tolerance`.
//!
//! Exit status: 0 when the artifacts agree within tolerance, 1 on any
//! regression, 2 on usage or parse errors. CI runs this against the
//! checked-in goldens under `golden/` (see the `metrics-gate` job).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("hide-metrics-diff: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut files = Vec::new();
    let mut rules = Rules::default();
    // Profile rules load first: same-key command-line rules are pushed
    // after them, and `Rules::tolerance` resolves length ties in favor
    // of the later rule, so flags override the checked-in profile.
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--profile" {
            let path = args
                .get(i + 1)
                .ok_or("--profile expects a TOML file path")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            profile::apply(&text, &mut rules).map_err(|e| format!("{path}: {e}"))?;
            i += 2;
        } else {
            i += 1;
        }
    }
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--profile" => i += 2, // handled in the pre-pass
            "--tol" => {
                let v = args.get(i + 1).ok_or("--tol expects KEY=REL")?;
                let (key, rel) = v.split_once('=').ok_or("--tol expects KEY=REL")?;
                let rel: f64 = rel.parse().map_err(|_| format!("bad tolerance {rel:?}"))?;
                rules.tolerances.push((key.to_string(), rel));
                i += 2;
            }
            "--tol-default" => {
                let v = args.get(i + 1).ok_or("--tol-default expects REL")?;
                rules.default_tol = v.parse().map_err(|_| format!("bad tolerance {v:?}"))?;
                i += 2;
            }
            "--ignore" => {
                let v = args.get(i + 1).ok_or("--ignore expects KEY")?;
                rules.ignored.push(v.clone());
                i += 2;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            _ => {
                files.push(args[i].clone());
                i += 1;
            }
        }
    }
    let [golden_path, candidate_path] = files
        .try_into()
        .map_err(|_| "usage: hide-metrics-diff <golden> <candidate> [options]".to_string())?;

    let golden = load(&golden_path)?;
    let candidate = load(&candidate_path)?;
    let report = diff(&golden, &candidate, &rules);
    for line in &report.lines {
        println!("{line}");
    }
    println!(
        "{} keys compared, {} ignored, {} regression{}",
        report.compared,
        report.ignored,
        report.regressions,
        if report.regressions == 1 { "" } else { "s" }
    );
    Ok(report.regressions == 0)
}

fn load(path: &str) -> Result<Vec<(String, u64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = value
        .get("schema")
        .and_then(Json::as_str)
        .ok_or(format!("{path}: missing \"schema\" field"))?;
    if schema != "hide-metrics/1" {
        return Err(format!("{path}: unsupported schema {schema:?}"));
    }
    let mut flat = Vec::new();
    flatten("", &value, &mut flat);
    Ok(flat)
}

/// Tolerance and ignore rules. A rule for `KEY` applies to the key
/// itself and to every key under `KEY.`; the longest matching
/// tolerance rule wins over the default.
#[derive(Default)]
struct Rules {
    tolerances: Vec<(String, f64)>,
    ignored: Vec<String>,
    default_tol: f64,
}

impl Rules {
    fn covers(rule: &str, key: &str) -> bool {
        key == rule || (key.starts_with(rule) && key.as_bytes()[rule.len()] == b'.')
    }

    fn is_ignored(&self, key: &str) -> bool {
        self.ignored.iter().any(|r| Rules::covers(r, key))
    }

    fn tolerance(&self, key: &str) -> f64 {
        self.tolerances
            .iter()
            .filter(|(r, _)| Rules::covers(r, key))
            .max_by_key(|(r, _)| r.len())
            .map_or(self.default_tol, |&(_, rel)| rel)
    }
}

/// Tolerance-profile parser: the TOML subset the checked-in profiles
/// use. Top-level `default_tolerance = F`, then `[[rule]]` blocks each
/// carrying `key = "..."` plus either `tolerance = F` or
/// `ignore = true`. Comments (`#`) and blank lines are allowed;
/// anything else is a parse error — a profile gates CI, so unknown
/// syntax must fail loudly rather than be skipped.
mod profile {
    use super::Rules;

    #[derive(Default)]
    struct PendingRule {
        line: usize,
        key: Option<String>,
        tolerance: Option<f64>,
        ignore: Option<bool>,
    }

    fn flush(pending: PendingRule, rules: &mut Rules) -> Result<(), String> {
        let at = pending.line;
        let key = pending
            .key
            .ok_or(format!("rule at line {at}: missing `key`"))?;
        match (pending.tolerance, pending.ignore.unwrap_or(false)) {
            (Some(_), true) => Err(format!(
                "rule at line {at}: `tolerance` and `ignore = true` are mutually exclusive"
            )),
            (Some(rel), false) => {
                rules.tolerances.push((key, rel));
                Ok(())
            }
            (None, true) => {
                rules.ignored.push(key);
                Ok(())
            }
            (None, false) => Err(format!(
                "rule at line {at}: needs `tolerance = REL` or `ignore = true`"
            )),
        }
    }

    fn parse_tolerance(v: &str, at: usize) -> Result<f64, String> {
        let rel: f64 = v
            .parse()
            .map_err(|_| format!("line {at}: bad tolerance {v:?}"))?;
        if rel.is_finite() && rel >= 0.0 {
            Ok(rel)
        } else {
            Err(format!("line {at}: tolerance must be finite and >= 0"))
        }
    }

    fn parse_key(v: &str, at: usize) -> Result<String, String> {
        let inner = v
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or(format!("line {at}: key must be a quoted string"))?;
        if inner.is_empty() || inner.contains('"') {
            return Err(format!("line {at}: bad key {v:?}"));
        }
        Ok(inner.to_string())
    }

    /// Parses `text` and appends its rules to `rules`.
    pub fn apply(text: &str, rules: &mut Rules) -> Result<(), String> {
        let mut pending: Option<PendingRule> = None;
        for (i, raw) in text.lines().enumerate() {
            let at = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[rule]]" {
                if let Some(done) = pending.take() {
                    flush(done, rules)?;
                }
                pending = Some(PendingRule {
                    line: at,
                    ..PendingRule::default()
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {at}: unsupported table {line:?}"));
            }
            let (k, v) = line
                .split_once('=')
                .ok_or(format!("line {at}: expected `name = value`"))?;
            let (k, v) = (k.trim(), v.trim());
            match (&mut pending, k) {
                (None, "default_tolerance") => {
                    rules.default_tol = parse_tolerance(v, at)?;
                }
                (None, other) => {
                    return Err(format!("line {at}: unknown top-level key {other:?}"));
                }
                (Some(rule), "key") => {
                    rule.key = Some(parse_key(v, at)?);
                }
                (Some(rule), "tolerance") => {
                    rule.tolerance = Some(parse_tolerance(v, at)?);
                }
                (Some(rule), "ignore") => {
                    rule.ignore = Some(match v {
                        "true" => true,
                        "false" => false,
                        _ => return Err(format!("line {at}: `ignore` must be true or false")),
                    });
                }
                (Some(_), other) => {
                    return Err(format!("line {at}: unknown rule key {other:?}"));
                }
            }
        }
        if let Some(done) = pending.take() {
            flush(done, rules)?;
        }
        Ok(())
    }
}

struct DiffReport {
    lines: Vec<String>,
    compared: usize,
    ignored: usize,
    regressions: usize,
}

/// Structural comparison of two flattened artifacts. Both inputs are
/// sorted-merged so a key present on one side only is detected in one
/// pass.
fn diff(golden: &[(String, u64)], candidate: &[(String, u64)], rules: &Rules) -> DiffReport {
    let mut golden: Vec<_> = golden.to_vec();
    let mut candidate: Vec<_> = candidate.to_vec();
    golden.sort();
    candidate.sort();

    let mut report = DiffReport {
        lines: Vec::new(),
        compared: 0,
        ignored: 0,
        regressions: 0,
    };
    let (mut gi, mut ci) = (0, 0);
    while gi < golden.len() || ci < candidate.len() {
        let order = match (golden.get(gi), candidate.get(ci)) {
            (Some((g, _)), Some((c, _))) => g.cmp(c),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => unreachable!(),
        };
        match order {
            std::cmp::Ordering::Less => {
                let (key, value) = &golden[gi];
                gi += 1;
                if rules.is_ignored(key) {
                    report.ignored += 1;
                } else {
                    report.regressions += 1;
                    report
                        .lines
                        .push(format!("{key}: missing from candidate (golden {value})"));
                }
            }
            std::cmp::Ordering::Greater => {
                let (key, value) = &candidate[ci];
                ci += 1;
                if rules.is_ignored(key) {
                    report.ignored += 1;
                } else {
                    report.regressions += 1;
                    report
                        .lines
                        .push(format!("{key}: not in golden (candidate {value})"));
                }
            }
            std::cmp::Ordering::Equal => {
                let (key, g) = &golden[gi];
                let (_, c) = &candidate[ci];
                gi += 1;
                ci += 1;
                if rules.is_ignored(key) {
                    report.ignored += 1;
                    continue;
                }
                report.compared += 1;
                if g == c {
                    continue;
                }
                let rel = g.abs_diff(*c) as f64 / (*g.max(&1)) as f64;
                let tol = rules.tolerance(key);
                if rel > tol {
                    report.regressions += 1;
                    report.lines.push(format!(
                        "{key}: golden {g}, candidate {c} \
                         (relative drift {rel:.6} > tolerance {tol})"
                    ));
                }
            }
        }
    }
    report
}

/// Flattens numeric leaves to dotted keys. Arrays whose elements are
/// all `[bucket, count]` integer pairs (histogram buckets) become
/// `prefix.<bucket> = count` so bucket insertions don't shift sibling
/// keys; any other array indexes positionally.
fn flatten(prefix: &str, value: &Json, out: &mut Vec<(String, u64)>) {
    let child = |key: &str| {
        if prefix.is_empty() {
            key.to_string()
        } else {
            format!("{prefix}.{key}")
        }
    };
    match value {
        Json::Num(n) => out.push((prefix.to_string(), *n)),
        Json::Str(_) => {}
        Json::Obj(fields) => {
            for (key, v) in fields {
                flatten(&child(key), v, out);
            }
        }
        Json::Arr(items) => {
            let pairs: Option<Vec<(u64, u64)>> = items
                .iter()
                .map(|item| match item {
                    Json::Arr(p) => match p.as_slice() {
                        [Json::Num(b), Json::Num(n)] => Some((*b, *n)),
                        _ => None,
                    },
                    _ => None,
                })
                .collect();
            match pairs {
                Some(pairs) => {
                    for (bucket, count) in pairs {
                        out.push((child(&bucket.to_string()), count));
                    }
                }
                None => {
                    for (i, item) in items.iter().enumerate() {
                        flatten(&child(&i.to_string()), item, out);
                    }
                }
            }
        }
    }
}

/// The `hide-metrics/1` value space: objects, arrays, strings, and
/// non-negative integers. No dependency needed for a grammar this
/// small.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

mod json {
    use super::Json;

    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while bytes
            .get(*pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&want) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", want as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_obj(bytes, pos),
            Some(b'[') => parse_arr(bytes, pos),
            Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
            Some(b'0'..=b'9') => parse_num(bytes, pos),
            Some(&b) => Err(format!("unexpected {:?} at byte {}", b as char, *pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            fields.push((key, parse_value(bytes, pos)?));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            if b == b'\\' {
                return Err(format!("escape sequences unsupported (byte {})", *pos));
            }
            if b == b'"' {
                let s = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|e| e.to_string())?
                    .to_string();
                *pos += 1;
                return Ok(s);
            }
            *pos += 1;
        }
        Err("unterminated string".to_string())
    }

    fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if bytes
            .get(*pos)
            .is_some_and(|b| matches!(b, b'.' | b'e' | b'E'))
        {
            return Err(format!(
                "non-integer number at byte {start} (hide-metrics/1 is integer-only)"
            ));
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or(format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn parses_and_flattens_a_real_artifact() {
        let rec = hide_obs::Recorder::new();
        let value = json::parse(&rec.to_json()).unwrap();
        assert_eq!(
            value.get("schema").and_then(Json::as_str),
            Some("hide-metrics/1")
        );
        let mut flat = Vec::new();
        flatten("", &value, &mut flat);
        assert!(flat.iter().any(|(k, _)| k == "counters.fleet_events"));
        assert!(flat
            .iter()
            .any(|(k, _)| k == "counters.fleet_missed_refresh_lost"));
        assert!(flat.iter().any(|(k, _)| k == "stages.fleet_merge.calls"));
        assert!(flat
            .iter()
            .any(|(k, _)| k == "distributions.frames_per_dtim.sum"));
    }

    #[test]
    fn identical_artifacts_pass_and_drift_fails() {
        let a = artifact(&[("counters.x", 10), ("counters.y", 0)]);
        let rules = Rules::default();
        assert_eq!(diff(&a, &a, &rules).regressions, 0);

        let b = artifact(&[("counters.x", 11), ("counters.y", 0)]);
        let report = diff(&a, &b, &rules);
        assert_eq!(report.regressions, 1);
        assert!(report.lines[0].contains("counters.x"));
    }

    #[test]
    fn tolerance_rules_apply_to_subtrees_and_longest_wins() {
        let a = artifact(&[("counters.x", 100), ("counters.x.sub", 100)]);
        let b = artifact(&[("counters.x", 105), ("counters.x.sub", 140)]);
        let rules = Rules {
            tolerances: vec![("counters".into(), 0.5), ("counters.x.sub".into(), 0.01)],
            ..Rules::default()
        };
        // counters.x drifts 5% under the 50% subtree rule; the longer
        // counters.x.sub rule clamps that leaf to 1% and it fails.
        let report = diff(&a, &b, &rules);
        assert_eq!(report.regressions, 1);
        assert!(report.lines[0].contains("counters.x.sub"));
        // A prefix rule must not leak onto lexical near-matches.
        assert!(!Rules::covers("counters.x", "counters.xy"));
    }

    #[test]
    fn structural_differences_are_regressions_unless_ignored() {
        let a = artifact(&[("counters.x", 1), ("stages.old.calls", 2)]);
        let b = artifact(&[("counters.x", 1), ("stages.new.calls", 2)]);
        assert_eq!(diff(&a, &b, &Rules::default()).regressions, 2);
        let rules = Rules {
            ignored: vec!["stages".into()],
            ..Rules::default()
        };
        let report = diff(&a, &b, &rules);
        assert_eq!(report.regressions, 0);
        assert_eq!(report.ignored, 2);
        assert_eq!(report.compared, 1);
    }

    #[test]
    fn buckets_flatten_by_bucket_value_not_position() {
        let value = json::parse(r#"{"buckets": [[3, 7], [9, 1]]}"#).unwrap();
        let mut flat = Vec::new();
        flatten("", &value, &mut flat);
        assert_eq!(flat, artifact(&[("buckets.3", 7), ("buckets.9", 1)]));
    }

    #[test]
    fn profile_toml_parses_all_rule_forms() {
        let text = r#"
            # tolerance profile for the CI metrics gate
            default_tolerance = 0.01

            [[rule]]
            key = "stages"        # loosen wall-clock-adjacent call counts
            tolerance = 0.25

            [[rule]]
            key = "counters.fleet_missed_refresh_lost"
            tolerance = 0.0

            [[rule]]
            key = "distributions.noisy"
            ignore = true
        "#;
        let mut rules = Rules::default();
        profile::apply(text, &mut rules).unwrap();
        assert_eq!(rules.default_tol, 0.01);
        assert_eq!(
            rules.tolerances,
            vec![
                ("stages".to_string(), 0.25),
                ("counters.fleet_missed_refresh_lost".to_string(), 0.0),
            ]
        );
        assert_eq!(rules.ignored, vec!["distributions.noisy".to_string()]);
        // Subtree resolution works through profile-loaded rules too.
        assert_eq!(rules.tolerance("stages.fleet.calls"), 0.25);
        assert_eq!(rules.tolerance("counters.fleet_missed_refresh_lost"), 0.0);
        assert_eq!(rules.tolerance("counters.other"), 0.01);
        assert!(rules.is_ignored("distributions.noisy.sum"));
    }

    #[test]
    fn profile_rules_yield_to_cli_rules_on_the_same_key() {
        // Profile loads first; a CLI rule on the identical key is
        // pushed later and wins the longest-match tie. A *longer*
        // profile rule still beats a shorter CLI rule.
        let mut rules = Rules::default();
        profile::apply(
            "[[rule]]\nkey = \"counters.x\"\ntolerance = 0.5\n\
             [[rule]]\nkey = \"counters.x.deep\"\ntolerance = 0.9\n",
            &mut rules,
        )
        .unwrap();
        rules.tolerances.push(("counters.x".into(), 0.1)); // CLI --tol
        assert_eq!(rules.tolerance("counters.x"), 0.1);
        assert_eq!(rules.tolerance("counters.x.other"), 0.1);
        assert_eq!(rules.tolerance("counters.x.deep"), 0.9);
    }

    #[test]
    fn profile_parse_errors_are_loud() {
        let cases: &[(&str, &str)] = &[
            ("default_tolerance = fast", "bad tolerance"),
            ("default_tolerance = -0.5", "finite and >= 0"),
            ("wrong_top = 1", "unknown top-level key"),
            ("[[rule]]\ntolerance = 0.1", "missing `key`"),
            ("[[rule]]\nkey = \"a\"", "needs `tolerance"),
            ("[[rule]]\nkey = unquoted\nignore = true", "quoted string"),
            ("[[rule]]\nkey = \"a\"\nignore = maybe", "true or false"),
            (
                "[[rule]]\nkey = \"a\"\ntolerance = 0.1\nignore = true",
                "mutually exclusive",
            ),
            ("[table]", "unsupported table"),
            ("[[rule]]\nkey = \"a\"\nwhat = 1", "unknown rule key"),
            ("just words", "expected `name = value`"),
        ];
        for (text, want) in cases {
            let err = profile::apply(text, &mut Rules::default()).unwrap_err();
            assert!(err.contains(want), "{text:?} -> {err:?} (wanted {want:?})");
        }
    }

    #[test]
    fn profile_driven_diff_matches_flag_driven_diff() {
        let a = artifact(&[
            ("counters.fleet_missed_refresh_lost", 5),
            ("stages.fleet.calls", 100),
            ("energy.spent_nj", 1_000_000),
        ]);
        let b = artifact(&[
            ("counters.fleet_missed_refresh_lost", 5),
            ("stages.fleet.calls", 110),
            ("energy.spent_nj", 1_000_001),
        ]);
        let mut profiled = Rules::default();
        profile::apply(
            "default_tolerance = 0.0\n\
             [[rule]]\nkey = \"stages\"\ntolerance = 0.25\n\
             [[rule]]\nkey = \"energy\"\ntolerance = 0.0\n",
            &mut profiled,
        )
        .unwrap();
        let flagged = Rules {
            tolerances: vec![("stages".into(), 0.25), ("energy".into(), 0.0)],
            ..Rules::default()
        };
        let pr = diff(&a, &b, &profiled);
        let fr = diff(&a, &b, &flagged);
        assert_eq!(pr.regressions, fr.regressions);
        // stages drift passes under 25%; the energy drift is pinned.
        assert_eq!(pr.regressions, 1);
        assert!(pr.lines[0].contains("energy.spent_nj"));
    }

    #[test]
    fn rejects_non_metrics_json() {
        assert!(json::parse("{\"a\": 1.5}").is_err());
        assert!(json::parse("[1, 2").is_err());
        assert!(json::parse("{\"a\": 1} x").is_err());
    }
}
