//! Throughput benchmark for the parallel experiment engine and the AP
//! hot-path data structures. Writes `BENCH_parallel.json` next to the
//! working directory (override with `--out <path>`).
//!
//! ```text
//! bench_throughput [--full|--smoke] [--out <path>]
//! ```
//!
//! Six measurements:
//!
//! 1. **Experiment cells/sec** — the Figs. 7/8/9 simulation matrix at
//!    `--jobs 1` versus all cores, plus the parallel speedup.
//! 2. **`reproduce all` wall-clock** — every table and figure the
//!    harness renders, again sequential versus parallel.
//! 3. **Port-table ops/sec** — `ClientPortTable` (hash + sorted
//!    postings) versus the `BTreePortTable` baseline at 1000 and 2000
//!    clients: `update_client`, `remove_client`, `clients_for_port`.
//! 4. **Observability overhead** — the uninstrumented hot path
//!    (`run`, which monomorphizes over `NoopSink`) versus the same
//!    simulations streaming into a live `hide_obs::Recorder`. The noop
//!    path must not regress: its sink calls compile to nothing.
//! 5. **Trace overhead** — the fleet kernel with the default
//!    `NoopTrace` (event emission monomorphizes away) versus a live
//!    `FlightRecorder` per shard. Written separately to
//!    `BENCH_trace.json`; under `--smoke` the run *fails* if the
//!    untraced path is measurably slower than the recording path,
//!    which would mean the "zero-cost" sink is paying recording costs.
//! 6. **Fleet-kernel events/sec floor** — single-shard throughput on
//!    the BENCH_fleet per-event workload (100 clients/BSS, churn-heavy
//!    refresh cadence), best of three runs. Under `--smoke` the run
//!    *fails* if events/sec drops below the checked-in floor in
//!    `golden/perf_floors.toml`, so a hot-path regression in the
//!    timing wheel or the SoA engine cannot land silently.
//! 7. **Policy-dispatch overhead** — the measurement-6 kernel rerun
//!    under each wake policy (HIDE, legacy PSM, scheduled wake).
//!    Written to `BENCH_policy.json`. The HIDE row runs through the
//!    enum-dispatched policy seam, so under `--smoke` the run *fails*
//!    if it drops below the same `fleet_events_per_sec_floor` — the
//!    seam must cost the default policy nothing.
//!
//! By default traces are 600 s so the run finishes quickly; `--full`
//! uses the canonical 2700 s traces of the reproduction harness;
//! `--smoke` shrinks everything for a seconds-long CI sanity run.

use hide::fleet::{ChurnConfig, FleetConfig};
use hide::policy::{ScheduleConfig, WakePolicy};
use hide_bench as harness;
use hide_core::ap::{BTreePortTable, ClientPortTable};
use hide_energy::profile::{GALAXY_S4, NEXUS_ONE};
use hide_obs::Recorder;
use hide_sim::experiment::{self, PAPER_FRACTIONS};
use hide_sim::solution::Solution;
use hide_sim::SimulationBuilder;
use hide_traces::scenario::Scenario;
use hide_wifi::mac::Aid;
use std::fmt::Write as _;
use std::time::Instant;

/// Ports per client, matching the paper's heavy-usage setting.
const PORTS_PER_CLIENT: usize = 100;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());

    let duration = if full {
        harness::TRACE_DURATION_SECS
    } else if smoke {
        120.0
    } else {
        600.0
    };
    eprintln!(
        "generating traces ({duration} s each, seed {})...",
        harness::TRACE_SEED
    );
    let traces = Scenario::generate_all(duration, harness::TRACE_SEED);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // --- 1. experiment matrix: cells/sec at jobs=1 vs jobs=cores ---
    // 2 profiles x 5 traces x 7 solutions (Figs. 7/8) plus
    // 5 traces x 4 solutions (Fig. 9).
    let cells = 2 * traces.len() * (2 + PAPER_FRACTIONS.len()) + traces.len() * 4;
    let run_matrix = |jobs: usize| -> f64 {
        hide_par::set_default_jobs(jobs);
        let t0 = Instant::now();
        let nexus = experiment::energy_comparison(NEXUS_ONE, &traces, &PAPER_FRACTIONS);
        let s4 = experiment::energy_comparison(GALAXY_S4, &traces, &PAPER_FRACTIONS);
        let suspend = experiment::suspend_fractions(NEXUS_ONE, &traces);
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(nexus.len() + s4.len() + suspend.len(), 3 * traces.len());
        elapsed
    };
    eprintln!("experiment matrix ({cells} cells), jobs=1...");
    let matrix_seq = run_matrix(1);
    eprintln!("experiment matrix ({cells} cells), jobs={cores}...");
    let matrix_par = run_matrix(cores);

    // --- 2. reproduce-all wall clock ---
    let reproduce_all = |jobs: usize| -> f64 {
        hide_par::set_default_jobs(jobs);
        let t0 = Instant::now();
        let mut sink = harness::table_1();
        sink.push_str(&harness::table_2());
        sink.push_str(&harness::figure_6(&traces));
        sink.push_str(&harness::figure_7_or_8(NEXUS_ONE, &traces));
        sink.push_str(&harness::figure_7_or_8(GALAXY_S4, &traces));
        sink.push_str(&harness::figure_9(&traces));
        sink.push_str(&harness::figure_10());
        sink.push_str(&harness::figure_11());
        sink.push_str(&harness::figure_12());
        sink.push_str(&harness::extensions(&traces));
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(!sink.is_empty());
        elapsed
    };
    eprintln!("reproduce all, jobs=1...");
    let all_seq = reproduce_all(1);
    eprintln!("reproduce all, jobs={cores}...");
    let all_par = reproduce_all(cores);
    hide_par::set_default_jobs(0);

    // --- 3. port-table ops/sec, hash vs BTree baseline ---
    let client_counts: &[usize] = if smoke { &[1000] } else { &[1000, 2000] };
    let mut table_rows = String::new();
    for &clients in client_counts {
        let hash = port_table_ops(clients, TableKind::Hash);
        let btree = port_table_ops(clients, TableKind::BTree);
        eprintln!(
            "port table @ {clients} clients: lookup {:.1}x, update {:.1}x vs BTree",
            hash.lookup_per_sec / btree.lookup_per_sec,
            hash.update_per_sec / btree.update_per_sec,
        );
        let _ = write!(
            table_rows,
            "{}{{\"clients\": {clients}, \
             \"hash_update_per_sec\": {:.0}, \"btree_update_per_sec\": {:.0}, \
             \"hash_lookup_per_sec\": {:.0}, \"btree_lookup_per_sec\": {:.0}, \
             \"hash_remove_per_sec\": {:.0}, \"btree_remove_per_sec\": {:.0}, \
             \"lookup_speedup\": {:.2}, \"update_speedup\": {:.2}}}",
            if table_rows.is_empty() { "" } else { ", " },
            hash.update_per_sec,
            btree.update_per_sec,
            hash.lookup_per_sec,
            btree.lookup_per_sec,
            hash.remove_per_sec,
            btree.remove_per_sec,
            hash.lookup_per_sec / btree.lookup_per_sec,
            hash.update_per_sec / btree.update_per_sec,
        );
    }

    // --- 4. observability overhead: NoopSink hot path vs Recorder ---
    let obs_trace = &traces[1]; // CS_Dept
    let reps = if smoke { 20 } else { 200 };
    let t0 = Instant::now();
    for _ in 0..reps {
        let r = SimulationBuilder::new(obs_trace, NEXUS_ONE)
            .solution(Solution::hide(0.10))
            .run();
        std::hint::black_box(r.received_frames);
    }
    let noop_secs = t0.elapsed().as_secs_f64();
    let mut obs_recorder = Recorder::new();
    let t0 = Instant::now();
    for _ in 0..reps {
        let r = SimulationBuilder::new(obs_trace, NEXUS_ONE)
            .solution(Solution::hide(0.10))
            .try_run_observed(&mut obs_recorder)
            .expect("canonical trace is valid");
        std::hint::black_box(r.received_frames);
    }
    let recorder_secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "obs overhead over {reps} runs: noop {noop_secs:.3} s, \
         recorder {recorder_secs:.3} s ({:+.1}%)",
        (recorder_secs / noop_secs - 1.0) * 100.0
    );

    // --- 5. trace overhead: NoopTrace fleet kernel vs FlightRecorder ---
    let fleet_cfg = FleetConfig {
        bss_count: if smoke { 50 } else { 200 },
        clients_per_bss: 8,
        adoption: 0.75,
        duration_secs: if smoke { 10.0 } else { 30.0 },
        seed: harness::TRACE_SEED,
        churn: ChurnConfig {
            refresh_loss: 0.1,
            port_churn: 0.2,
            ..ChurnConfig::default()
        },
        ..FleetConfig::default()
    };
    let fleet_reps = if smoke { 3 } else { 10 };
    let mut fleet_events = 0;
    let t0 = Instant::now();
    for _ in 0..fleet_reps {
        let r = fleet_cfg.try_run_with_jobs(1).expect("valid fleet config");
        fleet_events = r.report.events;
        std::hint::black_box(r.report.wakeups);
    }
    let noop_trace_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for _ in 0..fleet_reps {
        let (r, flight) = fleet_cfg
            .try_run_traced_with_jobs(1, hide_obs::DEFAULT_TRACE_CAPACITY)
            .expect("valid fleet config");
        std::hint::black_box((r.report.wakeups, flight.len()));
    }
    let flight_secs = t0.elapsed().as_secs_f64();
    let trace_relative = flight_secs / noop_trace_secs;
    eprintln!(
        "trace overhead over {fleet_reps} fleet runs ({fleet_events} events each): \
         noop {noop_trace_secs:.3} s, flight recorder {flight_secs:.3} s ({:+.1}%)",
        (trace_relative - 1.0) * 100.0
    );
    let trace_json = format!(
        "{{\n  \"fleet\": {{\"bss\": {}, \"clients\": {}, \"duration_secs\": {}, \
         \"reps\": {fleet_reps}, \"events\": {fleet_events}}},\n  \
         \"noop_secs\": {noop_trace_secs:.3},\n  \"flight_secs\": {flight_secs:.3},\n  \
         \"relative\": {trace_relative:.4},\n  \
         \"noop_events_per_sec\": {:.0},\n  \"flight_events_per_sec\": {:.0}\n}}\n",
        fleet_cfg.bss_count,
        fleet_cfg.clients_per_bss,
        fleet_cfg.duration_secs,
        (fleet_events * fleet_reps) as f64 / noop_trace_secs.max(1e-12),
        (fleet_events * fleet_reps) as f64 / flight_secs.max(1e-12),
    );
    std::fs::write("BENCH_trace.json", &trace_json).expect("write trace benchmark json");
    // The zero-cost claim, enforced: the untraced kernel must not run
    // slower than the one doing live ring-buffer recording. Guard on a
    // minimum runtime so a milliseconds-long smoke run can't flake.
    if smoke && flight_secs >= 0.05 && noop_trace_secs > flight_secs * 1.25 {
        eprintln!(
            "bench_throughput: SMOKE FAIL: NoopTrace path ({noop_trace_secs:.3} s) \
             is slower than the FlightRecorder path ({flight_secs:.3} s)"
        );
        std::process::exit(1);
    }

    // --- 6. fleet-kernel events/sec against the checked-in floor ---
    let kernel_cfg = FleetConfig {
        bss_count: if smoke { 100 } else { 400 },
        clients_per_bss: 100,
        adoption: 0.75,
        duration_secs: 60.0,
        seed: 42,
        churn: ChurnConfig {
            refresh_interval_secs: 5.0,
            refresh_loss: 0.1,
            port_churn: 0.2,
            stale_timeout_secs: 12.0,
            ..ChurnConfig::default()
        },
        ..FleetConfig::default()
    };
    let kernel_reps = 3;
    let mut kernel_events = 0;
    let mut kernel_best_secs = f64::INFINITY;
    for _ in 0..kernel_reps {
        let t0 = Instant::now();
        let r = kernel_cfg.try_run_with_jobs(1).expect("valid fleet config");
        let secs = t0.elapsed().as_secs_f64();
        kernel_events = r.report.events;
        if secs < kernel_best_secs {
            kernel_best_secs = secs;
        }
        std::hint::black_box(r.report.wakeups);
    }
    let kernel_events_per_sec = kernel_events as f64 / kernel_best_secs.max(1e-12);
    let kernel_floor = perf_floor("fleet_events_per_sec_floor");
    eprintln!(
        "fleet kernel @ {} BSS x {} clients, jobs=1: {kernel_events} events in \
         {kernel_best_secs:.3} s (best of {kernel_reps}) = {kernel_events_per_sec:.0} \
         events/s (floor {kernel_floor:.0})",
        kernel_cfg.bss_count, kernel_cfg.clients_per_bss,
    );
    if smoke && kernel_events_per_sec < kernel_floor {
        eprintln!(
            "bench_throughput: SMOKE FAIL: fleet kernel at {kernel_events_per_sec:.0} \
             events/s is below the golden/perf_floors.toml floor of {kernel_floor:.0}"
        );
        std::process::exit(1);
    }

    // --- 7. policy dispatch: the seam must be free for HIDE ---
    let policy_reps = if smoke { 2 } else { 3 };
    let mut policy_rows = String::new();
    let mut hide_events_per_sec = 0.0f64;
    for (name, policy) in [
        ("hide", WakePolicy::Hide),
        ("psm", WakePolicy::LegacyPsm),
        (
            "scheduled",
            WakePolicy::ScheduledWake(ScheduleConfig::default()),
        ),
    ] {
        let cfg = FleetConfig {
            policy,
            ..kernel_cfg.clone()
        };
        let mut events = 0;
        let mut best_secs = f64::INFINITY;
        for _ in 0..policy_reps {
            let t0 = Instant::now();
            let r = cfg.try_run_with_jobs(1).expect("valid fleet config");
            let secs = t0.elapsed().as_secs_f64();
            events = r.report.events;
            if secs < best_secs {
                best_secs = secs;
            }
            std::hint::black_box(r.report.wakeups);
        }
        let events_per_sec = events as f64 / best_secs.max(1e-12);
        if name == "hide" {
            hide_events_per_sec = events_per_sec;
        }
        eprintln!(
            "policy {name}: {events} events in {best_secs:.3} s \
             (best of {policy_reps}) = {events_per_sec:.0} events/s"
        );
        let _ = write!(
            policy_rows,
            "{}{{\"policy\": \"{name}\", \"events\": {events}, \
             \"best_secs\": {best_secs:.3}, \"events_per_sec\": {events_per_sec:.0}}}",
            if policy_rows.is_empty() { "" } else { ", " },
        );
    }
    let policy_json = format!(
        "{{\n  \"fleet\": {{\"bss\": {}, \"clients_per_bss\": {}, \
         \"duration_secs\": {}, \"reps\": {policy_reps}}},\n  \
         \"floor\": {kernel_floor:.0},\n  \"policies\": [{policy_rows}]\n}}\n",
        kernel_cfg.bss_count, kernel_cfg.clients_per_bss, kernel_cfg.duration_secs,
    );
    std::fs::write("BENCH_policy.json", &policy_json).expect("write policy benchmark json");
    // Zero-overhead claim, enforced: HIDE routed through the policy
    // seam must still clear the pre-seam events/sec floor.
    if smoke && hide_events_per_sec < kernel_floor {
        eprintln!(
            "bench_throughput: SMOKE FAIL: HIDE through the policy seam runs at \
             {hide_events_per_sec:.0} events/s, below the \
             golden/perf_floors.toml floor of {kernel_floor:.0}"
        );
        std::process::exit(1);
    }

    let json = format!(
        "{{\n  \"trace_duration_secs\": {duration},\n  \"cores\": {cores},\n  \
         \"experiment_matrix\": {{\"cells\": {cells}, \
         \"seq_secs\": {matrix_seq:.3}, \"par_secs\": {matrix_par:.3}, \
         \"seq_cells_per_sec\": {:.2}, \"par_cells_per_sec\": {:.2}, \
         \"speedup\": {:.2}}},\n  \
         \"reproduce_all\": {{\"seq_secs\": {all_seq:.3}, \"par_secs\": {all_par:.3}, \
         \"speedup\": {:.2}}},\n  \
         \"obs_overhead\": {{\"runs\": {reps}, \"noop_secs\": {noop_secs:.3}, \
         \"recorder_secs\": {recorder_secs:.3}, \"relative\": {:.4}}},\n  \
         \"fleet_kernel\": {{\"bss\": {}, \"clients_per_bss\": {}, \
         \"duration_secs\": {}, \"reps\": {kernel_reps}, \
         \"events\": {kernel_events}, \"best_secs\": {kernel_best_secs:.3}, \
         \"events_per_sec\": {kernel_events_per_sec:.0}, \
         \"floor\": {kernel_floor:.0}}},\n  \
         \"port_table\": [{table_rows}]\n}}\n",
        cells as f64 / matrix_seq,
        cells as f64 / matrix_par,
        matrix_seq / matrix_par,
        all_seq / all_par,
        recorder_secs / noop_secs,
        kernel_cfg.bss_count,
        kernel_cfg.clients_per_bss,
        kernel_cfg.duration_secs,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("{json}");
    eprintln!("written to {out_path}");
}

/// Read one `key = value` number out of the checked-in perf-floor
/// profile. The file is flat TOML, so a comment-stripping line scan is
/// the whole parser; the path is resolved from the crate manifest so
/// the gate works from any working directory.
fn perf_floor(key: &str) -> f64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../golden/perf_floors.toml");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if let Some((k, v)) = line.split_once('=') {
            if k.trim() == key {
                return v
                    .trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("parse {key} in {path}: {e}"));
            }
        }
    }
    panic!("{key} not found in {path}");
}

#[derive(Clone, Copy)]
enum TableKind {
    Hash,
    BTree,
}

struct TableOpsRates {
    update_per_sec: f64,
    lookup_per_sec: f64,
    remove_per_sec: f64,
}

/// Times `update_client` for every client, `clients_for_port` across
/// the busiest ports, and `remove_client`, on a table of `n` clients
/// holding [`PORTS_PER_CLIENT`] ports each.
fn port_table_ops(n: usize, kind: TableKind) -> TableOpsRates {
    let aid = |i: usize| Aid::new((i % 2007 + 1) as u16).expect("valid AID");
    let ports_of = |i: usize| -> Vec<u16> {
        (0..PORTS_PER_CLIENT as u16)
            .map(|p| 1024 + ((i as u16).wrapping_mul(31).wrapping_add(p * 7) % 4000))
            .collect()
    };
    let port_sets: Vec<Vec<u16>> = (0..n).map(ports_of).collect();
    let lookup_rounds = 50usize;

    match kind {
        TableKind::Hash => {
            let mut table = ClientPortTable::new();
            let t0 = Instant::now();
            for (i, ports) in port_sets.iter().enumerate() {
                table.update_client(aid(i), ports);
            }
            let update = t0.elapsed().as_secs_f64();

            let mut hits = 0usize;
            let t0 = Instant::now();
            for _ in 0..lookup_rounds {
                for port in 1024..(1024 + 4000u16) {
                    hits += table.clients_for_port(port).len();
                }
            }
            let lookup = t0.elapsed().as_secs_f64();
            assert!(hits > 0);

            let t0 = Instant::now();
            for i in 0..n {
                table.remove_client(aid(i));
            }
            let remove = t0.elapsed().as_secs_f64();
            rates(n, lookup_rounds * 4000, update, lookup, remove)
        }
        TableKind::BTree => {
            let mut table = BTreePortTable::new();
            let t0 = Instant::now();
            for (i, ports) in port_sets.iter().enumerate() {
                table.update_client(aid(i), ports);
            }
            let update = t0.elapsed().as_secs_f64();

            let mut hits = 0usize;
            let t0 = Instant::now();
            for _ in 0..lookup_rounds {
                for port in 1024..(1024 + 4000u16) {
                    hits += table.clients_for_port(port).len();
                }
            }
            let lookup = t0.elapsed().as_secs_f64();
            assert!(hits > 0);

            let t0 = Instant::now();
            for i in 0..n {
                table.remove_client(aid(i));
            }
            let remove = t0.elapsed().as_secs_f64();
            rates(n, lookup_rounds * 4000, update, lookup, remove)
        }
    }
}

fn rates(
    updates: usize,
    lookups: usize,
    update_secs: f64,
    lookup_secs: f64,
    remove_secs: f64,
) -> TableOpsRates {
    TableOpsRates {
        update_per_sec: updates as f64 / update_secs.max(1e-12),
        lookup_per_sec: lookups as f64 / lookup_secs.max(1e-12),
        remove_per_sec: updates as f64 / remove_secs.max(1e-12),
    }
}
