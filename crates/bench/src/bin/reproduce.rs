//! Reproduction harness: regenerates every table and figure of the
//! HIDE paper.
//!
//! ```text
//! reproduce [all|table1|table2|fig6|fig7|fig8|fig9|fig10|fig11|fig12|host-costs|ext]
//!           [--csv <dir>] [--jobs N]
//! ```
//!
//! With no argument (or `all`) every experiment runs in paper order.
//! `ext` runs the extension experiments (hybrid, DTIM batching, unicast
//! sensitivity, fleet adoption, sync-loss robustness). `--csv <dir>`
//! additionally writes plot-ready CSV files for every figure.
//!
//! `--jobs N` caps the worker threads the experiment engine fans out
//! over (default: all cores; `--jobs 1` forces a sequential run). The
//! output is byte-identical for every job count — parallel results are
//! reassembled in input order.

use hide_bench as harness;
use hide_energy::profile::{GALAXY_S4, NEXUS_ONE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(jobs)) => hide_par::set_default_jobs(jobs),
            got => {
                let got = got.map_or("nothing", |_| args[i + 1].as_str());
                eprintln!("--jobs expects a thread count (0 = all cores), got {got:?}");
                std::process::exit(2);
            }
        }
    }
    // Flag values must not be mistaken for the experiment name.
    let flag_values: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--csv" || *a == "--jobs")
        .map(|(i, _)| i + 1)
        .collect();
    let arg = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && !flag_values.contains(i))
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "all".to_string());
    let what = arg.as_str();
    let all = what == "all";

    let needs_traces =
        all || csv_dir.is_some() || matches!(what, "fig6" | "fig7" | "fig8" | "fig9" | "ext");
    let traces = if needs_traces {
        eprintln!(
            "generating 5 canonical traces ({} s each, seed {})...",
            harness::TRACE_DURATION_SECS,
            harness::TRACE_SEED
        );
        harness::canonical_traces()
    } else {
        Vec::new()
    };

    let mut ran = false;
    let mut section = |title: &str, body: String| {
        println!("\n===== {title} =====");
        print!("{body}");
        ran = true;
    };

    if all || what == "table1" {
        section(
            "Table I: energy/power constants measured from phones",
            harness::table_1(),
        );
    }
    if all || what == "table2" {
        section(
            "Table II: network configuration for overhead analysis",
            harness::table_2(),
        );
    }
    if all || what == "fig6" {
        section(
            "Fig. 6: broadcast traffic volumes in traces",
            harness::figure_6(&traces),
        );
    }
    if all || what == "fig7" {
        section(
            "Fig. 7: energy consumption comparison (Nexus One)",
            harness::figure_7_or_8(NEXUS_ONE, &traces),
        );
    }
    if all || what == "fig8" {
        section(
            "Fig. 8: energy consumption comparison (Galaxy S4)",
            harness::figure_7_or_8(GALAXY_S4, &traces),
        );
    }
    if all || what == "fig9" {
        section(
            "Fig. 9: fraction of time in suspend mode (Nexus One)",
            harness::figure_9(&traces),
        );
    }
    if all || what == "fig10" {
        section(
            "Fig. 10: decrease in network capacity",
            harness::figure_10(),
        );
    }
    if all || what == "fig11" {
        section(
            "Fig. 11: delay overhead vs UDP Port Message interval",
            harness::figure_11(),
        );
    }
    if all || what == "fig12" {
        section(
            "Fig. 12: delay overhead vs open UDP ports per client",
            harness::figure_12(),
        );
    }
    if all || what == "host-costs" {
        let costs = hide_analysis::delay::measure_host_costs(50, harness::TRACE_SEED);
        section(
            "Host-measured Client UDP Port Table costs (paper procedure)",
            format!(
                "insert {:.1} ns   delete {:.1} ns   lookup {:.1} ns\n\
                 (calibrated 1 GHz ARM model: insert/delete 90 us, lookup 1.5 us)\n",
                costs.insert_secs * 1e9,
                costs.delete_secs * 1e9,
                costs.lookup_secs * 1e9
            ),
        );
    }

    if all || what == "ext" {
        section("Extensions beyond the paper", harness::extensions(&traces));
    }

    if let Some(dir) = csv_dir {
        match harness::write_csvs(&traces, &dir) {
            Ok(()) => println!("\ncsv files written to {}", dir.display()),
            Err(e) => {
                eprintln!("failed to write csv files: {e}");
                std::process::exit(1);
            }
        }
        ran = true;
    }

    if !ran {
        eprintln!(
            "unknown experiment '{what}'; expected one of: all table1 table2 \
             fig6 fig7 fig8 fig9 fig10 fig11 fig12 host-costs ext \
             [--csv <dir>] [--jobs N]"
        );
        std::process::exit(2);
    }
}
