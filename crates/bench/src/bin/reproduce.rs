//! Reproduction harness: regenerates every table and figure of the
//! HIDE paper.
//!
//! ```text
//! reproduce [all|table1|table2|fig6|fig7|fig8|fig9|fig10|fig11|fig12|host-costs|ext|policy]
//!           [--csv <dir>] [--jobs N] [--metrics <file.json>] [--trace <file>]
//!           [--policy NAME] [--device NAME]
//!           [--energy-attribution] [--attribution-out <file>]
//!           [--stream-export]
//! ```
//!
//! With no argument (or `all`) every experiment runs in paper order.
//! `ext` runs the extension experiments (hybrid, DTIM batching, unicast
//! sensitivity, fleet adoption, sync-loss robustness). `policy` runs
//! the cross-policy × cross-device matrix (HIDE vs legacy PSM vs
//! scheduled wake over every device in the policy registry, with
//! battery-lifetime projections); `--policy hide|psm|scheduled` and
//! `--device <registry key>` filter it to a single cell. `--csv <dir>`
//! additionally writes plot-ready CSV files for every figure.
//!
//! `--jobs N` caps the worker threads the experiment engine fans out
//! over (default: all cores; `--jobs 1` forces a sequential run). The
//! output is byte-identical for every job count — parallel results are
//! reassembled in input order.
//!
//! `--metrics <file.json>` writes the run's metrics (simulation
//! counters, distributions and per-stage call counts) as
//! `hide-metrics/1` JSON — see `docs/metrics-schema.md` — and prints a
//! summary table. The JSON is byte-identical for every `--jobs` count;
//! wall-clock stage timings appear only in the printed summary.
//!
//! `--trace <file>` flight-records the reference protocol run (the
//! real AP and client over the coffee-shop trace) and exports the
//! event log: a JSONL stream when the path ends in `.jsonl`, otherwise
//! Chrome-trace JSON with the run's wall-clock stage spans on a second
//! track (open in Perfetto or `chrome://tracing`).
//!
//! `--energy-attribution` joins that flight-recorded wake stream
//! against the Nexus One profile (trace-join pricing, see
//! `crates/energy/src/attribution.rs`): the `--metrics` artifact gains
//! an integer-only `"energy"` section and a per-client summary prints.
//! The reference protocol run wakes only on wanted traffic, so the
//! ledger holds proper-wake energy — a pricing cross-check rather than
//! a failure audit (the fleet driver exercises the missed/spurious
//! columns). `--attribution-out <file>` exports the per-client rows as
//! CSV (`.csv`) or JSON Lines.
//!
//! `--stream-export` routes the `--trace` export through the
//! out-of-core spill pipeline instead of rendering in memory: the
//! flight-recorded events spill to a temp file in the framed
//! `hide-spill/1` codec, then a k-way merge streams them into the
//! JSONL/Chrome-trace writer. The output is byte-identical to the
//! in-memory render — this knob exists to exercise the same code path
//! the metro-scale fleet driver depends on, at reference-run scale.

use hide::HideError;
use hide_bench as harness;
use hide_energy::profile::{GALAXY_S4, NEXUS_ONE};
use hide_obs::{export, FlightRecorder, Recorder, Stage};
use hide_sim::protocol_sim::ProtocolSimulation;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(Exit::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(Exit::Failure(e)) => {
            eprintln!("reproduce failed: {e}");
            std::process::exit(1);
        }
    }
}

/// How a run can end unsuccessfully: bad invocation (exit 2) or a
/// layer failure (exit 1).
enum Exit {
    Usage(String),
    Failure(HideError),
}

impl<E: Into<HideError>> From<E> for Exit {
    fn from(e: E) -> Self {
        Exit::Failure(e.into())
    }
}

fn run(args: &[String]) -> Result<(), Exit> {
    let csv_dir = flag_value(args, "--csv")?.map(std::path::PathBuf::from);
    let metrics_path = flag_value(args, "--metrics")?.map(std::path::PathBuf::from);
    let trace_path = flag_value(args, "--trace")?.map(std::path::PathBuf::from);
    let attribution_path = flag_value(args, "--attribution-out")?.map(std::path::PathBuf::from);
    let policy_filter = flag_value(args, "--policy")?.map(str::to_string);
    let device_filter = flag_value(args, "--device")?.map(str::to_string);
    let energy_attr = args.iter().any(|a| a == "--energy-attribution");
    if attribution_path.is_some() && !energy_attr {
        return Err(Exit::Usage(
            "--attribution-out requires --energy-attribution".to_string(),
        ));
    }
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(jobs)) => hide_par::set_default_jobs(jobs),
            got => {
                let got = got.map_or("nothing", |_| args[i + 1].as_str());
                return Err(Exit::Usage(format!(
                    "--jobs expects a thread count (0 = all cores), got {got:?}"
                )));
            }
        }
    }
    // Flag values must not be mistaken for the experiment name.
    let flag_values: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            *a == "--csv"
                || *a == "--jobs"
                || *a == "--metrics"
                || *a == "--trace"
                || *a == "--attribution-out"
                || *a == "--policy"
                || *a == "--device"
        })
        .map(|(i, _)| i + 1)
        .collect();
    let arg = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && !flag_values.contains(i))
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "all".to_string());
    let what = arg.as_str();
    let all = what == "all";
    let mut recorder = Recorder::new();

    let needs_traces = all
        || csv_dir.is_some()
        || trace_path.is_some()
        || energy_attr
        || matches!(what, "fig6" | "fig7" | "fig8" | "fig9" | "ext");
    let traces = if needs_traces {
        eprintln!(
            "generating 5 canonical traces ({} s each, seed {})...",
            harness::TRACE_DURATION_SECS,
            harness::TRACE_SEED
        );
        recorder.time(Stage::TraceGen, harness::canonical_traces)
    } else {
        Vec::new()
    };

    let mut ran = false;
    let mut section = |title: &str, body: String| {
        println!("\n===== {title} =====");
        print!("{body}");
        ran = true;
    };

    if all || what == "table1" {
        section(
            "Table I: energy/power constants measured from phones",
            recorder.time(Stage::Table1, harness::table_1),
        );
    }
    if all || what == "table2" {
        section(
            "Table II: network configuration for overhead analysis",
            recorder.time(Stage::Table2, harness::table_2),
        );
    }
    if all || what == "fig6" {
        section(
            "Fig. 6: broadcast traffic volumes in traces",
            recorder.time(Stage::Fig6, || harness::figure_6(&traces)),
        );
    }
    if all || what == "fig7" {
        let start = Instant::now();
        let body = harness::figure_7_or_8_with(NEXUS_ONE, &traces, &mut recorder)?;
        recorder.add_span(Stage::Fig7, start.elapsed().as_nanos() as u64);
        section("Fig. 7: energy consumption comparison (Nexus One)", body);
    }
    if all || what == "fig8" {
        let start = Instant::now();
        let body = harness::figure_7_or_8_with(GALAXY_S4, &traces, &mut recorder)?;
        recorder.add_span(Stage::Fig8, start.elapsed().as_nanos() as u64);
        section("Fig. 8: energy consumption comparison (Galaxy S4)", body);
    }
    if all || what == "fig9" {
        let start = Instant::now();
        let body = harness::figure_9_with(&traces, &mut recorder)?;
        recorder.add_span(Stage::Fig9, start.elapsed().as_nanos() as u64);
        section("Fig. 9: fraction of time in suspend mode (Nexus One)", body);
    }
    if all || what == "fig10" {
        section(
            "Fig. 10: decrease in network capacity",
            recorder.time(Stage::Fig10, harness::figure_10),
        );
    }
    if all || what == "fig11" {
        section(
            "Fig. 11: delay overhead vs UDP Port Message interval",
            recorder.time(Stage::Fig11, harness::figure_11),
        );
    }
    if all || what == "fig12" {
        section(
            "Fig. 12: delay overhead vs open UDP ports per client",
            recorder.time(Stage::Fig12, harness::figure_12),
        );
    }
    if all || what == "host-costs" {
        let costs = recorder.time(Stage::HostCosts, || {
            hide_analysis::delay::measure_host_costs(50, harness::TRACE_SEED)
        });
        section(
            "Host-measured Client UDP Port Table costs (paper procedure)",
            format!(
                "insert {:.1} ns   delete {:.1} ns   lookup {:.1} ns\n\
                 (calibrated 1 GHz ARM model: insert/delete 90 us, lookup 1.5 us)\n",
                costs.insert_secs * 1e9,
                costs.delete_secs * 1e9,
                costs.lookup_secs * 1e9
            ),
        );
    }

    if all || what == "ext" {
        let start = Instant::now();
        let body = harness::extensions_with(&traces, &mut recorder);
        recorder.add_span(Stage::Extensions, start.elapsed().as_nanos() as u64);
        section("Extensions beyond the paper", body);
    }

    if all || what == "policy" {
        let start = Instant::now();
        let body = harness::policy_matrix_with(
            policy_filter.as_deref(),
            device_filter.as_deref(),
            &mut recorder,
        )?;
        recorder.add_span(Stage::Policy, start.elapsed().as_nanos() as u64);
        section(
            "Policy matrix: HIDE vs legacy PSM vs scheduled wake, per device",
            body,
        );
    }

    if let Some(dir) = &csv_dir {
        let start = Instant::now();
        harness::write_csvs_with(&traces, dir, &mut recorder)?;
        recorder.add_span(Stage::Csv, start.elapsed().as_nanos() as u64);
        println!("\ncsv files written to {}", dir.display());
        ran = true;
    }

    if !ran {
        return Err(Exit::Usage(format!(
            "unknown experiment '{what}'; expected one of: all table1 table2 \
             fig6 fig7 fig8 fig9 fig10 fig11 fig12 host-costs ext policy \
             [--csv <dir>] [--jobs N] [--metrics <file.json>] [--trace <file>] \
             [--policy NAME] [--device NAME] \
             [--energy-attribution] [--attribution-out <file>] [--stream-export]"
        )));
    }

    let mut attribution = None;
    if trace_path.is_some() || energy_attr {
        // Flight-record the reference protocol run (the same setup the
        // `ext` cross-validation uses). Counters go to a no-op sink so
        // the --metrics artifact is identical with or without --trace.
        let mut flight = FlightRecorder::new();
        ProtocolSimulation::new(&traces[0], NEXUS_ONE, 0.10)
            .run_traced(&mut hide_obs::NoopSink, &mut flight)?;
        if let Some(path) = &trace_path {
            let events = flight.len();
            if args.iter().any(|a| a == "--stream-export") {
                stream_trace_export(&flight, &recorder, path)?;
            } else {
                let rendered = if path.extension().is_some_and(|e| e == "jsonl") {
                    export::to_jsonl(&flight)
                } else {
                    export::to_chrome_trace(&flight, Some(&recorder))
                };
                std::fs::write(path, rendered).map_err(HideError::from)?;
            }
            println!("\ntrace written to {} ({events} events)", path.display());
        }
        if energy_attr {
            // Trace join: per-client wake counts priced under the
            // Nexus One profile with pre-rounded integer prices.
            let counts = hide_obs::provenance::per_client(&flight);
            let ledger = hide_energy::AttributionLedger::price(&counts, &NEXUS_ONE);
            let totals = ledger.totals();
            println!("\n===== energy attribution (trace join, Nexus One) =====");
            println!(
                "{} client lanes, {:.3} J across proper wakes \
                 (spurious {:.3} J, missed forgone {:.3} J)",
                ledger.len(),
                totals.proper_nj as f64 / 1e9,
                totals.spurious_nj.total() as f64 / 1e9,
                totals.missed_forgone_nj.total() as f64 / 1e9,
            );
            attribution = Some(ledger);
        }
    }

    if let Some(path) = &attribution_path {
        let Some(ledger) = &attribution else {
            return Err(Exit::Usage(
                "--attribution-out requires --energy-attribution".to_string(),
            ));
        };
        let rendered = if path.extension().is_some_and(|e| e == "csv") {
            ledger.to_csv()
        } else {
            ledger.to_jsonl()
        };
        std::fs::write(path, rendered).map_err(HideError::from)?;
        println!("attribution ledger written to {}", path.display());
    }

    if let Some(path) = &metrics_path {
        let rendered = match &attribution {
            Some(ledger) => {
                let energy = ledger.to_metrics_section();
                recorder.to_json_with_sections(&[("energy", &energy)])
            }
            None => recorder.to_json(),
        };
        std::fs::write(path, rendered).map_err(HideError::from)?;
        println!("\n===== metrics summary =====");
        print!("{}", recorder.render_summary());
        println!("metrics json written to {}", path.display());
    }
    Ok(())
}

/// `--stream-export` body: spill the flight-recorded events to a temp
/// file in the `hide-spill/1` codec, then k-way-merge them back into a
/// streaming JSONL / Chrome-trace render. Byte-identical to the
/// in-memory export; the spill file is removed on success and on error.
fn stream_trace_export(
    flight: &FlightRecorder,
    recorder: &Recorder,
    path: &std::path::Path,
) -> Result<(), Exit> {
    use std::io::Write as _;
    let to_io = |e: hide_obs::SpillError| std::io::Error::other(e.to_string());
    let spill_path =
        std::env::temp_dir().join(format!("hide-reproduce-spill-{}.bin", std::process::id()));
    let run = || -> Result<(), std::io::Error> {
        let mut writer = hide_obs::SpillWriter::create(&spill_path, 4096).map_err(to_io)?;
        // Copy (not drain) so the later provenance join still sees the
        // recorder's events.
        let events: Vec<_> = flight.events().cloned().collect();
        writer.write_run(&events, flight.dropped()).map_err(to_io)?;
        drop(events);
        let index = writer.finish().map_err(to_io)?;
        let mut merge = index.merge().map_err(to_io)?;
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        if path.extension().is_some_and(|e| e == "jsonl") {
            export::stream_jsonl(&mut merge, &mut out).map_err(to_io)?;
        } else {
            export::stream_chrome_trace(&mut merge, Some(recorder), &mut out).map_err(to_io)?;
        }
        out.flush()
    };
    let result = run();
    let _ = std::fs::remove_file(&spill_path);
    result.map_err(HideError::from)?;
    Ok(())
}

/// The value following `flag`: `Ok(None)` if the flag is absent, a
/// usage error if the flag is present without a value.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, Exit> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some(v) if !v.starts_with("--") => Ok(Some(v)),
            _ => Err(Exit::Usage(format!("{flag} expects a value"))),
        },
    }
}
