//! Fleet-scale driver: thousands of BSSes with client lifecycle churn,
//! emitting byte-identical `hide-metrics/1` JSON at any `--jobs` count.
//!
//! ```text
//! fleet_sim [--bss N] [--clients N] [--adoption F] [--duration SECS]
//!           [--seed N] [--jobs N] [--scenario NAME]
//!           [--policy hide|psm|scheduled[:I[:P]]] [--device NAME]
//!           [--refresh-interval SECS] [--refresh-loss P]
//!           [--port-churn P] [--stale-timeout SECS]
//!           [--metrics PATH] [--summary PATH] [--trace PATH]
//!           [--energy-attribution] [--attribution-out PATH]
//!           [--profile-stages] [--smoke] [--log-level LEVEL]
//! ```
//!
//! `--policy` selects the suspended clients' power-save protocol:
//! `hide` (the default; byte-identical to the pre-policy engine),
//! `psm` (legacy 802.11 PSM — wake on every DTIM with traffic), or
//! `scheduled[:interval[:period]]` (AP-negotiated wake windows, e.g.
//! `scheduled:8:1` wakes one DTIM in eight). `--device` picks a
//! device from the policy registry (`nexus-one`, `galaxy-s4`,
//! `pixel-3a`, `note-4`, `iot-cam`, `tablet-pro`), setting the energy
//! profile, the PowerTutor promotion knobs and the battery the
//! lifetime projection extrapolates onto.
//!
//! `--trace PATH` turns the flight recorder on: every shard kernel's
//! structured events (DTIM boundaries, lost/applied refreshes, port
//! churn, expiries, per-client wake decisions with causes) are merged
//! in BSS order and exported — as a JSONL event log when `PATH` ends
//! in `.jsonl`, as Chrome-trace JSON (open in Perfetto or
//! `chrome://tracing`) otherwise. Both are simulation-time only, so the
//! file is byte-identical at any `--jobs` count.
//!
//! `--energy-attribution` turns the per-client joule ledger on in the
//! outputs: the `--metrics` artifact gains an integer-only `"energy"`
//! section (fleet totals per wake class and cause, in nanojoules) and
//! the human summary prints the per-cause joule split.
//! `--attribution-out PATH` additionally exports the per-client rows —
//! CSV when `PATH` ends in `.csv`, JSON Lines otherwise. Both outputs
//! merge shard ledgers in BSS order, so they are byte-identical at any
//! `--jobs` count.
//!
//! `--profile-stages` runs the fleet with per-stage wall-time
//! profiling and prints a breakdown table (setup, queue pops, DTIM
//! sweeps, churn, refreshes, arrivals, merge) plus one
//! `hide-fleet-stages/1` JSON line to stdout. Wall-clock is inherently
//! nondeterministic, so this output is separate from — and never
//! spliced into — the golden-gated `hide-metrics/1` artifact; the
//! `--metrics`/`--summary` files stay byte-identical with the flag on.
//! Incompatible with `--trace` (the profiled path uses the no-op
//! sink).
//!
//! `--smoke` shrinks the fleet for a seconds-long CI sanity run and
//! asserts the two tier-1 invariants inline: a loss-free control run
//! reports zero missed wakeups, and `--jobs 1` versus all-cores
//! produces identical metrics and summary JSON.

use hide::fleet::{ChurnConfig, FleetConfig, FleetResult};
use hide::obs::{export, Counter, DEFAULT_TRACE_CAPACITY};
use hide::policy::{lookup, registry_keys, WakePolicy};
use hide_obs::{log_error, log_info, LogLevel};
use hide_traces::scenario::Scenario;
use std::process::ExitCode;
use std::time::Instant;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn parse_scenario(name: &str) -> Option<Scenario> {
    Scenario::ALL
        .into_iter()
        .find(|s| s.label().eq_ignore_ascii_case(name))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if let Some(level) = parse_flag::<LogLevel>(&args, "--log-level") {
        hide_obs::log::set_level(level);
    }

    let mut cfg = FleetConfig {
        bss_count: if smoke { 200 } else { 1000 },
        clients_per_bss: if smoke { 8 } else { 100 },
        adoption: 0.75,
        duration_secs: if smoke { 10.0 } else { 60.0 },
        seed: 42,
        churn: ChurnConfig {
            mean_present_secs: 120.0,
            mean_absent_secs: 30.0,
            mean_active_secs: 10.0,
            mean_suspended_secs: 45.0,
            refresh_interval_secs: 5.0,
            refresh_loss: 0.1,
            port_churn: 0.2,
            stale_timeout_secs: 12.0,
            ..ChurnConfig::default()
        },
        ..FleetConfig::default()
    };
    if let Some(n) = parse_flag(&args, "--bss") {
        cfg.bss_count = n;
    }
    if let Some(n) = parse_flag(&args, "--clients") {
        cfg.clients_per_bss = n;
    }
    if let Some(f) = parse_flag(&args, "--adoption") {
        cfg.adoption = f;
    }
    if let Some(d) = parse_flag(&args, "--duration") {
        cfg.duration_secs = d;
    }
    if let Some(s) = parse_flag(&args, "--seed") {
        cfg.seed = s;
    }
    if let Some(v) = parse_flag(&args, "--refresh-interval") {
        cfg.churn.refresh_interval_secs = v;
    }
    if let Some(v) = parse_flag(&args, "--refresh-loss") {
        cfg.churn.refresh_loss = v;
    }
    if let Some(v) = parse_flag(&args, "--port-churn") {
        cfg.churn.port_churn = v;
    }
    if let Some(v) = parse_flag(&args, "--stale-timeout") {
        cfg.churn.stale_timeout_secs = v;
    }
    if let Some(name) = parse_flag::<String>(&args, "--scenario") {
        match parse_scenario(&name) {
            Some(s) => cfg.scenario = s,
            None => {
                log_error!(
                    "unknown scenario {name:?}; valid: {}",
                    Scenario::ALL.map(|s| s.label()).join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(spec) = parse_flag::<String>(&args, "--policy") {
        match WakePolicy::parse(&spec) {
            Ok(p) => cfg.policy = p,
            Err(e) => {
                log_error!("--policy {spec:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(name) = parse_flag::<String>(&args, "--device") {
        match lookup(&name) {
            Some(entry) => {
                cfg.profile = entry.profile;
                cfg.battery = entry.battery();
            }
            None => {
                log_error!(
                    "unknown device {name:?}; valid: {}",
                    registry_keys().join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let jobs: usize = parse_flag(&args, "--jobs").unwrap_or(cores);

    log_info!(
        "fleet: {} BSS x {} clients, {:.0}% adoption, {} s horizon, \
         scenario {}, policy {}, device {}, seed {}, jobs {}",
        cfg.bss_count,
        cfg.clients_per_bss,
        cfg.adoption * 100.0,
        cfg.duration_secs,
        cfg.scenario.label(),
        cfg.policy.name(),
        cfg.profile.name,
        cfg.seed,
        jobs,
    );
    let trace_path = parse_flag::<String>(&args, "--trace");
    let profile_stages = args.iter().any(|a| a == "--profile-stages");
    if profile_stages && trace_path.is_some() {
        log_error!("--profile-stages is incompatible with --trace");
        return ExitCode::FAILURE;
    }
    let t0 = Instant::now();
    let result = if profile_stages {
        let (result, profile) = match cfg.try_run_profiled_with_jobs(jobs) {
            Ok(out) => out,
            Err(e) => {
                log_error!("{e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", profile.render());
        println!("{}", profile.to_json());
        result
    } else if let Some(path) = &trace_path {
        let (result, flight) = match cfg.try_run_traced_with_jobs(jobs, DEFAULT_TRACE_CAPACITY) {
            Ok(out) => out,
            Err(e) => {
                log_error!("{e}");
                return ExitCode::FAILURE;
            }
        };
        // JSONL for machine consumption, Chrome-trace JSON otherwise.
        // Both contain only simulation-time data here (no wall-clock
        // stage spans), so the bytes are independent of --jobs.
        let rendered = if path.ends_with(".jsonl") {
            export::to_jsonl(&flight)
        } else {
            export::to_chrome_trace(&flight, None)
        };
        if let Err(e) = std::fs::write(path, rendered) {
            log_error!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        log_info!(
            "trace written to {path} ({} events{})",
            flight.len(),
            if flight.dropped() > 0 {
                format!(", {} dropped by the ring bound", flight.dropped())
            } else {
                String::new()
            }
        );
        result
    } else {
        match cfg.try_run_with_jobs(jobs) {
            Ok(r) => r,
            Err(e) => {
                log_error!("{e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let wall = t0.elapsed().as_secs_f64();
    let energy_attr = args.iter().any(|a| a == "--energy-attribution");
    report(&result, wall);
    if energy_attr {
        report_attribution(&result);
    }

    if let Some(path) = parse_flag::<String>(&args, "--metrics") {
        let rendered = if energy_attr {
            result.metrics_json_with_energy()
        } else {
            result.metrics_json()
        };
        if let Err(e) = std::fs::write(&path, rendered) {
            log_error!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        log_info!("metrics written to {path}");
    }
    if let Some(path) = parse_flag::<String>(&args, "--attribution-out") {
        let ledger = result.attribution();
        let rendered = if path.ends_with(".csv") {
            ledger.to_csv()
        } else {
            ledger.to_jsonl()
        };
        if let Err(e) = std::fs::write(&path, rendered) {
            log_error!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        log_info!(
            "attribution ledger written to {path} ({} client lanes)",
            ledger.len()
        );
    }
    if let Some(path) = parse_flag::<String>(&args, "--summary") {
        if let Err(e) = std::fs::write(&path, result.summary_json()) {
            log_error!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        log_info!("summary written to {path}");
    }

    if smoke {
        return smoke_checks(&cfg, &result, jobs);
    }
    ExitCode::SUCCESS
}

fn report(result: &FleetResult, wall: f64) {
    let r = &result.report;
    println!(
        "events {}  frames {}  assoc {}  disassoc {}  refreshes {} (lost {})  \
         expired {}",
        r.events,
        r.frames,
        r.associations,
        r.disassociations,
        r.refreshes_sent,
        r.refreshes_lost,
        r.entries_expired,
    );
    println!(
        "energy {:.3} J vs baseline {:.3} J -> saving {:.2}%  \
         port-msg airtime share {:.5}",
        r.total_energy_j,
        r.baseline_energy_j,
        result.fleet_saving * 100.0,
        result.port_message_airtime_share,
    );
    println!(
        "wakeups {} (hide {})  missed rate {:.4}  spurious rate {:.4}",
        r.wakeups, r.hide_wakeups, result.missed_wakeup_rate, result.spurious_wakeup_rate,
    );
    if result.policy.schedule().is_some() {
        println!(
            "scheduled wakes {}  deferred bursts {}",
            r.scheduled_wakes, r.deferred_wakeups,
        );
    }
    let lt = &result.lifetime;
    if lt.projected_secs > 0 {
        println!(
            "battery: {:.1} mWh, avg draw {:.1} mW/client -> lifetime {:.1} h \
             (baseline {:.1} h, gain {:+.2}%)",
            lt.capacity_mwh as f64,
            lt.avg_draw_uw as f64 / 1e3,
            lt.projected_secs as f64 / 3600.0,
            lt.baseline_secs as f64 / 3600.0,
            lt.lifetime_gain_ppm as f64 / 1e4,
        );
    }
    let rec = &result.recorder;
    println!(
        "provenance: proper {}  missed[lost {} expired {} churn {} unknown {}]  \
         spurious[churn {} unknown {}]",
        rec.counter(Counter::FleetWakeupsProper),
        rec.counter(Counter::FleetMissedRefreshLost),
        rec.counter(Counter::FleetMissedEntryExpired),
        rec.counter(Counter::FleetMissedPortChurn),
        rec.counter(Counter::FleetMissedUnknown),
        rec.counter(Counter::FleetSpuriousPortChurn),
        rec.counter(Counter::FleetSpuriousUnknown),
    );
    println!(
        "wall {wall:.2} s  ({:.0} events/sec)",
        r.events as f64 / wall.max(1e-9)
    );
}

/// Human-readable per-cause joule split of the attribution ledger.
fn report_attribution(result: &FleetResult) {
    let ledger = result.attribution();
    let t = ledger.totals();
    let j = |nj: u64| nj as f64 / 1e9;
    println!(
        "attribution: {} client lanes, spent {:.3} J  \
         [proper {:.3}  legacy {:.3}  spurious {:.3}  beacon {:.3}  \
         burst-rx {:.3}  refresh-tx {:.3}]",
        ledger.len(),
        j(ledger.spent_nj()),
        j(t.proper_nj),
        j(t.legacy_nj),
        j(t.spurious_nj.total()),
        j(t.beacon_nj),
        j(t.burst_rx_nj),
        j(t.refresh_tx_nj),
    );
    println!(
        "  missed (forgone, not spent) {:.3} J  \
         [lost {:.3}  expired {:.3}  churn {:.3}  unknown {:.3}]",
        j(t.missed_forgone_nj.total()),
        j(t.missed_forgone_nj.refresh_lost),
        j(t.missed_forgone_nj.entry_expired),
        j(t.missed_forgone_nj.port_churn),
        j(t.missed_forgone_nj.unknown),
    );
}

/// CI invariants: determinism across jobs counts and the loss-free
/// missed-wakeup guarantee.
fn smoke_checks(cfg: &FleetConfig, result: &FleetResult, jobs: usize) -> ExitCode {
    log_info!("smoke: re-running at jobs=1 for the determinism check...");
    let serial = match cfg.try_run_with_jobs(1) {
        Ok(r) => r,
        Err(e) => {
            log_error!("smoke rerun failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if serial.metrics_json() != result.metrics_json()
        || serial.summary_json() != result.summary_json()
        || serial.metrics_json_with_energy() != result.metrics_json_with_energy()
        || serial.attribution().to_csv() != result.attribution().to_csv()
    {
        log_error!("SMOKE FAIL: jobs=1 and jobs={jobs} outputs differ");
        return ExitCode::FAILURE;
    }
    let mut lossless = cfg.clone();
    lossless.churn.refresh_loss = 0.0;
    log_info!("smoke: loss-free control run...");
    let control = match lossless.try_run_with_jobs(jobs) {
        Ok(r) => r,
        Err(e) => {
            log_error!("smoke control failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if control.report.missed_wakeups != 0 {
        log_error!(
            "SMOKE FAIL: {} missed wakeups with zero refresh loss",
            control.report.missed_wakeups
        );
        return ExitCode::FAILURE;
    }
    // Policy seam invariants: non-HIDE policies must run none of the
    // HIDE machinery, and a scheduled policy wakes only in-window.
    if !cfg.policy.uses_port_refresh()
        && (result.report.refreshes_sent != 0 || result.report.hide_wakeups != 0)
    {
        log_error!(
            "SMOKE FAIL: policy {} ran HIDE machinery \
             ({} refreshes, {} hide wakeups)",
            cfg.policy.name(),
            result.report.refreshes_sent,
            result.report.hide_wakeups
        );
        return ExitCode::FAILURE;
    }
    if cfg.policy.schedule().is_some() && result.report.wakeups != result.report.scheduled_wakes {
        log_error!(
            "SMOKE FAIL: {} wakeups but only {} inside the service window",
            result.report.wakeups,
            result.report.scheduled_wakes
        );
        return ExitCode::FAILURE;
    }
    log_info!("smoke: ok (deterministic across jobs, loss-free run missed 0 wakeups)");
    ExitCode::SUCCESS
}
