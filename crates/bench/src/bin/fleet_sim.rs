//! Fleet-scale driver: thousands of BSSes with client lifecycle churn,
//! emitting byte-identical `hide-metrics/1` JSON at any `--jobs` count.
//!
//! ```text
//! fleet_sim [--bss N] [--clients N] [--adoption F] [--duration SECS]
//!           [--seed N] [--jobs N] [--scenario NAME]
//!           [--policy hide|psm|scheduled[:I[:P]]] [--device NAME]
//!           [--refresh-interval SECS] [--refresh-loss P]
//!           [--port-churn P] [--stale-timeout SECS]
//!           [--metrics PATH] [--summary PATH] [--trace PATH]
//!           [--energy-attribution] [--attribution-out PATH]
//!           [--stream-export] [--spill-dir DIR] [--spill-chunk N]
//!           [--stream-window N] [--trace-cap N] [--stream-smoke]
//!           [--profile-stages] [--smoke] [--log-level LEVEL]
//! ```
//!
//! `--policy` selects the suspended clients' power-save protocol:
//! `hide` (the default; byte-identical to the pre-policy engine),
//! `psm` (legacy 802.11 PSM — wake on every DTIM with traffic), or
//! `scheduled[:interval[:period]]` (AP-negotiated wake windows, e.g.
//! `scheduled:8:1` wakes one DTIM in eight). `--device` picks a
//! device from the policy registry (`nexus-one`, `galaxy-s4`,
//! `pixel-3a`, `note-4`, `iot-cam`, `tablet-pro`), setting the energy
//! profile, the PowerTutor promotion knobs and the battery the
//! lifetime projection extrapolates onto.
//!
//! `--trace PATH` turns the flight recorder on: every shard kernel's
//! structured events (DTIM boundaries, lost/applied refreshes, port
//! churn, expiries, per-client wake decisions with causes) are merged
//! in BSS order and exported — as a JSONL event log when `PATH` ends
//! in `.jsonl`, as Chrome-trace JSON (open in Perfetto or
//! `chrome://tracing`) otherwise. Both are simulation-time only, so the
//! file is byte-identical at any `--jobs` count.
//!
//! `--energy-attribution` turns the per-client joule ledger on in the
//! outputs: the `--metrics` artifact gains an integer-only `"energy"`
//! section (fleet totals per wake class and cause, in nanojoules) and
//! the human summary prints the per-cause joule split.
//! `--attribution-out PATH` additionally exports the per-client rows —
//! CSV when `PATH` ends in `.csv`, JSON Lines otherwise. Both outputs
//! merge shard ledgers in BSS order, so they are byte-identical at any
//! `--jobs` count.
//!
//! `--profile-stages` runs the fleet with per-stage wall-time
//! profiling and prints a breakdown table (setup, queue pops, DTIM
//! sweeps, churn, refreshes, arrivals, merge) plus one
//! `hide-fleet-stages/1` JSON line to stdout. Wall-clock is inherently
//! nondeterministic, so this output is separate from — and never
//! spliced into — the golden-gated `hide-metrics/1` artifact; the
//! `--metrics`/`--summary` files stay byte-identical with the flag on.
//! Incompatible with `--trace` (the profiled path uses the no-op
//! sink).
//!
//! `--smoke` shrinks the fleet for a seconds-long CI sanity run and
//! asserts the two tier-1 invariants inline: a loss-free control run
//! reports zero missed wakeups, and `--jobs 1` versus all-cores
//! produces identical metrics and summary JSON.
//!
//! `--stream-export` switches every export onto the out-of-core
//! pipeline: the fleet runs in bounded windows, each window's trace
//! log spills to a framed run file under `--spill-dir` (default: the
//! OS temp dir), attribution rows stream to `--attribution-out` shard
//! by shard, and `--trace`/`--metrics`/`--summary` are produced by a
//! chunked k-way merge over the spilled runs — resident memory is
//! bounded by the window, not the fleet, and every output byte matches
//! the in-memory path. `--spill-chunk` (events per framed chunk),
//! `--stream-window` (shards per window) and `--trace-cap` (per-shard
//! ring capacity) tune the residency/IO trade.
//!
//! `--stream-smoke` is the metro-scale CI gate: it implies
//! `--stream-export`, streams the merged trace through a counting
//! FNV-1a hasher (to a file when `--trace` is given, to a null sink
//! otherwise), prints the content hash, and fails if peak RSS exceeds
//! `stream_peak_rss_mb_ceiling` or throughput falls below
//! `streamed_events_per_sec_floor` (both in `golden/perf_floors.toml`).

use hide::energy::ClientEnergy;
use hide::fleet::{
    ChurnConfig, FleetConfig, FleetResult, StreamExportConfig, StreamSinks, StreamedFleetResult,
};
use hide::obs::{export, Counter, HashingWriter, DEFAULT_TRACE_CAPACITY};
use hide::policy::{lookup, registry_keys, WakePolicy};
use hide_obs::{log_error, log_info, LogLevel};
use hide_traces::scenario::Scenario;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn parse_scenario(name: &str) -> Option<Scenario> {
    Scenario::ALL
        .into_iter()
        .find(|s| s.label().eq_ignore_ascii_case(name))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if let Some(level) = parse_flag::<LogLevel>(&args, "--log-level") {
        hide_obs::log::set_level(level);
    }

    let mut cfg = FleetConfig {
        bss_count: if smoke { 200 } else { 1000 },
        clients_per_bss: if smoke { 8 } else { 100 },
        adoption: 0.75,
        duration_secs: if smoke { 10.0 } else { 60.0 },
        seed: 42,
        churn: ChurnConfig {
            mean_present_secs: 120.0,
            mean_absent_secs: 30.0,
            mean_active_secs: 10.0,
            mean_suspended_secs: 45.0,
            refresh_interval_secs: 5.0,
            refresh_loss: 0.1,
            port_churn: 0.2,
            stale_timeout_secs: 12.0,
            ..ChurnConfig::default()
        },
        ..FleetConfig::default()
    };
    if let Some(n) = parse_flag(&args, "--bss") {
        cfg.bss_count = n;
    }
    if let Some(n) = parse_flag(&args, "--clients") {
        cfg.clients_per_bss = n;
    }
    if let Some(f) = parse_flag(&args, "--adoption") {
        cfg.adoption = f;
    }
    if let Some(d) = parse_flag(&args, "--duration") {
        cfg.duration_secs = d;
    }
    if let Some(s) = parse_flag(&args, "--seed") {
        cfg.seed = s;
    }
    if let Some(v) = parse_flag(&args, "--refresh-interval") {
        cfg.churn.refresh_interval_secs = v;
    }
    if let Some(v) = parse_flag(&args, "--refresh-loss") {
        cfg.churn.refresh_loss = v;
    }
    if let Some(v) = parse_flag(&args, "--port-churn") {
        cfg.churn.port_churn = v;
    }
    if let Some(v) = parse_flag(&args, "--stale-timeout") {
        cfg.churn.stale_timeout_secs = v;
    }
    if let Some(name) = parse_flag::<String>(&args, "--scenario") {
        match parse_scenario(&name) {
            Some(s) => cfg.scenario = s,
            None => {
                log_error!(
                    "unknown scenario {name:?}; valid: {}",
                    Scenario::ALL.map(|s| s.label()).join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(spec) = parse_flag::<String>(&args, "--policy") {
        match WakePolicy::parse(&spec) {
            Ok(p) => cfg.policy = p,
            Err(e) => {
                log_error!("--policy {spec:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(name) = parse_flag::<String>(&args, "--device") {
        match lookup(&name) {
            Some(entry) => {
                cfg.profile = entry.profile;
                cfg.battery = entry.battery();
            }
            None => {
                log_error!(
                    "unknown device {name:?}; valid: {}",
                    registry_keys().join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let jobs: usize = parse_flag(&args, "--jobs").unwrap_or(cores);

    log_info!(
        "fleet: {} BSS x {} clients, {:.0}% adoption, {} s horizon, \
         scenario {}, policy {}, device {}, seed {}, jobs {}",
        cfg.bss_count,
        cfg.clients_per_bss,
        cfg.adoption * 100.0,
        cfg.duration_secs,
        cfg.scenario.label(),
        cfg.policy.name(),
        cfg.profile.name,
        cfg.seed,
        jobs,
    );
    let trace_path = parse_flag::<String>(&args, "--trace");
    let profile_stages = args.iter().any(|a| a == "--profile-stages");
    if profile_stages && trace_path.is_some() {
        log_error!("--profile-stages is incompatible with --trace");
        return ExitCode::FAILURE;
    }
    let stream_smoke = args.iter().any(|a| a == "--stream-smoke");
    if stream_smoke || args.iter().any(|a| a == "--stream-export") {
        if profile_stages {
            log_error!("--stream-export is incompatible with --profile-stages");
            return ExitCode::FAILURE;
        }
        return run_streamed(&args, &cfg, jobs, trace_path.as_deref(), stream_smoke);
    }
    let t0 = Instant::now();
    let result = if profile_stages {
        let (result, profile) = match cfg.try_run_profiled_with_jobs(jobs) {
            Ok(out) => out,
            Err(e) => {
                log_error!("{e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", profile.render());
        println!("{}", profile.to_json());
        result
    } else if let Some(path) = &trace_path {
        let (result, flight) = match cfg.try_run_traced_with_jobs(jobs, DEFAULT_TRACE_CAPACITY) {
            Ok(out) => out,
            Err(e) => {
                log_error!("{e}");
                return ExitCode::FAILURE;
            }
        };
        // JSONL for machine consumption, Chrome-trace JSON otherwise.
        // Both contain only simulation-time data here (no wall-clock
        // stage spans), so the bytes are independent of --jobs.
        let rendered = if path.ends_with(".jsonl") {
            export::to_jsonl(&flight)
        } else {
            export::to_chrome_trace(&flight, None)
        };
        if let Err(e) = std::fs::write(path, rendered) {
            log_error!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        log_info!(
            "trace written to {path} ({} events{})",
            flight.len(),
            if flight.dropped() > 0 {
                format!(", {} dropped by the ring bound", flight.dropped())
            } else {
                String::new()
            }
        );
        result
    } else {
        match cfg.try_run_with_jobs(jobs) {
            Ok(r) => r,
            Err(e) => {
                log_error!("{e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let wall = t0.elapsed().as_secs_f64();
    let energy_attr = args.iter().any(|a| a == "--energy-attribution");
    report(&result, wall);
    if energy_attr {
        report_attribution(&result);
    }

    if let Some(path) = parse_flag::<String>(&args, "--metrics") {
        let rendered = if energy_attr {
            result.metrics_json_with_energy()
        } else {
            result.metrics_json()
        };
        if let Err(e) = std::fs::write(&path, rendered) {
            log_error!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        log_info!("metrics written to {path}");
    }
    if let Some(path) = parse_flag::<String>(&args, "--attribution-out") {
        let ledger = result.attribution();
        let rendered = if path.ends_with(".csv") {
            ledger.to_csv()
        } else {
            ledger.to_jsonl()
        };
        if let Err(e) = std::fs::write(&path, rendered) {
            log_error!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        log_info!(
            "attribution ledger written to {path} ({} client lanes)",
            ledger.len()
        );
    }
    if let Some(path) = parse_flag::<String>(&args, "--summary") {
        if let Err(e) = std::fs::write(&path, result.summary_json()) {
            log_error!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        log_info!("summary written to {path}");
    }

    if smoke {
        return smoke_checks(&cfg, &result, jobs);
    }
    ExitCode::SUCCESS
}

fn report(result: &FleetResult, wall: f64) {
    let r = &result.report;
    println!(
        "events {}  frames {}  assoc {}  disassoc {}  refreshes {} (lost {})  \
         expired {}",
        r.events,
        r.frames,
        r.associations,
        r.disassociations,
        r.refreshes_sent,
        r.refreshes_lost,
        r.entries_expired,
    );
    println!(
        "energy {:.3} J vs baseline {:.3} J -> saving {:.2}%  \
         port-msg airtime share {:.5}",
        r.total_energy_j,
        r.baseline_energy_j,
        result.fleet_saving * 100.0,
        result.port_message_airtime_share,
    );
    println!(
        "wakeups {} (hide {})  missed rate {:.4}  spurious rate {:.4}",
        r.wakeups, r.hide_wakeups, result.missed_wakeup_rate, result.spurious_wakeup_rate,
    );
    if result.policy.schedule().is_some() {
        println!(
            "scheduled wakes {}  deferred bursts {}",
            r.scheduled_wakes, r.deferred_wakeups,
        );
    }
    let lt = &result.lifetime;
    if lt.projected_secs > 0 {
        println!(
            "battery: {:.1} mWh, avg draw {:.1} mW/client -> lifetime {:.1} h \
             (baseline {:.1} h, gain {:+.2}%)",
            lt.capacity_mwh as f64,
            lt.avg_draw_uw as f64 / 1e3,
            lt.projected_secs as f64 / 3600.0,
            lt.baseline_secs as f64 / 3600.0,
            lt.lifetime_gain_ppm as f64 / 1e4,
        );
    }
    let rec = &result.recorder;
    println!(
        "provenance: proper {}  missed[lost {} expired {} churn {} unknown {}]  \
         spurious[churn {} unknown {}]",
        rec.counter(Counter::FleetWakeupsProper),
        rec.counter(Counter::FleetMissedRefreshLost),
        rec.counter(Counter::FleetMissedEntryExpired),
        rec.counter(Counter::FleetMissedPortChurn),
        rec.counter(Counter::FleetMissedUnknown),
        rec.counter(Counter::FleetSpuriousPortChurn),
        rec.counter(Counter::FleetSpuriousUnknown),
    );
    println!(
        "wall {wall:.2} s  ({:.0} events/sec)",
        r.events as f64 / wall.max(1e-9)
    );
}

/// Human-readable per-cause joule split of the attribution ledger.
fn report_attribution(result: &FleetResult) {
    let ledger = result.attribution();
    print_attribution_totals(ledger.len(), &ledger.totals());
}

/// Shared body of [`report_attribution`]: the streamed path calls it
/// with the accumulated totals instead of a materialized ledger.
fn print_attribution_totals(lanes: usize, t: &ClientEnergy) {
    let j = |nj: u64| nj as f64 / 1e9;
    println!(
        "attribution: {} client lanes, spent {:.3} J  \
         [proper {:.3}  legacy {:.3}  spurious {:.3}  beacon {:.3}  \
         burst-rx {:.3}  refresh-tx {:.3}]",
        lanes,
        j(t.spent_nj()),
        j(t.proper_nj),
        j(t.legacy_nj),
        j(t.spurious_nj.total()),
        j(t.beacon_nj),
        j(t.burst_rx_nj),
        j(t.refresh_tx_nj),
    );
    println!(
        "  missed (forgone, not spent) {:.3} J  \
         [lost {:.3}  expired {:.3}  churn {:.3}  unknown {:.3}]",
        j(t.missed_forgone_nj.total()),
        j(t.missed_forgone_nj.refresh_lost),
        j(t.missed_forgone_nj.entry_expired),
        j(t.missed_forgone_nj.port_churn),
        j(t.missed_forgone_nj.unknown),
    );
}

/// The out-of-core export path (`--stream-export` / `--stream-smoke`).
fn run_streamed(
    args: &[String],
    cfg: &FleetConfig,
    jobs: usize,
    trace_path: Option<&str>,
    smoke: bool,
) -> ExitCode {
    let mut stream = StreamExportConfig::new(
        parse_flag::<PathBuf>(args, "--spill-dir").unwrap_or_else(std::env::temp_dir),
    );
    if let Some(n) = parse_flag(args, "--spill-chunk") {
        stream.chunk_events = n;
    }
    if let Some(n) = parse_flag(args, "--stream-window") {
        stream.window = n;
    }
    if let Some(n) = parse_flag(args, "--trace-cap") {
        stream.trace_capacity = n;
    }

    // Attribution rows leave memory during the run, so the sink must
    // be open before it starts.
    let attr_path = parse_flag::<String>(args, "--attribution-out");
    let mut attr_file = match &attr_path {
        Some(path) => match File::create(path) {
            Ok(f) => Some(BufWriter::new(f)),
            Err(e) => {
                log_error!("creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let attr_is_csv = attr_path.as_deref().is_some_and(|p| p.ends_with(".csv"));
    let sinks = match (&mut attr_file, attr_is_csv) {
        (Some(f), true) => StreamSinks {
            attribution_csv: Some(f),
            attribution_jsonl: None,
        },
        (Some(f), false) => StreamSinks {
            attribution_csv: None,
            attribution_jsonl: Some(f),
        },
        (None, _) => StreamSinks::default(),
    };

    let t0 = Instant::now();
    let streamed = match cfg.try_run_streamed_with_jobs(jobs, &stream, sinks) {
        Ok(s) => s,
        Err(e) => {
            log_error!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let run_wall = t0.elapsed().as_secs_f64();
    if let Some(f) = attr_file.as_mut() {
        if let Err(e) = f.flush() {
            log_error!("flushing attribution sink: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &attr_path {
        log_info!(
            "attribution ledger streamed to {path} ({} client lanes)",
            streamed.energy_clients
        );
    }

    report(&streamed.result, run_wall);
    if args.iter().any(|a| a == "--energy-attribution") {
        print_attribution_totals(streamed.energy_clients, &streamed.energy_totals);
    }
    log_info!(
        "streamed: {} events in {} spilled runs ({} bytes), {} dropped by ring bounds",
        streamed.events(),
        streamed.spill.runs.len(),
        streamed.spill.bytes,
        streamed.dropped(),
    );

    // Merge the spilled runs into the trace export. The smoke gate
    // always streams the JSONL render (to a null sink when no --trace
    // path is given) so the full merge+render path is exercised and
    // content-hashed even without an output file.
    let export_start = Instant::now();
    let mut exported_events: Option<u64> = None;
    let export_result: Result<(), hide::fleet::FleetError> = match trace_path {
        Some(path) => match File::create(path) {
            Ok(f) => {
                let mut out = HashingWriter::new(BufWriter::new(f));
                let written = if path.ends_with(".jsonl") {
                    streamed.write_trace_jsonl(&mut out)
                } else {
                    streamed.write_chrome_trace(None, &mut out)
                };
                written
                    .and_then(|n| {
                        out.flush()
                            .map_err(|e| hide::fleet::FleetError::Export(e.to_string()))?;
                        Ok(n)
                    })
                    .map(|n| {
                        exported_events = Some(n);
                        log_info!(
                            "trace streamed to {path} ({n} events, {} bytes, fnv1a64 {:016x})",
                            out.bytes(),
                            out.hash()
                        );
                    })
            }
            Err(e) => Err(hide::fleet::FleetError::Export(e.to_string())),
        },
        None if smoke => {
            let mut out = HashingWriter::new(std::io::sink());
            streamed.write_trace_jsonl(&mut out).map(|n| {
                exported_events = Some(n);
                log_info!(
                    "trace jsonl hashed ({n} events, {} bytes, fnv1a64 {:016x})",
                    out.bytes(),
                    out.hash()
                );
            })
        }
        None => Ok(()),
    };
    if let Err(e) = export_result {
        log_error!("{e}");
        let _ = streamed.cleanup();
        return ExitCode::FAILURE;
    }
    let export_wall = export_start.elapsed().as_secs_f64();

    if let Some(path) = parse_flag::<String>(args, "--metrics") {
        let rendered = if args.iter().any(|a| a == "--energy-attribution") {
            streamed.metrics_json_with_energy()
        } else {
            streamed.result.metrics_json()
        };
        if let Err(e) = std::fs::write(&path, rendered) {
            log_error!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        log_info!("metrics written to {path}");
    }
    if let Some(path) = parse_flag::<String>(args, "--summary") {
        if let Err(e) = std::fs::write(&path, streamed.result.summary_json()) {
            log_error!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        log_info!("summary written to {path}");
    }

    let code = if smoke {
        stream_smoke_checks(&streamed, exported_events, run_wall + export_wall)
    } else {
        ExitCode::SUCCESS
    };
    if let Err(e) = streamed.cleanup() {
        log_error!("removing spill file: {e}");
        return ExitCode::FAILURE;
    }
    code
}

/// Peak resident set of this process (`VmHWM`), in MiB. `None` when
/// `/proc` is unavailable (non-Linux).
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

/// Metro-scale CI gate: bounded peak RSS and a streamed-throughput
/// floor, thresholds from `golden/perf_floors.toml`.
fn stream_smoke_checks(
    streamed: &StreamedFleetResult,
    exported_events: Option<u64>,
    wall: f64,
) -> ExitCode {
    if let Some(n) = exported_events {
        if n != streamed.events() {
            log_error!(
                "STREAM SMOKE FAIL: exported {n} events but spilled {}",
                streamed.events()
            );
            return ExitCode::FAILURE;
        }
    }
    let events_per_sec = streamed.result.report.events as f64 / wall.max(1e-9);
    let floor = perf_floor("streamed_events_per_sec_floor");
    log_info!(
        "stream smoke: {:.0} kernel events/sec through run+export (floor {floor:.0})",
        events_per_sec
    );
    if events_per_sec < floor {
        log_error!(
            "STREAM SMOKE FAIL: {events_per_sec:.0} events/sec below the \
             {floor:.0} floor (golden/perf_floors.toml)"
        );
        return ExitCode::FAILURE;
    }
    match peak_rss_mb() {
        Some(rss) => {
            let ceiling = perf_floor("stream_peak_rss_mb_ceiling");
            log_info!("stream smoke: peak RSS {rss:.0} MiB (ceiling {ceiling:.0})");
            if rss > ceiling {
                log_error!(
                    "STREAM SMOKE FAIL: peak RSS {rss:.0} MiB exceeds the \
                     {ceiling:.0} MiB ceiling (golden/perf_floors.toml)"
                );
                return ExitCode::FAILURE;
            }
        }
        None => log_info!("stream smoke: /proc unavailable, skipping the RSS ceiling"),
    }
    log_info!("stream smoke: ok (bounded memory, throughput above floor)");
    ExitCode::SUCCESS
}

/// Read one `key = value` number out of the checked-in perf-floor
/// profile (flat TOML, comment-stripping line scan; path resolved from
/// the crate manifest so the gate works from any working directory).
fn perf_floor(key: &str) -> f64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../golden/perf_floors.toml");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if let Some((k, v)) = line.split_once('=') {
            if k.trim() == key {
                return v
                    .trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("parse {key} in {path}: {e}"));
            }
        }
    }
    panic!("{key} not found in {path}");
}

/// CI invariants: determinism across jobs counts and the loss-free
/// missed-wakeup guarantee.
fn smoke_checks(cfg: &FleetConfig, result: &FleetResult, jobs: usize) -> ExitCode {
    log_info!("smoke: re-running at jobs=1 for the determinism check...");
    let serial = match cfg.try_run_with_jobs(1) {
        Ok(r) => r,
        Err(e) => {
            log_error!("smoke rerun failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if serial.metrics_json() != result.metrics_json()
        || serial.summary_json() != result.summary_json()
        || serial.metrics_json_with_energy() != result.metrics_json_with_energy()
        || serial.attribution().to_csv() != result.attribution().to_csv()
    {
        log_error!("SMOKE FAIL: jobs=1 and jobs={jobs} outputs differ");
        return ExitCode::FAILURE;
    }
    let mut lossless = cfg.clone();
    lossless.churn.refresh_loss = 0.0;
    log_info!("smoke: loss-free control run...");
    let control = match lossless.try_run_with_jobs(jobs) {
        Ok(r) => r,
        Err(e) => {
            log_error!("smoke control failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if control.report.missed_wakeups != 0 {
        log_error!(
            "SMOKE FAIL: {} missed wakeups with zero refresh loss",
            control.report.missed_wakeups
        );
        return ExitCode::FAILURE;
    }
    // Policy seam invariants: non-HIDE policies must run none of the
    // HIDE machinery, and a scheduled policy wakes only in-window.
    if !cfg.policy.uses_port_refresh()
        && (result.report.refreshes_sent != 0 || result.report.hide_wakeups != 0)
    {
        log_error!(
            "SMOKE FAIL: policy {} ran HIDE machinery \
             ({} refreshes, {} hide wakeups)",
            cfg.policy.name(),
            result.report.refreshes_sent,
            result.report.hide_wakeups
        );
        return ExitCode::FAILURE;
    }
    if cfg.policy.schedule().is_some() && result.report.wakeups != result.report.scheduled_wakes {
        log_error!(
            "SMOKE FAIL: {} wakeups but only {} inside the service window",
            result.report.wakeups,
            result.report.scheduled_wakes
        );
        return ExitCode::FAILURE;
    }
    log_info!("smoke: ok (deterministic across jobs, loss-free run missed 0 wakeups)");
    ExitCode::SUCCESS
}
