//! Property-based tests of HIDE protocol invariants.

use hide_core::ap::{
    calculate_broadcast_flags, AccessPoint, ApCtx, BroadcastBuffer, ClientPortTable,
};
use hide_core::client::{HideClient, OpenPortRegistry, WakeDecision};
use hide_wifi::frame::{Beacon, BroadcastDataFrame};
use hide_wifi::mac::{Aid, MacAddr};
use hide_wifi::udp::UdpDatagram;
use proptest::collection::vec;
use proptest::prelude::*;

fn frame(port: u16) -> BroadcastDataFrame {
    let d = UdpDatagram::new([10, 0, 0, 1], [255; 4], 4000, port, vec![]);
    BroadcastDataFrame::new(MacAddr::station(0), d, false)
}

proptest! {
    /// The fundamental correctness invariant of HIDE (Algorithm 1): a
    /// client's flag is set iff some buffered frame targets one of its
    /// open ports.
    #[test]
    fn flag_iff_listening(
        client_ports in vec(vec(1u16..200, 0..8), 1..10),
        frame_ports in vec(1u16..200, 0..20),
    ) {
        let mut table = ClientPortTable::new();
        for (i, ports) in client_ports.iter().enumerate() {
            let aid = Aid::new(i as u16 + 1).unwrap();
            table.update_client(aid, ports);
        }
        let mut buffer = BroadcastBuffer::new();
        for &p in &frame_ports {
            buffer.push(frame(p));
        }
        let flags = calculate_broadcast_flags(&buffer, &table);
        for (i, ports) in client_ports.iter().enumerate() {
            let aid = Aid::new(i as u16 + 1).unwrap();
            let expected = frame_ports.iter().any(|p| ports.contains(p));
            prop_assert_eq!(
                flags.is_set(aid),
                expected,
                "client {} ports {:?} frames {:?}",
                i + 1,
                ports,
                &frame_ports
            );
        }
    }

    /// Refresh semantics: after any sequence of updates, the table
    /// reflects exactly the most recent port set per client.
    #[test]
    fn table_reflects_latest_update(
        updates in vec((1u16..20, vec(1u16..100, 0..10)), 1..40),
    ) {
        let mut table = ClientPortTable::new();
        let mut latest: std::collections::BTreeMap<u16, Vec<u16>> = Default::default();
        for (client, ports) in &updates {
            let aid = Aid::new(*client).unwrap();
            table.update_client(aid, ports);
            let mut sorted = ports.clone();
            sorted.sort_unstable();
            sorted.dedup();
            latest.insert(*client, sorted);
        }
        for (client, ports) in &latest {
            let aid = Aid::new(*client).unwrap();
            prop_assert_eq!(table.ports_of(aid), &ports[..]);
            for &p in ports {
                prop_assert!(table.clients_for_port(p).contains(&aid));
            }
        }
        let expected_entries: usize = latest.values().map(Vec::len).sum();
        prop_assert_eq!(table.entry_count(), expected_entries);
    }

    /// End-to-end through real beacon bytes: the wake decision a client
    /// derives from the parsed beacon matches ground truth.
    #[test]
    fn wake_decision_matches_ground_truth_over_the_air(
        my_ports in vec(1u16..50, 0..6),
        frame_ports in vec(1u16..50, 0..12),
    ) {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mut reg = OpenPortRegistry::new();
        let mut bound = Vec::new();
        for p in &my_ports {
            if reg.bind(*p, [0, 0, 0, 0]).is_ok() {
                bound.push(*p);
            }
        }
        let mut client = HideClient::new(MacAddr::station(1), reg);
        client.set_aid(ap.associate(client.mac()).unwrap());
        client.set_bssid(ap.bssid());
        let msg = client.prepare_suspend().unwrap();
        let ack = ap.process_port_message(&msg, &mut ApCtx::untimed()).unwrap();
        client.handle_ack(&ack).unwrap();

        for &p in &frame_ports {
            ap.enqueue_broadcast(frame(p));
        }
        // Serialize and re-parse the beacon: the decision must survive
        // the wire format.
        let beacon_bytes = ap.dtim_beacon(0).to_bytes();
        let beacon = Beacon::parse(&beacon_bytes).unwrap();
        let decision = client.handle_beacon(&beacon).unwrap();

        let any_useful = frame_ports.iter().any(|p| bound.contains(p));
        let expected = if any_useful {
            WakeDecision::WakeForBroadcast
        } else {
            WakeDecision::StaySuspended
        };
        prop_assert_eq!(decision, expected);
    }

    /// The AP's `is_useful_for` agrees with the client's own `consumes`
    /// judgement after a successful sync — the two ends of the protocol
    /// share one definition of "useful".
    #[test]
    fn ap_and_client_agree_on_usefulness(
        my_ports in vec(1u16..50, 0..6),
        probe in 1u16..50,
    ) {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mut reg = OpenPortRegistry::new();
        for p in &my_ports {
            let _ = reg.bind(*p, [0, 0, 0, 0]);
        }
        let mut client = HideClient::new(MacAddr::station(1), reg);
        let aid = ap.associate(client.mac()).unwrap();
        client.set_aid(aid);
        client.set_bssid(ap.bssid());
        let msg = client.prepare_suspend().unwrap();
        let ack = ap.process_port_message(&msg, &mut ApCtx::untimed()).unwrap();
        client.handle_ack(&ack).unwrap();

        let f = frame(probe);
        prop_assert_eq!(ap.is_useful_for(aid, &f), client.consumes(&f));
    }

    /// Association never hands out duplicate AIDs.
    #[test]
    fn aids_unique(count in 1usize..100) {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..count {
            let aid = ap.associate(MacAddr::station(i as u32 + 1)).unwrap();
            prop_assert!(seen.insert(aid), "duplicate AID {aid}");
        }
    }

    /// Model-based fuzz of the AP: random interleavings of associate,
    /// disassociate, port sync, broadcast enqueue and DTIM beacons stay
    /// consistent with a simple reference model.
    #[test]
    fn ap_matches_reference_model(ops in vec((0u8..5, 1u32..8, 1u16..40), 1..200)) {
        use std::collections::BTreeMap;

        let mut ap = AccessPoint::new(MacAddr::station(0));
        // Reference model: mac index -> (aid, port set).
        let mut model: BTreeMap<u32, (Aid, Vec<u16>)> = BTreeMap::new();
        let mut pending_ports: Vec<u16> = Vec::new();
        let mut beacon_index = 0u64;

        for (op, who, port) in ops {
            let mac = MacAddr::station(who);
            match op {
                0 => {
                    // associate
                    let aid = ap.associate(mac).unwrap();
                    let entry = model.entry(who).or_insert((aid, Vec::new()));
                    prop_assert_eq!(entry.0, aid, "re-association changed AID");
                }
                1 => {
                    // disassociate
                    let res = ap.disassociate(mac);
                    prop_assert_eq!(res.is_ok(), model.remove(&who).is_some());
                }
                2 => {
                    // port sync (only sensible when associated)
                    if model.contains_key(&who) {
                        let msg = hide_wifi::frame::UdpPortMessage::new(
                            mac,
                            ap.bssid(),
                            [port, port + 1],
                        )
                        .unwrap();
                        ap.process_port_message(&msg, &mut ApCtx::untimed()).unwrap();
                        model.get_mut(&who).unwrap().1 = vec![port, port + 1];
                    }
                }
                3 => {
                    // broadcast arrives
                    ap.enqueue_broadcast(frame(port));
                    pending_ports.push(port);
                }
                _ => {
                    // DTIM: verify flags against the model, then drain.
                    let beacon = ap.dtim_beacon(beacon_index);
                    beacon_index += 1;
                    let btim = beacon.btim().unwrap();
                    for (aid, ports) in model.values() {
                        let expected = pending_ports
                            .iter()
                            .any(|p| ports.contains(p));
                        prop_assert_eq!(
                            btim.is_set(*aid),
                            expected,
                            "aid {} ports {:?} pending {:?}",
                            aid,
                            ports,
                            &pending_ports
                        );
                    }
                    prop_assert_eq!(
                        beacon.tim().unwrap().broadcast_buffered(),
                        !pending_ports.is_empty()
                    );
                    ap.deliver_broadcasts();
                    pending_ports.clear();
                }
            }
            prop_assert_eq!(ap.client_count(), model.len());
        }
    }
}

/// Exhausting every AID yields a denial, and releasing one recovers.
#[test]
fn aid_exhaustion_and_recovery() {
    use hide_wifi::assoc::AssociationRequest;
    use hide_wifi::mac::MAX_AID;

    let mut ap = AccessPoint::new(MacAddr::station(0));
    for i in 1..=MAX_AID as u32 {
        ap.associate(MacAddr::station(i)).unwrap();
    }
    let overflow = MacAddr::station(MAX_AID as u32 + 1);
    assert!(ap.associate(overflow).is_err());
    let resp = ap.handle_association_request(&AssociationRequest::new(overflow, ap.bssid(), "x"));
    assert!(!resp.is_success());

    // Freeing one AID makes the next association succeed with it.
    ap.disassociate(MacAddr::station(77)).unwrap();
    let aid = ap.associate(overflow).unwrap();
    assert_eq!(aid.value(), 77);
}
