//! Error types for the HIDE protocol core.

use hide_wifi::mac::MacAddr;
use hide_wifi::WifiError;
use std::fmt;

/// Errors produced by the HIDE AP and client implementations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The AP has exhausted its 2007 association IDs.
    NoFreeAid,
    /// A frame referenced a client the AP does not know.
    UnknownClient(MacAddr),
    /// The client tried a HIDE operation before being associated.
    NotAssociated,
    /// An ACK arrived from an unexpected peer.
    UnexpectedAck {
        /// Who the ACK was addressed to.
        receiver: MacAddr,
        /// Who we are.
        expected: MacAddr,
    },
    /// A port bind collided with an existing binding.
    PortInUse(u16),
    /// An AID allocation range violated `1 <= lo <= hi <= MAX_AID`.
    InvalidAidRange {
        /// Requested low end (inclusive).
        lo: u16,
        /// Requested high end (inclusive).
        hi: u16,
    },
    /// An AP snapshot failed to decode or was internally inconsistent.
    Snapshot(String),
    /// The underlying 802.11 layer failed.
    Wifi(WifiError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoFreeAid => write!(f, "no free association id"),
            CoreError::UnknownClient(mac) => write!(f, "unknown client {mac}"),
            CoreError::NotAssociated => write!(f, "client is not associated"),
            CoreError::UnexpectedAck { receiver, expected } => {
                write!(f, "ack addressed to {receiver}, expected {expected}")
            }
            CoreError::PortInUse(port) => write!(f, "udp port {port} already bound"),
            CoreError::InvalidAidRange { lo, hi } => {
                write!(f, "invalid AID range {lo}..={hi}")
            }
            CoreError::Snapshot(what) => write!(f, "invalid AP snapshot: {what}"),
            CoreError::Wifi(e) => write!(f, "wifi layer error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Wifi(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WifiError> for CoreError {
    fn from(e: WifiError) -> Self {
        CoreError::Wifi(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(CoreError::NoFreeAid.to_string(), "no free association id");
        assert!(CoreError::PortInUse(80).to_string().contains("80"));
    }

    #[test]
    fn wifi_error_is_source() {
        use std::error::Error;
        let e = CoreError::from(WifiError::InvalidAid(0));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
