//! A stable, fast, non-cryptographic hasher (the rustc `FxHasher`
//! construction) and `HashMap` aliases built on it.
//!
//! The default std `RandomState` seeds differently on every process
//! start; experiment output must be reproducible run-to-run and across
//! `--jobs` counts, so all protocol hash tables use this fixed-seed
//! hasher instead. Nothing here iterates map entries into output —
//! anything ordered that leaves a map is sorted first — but a stable
//! hasher removes the whole class of accidental nondeterminism, and is
//! also measurably faster than SipHash on the `u16`/`Aid` keys the AP
//! hot path uses.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash construction.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fixed-seed multiply-xor hasher; identical output on every run and
/// platform with the same input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn hashing_is_stable_across_hashers() {
        let build = FxBuildHasher::default();
        let a = build.hash_one(5353u16);
        let b = build.hash_one(5353u16);
        assert_eq!(a, b);
        assert_ne!(build.hash_one(5353u16), build.hash_one(5354u16));
    }

    #[test]
    fn map_round_trip() {
        let mut map: FxHashMap<u16, u32> = FxHashMap::default();
        for p in 0..2000u16 {
            map.insert(p, p as u32 * 2);
        }
        assert_eq!(map.get(&1234), Some(&2468));
        assert_eq!(map.len(), 2000);
    }
}
