//! The Client UDP Port Table (Section III.C).
//!
//! A hash table keyed by UDP port, mapping to the set of clients (AIDs)
//! that listen on that port. Refreshed whenever a UDP Port Message
//! arrives: the client's old ports are deleted and the new ones
//! inserted — exactly the `τ_del`/`τ_ins` operations the paper's delay
//! analysis (Eq. 25) charges for. Lookup (`τ_lp`) happens once per
//! buffered broadcast frame at each DTIM boundary (Eq. 26).
//!
//! The paper models the table as O(1) hash lookups; this
//! implementation delivers that: both directions are deterministic
//! [`FxHashMap`]s, and each port maps to a compact **sorted `Vec<Aid>`
//! posting list**, so [`ClientPortTable::postings_for_port`] is a hash
//! probe plus a borrowed slice — no allocation and no tree walk on the
//! per-DTIM hot path. The previous `BTreeMap`-based structure is kept
//! as [`BTreePortTable`] so benchmarks measure the swap instead of
//! asserting it.
//!
//! Operation counts are tracked so the delay analysis and the benches
//! can report them.

use crate::fx::FxHashMap;
use hide_obs::{Counter, MetricsSink};
use hide_wifi::mac::Aid;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of hash-table operations performed, matching the
/// `τ_ins` / `τ_del` / `τ_lp` cost terms of Eqs. (25)–(26).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableOpCounts {
    /// Number of port insertions.
    pub inserts: u64,
    /// Number of port deletions.
    pub deletes: u64,
    /// Number of port lookups.
    pub lookups: u64,
    /// Lookups that found at least one listening client.
    pub lookup_hits: u64,
    /// Lookups that found no listener.
    pub lookup_misses: u64,
}

/// What [`ClientPortTable::expire_stale`] removed: the affected
/// clients (sorted by AID, so callers iterate deterministically) and
/// the number of `(port, client)` entries dropped.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExpiryReport {
    /// Clients whose entries were expired, ascending by AID.
    pub clients: Vec<Aid>,
    /// Total `(port, client)` pairs removed.
    pub entries_removed: u64,
}

impl ExpiryReport {
    /// `true` when nothing was expired.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }
}

/// The AP's table of open UDP ports per client.
///
/// # Example
///
/// ```
/// use hide_core::ap::ClientPortTable;
/// use hide_wifi::mac::Aid;
///
/// let mut table = ClientPortTable::new();
/// let a = Aid::new(1)?;
/// let b = Aid::new(2)?;
/// table.update_client(a, &[5353, 1900]);
/// table.update_client(b, &[5353]);
/// assert_eq!(table.clients_for_port(5353), vec![a, b]);
/// assert_eq!(table.clients_for_port(1900), vec![a]);
/// assert!(table.clients_for_port(9999).is_empty());
/// # Ok::<(), hide_wifi::WifiError>(())
/// ```
#[derive(Debug, Default)]
pub struct ClientPortTable {
    /// port → sorted posting list of listening clients.
    by_port: FxHashMap<u16, Vec<Aid>>,
    /// client → sorted list of its open ports.
    by_client: FxHashMap<Aid, Vec<u16>>,
    /// client → time its entries were last refreshed. Only clients
    /// updated through [`ClientPortTable::update_client_at`] appear
    /// here; untimestamped clients are exempt from expiry.
    last_refresh: FxHashMap<Aid, f64>,
    /// Running count of stored `(port, client)` pairs, so
    /// [`ClientPortTable::entry_count`] is O(1) on the per-DTIM path
    /// instead of a walk over every client's port list.
    entries: usize,
    /// Conservative lower bound on the minimum `last_refresh`
    /// timestamp (never above it, may be below). Lets
    /// [`ClientPortTable::expire_stale`] prove "nothing is stale"
    /// without scanning: if the bound is at or past the cutoff, so is
    /// every timestamp. The `Default` of 0.0 is sound for the
    /// non-negative simulation clocks every caller uses.
    min_refresh: f64,
    /// Reusable sort/dedup buffer for
    /// [`ClientPortTable::update_client`], so steady-state refreshes
    /// are allocation-free.
    scratch: Vec<u16>,
    inserts: AtomicU64,
    deletes: AtomicU64,
    lookups: AtomicU64,
    lookup_hits: AtomicU64,
    lookup_misses: AtomicU64,
}

impl ClientPortTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ClientPortTable::default()
    }

    /// Replaces `client`'s port set with `ports`: deletes every old
    /// entry, then inserts every new one (the refresh procedure of
    /// Section V.B). Duplicate ports in the input are inserted once.
    pub fn update_client(&mut self, client: Aid, ports: &[u16]) {
        // Sort/dedup into the reusable scratch buffer — steady-state
        // refreshes allocate nothing.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(ports);
        scratch.sort_unstable();
        scratch.dedup();
        // Refresh fast path: when the new set equals the stored one,
        // the delete-all-then-reinsert below would rebuild the exact
        // same postings. Skip the structural churn but tick the
        // counters exactly as the full procedure would — the deletes
        // and inserts still *happen* per Section V.B, they just cancel.
        if let Some(old) = self.by_client.get(&client) {
            if *old == scratch {
                self.last_refresh.remove(&client);
                self.deletes
                    .fetch_add(scratch.len() as u64, Ordering::Relaxed);
                self.inserts
                    .fetch_add(scratch.len() as u64, Ordering::Relaxed);
                self.scratch = scratch;
                return;
            }
        }
        self.remove_client(client);
        for &port in &scratch {
            let postings = self.by_port.entry(port).or_default();
            if let Err(at) = postings.binary_search(&client) {
                postings.insert(at, client);
            }
        }
        self.inserts
            .fetch_add(scratch.len() as u64, Ordering::Relaxed);
        self.entries += scratch.len();
        if !scratch.is_empty() {
            self.by_client.insert(client, scratch.clone());
        }
        self.scratch = scratch;
    }

    /// [`ClientPortTable::update_client`] plus a refresh timestamp, so
    /// the entries become eligible for [`ClientPortTable::expire_stale`]
    /// once `now` falls behind the cutoff. This is the time-aware form
    /// a discrete-event AP uses for UDP Port Message refreshes.
    pub fn update_client_at(&mut self, client: Aid, ports: &[u16], now: f64) {
        self.update_client(client, ports);
        if self.by_client.contains_key(&client) {
            if self.last_refresh.is_empty() || now < self.min_refresh {
                self.min_refresh = now;
            }
            self.last_refresh.insert(client, now);
        }
    }

    /// Time `client`'s entries were last refreshed via
    /// [`ClientPortTable::update_client_at`], if ever.
    pub fn last_refresh_of(&self, client: Aid) -> Option<f64> {
        self.last_refresh.get(&client).copied()
    }

    /// Every client that currently has at least one stored port,
    /// sorted ascending by AID (hash-map iteration order is arbitrary;
    /// sorting makes snapshots canonical).
    pub fn client_aids(&self) -> Vec<Aid> {
        let mut aids: Vec<Aid> = self.by_client.keys().copied().collect();
        aids.sort_unstable();
        aids
    }

    /// Drops every timestamped client whose last refresh is strictly
    /// before `cutoff` — the AP-side aging that keeps the table from
    /// accumulating entries for clients that silently left (Section
    /// V.B's refresh contract). Clients stored through the untimestamped
    /// [`ClientPortTable::update_client`] are never expired.
    pub fn expire_stale(&mut self, cutoff: f64) -> ExpiryReport {
        // Every timestamp is at least `min_refresh`; if that bound has
        // not fallen behind the cutoff, no entry has either, and the
        // per-DTIM call costs two comparisons instead of a table scan.
        if self.last_refresh.is_empty() || self.min_refresh >= cutoff {
            return ExpiryReport::default();
        }
        let mut keep_min = f64::INFINITY;
        let mut stale: Vec<Aid> = self
            .last_refresh
            .iter()
            .filter(|&(_, &at)| {
                if at < cutoff {
                    true
                } else {
                    keep_min = keep_min.min(at);
                    false
                }
            })
            .map(|(&client, _)| client)
            .collect();
        self.min_refresh = if keep_min.is_finite() { keep_min } else { 0.0 };
        // FxHashMap iteration order is arbitrary; sort so removal order
        // (and the report) is deterministic.
        stale.sort_unstable();
        let mut entries_removed = 0u64;
        for &client in &stale {
            entries_removed += self.ports_of(client).len() as u64;
            self.remove_client(client);
        }
        ExpiryReport {
            clients: stale,
            entries_removed,
        }
    }

    /// Removes every entry for `client` (disassociation, or the delete
    /// half of a refresh).
    pub fn remove_client(&mut self, client: Aid) {
        self.last_refresh.remove(&client);
        let Some(old_ports) = self.by_client.remove(&client) else {
            return;
        };
        self.entries -= old_ports.len();
        let mut deleted = 0u64;
        for port in old_ports {
            if let Some(postings) = self.by_port.get_mut(&port) {
                if let Ok(at) = postings.binary_search(&client) {
                    postings.remove(at);
                }
                if postings.is_empty() {
                    self.by_port.remove(&port);
                }
                deleted += 1;
            }
        }
        self.deletes.fetch_add(deleted, Ordering::Relaxed);
    }

    /// Looks up the clients listening on `port` (Algorithm 1, line 4),
    /// sorted by AID. Allocates the result; the flag hot path uses
    /// [`ClientPortTable::postings_for_port`] instead.
    pub fn clients_for_port(&self, port: u16) -> Vec<Aid> {
        self.postings_for_port(port).to_vec()
    }

    /// The posting list of `port` **without** touching the `τ_lp`
    /// counters (`None` when the port has no listeners): the raw read
    /// behind batched flag sweeps that reconstruct the exact lookup
    /// tallies themselves via [`ClientPortTable::charge_lookups`].
    pub fn raw_postings(&self, port: u16) -> Option<&[Aid]> {
        self.by_port.get(&port).map(Vec::as_slice)
    }

    /// Adds a batch of `τ_lp` accounting in one shot, equivalent to
    /// `lookups` individual [`ClientPortTable::client_listens_on`]
    /// calls of which `hits` found the port present and `misses` did
    /// not. The counters are plain sums, so batched and per-call
    /// charging snapshot identically.
    pub fn charge_lookups(&self, lookups: u64, hits: u64, misses: u64) {
        debug_assert_eq!(lookups, hits + misses);
        self.lookups.fetch_add(lookups, Ordering::Relaxed);
        self.lookup_hits.fetch_add(hits, Ordering::Relaxed);
        self.lookup_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Borrowed posting list of the clients listening on `port`,
    /// sorted by AID — the allocation-free form of
    /// [`ClientPortTable::clients_for_port`]. Counts one `τ_lp`.
    pub fn postings_for_port(&self, port: u16) -> &[Aid] {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        match self.by_port.get(&port) {
            Some(postings) => {
                self.lookup_hits.fetch_add(1, Ordering::Relaxed);
                postings
            }
            None => {
                self.lookup_misses.fetch_add(1, Ordering::Relaxed);
                &[]
            }
        }
    }

    /// Whether `client` listens on `port`.
    pub fn client_listens_on(&self, client: Aid, port: u16) -> bool {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        match self.by_port.get(&port) {
            Some(postings) => {
                self.lookup_hits.fetch_add(1, Ordering::Relaxed);
                postings.binary_search(&client).is_ok()
            }
            None => {
                self.lookup_misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// The ports currently stored for `client`, sorted.
    pub fn ports_of(&self, client: Aid) -> &[u16] {
        self.by_client
            .get(&client)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of clients with at least one stored port.
    pub fn client_count(&self) -> usize {
        self.by_client.len()
    }

    /// Number of distinct ports with at least one listener.
    pub fn port_count(&self) -> usize {
        self.by_port.len()
    }

    /// Total stored (port, client) pairs. O(1): the count is maintained
    /// by every update and removal.
    pub fn entry_count(&self) -> usize {
        debug_assert_eq!(self.entries, self.by_client.values().map(Vec::len).sum());
        self.entries
    }

    /// Snapshot of the operation counters.
    pub fn op_counts(&self) -> TableOpCounts {
        TableOpCounts {
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            lookup_hits: self.lookup_hits.load(Ordering::Relaxed),
            lookup_misses: self.lookup_misses.load(Ordering::Relaxed),
        }
    }

    /// Resets the operation counters.
    pub fn reset_op_counts(&self) {
        self.inserts.store(0, Ordering::Relaxed);
        self.deletes.store(0, Ordering::Relaxed);
        self.lookups.store(0, Ordering::Relaxed);
        self.lookup_hits.store(0, Ordering::Relaxed);
        self.lookup_misses.store(0, Ordering::Relaxed);
    }

    /// Snapshots the operation counters into a metrics sink — the
    /// counter-snapshot idiom: the table keeps cheap relaxed atomics on
    /// its hot paths and the caller folds them into the run's recorder
    /// once, at a point of its choosing.
    pub fn observe_into<S: MetricsSink>(&self, sink: &mut S) {
        let counts = self.op_counts();
        sink.add(Counter::PortInserts, counts.inserts);
        sink.add(Counter::PortDeletes, counts.deletes);
        sink.add(Counter::PortLookups, counts.lookups);
        sink.add(Counter::PortLookupHits, counts.lookup_hits);
        sink.add(Counter::PortLookupMisses, counts.lookup_misses);
    }
}

impl Clone for ClientPortTable {
    fn clone(&self) -> Self {
        ClientPortTable {
            by_port: self.by_port.clone(),
            by_client: self.by_client.clone(),
            last_refresh: self.last_refresh.clone(),
            entries: self.entries,
            min_refresh: self.min_refresh,
            scratch: Vec::new(),
            inserts: AtomicU64::new(self.inserts.load(Ordering::Relaxed)),
            deletes: AtomicU64::new(self.deletes.load(Ordering::Relaxed)),
            lookups: AtomicU64::new(self.lookups.load(Ordering::Relaxed)),
            lookup_hits: AtomicU64::new(self.lookup_hits.load(Ordering::Relaxed)),
            lookup_misses: AtomicU64::new(self.lookup_misses.load(Ordering::Relaxed)),
        }
    }
}

/// The original `BTreeMap`/`BTreeSet` port table, kept purely as the
/// measurement baseline for the hash-map rewrite (see
/// `benches/protocol_micro.rs` and the `bench_throughput` binary).
/// Not used by the protocol.
#[derive(Debug, Default, Clone)]
pub struct BTreePortTable {
    by_port: BTreeMap<u16, BTreeSet<Aid>>,
    by_client: BTreeMap<Aid, Vec<u16>>,
}

impl BTreePortTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        BTreePortTable::default()
    }

    /// Replaces `client`'s port set with `ports` (delete then insert).
    pub fn update_client(&mut self, client: Aid, ports: &[u16]) {
        self.remove_client(client);
        let mut stored: Vec<u16> = ports.to_vec();
        stored.sort_unstable();
        stored.dedup();
        for &port in &stored {
            self.by_port.entry(port).or_default().insert(client);
        }
        if !stored.is_empty() {
            self.by_client.insert(client, stored);
        }
    }

    /// Removes every entry for `client`.
    pub fn remove_client(&mut self, client: Aid) {
        let Some(old_ports) = self.by_client.remove(&client) else {
            return;
        };
        for port in old_ports {
            if let Entry::Occupied(mut entry) = self.by_port.entry(port) {
                entry.get_mut().remove(&client);
                if entry.get().is_empty() {
                    entry.remove();
                }
            }
        }
    }

    /// The clients listening on `port`, sorted by AID.
    pub fn clients_for_port(&self, port: u16) -> Vec<Aid> {
        self.by_port
            .get(&port)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(v: u16) -> Aid {
        Aid::new(v).unwrap()
    }

    #[test]
    fn empty_table() {
        let table = ClientPortTable::new();
        assert_eq!(table.client_count(), 0);
        assert_eq!(table.port_count(), 0);
        assert!(table.clients_for_port(80).is_empty());
    }

    #[test]
    fn update_then_lookup() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[80, 443]);
        assert_eq!(table.clients_for_port(80), vec![aid(1)]);
        assert_eq!(table.ports_of(aid(1)), &[80, 443]);
        assert!(table.client_listens_on(aid(1), 443));
        assert!(!table.client_listens_on(aid(1), 8080));
    }

    #[test]
    fn refresh_replaces_old_ports() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[80, 443]);
        table.update_client(aid(1), &[443, 8080]);
        assert!(table.clients_for_port(80).is_empty());
        assert_eq!(table.clients_for_port(8080), vec![aid(1)]);
        assert_eq!(table.entry_count(), 2);
    }

    #[test]
    fn refresh_counts_deletes_and_inserts() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[1, 2, 3]);
        table.update_client(aid(1), &[4, 5]);
        let counts = table.op_counts();
        assert_eq!(counts.inserts, 5);
        assert_eq!(counts.deletes, 3);
    }

    #[test]
    fn multiple_clients_share_a_port() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(2), &[5353]);
        table.update_client(aid(1), &[5353]);
        // Sorted by AID regardless of insertion order.
        assert_eq!(table.clients_for_port(5353), vec![aid(1), aid(2)]);
    }

    #[test]
    fn remove_client_clears_entries() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[5353]);
        table.update_client(aid(2), &[5353]);
        table.remove_client(aid(1));
        assert_eq!(table.clients_for_port(5353), vec![aid(2)]);
        table.remove_client(aid(2));
        assert_eq!(table.port_count(), 0);
        // Removing an absent client is a no-op.
        table.remove_client(aid(7));
    }

    #[test]
    fn duplicate_ports_deduplicated() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[80, 80, 80]);
        assert_eq!(table.entry_count(), 1);
        assert_eq!(table.op_counts().inserts, 1);
    }

    #[test]
    fn empty_port_list_clears_client() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[80]);
        table.update_client(aid(1), &[]);
        assert_eq!(table.client_count(), 0);
        assert!(table.ports_of(aid(1)).is_empty());
    }

    #[test]
    fn lookup_counter_increments() {
        let table = ClientPortTable::new();
        table.reset_op_counts();
        let _ = table.clients_for_port(1);
        let _ = table.client_listens_on(aid(1), 2);
        assert_eq!(table.op_counts().lookups, 2);
    }

    #[test]
    fn postings_borrow_is_sorted_and_counts_one_lookup() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(9), &[5353]);
        table.update_client(aid(3), &[5353]);
        table.update_client(aid(6), &[5353]);
        table.reset_op_counts();
        let postings = table.postings_for_port(5353);
        assert_eq!(postings, &[aid(3), aid(6), aid(9)]);
        assert_eq!(table.op_counts().lookups, 1);
    }

    #[test]
    fn lookups_split_into_hits_and_misses() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[5353]);
        table.reset_op_counts();
        let _ = table.postings_for_port(5353); // hit
        let _ = table.postings_for_port(80); // miss
        let _ = table.client_listens_on(aid(2), 5353); // hit (port known)
        let _ = table.client_listens_on(aid(1), 80); // miss
        let counts = table.op_counts();
        assert_eq!(counts.lookups, 4);
        assert_eq!(counts.lookup_hits, 2);
        assert_eq!(counts.lookup_misses, 2);
    }

    #[test]
    fn raw_postings_reads_without_counting() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[5353]);
        table.reset_op_counts();
        assert_eq!(table.raw_postings(5353), Some([aid(1)].as_slice()));
        assert_eq!(table.raw_postings(80), None);
        assert_eq!(table.op_counts().lookups, 0);
    }

    #[test]
    fn charge_lookups_matches_per_call_counting() {
        let mut counted = ClientPortTable::new();
        counted.update_client(aid(1), &[5353]);
        let batched = counted.clone();
        counted.reset_op_counts();
        batched.reset_op_counts();
        let _ = counted.client_listens_on(aid(1), 5353); // hit
        let _ = counted.client_listens_on(aid(2), 5353); // hit (port known)
        let _ = counted.client_listens_on(aid(1), 80); // miss
        batched.charge_lookups(3, 2, 1);
        assert_eq!(counted.op_counts(), batched.op_counts());
    }

    #[test]
    fn entry_count_tracks_updates_and_expiry() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[80, 443]);
        table.update_client_at(aid(2), &[80, 443, 8080], 0.0);
        assert_eq!(table.entry_count(), 5);
        table.update_client(aid(1), &[80]);
        assert_eq!(table.entry_count(), 4);
        let report = table.expire_stale(1.0);
        assert_eq!(report.entries_removed, 3);
        assert_eq!(table.entry_count(), 1);
        table.remove_client(aid(1));
        assert_eq!(table.entry_count(), 0);
    }

    #[test]
    fn observe_into_snapshots_op_counts() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[1, 2]);
        table.update_client(aid(1), &[3]);
        let _ = table.postings_for_port(3);
        let _ = table.postings_for_port(999);
        let mut rec = hide_obs::Recorder::new();
        table.observe_into(&mut rec);
        assert_eq!(rec.counter(Counter::PortInserts), 3);
        assert_eq!(rec.counter(Counter::PortDeletes), 2);
        assert_eq!(rec.counter(Counter::PortLookups), 2);
        assert_eq!(rec.counter(Counter::PortLookupHits), 1);
        assert_eq!(rec.counter(Counter::PortLookupMisses), 1);
    }

    #[test]
    fn clone_preserves_contents() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[80]);
        table.update_client_at(aid(2), &[81], 5.0);
        let copy = table.clone();
        assert_eq!(copy.clients_for_port(80), vec![aid(1)]);
        assert_eq!(copy.last_refresh_of(aid(2)), Some(5.0));
    }

    #[test]
    fn expire_stale_drops_old_timestamped_entries() {
        let mut table = ClientPortTable::new();
        table.update_client_at(aid(1), &[80, 443], 0.0);
        table.update_client_at(aid(2), &[80], 10.0);
        let report = table.expire_stale(5.0);
        assert_eq!(report.clients, vec![aid(1)]);
        assert_eq!(report.entries_removed, 2);
        assert!(!report.is_empty());
        assert_eq!(table.clients_for_port(80), vec![aid(2)]);
        assert!(table.ports_of(aid(1)).is_empty());
        assert_eq!(table.last_refresh_of(aid(1)), None);
    }

    #[test]
    fn expire_stale_spares_untimestamped_clients() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[80]);
        let report = table.expire_stale(f64::MAX);
        assert!(report.is_empty());
        assert_eq!(report.entries_removed, 0);
        assert_eq!(table.clients_for_port(80), vec![aid(1)]);
    }

    #[test]
    fn expire_stale_report_is_sorted() {
        let mut table = ClientPortTable::new();
        for v in [9u16, 3, 6, 1] {
            table.update_client_at(aid(v), &[5353], 0.0);
        }
        let report = table.expire_stale(1.0);
        assert_eq!(report.clients, vec![aid(1), aid(3), aid(6), aid(9)]);
        assert_eq!(report.entries_removed, 4);
        assert_eq!(table.port_count(), 0);
    }

    #[test]
    fn refresh_renews_timestamp() {
        let mut table = ClientPortTable::new();
        table.update_client_at(aid(1), &[80], 0.0);
        table.update_client_at(aid(1), &[80], 20.0);
        assert_eq!(table.last_refresh_of(aid(1)), Some(20.0));
        assert!(table.expire_stale(10.0).is_empty());
        // Plain update clears the stamp: the client is exempt again.
        table.update_client(aid(1), &[80]);
        assert_eq!(table.last_refresh_of(aid(1)), None);
        assert!(table.expire_stale(f64::MAX).is_empty());
    }

    #[test]
    fn empty_refresh_leaves_no_stamp() {
        let mut table = ClientPortTable::new();
        table.update_client_at(aid(1), &[], 3.0);
        assert_eq!(table.last_refresh_of(aid(1)), None);
        assert_eq!(table.client_count(), 0);
    }

    #[test]
    fn hash_table_agrees_with_btree_baseline() {
        let mut fast = ClientPortTable::new();
        let mut slow = BTreePortTable::new();
        // Deterministic pseudo-random workload over both tables.
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u16
        };
        for round in 0..500 {
            let client = aid(next() % 100 + 1);
            if round % 7 == 6 {
                fast.remove_client(client);
                slow.remove_client(client);
            } else {
                let ports: Vec<u16> = (0..(next() % 8)).map(|_| next() % 50 + 1).collect();
                fast.update_client(client, &ports);
                slow.update_client(client, &ports);
            }
        }
        for port in 1..=50u16 {
            assert_eq!(
                fast.clients_for_port(port),
                slow.clients_for_port(port),
                "port {port} diverged"
            );
        }
    }
}
