//! AP-side HIDE: the Client UDP Port Table, broadcast buffering,
//! Algorithm 1 flag calculation and beacon construction.

mod access_point;
mod buffer;
mod ctx;
mod flags;
mod port_table;
pub mod snapshot;

pub use access_point::{AccessPoint, BeaconMode};
pub use buffer::BroadcastBuffer;
pub use ctx::ApCtx;
pub use flags::{
    calculate_broadcast_flags, calculate_broadcast_flags_into, calculate_broadcast_flags_observed,
};
pub use port_table::{BTreePortTable, ClientPortTable, ExpiryReport, TableOpCounts};
pub use snapshot::{ApSnapshot, ClientSnapshot, PortEntrySnapshot};
