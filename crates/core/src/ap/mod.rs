//! AP-side HIDE: the Client UDP Port Table, broadcast buffering,
//! Algorithm 1 flag calculation and beacon construction.

mod access_point;
mod buffer;
mod flags;
mod port_table;

pub use access_point::AccessPoint;
pub use buffer::BroadcastBuffer;
pub use flags::{
    calculate_broadcast_flags, calculate_broadcast_flags_into, calculate_broadcast_flags_observed,
};
pub use port_table::{BTreePortTable, ClientPortTable, ExpiryReport, TableOpCounts};
