//! Snapshot/restore of an [`AccessPoint`]'s durable client state.
//!
//! A long-running AP service ([`hide-apd`]) must survive restarts
//! without forcing every associated phone to re-associate and re-send
//! its UDP Port Message. [`ApSnapshot`] captures exactly the state that
//! matters across a restart — the association table, the AID
//! allocator, and the Client UDP Port Table with refresh timestamps —
//! and [`ApSnapshot::to_bytes`] / [`ApSnapshot::parse`] give it a
//! stable, versioned, line-based on-disk encoding (`hide-apsnap/1`).
//!
//! The encoding is **canonical**: [`AccessPoint::snapshot`] sorts
//! clients by MAC and entries by AID, so two APs that processed the
//! same frames — one live behind a socket, one replaying offline —
//! encode to byte-identical buffers. The `hide-apd` loopback
//! integration test leans on exactly that property.
//!
//! [`AccessPoint`]: crate::ap::AccessPoint
//! [`AccessPoint::snapshot`]: crate::ap::AccessPoint::snapshot
//! [`hide-apd`]: https://github.com/hide-repro/hide

use crate::error::CoreError;
use hide_wifi::mac::MacAddr;
use std::fmt::Write as _;

/// Magic first line of the version-1 snapshot encoding.
pub const SNAPSHOT_MAGIC: &str = "hide-apsnap/1";

/// One associated client, as the AP remembers it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ClientSnapshot {
    /// The client's MAC address.
    pub mac: MacAddr,
    /// The client's association ID.
    pub aid: u16,
    /// Whether the client has demonstrated HIDE support.
    pub hide_enabled: bool,
    /// Unicast frames buffered for the client (its TIM-bit count).
    pub unicast_buffered: u32,
}

/// One client's row of the Client UDP Port Table.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct PortEntrySnapshot {
    /// The owning client's association ID.
    pub aid: u16,
    /// When the row was last refreshed; `None` for rows installed
    /// through an untimed context (exempt from staleness expiry).
    pub last_refresh: Option<f64>,
    /// The client's open UDP ports, sorted ascending.
    pub ports: Vec<u16>,
}

/// The durable state of one [`AccessPoint`](crate::ap::AccessPoint).
///
/// Produced by [`AccessPoint::snapshot`](crate::ap::AccessPoint::snapshot),
/// consumed by
/// [`AccessPoint::from_snapshot`](crate::ap::AccessPoint::from_snapshot).
/// The broadcast buffer and in-flight fragment reassembly are
/// deliberately excluded — they are transient per-DTIM state.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ApSnapshot {
    /// The AP's BSSID.
    pub bssid: MacAddr,
    /// The SSID advertised in beacons.
    pub ssid: String,
    /// The DTIM period announced in beacons.
    pub dtim_period: u8,
    /// Low end (inclusive) of the AID allocation range.
    pub aid_lo: u16,
    /// High end (inclusive) of the AID allocation range.
    pub aid_hi: u16,
    /// Lowest AID value never assigned (`aid_hi + 1` when exhausted).
    pub next_fresh_aid: u16,
    /// Released, not-yet-reassigned AIDs, sorted ascending.
    pub freed_aids: Vec<u16>,
    /// Total UDP Port Messages the AP has processed.
    pub port_messages_received: u64,
    /// Associated clients, sorted by MAC address.
    pub clients: Vec<ClientSnapshot>,
    /// Port-table rows, sorted by AID.
    pub port_entries: Vec<PortEntrySnapshot>,
}

fn encode_mac(out: &mut String, mac: MacAddr) {
    for b in mac.octets() {
        let _ = write!(out, "{b:02x}");
    }
}

fn decode_mac(tok: &str) -> Result<MacAddr, CoreError> {
    if tok.len() != 12 || !tok.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(CoreError::Snapshot(format!("bad MAC token {tok:?}")));
    }
    let mut octets = [0u8; 6];
    for (i, chunk) in tok.as_bytes().chunks(2).enumerate() {
        let s = std::str::from_utf8(chunk).expect("hex digits are UTF-8");
        octets[i] = u8::from_str_radix(s, 16).expect("checked hexdigit");
    }
    Ok(MacAddr::new(octets))
}

fn encode_ssid(out: &mut String, ssid: &str) {
    for b in ssid.as_bytes() {
        let _ = write!(out, "{b:02x}");
    }
}

fn decode_ssid(tok: &str) -> Result<String, CoreError> {
    if !tok.len().is_multiple_of(2) || !tok.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(CoreError::Snapshot(format!("bad SSID token {tok:?}")));
    }
    let bytes: Vec<u8> = tok
        .as_bytes()
        .chunks(2)
        .map(|chunk| {
            let s = std::str::from_utf8(chunk).expect("hex digits are UTF-8");
            u8::from_str_radix(s, 16).expect("checked hexdigit")
        })
        .collect();
    String::from_utf8(bytes).map_err(|_| CoreError::Snapshot("SSID is not UTF-8".to_string()))
}

fn parse_num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, CoreError> {
    tok.parse()
        .map_err(|_| CoreError::Snapshot(format!("bad {what} token {tok:?}")))
}

impl ApSnapshot {
    /// Encodes the snapshot into the versioned `hide-apsnap/1` text
    /// form. The output is newline-terminated ASCII and canonical: the
    /// same logical state always encodes to the same bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        out.push_str(SNAPSHOT_MAGIC);
        out.push('\n');
        out.push_str("bssid ");
        encode_mac(&mut out, self.bssid);
        out.push('\n');
        out.push_str("ssid ");
        encode_ssid(&mut out, &self.ssid);
        out.push('\n');
        let _ = writeln!(out, "dtim_period {}", self.dtim_period);
        let _ = writeln!(out, "aid_range {} {}", self.aid_lo, self.aid_hi);
        let _ = writeln!(out, "next_fresh {}", self.next_fresh_aid);
        out.push_str("freed");
        for v in &self.freed_aids {
            let _ = write!(out, " {v}");
        }
        out.push('\n');
        let _ = writeln!(out, "port_messages {}", self.port_messages_received);
        let _ = writeln!(out, "clients {}", self.clients.len());
        for c in &self.clients {
            out.push_str("c ");
            encode_mac(&mut out, c.mac);
            let _ = writeln!(
                out,
                " {} {} {}",
                c.aid,
                u8::from(c.hide_enabled),
                c.unicast_buffered
            );
        }
        let _ = writeln!(out, "entries {}", self.port_entries.len());
        for e in &self.port_entries {
            match e.last_refresh {
                // `{:?}` prints the shortest representation that
                // round-trips through `str::parse::<f64>`.
                Some(at) => {
                    let _ = write!(out, "e {} {:?}", e.aid, at);
                }
                None => {
                    let _ = write!(out, "e {} -", e.aid);
                }
            }
            for p in &e.ports {
                let _ = write!(out, " {p}");
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out.into_bytes()
    }

    /// Decodes a snapshot produced by [`ApSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Snapshot`] on a missing/unknown magic line,
    /// truncated input, or any malformed field.
    pub fn parse(buf: &[u8]) -> Result<Self, CoreError> {
        let text = std::str::from_utf8(buf)
            .map_err(|_| CoreError::Snapshot("snapshot is not UTF-8".to_string()))?;
        let mut lines = text.lines();
        let magic = lines
            .next()
            .ok_or_else(|| CoreError::Snapshot("empty snapshot".to_string()))?;
        if magic != SNAPSHOT_MAGIC {
            return Err(CoreError::Snapshot(format!(
                "unsupported snapshot version {magic:?} (expected {SNAPSHOT_MAGIC:?})"
            )));
        }
        let mut field = |key: &str| -> Result<Vec<String>, CoreError> {
            let line = lines
                .next()
                .ok_or_else(|| CoreError::Snapshot(format!("missing {key} line")))?;
            let mut toks = line.split(' ');
            let head = toks.next().unwrap_or("");
            if head != key {
                return Err(CoreError::Snapshot(format!(
                    "expected {key} line, found {line:?}"
                )));
            }
            Ok(toks.map(str::to_string).collect())
        };

        let bssid_toks = field("bssid")?;
        let [bssid_tok] = bssid_toks.as_slice() else {
            return Err(CoreError::Snapshot(
                "bssid line needs one token".to_string(),
            ));
        };
        let bssid = decode_mac(bssid_tok)?;
        let ssid_toks = field("ssid")?;
        let ssid = match ssid_toks.as_slice() {
            [] => String::new(),
            [tok] => decode_ssid(tok)?,
            _ => return Err(CoreError::Snapshot("ssid line needs one token".to_string())),
        };
        let dtim_toks = field("dtim_period")?;
        let [dtim_tok] = dtim_toks.as_slice() else {
            return Err(CoreError::Snapshot("bad dtim_period line".to_string()));
        };
        let dtim_period: u8 = parse_num(dtim_tok, "dtim_period")?;
        let range_toks = field("aid_range")?;
        let [lo_tok, hi_tok] = range_toks.as_slice() else {
            return Err(CoreError::Snapshot("bad aid_range line".to_string()));
        };
        let aid_lo: u16 = parse_num(lo_tok, "aid_range")?;
        let aid_hi: u16 = parse_num(hi_tok, "aid_range")?;
        let fresh_toks = field("next_fresh")?;
        let [fresh_tok] = fresh_toks.as_slice() else {
            return Err(CoreError::Snapshot("bad next_fresh line".to_string()));
        };
        let next_fresh_aid: u16 = parse_num(fresh_tok, "next_fresh")?;
        let freed_aids = field("freed")?
            .iter()
            .map(|tok| parse_num(tok, "freed AID"))
            .collect::<Result<Vec<u16>, _>>()?;
        let pm_toks = field("port_messages")?;
        let [pm_tok] = pm_toks.as_slice() else {
            return Err(CoreError::Snapshot("bad port_messages line".to_string()));
        };
        let port_messages_received: u64 = parse_num(pm_tok, "port_messages")?;

        let count_toks = field("clients")?;
        let [count_tok] = count_toks.as_slice() else {
            return Err(CoreError::Snapshot("bad clients line".to_string()));
        };
        let client_count: usize = parse_num(count_tok, "client count")?;
        let mut clients = Vec::with_capacity(client_count.min(4096));
        for _ in 0..client_count {
            let toks = field("c")?;
            let [mac_tok, aid_tok, hide_tok, unicast_tok] = toks.as_slice() else {
                return Err(CoreError::Snapshot("bad client line".to_string()));
            };
            clients.push(ClientSnapshot {
                mac: decode_mac(mac_tok)?,
                aid: parse_num(aid_tok, "client AID")?,
                hide_enabled: match hide_tok.as_str() {
                    "0" => false,
                    "1" => true,
                    other => {
                        return Err(CoreError::Snapshot(format!("bad hide flag {other:?}")));
                    }
                },
                unicast_buffered: parse_num(unicast_tok, "unicast count")?,
            });
        }

        let count_toks = field("entries")?;
        let [count_tok] = count_toks.as_slice() else {
            return Err(CoreError::Snapshot("bad entries line".to_string()));
        };
        let entry_count: usize = parse_num(count_tok, "entry count")?;
        let mut port_entries = Vec::with_capacity(entry_count.min(4096));
        for _ in 0..entry_count {
            let toks = field("e")?;
            let [aid_tok, refresh_tok, port_toks @ ..] = toks.as_slice() else {
                return Err(CoreError::Snapshot("bad entry line".to_string()));
            };
            let last_refresh = if refresh_tok == "-" {
                None
            } else {
                Some(parse_num::<f64>(refresh_tok, "refresh time")?)
            };
            port_entries.push(PortEntrySnapshot {
                aid: parse_num(aid_tok, "entry AID")?,
                last_refresh,
                ports: port_toks
                    .iter()
                    .map(|tok| parse_num(tok, "port"))
                    .collect::<Result<Vec<u16>, _>>()?,
            });
        }
        if field("end")? != Vec::<String>::new() {
            return Err(CoreError::Snapshot(
                "trailing tokens on end line".to_string(),
            ));
        }
        Ok(ApSnapshot {
            bssid,
            ssid,
            dtim_period,
            aid_lo,
            aid_hi,
            next_fresh_aid,
            freed_aids,
            port_messages_received,
            clients,
            port_entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ap::{AccessPoint, ApCtx};
    use hide_wifi::frame::UdpPortMessage;

    fn populated_ap() -> AccessPoint {
        let mut ap = AccessPoint::with_aid_range(MacAddr::station(0), 10, 20).unwrap();
        ap.set_ssid("corp wifi"); // space exercises the hex encoding
        ap.set_dtim_period(3);
        let a = MacAddr::station(1);
        let b = MacAddr::station(2);
        let c = MacAddr::station(3);
        ap.associate(a).unwrap();
        ap.associate(b).unwrap();
        ap.associate(c).unwrap();
        ap.disassociate(b).unwrap();
        let msg = UdpPortMessage::new(a, ap.bssid(), [5353u16, 1900]).unwrap();
        ap.process_port_message(&msg, &mut ApCtx::at(4.25)).unwrap();
        let msg = UdpPortMessage::new(c, ap.bssid(), [80u16]).unwrap();
        ap.process_port_message(&msg, &mut ApCtx::untimed())
            .unwrap();
        ap.buffer_unicast(a).unwrap();
        ap
    }

    #[test]
    fn snapshot_roundtrips_through_bytes() {
        let snap = populated_ap().snapshot();
        let parsed = ApSnapshot::parse(&snap.to_bytes()).unwrap();
        assert_eq!(parsed, snap);
        // Canonical encoding: re-encoding the parse is byte-identical.
        assert_eq!(parsed.to_bytes(), snap.to_bytes());
    }

    #[test]
    fn restore_preserves_behavior() {
        let ap = populated_ap();
        let restored = AccessPoint::from_snapshot(&ap.snapshot()).unwrap();
        assert_eq!(restored.snapshot(), ap.snapshot());
        assert_eq!(restored.client_count(), ap.client_count());
        assert_eq!(restored.aid_range(), (10, 20));
        assert_eq!(
            restored.aid_of(MacAddr::station(1)),
            ap.aid_of(MacAddr::station(1))
        );
        // The freed AID (station 2's) is re-assigned first, as on the
        // original.
        let mut a = ap.clone();
        let mut b = restored.clone();
        assert_eq!(
            a.associate(MacAddr::station(9)).unwrap(),
            b.associate(MacAddr::station(9)).unwrap()
        );
    }

    #[test]
    fn restore_preserves_expiry_timestamps() {
        let ap = populated_ap();
        let mut restored = AccessPoint::from_snapshot(&ap.snapshot()).unwrap();
        // Station 1 refreshed at 4.25: stale at a cutoff past it.
        let report = restored.expire_stale_port_entries(10.0);
        assert_eq!(report.entries_removed, 2);
        // Station 3's untimed entry survives any cutoff.
        assert!(restored.expire_stale_port_entries(f64::MAX).is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ApSnapshot::parse(b"").is_err());
        assert!(ApSnapshot::parse(b"hide-apsnap/9\nend\n").is_err());
        let good = populated_ap().snapshot().to_bytes();
        let truncated = &good[..good.len() / 2];
        assert!(ApSnapshot::parse(truncated).is_err());
        let mut doctored = String::from_utf8(good).unwrap();
        doctored = doctored.replace("dtim_period 3", "dtim_period banana");
        assert!(ApSnapshot::parse(doctored.as_bytes()).is_err());
    }

    #[test]
    fn from_snapshot_rejects_inconsistencies() {
        let base = populated_ap().snapshot();
        let mut dup_aid = base.clone();
        dup_aid.clients[1].aid = dup_aid.clients[0].aid;
        assert!(AccessPoint::from_snapshot(&dup_aid).is_err());

        let mut out_of_range = base.clone();
        out_of_range.clients[0].aid = 21;
        assert!(AccessPoint::from_snapshot(&out_of_range).is_err());

        let mut bad_fresh = base.clone();
        bad_fresh.next_fresh_aid = 9;
        assert!(AccessPoint::from_snapshot(&bad_fresh).is_err());

        let mut orphan_entry = base;
        orphan_entry.port_entries[0].aid = 19;
        assert!(AccessPoint::from_snapshot(&orphan_entry).is_err());
    }
}
