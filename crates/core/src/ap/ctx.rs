//! The unified AP call context.
//!
//! Every [`AccessPoint`](crate::ap::AccessPoint) operation used to come
//! in up to three spellings — plain, `_observed` (metrics), `_traced`
//! (metrics + events) — plus `_at` twins for timed refreshes. Each new
//! cross-cutting concern doubled the method surface. [`ApCtx`] collapses
//! the matrix: one canonical method per operation, taking the timestamp,
//! metrics sink and trace sink together.
//!
//! The context is generic over its sinks, so the no-op instantiation
//! ([`NoopSink`] + [`NoopTrace`]) monomorphizes to exactly the code the
//! old plain entry points compiled to — the collapse is free.
//!
//! # Example
//!
//! ```
//! use hide_core::ap::{AccessPoint, ApCtx};
//! use hide_obs::Recorder;
//! use hide_wifi::mac::MacAddr;
//!
//! let mut ap = AccessPoint::new(MacAddr::station(0));
//! // Uninstrumented, untimed (what `dtim_beacon` sugars over):
//! let beacon = ap.emit_dtim_beacon(0, &mut ApCtx::untimed());
//! assert!(beacon.btim().is_some());
//!
//! // Instrumented, stamped at 1.5 s:
//! let mut rec = Recorder::new();
//! let _ = ap.emit_dtim_beacon(1, &mut ApCtx::at(1.5).with_metrics(&mut rec));
//! ```

use crate::clock::Clock;
use hide_obs::{MetricsSink, NoopSink, NoopTrace, TraceSink};

/// Timestamp, metrics sink and trace sink for one AP operation.
///
/// The sinks are held by value; pass `&mut Recorder` (the blanket
/// `MetricsSink for &mut S` / `TraceSink for &mut T` impls forward) to
/// keep ownership at the call site. `now` is optional: `None` means the
/// operation is untimed — port-table refreshes install entries exempt
/// from staleness expiry, and DTIM beacons derive their trace timestamp
/// from the beacon index as the trace-driven simulator always has.
#[derive(Debug)]
pub struct ApCtx<S: MetricsSink = NoopSink, T: TraceSink = NoopTrace> {
    now: Option<f64>,
    /// Where the operation's counters and distributions go.
    pub metrics: S,
    /// Where the operation's structured events go.
    pub trace: T,
}

impl ApCtx {
    /// An untimed, uninstrumented context — the zero-cost default.
    #[must_use]
    pub fn untimed() -> Self {
        ApCtx {
            now: None,
            metrics: NoopSink,
            trace: NoopTrace,
        }
    }

    /// An uninstrumented context stamped at `now` seconds.
    #[must_use]
    pub fn at(now: f64) -> Self {
        ApCtx {
            now: Some(now),
            metrics: NoopSink,
            trace: NoopTrace,
        }
    }

    /// An uninstrumented context stamped off `clock`'s current time.
    #[must_use]
    pub fn from_clock<C: Clock>(clock: &C) -> Self {
        ApCtx::at(clock.now())
    }
}

impl<S: MetricsSink, T: TraceSink> ApCtx<S, T> {
    /// The operation timestamp, if the caller provided one.
    #[must_use]
    pub fn now(&self) -> Option<f64> {
        self.now
    }

    /// Returns the context re-stamped at `now`.
    #[must_use]
    pub fn timestamped(mut self, now: f64) -> Self {
        self.now = Some(now);
        self
    }

    /// Returns the context with `metrics` as its metrics sink.
    #[must_use]
    pub fn with_metrics<S2: MetricsSink>(self, metrics: S2) -> ApCtx<S2, T> {
        ApCtx {
            now: self.now,
            metrics,
            trace: self.trace,
        }
    }

    /// Returns the context with `trace` as its trace sink.
    #[must_use]
    pub fn with_trace<T2: TraceSink>(self, trace: T2) -> ApCtx<S, T2> {
        ApCtx {
            now: self.now,
            metrics: self.metrics,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use hide_obs::{Counter, Recorder};

    #[test]
    fn constructors_carry_time() {
        assert_eq!(ApCtx::untimed().now(), None);
        assert_eq!(ApCtx::at(3.5).now(), Some(3.5));
        assert_eq!(ApCtx::untimed().timestamped(1.0).now(), Some(1.0));
        let clock = VirtualClock::starting_at(9.0);
        assert_eq!(ApCtx::from_clock(&clock).now(), Some(9.0));
    }

    #[test]
    fn sinks_swap_without_losing_time() {
        let mut rec = Recorder::new();
        let ctx = ApCtx::at(2.0).with_metrics(&mut rec);
        ctx.metrics.incr(Counter::BtimBeacons);
        assert_eq!(ctx.now(), Some(2.0));
        let _ = ctx;
        assert_eq!(rec.counter(Counter::BtimBeacons), 1);
    }
}
