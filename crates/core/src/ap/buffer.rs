//! Broadcast frame buffering at the AP.
//!
//! The AP buffers all broadcast frames while at least one client is in
//! power-saving mode and delivers them right after the next DTIM beacon
//! (Background section of the paper). During delivery, every frame but
//! the last carries the MAC *More Data* bit so listening radios know
//! whether the burst continues.

use hide_obs::{Counter, MetricsSink, NoopSink};
use hide_wifi::frame::BroadcastDataFrame;
use std::collections::VecDeque;

/// FIFO buffer of broadcast frames awaiting the next DTIM.
///
/// # Example
///
/// ```
/// use hide_core::ap::BroadcastBuffer;
/// use hide_wifi::frame::BroadcastDataFrame;
/// use hide_wifi::mac::MacAddr;
/// use hide_wifi::udp::UdpDatagram;
///
/// let mut buf = BroadcastBuffer::new();
/// for port in [1900u16, 5353] {
///     let d = UdpDatagram::new([10, 0, 0, 1], [255; 4], 4000, port, vec![]);
///     buf.push(BroadcastDataFrame::new(MacAddr::station(0), d, false));
/// }
/// let burst = buf.drain_for_delivery();
/// assert_eq!(burst.len(), 2);
/// assert!(burst[0].more_data());
/// assert!(!burst[1].more_data());
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct BroadcastBuffer {
    frames: VecDeque<BroadcastDataFrame>,
    dropped: u64,
    capacity: Option<usize>,
}

impl BroadcastBuffer {
    /// Creates an unbounded buffer.
    pub fn new() -> Self {
        BroadcastBuffer::default()
    }

    /// Creates a buffer that drops the oldest frame beyond `capacity`
    /// (real APs have finite PS buffers).
    pub fn with_capacity_limit(capacity: usize) -> Self {
        BroadcastBuffer {
            frames: VecDeque::with_capacity(capacity),
            dropped: 0,
            capacity: Some(capacity),
        }
    }

    /// Buffers a frame.
    pub fn push(&mut self, frame: BroadcastDataFrame) {
        if let Some(cap) = self.capacity {
            if self.frames.len() >= cap {
                self.frames.pop_front();
                self.dropped += 1;
            }
        }
        self.frames.push_back(frame);
    }

    /// Number of buffered frames (the `n_f` of Eq. 26 at a DTIM).
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frames dropped to the capacity limit so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the buffered frames in arrival order without draining —
    /// what Algorithm 1 scans at the DTIM boundary.
    pub fn iter(&self) -> impl Iterator<Item = &BroadcastDataFrame> {
        self.frames.iter()
    }

    /// Drains the buffer for post-DTIM delivery, setting the *More
    /// Data* bit on every frame except the last.
    pub fn drain_for_delivery(&mut self) -> Vec<BroadcastDataFrame> {
        self.drain_for_delivery_observed(&mut NoopSink)
    }

    /// [`BroadcastBuffer::drain_for_delivery`] with instrumentation:
    /// counts the frames the AP puts on the air as
    /// [`Counter::ApFramesDelivered`]. Capacity-limit drops are a
    /// running total, so they stay on [`BroadcastBuffer::dropped`]
    /// rather than being re-counted at every drain.
    pub fn drain_for_delivery_observed<S: MetricsSink>(
        &mut self,
        sink: &mut S,
    ) -> Vec<BroadcastDataFrame> {
        let mut burst: Vec<BroadcastDataFrame> = self.frames.drain(..).collect();
        let n = burst.len();
        sink.add(Counter::ApFramesDelivered, n as u64);
        for (i, frame) in burst.iter_mut().enumerate() {
            frame.set_more_data(i + 1 < n);
        }
        burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_wifi::mac::MacAddr;
    use hide_wifi::udp::UdpDatagram;

    fn frame(port: u16) -> BroadcastDataFrame {
        let d = UdpDatagram::new([10, 0, 0, 1], [255; 4], 4000, port, vec![]);
        BroadcastDataFrame::new(MacAddr::station(0), d, false)
    }

    #[test]
    fn starts_empty() {
        let buf = BroadcastBuffer::new();
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn drain_sets_more_data_on_all_but_last() {
        let mut buf = BroadcastBuffer::new();
        for p in [1u16, 2, 3] {
            buf.push(frame(p));
        }
        let burst = buf.drain_for_delivery();
        assert_eq!(
            burst.iter().map(|f| f.more_data()).collect::<Vec<_>>(),
            vec![true, true, false]
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn single_frame_has_no_more_data() {
        let mut buf = BroadcastBuffer::new();
        buf.push(frame(1));
        let burst = buf.drain_for_delivery();
        assert!(!burst[0].more_data());
    }

    #[test]
    fn drain_preserves_arrival_order() {
        let mut buf = BroadcastBuffer::new();
        for p in [10u16, 20, 30] {
            buf.push(frame(p));
        }
        let ports: Vec<u16> = buf
            .drain_for_delivery()
            .iter()
            .map(|f| f.udp_dst_port().unwrap())
            .collect();
        assert_eq!(ports, vec![10, 20, 30]);
    }

    #[test]
    fn capacity_limit_drops_oldest() {
        let mut buf = BroadcastBuffer::with_capacity_limit(2);
        for p in [1u16, 2, 3] {
            buf.push(frame(p));
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 1);
        let ports: Vec<u16> = buf
            .drain_for_delivery()
            .iter()
            .map(|f| f.udp_dst_port().unwrap())
            .collect();
        assert_eq!(ports, vec![2, 3]);
    }

    #[test]
    fn observed_drain_counts_delivered_frames() {
        let mut buf = BroadcastBuffer::new();
        for p in [1u16, 2, 3] {
            buf.push(frame(p));
        }
        let mut rec = hide_obs::Recorder::new();
        let burst = buf.drain_for_delivery_observed(&mut rec);
        assert_eq!(burst.len(), 3);
        assert_eq!(rec.counter(Counter::ApFramesDelivered), 3);
    }

    #[test]
    fn iter_does_not_drain() {
        let mut buf = BroadcastBuffer::new();
        buf.push(frame(1));
        assert_eq!(buf.iter().count(), 1);
        assert_eq!(buf.len(), 1);
    }
}
