//! The HIDE-enabled access point.

use crate::ap::{calculate_broadcast_flags_observed, BroadcastBuffer, ClientPortTable};
use crate::error::CoreError;
use hide_obs::{MetricsSink, NoopSink, NoopTrace, TraceEventKind, TraceSink};
use hide_wifi::assoc::{self, AssociationRequest, AssociationResponse, Disassociation};
use hide_wifi::bitmap::PartialVirtualBitmap;
use hide_wifi::frame::{Ack, Beacon, BroadcastDataFrame, UdpPortMessage};
use hide_wifi::ie::{Btim, InformationElement, Tim};
use hide_wifi::mac::{Aid, MacAddr, MAX_AID};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Record the AP keeps per associated client.
#[derive(Debug, Clone)]
struct ClientRecord {
    aid: Aid,
    /// Set once the client has sent a UDP Port Message; legacy clients
    /// never do.
    hide_enabled: bool,
    /// Unicast frames buffered while the client is power-saving (we
    /// track only counts/lengths, enough for TIM signalling).
    unicast_buffered: u32,
}

/// A HIDE-enabled 802.11 access point.
///
/// Owns the association table, the [`ClientPortTable`], the broadcast
/// buffer, and builds beacons with both the standard TIM and the HIDE
/// BTIM so legacy and HIDE clients coexist (Section III.D).
#[derive(Debug, Clone)]
pub struct AccessPoint {
    bssid: MacAddr,
    clients: BTreeMap<MacAddr, ClientRecord>,
    by_aid: BTreeMap<Aid, MacAddr>,
    port_table: ClientPortTable,
    buffer: BroadcastBuffer,
    dtim_period: u8,
    port_messages_received: u64,
    /// Partially received fragmented port reports, keyed by sender.
    pending_fragments: BTreeMap<MacAddr, Vec<u16>>,
    ssid: String,
    /// AID values released by disassociations and not yet re-assigned.
    /// Every element is below `next_fresh_aid`, so the heap minimum is
    /// the lowest free AID whenever the heap is non-empty.
    freed_aids: BinaryHeap<Reverse<u16>>,
    /// Lowest AID value never assigned so far (`MAX_AID + 1` once the
    /// space has been fully touched).
    next_fresh_aid: u16,
}

impl AccessPoint {
    /// Creates an AP with the given BSSID and DTIM period 1.
    pub fn new(bssid: MacAddr) -> Self {
        AccessPoint {
            bssid,
            clients: BTreeMap::new(),
            by_aid: BTreeMap::new(),
            port_table: ClientPortTable::new(),
            buffer: BroadcastBuffer::new(),
            dtim_period: 1,
            port_messages_received: 0,
            pending_fragments: BTreeMap::new(),
            ssid: "hide-net".to_string(),
            freed_aids: BinaryHeap::new(),
            next_fresh_aid: 1,
        }
    }

    /// Sets the SSID advertised in beacons.
    pub fn set_ssid(&mut self, ssid: impl Into<String>) {
        self.ssid = ssid.into();
    }

    /// The SSID advertised in beacons.
    pub fn ssid(&self) -> &str {
        &self.ssid
    }

    /// Sets the DTIM period announced in beacons.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn set_dtim_period(&mut self, period: u8) {
        assert!(period > 0, "DTIM period must be positive");
        self.dtim_period = period;
    }

    /// The AP's BSSID.
    pub fn bssid(&self) -> MacAddr {
        self.bssid
    }

    /// Associates a client, assigning the lowest free AID.
    ///
    /// Re-associating an already-associated client returns its existing
    /// AID.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoFreeAid`] when all 2007 AIDs are taken.
    pub fn associate(&mut self, mac: MacAddr) -> Result<Aid, CoreError> {
        if let Some(record) = self.clients.get(&mac) {
            return Ok(record.aid);
        }
        // Lowest free AID in O(log free): freed values all sit below
        // the fresh watermark, so the heap minimum (when present) beats
        // every never-assigned value — the same answer the linear
        // "first v in 1..=MAX_AID not in by_aid" scan produces.
        let v = if let Some(Reverse(v)) = self.freed_aids.pop() {
            v
        } else if self.next_fresh_aid <= MAX_AID {
            let v = self.next_fresh_aid;
            self.next_fresh_aid += 1;
            v
        } else {
            return Err(CoreError::NoFreeAid);
        };
        let aid = Aid::new(v).expect("range is valid");
        debug_assert!(!self.by_aid.contains_key(&aid));
        self.clients.insert(
            mac,
            ClientRecord {
                aid,
                hide_enabled: false,
                unicast_buffered: 0,
            },
        );
        self.by_aid.insert(aid, mac);
        Ok(aid)
    }

    /// Processes an over-the-air association request, assigning an AID
    /// (or denying when none are free). A request carrying the HIDE
    /// capability (an Open UDP Ports element) pre-marks the client as
    /// HIDE-enabled.
    pub fn handle_association_request(
        &mut self,
        request: &AssociationRequest,
    ) -> AssociationResponse {
        match self.associate(request.client()) {
            Ok(aid) => {
                if request.supports_hide() {
                    if let Some(record) = self.clients.get_mut(&request.client()) {
                        record.hide_enabled = true;
                    }
                }
                AssociationResponse::success(self.bssid, request.client(), aid)
            }
            Err(_) => AssociationResponse::denied(
                self.bssid,
                request.client(),
                assoc::STATUS_DENIED_NO_RESOURCES,
            ),
        }
    }

    /// Processes an over-the-air disassociation notice.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] when the sender is not
    /// associated.
    pub fn handle_disassociation(&mut self, notice: &Disassociation) -> Result<(), CoreError> {
        self.disassociate(notice.from())
    }

    /// Disassociates a client, releasing its AID and port-table entries.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] when `mac` is not associated.
    pub fn disassociate(&mut self, mac: MacAddr) -> Result<(), CoreError> {
        let record = self
            .clients
            .remove(&mac)
            .ok_or(CoreError::UnknownClient(mac))?;
        self.by_aid.remove(&record.aid);
        self.freed_aids.push(Reverse(record.aid.value()));
        self.port_table.remove_client(record.aid);
        self.pending_fragments.remove(&mac);
        Ok(())
    }

    /// The AID of an associated client.
    pub fn aid_of(&self, mac: MacAddr) -> Option<Aid> {
        self.clients.get(&mac).map(|r| r.aid)
    }

    /// Number of associated clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Whether a client has HIDE enabled (has ever sent a port message).
    pub fn is_hide_enabled(&self, mac: MacAddr) -> bool {
        self.clients.get(&mac).is_some_and(|r| r.hide_enabled)
    }

    /// Processes a UDP Port Message: refreshes the Client UDP Port Table
    /// and returns the ACK to transmit (Fig. 2, steps 1-2).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] when the sender is not
    /// associated.
    pub fn handle_udp_port_message(&mut self, msg: &UdpPortMessage) -> Result<Ack, CoreError> {
        self.handle_port_message_inner(msg, None)
    }

    /// [`AccessPoint::handle_udp_port_message`] with a refresh
    /// timestamp: the table entries it installs become eligible for
    /// [`AccessPoint::expire_stale_port_entries`] once `now` falls
    /// behind the expiry cutoff. Discrete-event simulations use this
    /// form so a client that stops refreshing (left without
    /// disassociating, or kept losing its messages) eventually ages out
    /// of the table.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] when the sender is not
    /// associated.
    pub fn handle_udp_port_message_at(
        &mut self,
        msg: &UdpPortMessage,
        now: f64,
    ) -> Result<Ack, CoreError> {
        self.handle_port_message_inner(msg, Some(now))
    }

    fn handle_port_message_inner(
        &mut self,
        msg: &UdpPortMessage,
        now: Option<f64>,
    ) -> Result<Ack, CoreError> {
        let record = self
            .clients
            .get_mut(&msg.client())
            .ok_or(CoreError::UnknownClient(msg.client()))?;
        record.hide_enabled = true;
        let aid = record.aid;
        self.port_messages_received += 1;

        let refresh = |table: &mut ClientPortTable, ports: &[u16]| match now {
            Some(at) => table.update_client_at(aid, ports, at),
            None => table.update_client(aid, ports),
        };
        if msg.more_fragments() {
            // Accumulate; the table refresh happens on the final
            // fragment so a half-received report never goes live.
            self.pending_fragments
                .entry(msg.client())
                .or_default()
                .extend_from_slice(msg.ports());
        } else if self.pending_fragments.is_empty() {
            // Common case: nothing mid-reassembly anywhere, so skip the
            // per-message map probe entirely.
            refresh(&mut self.port_table, msg.ports());
        } else if let Some(mut ports) = self.pending_fragments.remove(&msg.client()) {
            ports.extend_from_slice(msg.ports());
            refresh(&mut self.port_table, &ports);
        } else {
            refresh(&mut self.port_table, msg.ports());
        }
        Ok(Ack::new(msg.client()))
    }

    /// Expires port-table entries whose last timestamped refresh is
    /// strictly before `cutoff` (see [`ClientPortTable::expire_stale`]).
    /// Expired clients stay associated — only their port interests are
    /// forgotten, so they fall back to flagged-for-nothing until their
    /// next UDP Port Message lands.
    pub fn expire_stale_port_entries(&mut self, cutoff: f64) -> crate::ap::ExpiryReport {
        self.port_table.expire_stale(cutoff)
    }

    /// Buffers a broadcast frame for delivery after the next DTIM.
    pub fn enqueue_broadcast(&mut self, frame: BroadcastDataFrame) {
        self.buffer.push(frame);
    }

    /// Records a buffered unicast frame for `mac` (sets its TIM bit).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] when `mac` is not associated.
    pub fn buffer_unicast(&mut self, mac: MacAddr) -> Result<(), CoreError> {
        let record = self
            .clients
            .get_mut(&mac)
            .ok_or(CoreError::UnknownClient(mac))?;
        record.unicast_buffered += 1;
        Ok(())
    }

    /// Delivers one buffered unicast frame to `mac` in response to a
    /// PS-Poll, clearing the TIM bit when the queue empties.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] when `mac` is not associated.
    pub fn ps_poll(&mut self, mac: MacAddr) -> Result<u32, CoreError> {
        let record = self
            .clients
            .get_mut(&mac)
            .ok_or(CoreError::UnknownClient(mac))?;
        record.unicast_buffered = record.unicast_buffered.saturating_sub(1);
        Ok(record.unicast_buffered)
    }

    /// Whether the given frame is useful to the client with `aid`, i.e.
    /// whether the client listens on the frame's UDP destination port.
    /// Non-UDP frames are "useful" to everyone (delivered via the
    /// legacy path).
    pub fn is_useful_for(&self, aid: Aid, frame: &BroadcastDataFrame) -> bool {
        match frame.udp_dst_port() {
            Ok(port) => self.port_table.client_listens_on(aid, port),
            Err(_) => true,
        }
    }

    /// Builds the DTIM beacon for beacon index `index`: runs Algorithm 1
    /// over the buffered frames and attaches both the standard TIM (with
    /// the one-bit broadcast indication for legacy clients) and the HIDE
    /// BTIM.
    pub fn dtim_beacon(&mut self, index: u64) -> Beacon {
        self.dtim_beacon_observed(index, &mut NoopSink)
    }

    /// [`AccessPoint::dtim_beacon`] with instrumentation: Algorithm 1
    /// runs through [`calculate_broadcast_flags_observed`] and the
    /// finished BTIM element records its on-air footprint
    /// ([`Btim::observe`]). The uninstrumented entry point delegates
    /// here with a [`NoopSink`], so both compile to the same hot path.
    pub fn dtim_beacon_observed<S: MetricsSink>(&mut self, index: u64, sink: &mut S) -> Beacon {
        self.dtim_beacon_traced(index, sink, &mut NoopTrace)
    }

    /// [`AccessPoint::dtim_beacon_observed`] with event tracing: marks
    /// the DTIM boundary (buffered burst size, port-table occupancy)
    /// and the emitted BTIM's on-air footprint at the beacon's
    /// simulation time. Both plainer entry points delegate here with
    /// no-op sinks, so all three compile to the same hot path.
    pub fn dtim_beacon_traced<S: MetricsSink, T: TraceSink>(
        &mut self,
        index: u64,
        sink: &mut S,
        trace: &mut T,
    ) -> Beacon {
        let now = index as f64 * hide_wifi::timing::TIME_UNIT_SECS * 100.0;
        if trace.is_enabled() {
            trace.emit(
                now,
                TraceEventKind::DtimBoundary {
                    buffered: self.buffer.len() as u32,
                    table_entries: self.port_table.entry_count() as u32,
                },
            );
        }
        let mut flags = PartialVirtualBitmap::new();
        calculate_broadcast_flags_observed(&self.buffer, &self.port_table, &mut flags, sink);
        let beacon = self.build_beacon(index, 0, flags);
        if let Some(btim) = beacon.btim() {
            btim.observe(sink);
            btim.observe_traced(now, trace);
        }
        beacon
    }

    /// Builds a non-DTIM beacon (`dtim_count > 0`): no broadcast flags,
    /// unicast TIM bits only.
    pub fn beacon(&mut self, index: u64, dtim_count: u8) -> Beacon {
        self.build_beacon(index, dtim_count, PartialVirtualBitmap::new())
    }

    fn build_beacon(&self, index: u64, dtim_count: u8, flags: PartialVirtualBitmap) -> Beacon {
        let mut unicast = PartialVirtualBitmap::new();
        for record in self.clients.values() {
            if record.unicast_buffered > 0 {
                unicast.set(record.aid);
            }
        }
        let tim = Tim::new(
            dtim_count,
            self.dtim_period,
            dtim_count == 0 && !self.buffer.is_empty(),
            unicast,
        );
        Beacon::builder(self.bssid)
            .ssid(self.ssid.clone())
            .supported_rates_11b()
            .timestamp_us(index.wrapping_mul(102_400))
            .beacon_interval_tu(100)
            .tim(tim)
            .element(InformationElement::Btim(Btim::new(flags)))
            .build()
    }

    /// Drains the broadcast buffer for post-DTIM delivery (More Data
    /// bits set on all but the last frame).
    pub fn deliver_broadcasts(&mut self) -> Vec<BroadcastDataFrame> {
        self.buffer.drain_for_delivery()
    }

    /// [`AccessPoint::deliver_broadcasts`] with instrumentation (see
    /// [`BroadcastBuffer::drain_for_delivery_observed`]).
    pub fn deliver_broadcasts_observed<S: MetricsSink>(
        &mut self,
        sink: &mut S,
    ) -> Vec<BroadcastDataFrame> {
        self.buffer.drain_for_delivery_observed(sink)
    }

    /// Number of frames currently buffered (`n_f` at the next DTIM).
    pub fn buffered_broadcasts(&self) -> usize {
        self.buffer.len()
    }

    /// The Client UDP Port Table (for inspection and benches).
    pub fn port_table(&self) -> &ClientPortTable {
        &self.port_table
    }

    /// Total UDP Port Messages processed.
    pub fn port_messages_received(&self) -> u64 {
        self.port_messages_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_wifi::udp::UdpDatagram;

    fn frame(port: u16) -> BroadcastDataFrame {
        let d = UdpDatagram::new([10, 0, 0, 1], [255; 4], 4000, port, vec![]);
        BroadcastDataFrame::new(MacAddr::station(0), d, false)
    }

    fn port_msg(client: MacAddr, ap: MacAddr, ports: &[u16]) -> UdpPortMessage {
        UdpPortMessage::new(client, ap, ports.iter().copied()).unwrap()
    }

    #[test]
    fn associate_assigns_sequential_aids() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let a = ap.associate(MacAddr::station(1)).unwrap();
        let b = ap.associate(MacAddr::station(2)).unwrap();
        assert_eq!(a.value(), 1);
        assert_eq!(b.value(), 2);
        assert_eq!(ap.client_count(), 2);
    }

    #[test]
    fn reassociation_is_idempotent() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let a = ap.associate(MacAddr::station(1)).unwrap();
        let b = ap.associate(MacAddr::station(1)).unwrap();
        assert_eq!(a, b);
        assert_eq!(ap.client_count(), 1);
    }

    #[test]
    fn disassociate_frees_aid_for_reuse() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let a = ap.associate(MacAddr::station(1)).unwrap();
        ap.disassociate(MacAddr::station(1)).unwrap();
        let b = ap.associate(MacAddr::station(2)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn disassociate_unknown_fails() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        assert!(matches!(
            ap.disassociate(MacAddr::station(9)),
            Err(CoreError::UnknownClient(_))
        ));
    }

    #[test]
    fn port_message_marks_hide_enabled_and_acks() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        ap.associate(mac).unwrap();
        assert!(!ap.is_hide_enabled(mac));
        let ack = ap
            .handle_udp_port_message(&port_msg(mac, ap.bssid(), &[5353]))
            .unwrap();
        assert_eq!(ack.receiver(), mac);
        assert!(ap.is_hide_enabled(mac));
        assert_eq!(ap.port_messages_received(), 1);
    }

    #[test]
    fn fragmented_port_report_reassembles() {
        use hide_wifi::frame::UdpPortMessage as Msg;
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        let ports: Vec<u16> = (1000..1300).collect();
        let msgs = Msg::paginate(mac, ap.bssid(), ports.clone());
        assert!(msgs.len() > 1);
        for (i, m) in msgs.iter().enumerate() {
            // Nothing goes live until the final fragment.
            if i + 1 < msgs.len() {
                ap.handle_udp_port_message(m).unwrap();
                assert!(ap.port_table().ports_of(aid).len() < ports.len());
            } else {
                ap.handle_udp_port_message(m).unwrap();
            }
        }
        assert_eq!(ap.port_table().ports_of(aid).len(), ports.len());
        assert!(ap.port_table().client_listens_on(aid, 1299));
    }

    #[test]
    fn unfragmented_message_after_partial_train_discards_nothing_stale() {
        use hide_wifi::frame::UdpPortMessage as Msg;
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        // A dangling first fragment...
        let train = Msg::paginate(mac, ap.bssid(), (0..200u16).collect::<Vec<_>>());
        ap.handle_udp_port_message(&train[0]).unwrap();
        // ...followed by a fresh complete (unfragmented-final) report:
        // the final fragment semantics merge the pending half, so the
        // table reflects the union of that train; a subsequent clean
        // report replaces everything.
        ap.handle_udp_port_message(&train[1]).unwrap();
        let msg = Msg::new(mac, ap.bssid(), [9999u16]).unwrap();
        ap.handle_udp_port_message(&msg).unwrap();
        assert_eq!(ap.port_table().ports_of(aid), &[9999]);
    }

    #[test]
    fn port_message_from_stranger_rejected() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let err = ap
            .handle_udp_port_message(&port_msg(MacAddr::station(9), ap.bssid(), &[80]))
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownClient(_)));
    }

    #[test]
    fn dtim_beacon_flags_match_algorithm_one() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac1 = MacAddr::station(1);
        let mac2 = MacAddr::station(2);
        let aid1 = ap.associate(mac1).unwrap();
        let aid2 = ap.associate(mac2).unwrap();
        ap.handle_udp_port_message(&port_msg(mac1, ap.bssid(), &[1900]))
            .unwrap();
        ap.handle_udp_port_message(&port_msg(mac2, ap.bssid(), &[5353]))
            .unwrap();
        ap.enqueue_broadcast(frame(1900));

        let beacon = ap.dtim_beacon(0);
        let btim = beacon.btim().unwrap();
        assert!(btim.is_set(aid1));
        assert!(!btim.is_set(aid2));
        // Legacy path: the TIM broadcast bit is set because frames are
        // buffered, regardless of usefulness.
        assert!(beacon.tim().unwrap().broadcast_buffered());
    }

    #[test]
    fn observed_dtim_beacon_matches_plain_and_records() {
        use hide_obs::{Counter, Recorder};
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        ap.associate(mac).unwrap();
        ap.handle_udp_port_message(&port_msg(mac, ap.bssid(), &[1900]))
            .unwrap();
        ap.enqueue_broadcast(frame(1900));

        let mut rec = Recorder::new();
        let observed = ap.clone().dtim_beacon_observed(0, &mut rec);
        let plain = ap.dtim_beacon(0);
        assert_eq!(observed.to_bytes(), plain.to_bytes());
        assert_eq!(rec.counter(Counter::BtimBeacons), 1);
        assert_eq!(rec.counter(Counter::BtimBitsSet), 1);
        assert!(rec.counter(Counter::BtimBytes) > 0);
    }

    #[test]
    fn non_dtim_beacon_has_empty_btim_and_count() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        ap.set_dtim_period(3);
        ap.enqueue_broadcast(frame(1900));
        let beacon = ap.beacon(1, 2);
        assert_eq!(beacon.tim().unwrap().dtim_count(), 2);
        assert!(!beacon.tim().unwrap().broadcast_buffered());
        assert!(beacon.btim().unwrap().is_empty());
    }

    #[test]
    fn beacons_advertise_ssid_and_rates() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        ap.set_ssid("corp-wifi");
        let beacon = Beacon::parse(&ap.dtim_beacon(0).to_bytes()).unwrap();
        assert_eq!(beacon.ssid().as_deref(), Some("corp-wifi"));
        assert!(beacon.tim().is_some());
        assert!(beacon.btim().is_some());
    }

    #[test]
    fn delivery_drains_buffer() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        ap.enqueue_broadcast(frame(1));
        ap.enqueue_broadcast(frame(2));
        assert_eq!(ap.buffered_broadcasts(), 2);
        let burst = ap.deliver_broadcasts();
        assert_eq!(burst.len(), 2);
        assert!(burst[0].more_data());
        assert_eq!(ap.buffered_broadcasts(), 0);
    }

    #[test]
    fn usefulness_follows_port_table() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        ap.handle_udp_port_message(&port_msg(mac, ap.bssid(), &[5353]))
            .unwrap();
        assert!(ap.is_useful_for(aid, &frame(5353)));
        assert!(!ap.is_useful_for(aid, &frame(1900)));
    }

    #[test]
    fn non_udp_frame_is_useful_to_everyone() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let aid = ap.associate(MacAddr::station(1)).unwrap();
        let raw = BroadcastDataFrame::from_raw_body(MacAddr::station(0), vec![0; 40], false);
        assert!(ap.is_useful_for(aid, &raw));
    }

    #[test]
    fn unicast_tim_bit_set_and_cleared() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        ap.buffer_unicast(mac).unwrap();
        let beacon = ap.dtim_beacon(0);
        assert!(beacon.tim().unwrap().traffic_for(aid));
        assert_eq!(ap.ps_poll(mac).unwrap(), 0);
        let beacon = ap.dtim_beacon(1);
        assert!(!beacon.tim().unwrap().traffic_for(aid));
    }

    #[test]
    fn timed_port_message_expires_when_refresh_stops() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        ap.handle_udp_port_message_at(&port_msg(mac, ap.bssid(), &[5353]), 0.0)
            .unwrap();
        assert!(ap.is_useful_for(aid, &frame(5353)));
        // Still fresh at a cutoff behind the refresh.
        assert!(ap.expire_stale_port_entries(0.0).is_empty());
        let report = ap.expire_stale_port_entries(10.0);
        assert_eq!(report.clients, vec![aid]);
        assert_eq!(report.entries_removed, 1);
        // Expired but still associated and HIDE-enabled.
        assert_eq!(ap.aid_of(mac), Some(aid));
        assert!(ap.is_hide_enabled(mac));
        assert!(!ap.is_useful_for(aid, &frame(5353)));
        // The next refresh brings the interests back.
        ap.handle_udp_port_message_at(&port_msg(mac, ap.bssid(), &[5353]), 20.0)
            .unwrap();
        assert!(ap.is_useful_for(aid, &frame(5353)));
    }

    #[test]
    fn untimed_port_message_never_expires() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        ap.handle_udp_port_message(&port_msg(mac, ap.bssid(), &[5353]))
            .unwrap();
        assert!(ap.expire_stale_port_entries(f64::MAX).is_empty());
        assert!(ap.is_useful_for(aid, &frame(5353)));
    }

    #[test]
    fn timed_fragmented_report_stamps_on_final_fragment() {
        use hide_wifi::frame::UdpPortMessage as Msg;
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        let ports: Vec<u16> = (1000..1300).collect();
        let msgs = Msg::paginate(mac, ap.bssid(), ports.clone());
        assert!(msgs.len() > 1);
        for (i, m) in msgs.iter().enumerate() {
            ap.handle_udp_port_message_at(m, i as f64).unwrap();
        }
        assert_eq!(ap.port_table().ports_of(aid).len(), ports.len());
        assert_eq!(
            ap.port_table().last_refresh_of(aid),
            Some((msgs.len() - 1) as f64)
        );
    }

    #[test]
    fn disassociation_clears_port_table() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        ap.handle_udp_port_message(&port_msg(mac, ap.bssid(), &[1900]))
            .unwrap();
        ap.disassociate(mac).unwrap();
        assert!(ap.port_table().clients_for_port(1900).is_empty());
        // A frame for the departed client flags nobody.
        ap.enqueue_broadcast(frame(1900));
        let beacon = ap.dtim_beacon(0);
        assert!(!beacon.btim().unwrap().is_set(aid));
    }
}
