//! The HIDE-enabled access point.

use crate::ap::snapshot::{ApSnapshot, ClientSnapshot, PortEntrySnapshot};
use crate::ap::{calculate_broadcast_flags_observed, ApCtx, BroadcastBuffer, ClientPortTable};
use crate::error::CoreError;
use hide_obs::{MetricsSink, TraceEventKind, TraceSink};
use hide_wifi::assoc::{self, AssociationRequest, AssociationResponse, Disassociation};
use hide_wifi::bitmap::PartialVirtualBitmap;
use hide_wifi::frame::{Ack, Beacon, BroadcastDataFrame, UdpPortMessage};
use hide_wifi::ie::{Btim, InformationElement, Tim};
use hide_wifi::mac::{Aid, MacAddr, MAX_AID};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// What the AP attaches to DTIM beacons beyond the standard TIM.
///
/// HIDE APs run [`BeaconMode::Btim`]; an AP serving only legacy-PSM or
/// scheduled-wake clients runs [`BeaconMode::TimOnly`], skipping both
/// the BTIM element and the Algorithm 1 flag computation (there are no
/// registered ports to match against), so beacons carry zero HIDE
/// overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BeaconMode {
    /// Attach the HIDE BTIM element to every DTIM beacon (default).
    #[default]
    Btim,
    /// Standard 802.11 beacons: TIM only, no BTIM element.
    TimOnly,
}

/// Record the AP keeps per associated client.
#[derive(Debug, Clone)]
struct ClientRecord {
    aid: Aid,
    /// Set once the client has sent a UDP Port Message; legacy clients
    /// never do.
    hide_enabled: bool,
    /// Unicast frames buffered while the client is power-saving (we
    /// track only counts/lengths, enough for TIM signalling).
    unicast_buffered: u32,
}

/// A HIDE-enabled 802.11 access point.
///
/// Owns the association table, the [`ClientPortTable`], the broadcast
/// buffer, and builds beacons with both the standard TIM and the HIDE
/// BTIM so legacy and HIDE clients coexist (Section III.D).
#[derive(Debug, Clone)]
pub struct AccessPoint {
    bssid: MacAddr,
    clients: BTreeMap<MacAddr, ClientRecord>,
    by_aid: BTreeMap<Aid, MacAddr>,
    port_table: ClientPortTable,
    buffer: BroadcastBuffer,
    dtim_period: u8,
    port_messages_received: u64,
    /// Partially received fragmented port reports, keyed by sender.
    pending_fragments: BTreeMap<MacAddr, Vec<u16>>,
    ssid: String,
    /// AID values released by disassociations and not yet re-assigned.
    /// Every element is below `next_fresh_aid`, so the heap minimum is
    /// the lowest free AID whenever the heap is non-empty.
    freed_aids: BinaryHeap<Reverse<u16>>,
    /// Lowest AID value never assigned so far (`aid_hi + 1` once the
    /// range has been fully touched).
    next_fresh_aid: u16,
    /// Inclusive AID allocation range. The default AP owns the whole
    /// `1..=MAX_AID` space; a sharded deployment (`hide-apd`) gives
    /// each shard a disjoint sub-range so AIDs stay globally unique.
    aid_lo: u16,
    aid_hi: u16,
    beacon_mode: BeaconMode,
}

impl AccessPoint {
    /// Creates an AP with the given BSSID and DTIM period 1, owning the
    /// full `1..=MAX_AID` association-ID space.
    pub fn new(bssid: MacAddr) -> Self {
        AccessPoint::with_aid_range(bssid, 1, MAX_AID).expect("full range is valid")
    }

    /// Creates an AP that allocates AIDs only from `lo..=hi`
    /// (inclusive). Shards of a partitioned AP (`hide-apd`) use
    /// disjoint ranges so every AID stays unique across the deployment.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidAidRange`] unless
    /// `1 <= lo <= hi <= MAX_AID`.
    pub fn with_aid_range(bssid: MacAddr, lo: u16, hi: u16) -> Result<Self, CoreError> {
        if lo == 0 || lo > hi || hi > MAX_AID {
            return Err(CoreError::InvalidAidRange { lo, hi });
        }
        Ok(AccessPoint {
            bssid,
            clients: BTreeMap::new(),
            by_aid: BTreeMap::new(),
            port_table: ClientPortTable::new(),
            buffer: BroadcastBuffer::new(),
            dtim_period: 1,
            port_messages_received: 0,
            pending_fragments: BTreeMap::new(),
            ssid: "hide-net".to_string(),
            freed_aids: BinaryHeap::new(),
            next_fresh_aid: lo,
            aid_lo: lo,
            aid_hi: hi,
            beacon_mode: BeaconMode::default(),
        })
    }

    /// The inclusive AID allocation range `(lo, hi)`.
    pub fn aid_range(&self) -> (u16, u16) {
        (self.aid_lo, self.aid_hi)
    }

    /// Sets the beacon mode (whether DTIM beacons carry the HIDE BTIM).
    pub fn set_beacon_mode(&mut self, mode: BeaconMode) {
        self.beacon_mode = mode;
    }

    /// The current beacon mode.
    pub fn beacon_mode(&self) -> BeaconMode {
        self.beacon_mode
    }

    /// Sets the SSID advertised in beacons.
    pub fn set_ssid(&mut self, ssid: impl Into<String>) {
        self.ssid = ssid.into();
    }

    /// The SSID advertised in beacons.
    pub fn ssid(&self) -> &str {
        &self.ssid
    }

    /// Sets the DTIM period announced in beacons.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn set_dtim_period(&mut self, period: u8) {
        assert!(period > 0, "DTIM period must be positive");
        self.dtim_period = period;
    }

    /// The AP's BSSID.
    pub fn bssid(&self) -> MacAddr {
        self.bssid
    }

    /// Associates a client, assigning the lowest free AID.
    ///
    /// Re-associating an already-associated client returns its existing
    /// AID.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoFreeAid`] when all 2007 AIDs are taken.
    pub fn associate(&mut self, mac: MacAddr) -> Result<Aid, CoreError> {
        if let Some(record) = self.clients.get(&mac) {
            return Ok(record.aid);
        }
        // Lowest free AID in O(log free): freed values all sit below
        // the fresh watermark, so the heap minimum (when present) beats
        // every never-assigned value — the same answer the linear
        // "first v in 1..=MAX_AID not in by_aid" scan produces.
        let v = if let Some(Reverse(v)) = self.freed_aids.pop() {
            v
        } else if self.next_fresh_aid <= self.aid_hi {
            let v = self.next_fresh_aid;
            self.next_fresh_aid += 1;
            v
        } else {
            return Err(CoreError::NoFreeAid);
        };
        let aid = Aid::new(v).expect("range is valid");
        debug_assert!(!self.by_aid.contains_key(&aid));
        self.clients.insert(
            mac,
            ClientRecord {
                aid,
                hide_enabled: false,
                unicast_buffered: 0,
            },
        );
        self.by_aid.insert(aid, mac);
        Ok(aid)
    }

    /// Processes an over-the-air association request, assigning an AID
    /// (or denying when none are free). A request carrying the HIDE
    /// capability (an Open UDP Ports element) pre-marks the client as
    /// HIDE-enabled.
    pub fn handle_association_request(
        &mut self,
        request: &AssociationRequest,
    ) -> AssociationResponse {
        match self.associate(request.client()) {
            Ok(aid) => {
                if request.supports_hide() {
                    if let Some(record) = self.clients.get_mut(&request.client()) {
                        record.hide_enabled = true;
                    }
                }
                AssociationResponse::success(self.bssid, request.client(), aid)
            }
            Err(_) => AssociationResponse::denied(
                self.bssid,
                request.client(),
                assoc::STATUS_DENIED_NO_RESOURCES,
            ),
        }
    }

    /// Processes an over-the-air disassociation notice.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] when the sender is not
    /// associated.
    pub fn handle_disassociation(&mut self, notice: &Disassociation) -> Result<(), CoreError> {
        self.disassociate(notice.from())
    }

    /// Disassociates a client, releasing its AID and port-table entries.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] when `mac` is not associated.
    pub fn disassociate(&mut self, mac: MacAddr) -> Result<(), CoreError> {
        let record = self
            .clients
            .remove(&mac)
            .ok_or(CoreError::UnknownClient(mac))?;
        self.by_aid.remove(&record.aid);
        self.freed_aids.push(Reverse(record.aid.value()));
        self.port_table.remove_client(record.aid);
        self.pending_fragments.remove(&mac);
        Ok(())
    }

    /// The AID of an associated client.
    pub fn aid_of(&self, mac: MacAddr) -> Option<Aid> {
        self.clients.get(&mac).map(|r| r.aid)
    }

    /// Number of associated clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Whether a client has HIDE enabled (has ever sent a port message).
    pub fn is_hide_enabled(&self, mac: MacAddr) -> bool {
        self.clients.get(&mac).is_some_and(|r| r.hide_enabled)
    }

    /// Processes a UDP Port Message: refreshes the Client UDP Port
    /// Table and returns the ACK to transmit (Fig. 2, steps 1-2). This
    /// is the canonical entry point — the deprecated
    /// [`AccessPoint::handle_udp_port_message`] /
    /// [`AccessPoint::handle_udp_port_message_at`] pair are thin shims
    /// over it.
    ///
    /// When `ctx` carries a timestamp ([`ApCtx::now`] is `Some`), the
    /// table entries it installs become eligible for
    /// [`AccessPoint::expire_stale_port_entries`] once that time falls
    /// behind the expiry cutoff — discrete-event simulations and the
    /// `hide-apd` daemon use timed contexts so a client that stops
    /// refreshing (left without disassociating, or kept losing its
    /// messages) eventually ages out of the table. With an untimed
    /// context the installed entries are exempt from expiry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] when the sender is not
    /// associated.
    pub fn process_port_message<S: MetricsSink, T: TraceSink>(
        &mut self,
        msg: &UdpPortMessage,
        ctx: &mut ApCtx<S, T>,
    ) -> Result<Ack, CoreError> {
        let now = ctx.now();
        let record = self
            .clients
            .get_mut(&msg.client())
            .ok_or(CoreError::UnknownClient(msg.client()))?;
        record.hide_enabled = true;
        let aid = record.aid;
        self.port_messages_received += 1;

        let refresh = |table: &mut ClientPortTable, ports: &[u16]| match now {
            Some(at) => table.update_client_at(aid, ports, at),
            None => table.update_client(aid, ports),
        };
        if msg.more_fragments() {
            // Accumulate; the table refresh happens on the final
            // fragment so a half-received report never goes live.
            self.pending_fragments
                .entry(msg.client())
                .or_default()
                .extend_from_slice(msg.ports());
        } else if self.pending_fragments.is_empty() {
            // Common case: nothing mid-reassembly anywhere, so skip the
            // per-message map probe entirely.
            refresh(&mut self.port_table, msg.ports());
        } else if let Some(mut ports) = self.pending_fragments.remove(&msg.client()) {
            ports.extend_from_slice(msg.ports());
            refresh(&mut self.port_table, &ports);
        } else {
            refresh(&mut self.port_table, msg.ports());
        }
        Ok(Ack::new(msg.client()))
    }

    /// Untimed [`AccessPoint::process_port_message`]: the installed
    /// table entries never expire.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] when the sender is not
    /// associated.
    #[deprecated(
        since = "0.1.0",
        note = "use `process_port_message` with an `ApCtx` (untimed contexts reproduce this behavior)"
    )]
    pub fn handle_udp_port_message(&mut self, msg: &UdpPortMessage) -> Result<Ack, CoreError> {
        self.process_port_message(msg, &mut ApCtx::untimed())
    }

    /// Timed [`AccessPoint::process_port_message`]: entries installed
    /// at `now` age out through
    /// [`AccessPoint::expire_stale_port_entries`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] when the sender is not
    /// associated.
    #[deprecated(
        since = "0.1.0",
        note = "use `process_port_message` with `ApCtx::at(now)`"
    )]
    pub fn handle_udp_port_message_at(
        &mut self,
        msg: &UdpPortMessage,
        now: f64,
    ) -> Result<Ack, CoreError> {
        self.process_port_message(msg, &mut ApCtx::at(now))
    }

    /// Expires port-table entries whose last timestamped refresh is
    /// strictly before `cutoff` (see [`ClientPortTable::expire_stale`]).
    /// Expired clients stay associated — only their port interests are
    /// forgotten, so they fall back to flagged-for-nothing until their
    /// next UDP Port Message lands.
    pub fn expire_stale_port_entries(&mut self, cutoff: f64) -> crate::ap::ExpiryReport {
        self.port_table.expire_stale(cutoff)
    }

    /// Buffers a broadcast frame for delivery after the next DTIM.
    pub fn enqueue_broadcast(&mut self, frame: BroadcastDataFrame) {
        self.buffer.push(frame);
    }

    /// Records a buffered unicast frame for `mac` (sets its TIM bit).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] when `mac` is not associated.
    pub fn buffer_unicast(&mut self, mac: MacAddr) -> Result<(), CoreError> {
        let record = self
            .clients
            .get_mut(&mac)
            .ok_or(CoreError::UnknownClient(mac))?;
        record.unicast_buffered += 1;
        Ok(())
    }

    /// Delivers one buffered unicast frame to `mac` in response to a
    /// PS-Poll, clearing the TIM bit when the queue empties.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] when `mac` is not associated.
    pub fn ps_poll(&mut self, mac: MacAddr) -> Result<u32, CoreError> {
        let record = self
            .clients
            .get_mut(&mac)
            .ok_or(CoreError::UnknownClient(mac))?;
        record.unicast_buffered = record.unicast_buffered.saturating_sub(1);
        Ok(record.unicast_buffered)
    }

    /// Whether the given frame is useful to the client with `aid`, i.e.
    /// whether the client listens on the frame's UDP destination port.
    /// Non-UDP frames are "useful" to everyone (delivered via the
    /// legacy path).
    pub fn is_useful_for(&self, aid: Aid, frame: &BroadcastDataFrame) -> bool {
        match frame.udp_dst_port() {
            Ok(port) => self.port_table.client_listens_on(aid, port),
            Err(_) => true,
        }
    }

    /// Builds the DTIM beacon for beacon index `index`: runs Algorithm
    /// 1 over the buffered frames and attaches both the standard TIM
    /// (with the one-bit broadcast indication for legacy clients) and
    /// the HIDE BTIM. This is the canonical entry point — Algorithm 1
    /// runs through [`calculate_broadcast_flags_observed`] into
    /// `ctx.metrics`, and the DTIM boundary (buffered burst size,
    /// port-table occupancy) plus the emitted BTIM's on-air footprint
    /// stream into `ctx.trace`.
    ///
    /// The events are stamped at [`ApCtx::now`] when the caller
    /// provided a timestamp (the `hide-apd` daemon passes its
    /// [`crate::clock::Clock`] reading); with an untimed context the
    /// timestamp is derived from the beacon index on the paper's
    /// 102.4 ms cadence, exactly as the trace-driven simulator always
    /// stamped it.
    pub fn emit_dtim_beacon<S: MetricsSink, T: TraceSink>(
        &mut self,
        index: u64,
        ctx: &mut ApCtx<S, T>,
    ) -> Beacon {
        let now = ctx
            .now()
            .unwrap_or(index as f64 * hide_wifi::timing::TIME_UNIT_SECS * 100.0);
        if ctx.trace.is_enabled() {
            ctx.trace.emit(
                now,
                TraceEventKind::DtimBoundary {
                    buffered: self.buffer.len() as u32,
                    table_entries: self.port_table.entry_count() as u32,
                },
            );
        }
        let mut flags = PartialVirtualBitmap::new();
        if self.beacon_mode == BeaconMode::Btim {
            calculate_broadcast_flags_observed(
                &self.buffer,
                &self.port_table,
                &mut flags,
                &mut ctx.metrics,
            );
        }
        let beacon = self.build_beacon(index, 0, flags);
        if let Some(btim) = beacon.btim() {
            btim.observe(&mut ctx.metrics);
            btim.observe_traced(now, &mut ctx.trace);
        }
        beacon
    }

    /// Uninstrumented [`AccessPoint::emit_dtim_beacon`] sugar: an
    /// untimed no-op context, compiling to the same hot path.
    pub fn dtim_beacon(&mut self, index: u64) -> Beacon {
        self.emit_dtim_beacon(index, &mut ApCtx::untimed())
    }

    /// [`AccessPoint::dtim_beacon`] with instrumentation.
    #[deprecated(
        since = "0.1.0",
        note = "use `emit_dtim_beacon` with `ApCtx::untimed().with_metrics(sink)`"
    )]
    pub fn dtim_beacon_observed<S: MetricsSink>(&mut self, index: u64, sink: &mut S) -> Beacon {
        self.emit_dtim_beacon(index, &mut ApCtx::untimed().with_metrics(sink))
    }

    /// [`AccessPoint::dtim_beacon`] with instrumentation and event
    /// tracing.
    #[deprecated(
        since = "0.1.0",
        note = "use `emit_dtim_beacon` with `ApCtx::untimed().with_metrics(sink).with_trace(trace)`"
    )]
    pub fn dtim_beacon_traced<S: MetricsSink, T: TraceSink>(
        &mut self,
        index: u64,
        sink: &mut S,
        trace: &mut T,
    ) -> Beacon {
        self.emit_dtim_beacon(
            index,
            &mut ApCtx::untimed().with_metrics(sink).with_trace(trace),
        )
    }

    /// Builds a non-DTIM beacon (`dtim_count > 0`): no broadcast flags,
    /// unicast TIM bits only.
    pub fn beacon(&mut self, index: u64, dtim_count: u8) -> Beacon {
        self.build_beacon(index, dtim_count, PartialVirtualBitmap::new())
    }

    fn build_beacon(&self, index: u64, dtim_count: u8, flags: PartialVirtualBitmap) -> Beacon {
        let mut unicast = PartialVirtualBitmap::new();
        for record in self.clients.values() {
            if record.unicast_buffered > 0 {
                unicast.set(record.aid);
            }
        }
        let tim = Tim::new(
            dtim_count,
            self.dtim_period,
            dtim_count == 0 && !self.buffer.is_empty(),
            unicast,
        );
        let builder = Beacon::builder(self.bssid)
            .ssid(self.ssid.clone())
            .supported_rates_11b()
            .timestamp_us(index.wrapping_mul(102_400))
            .beacon_interval_tu(100)
            .tim(tim);
        match self.beacon_mode {
            BeaconMode::Btim => builder
                .element(InformationElement::Btim(Btim::new(flags)))
                .build(),
            BeaconMode::TimOnly => builder.build(),
        }
    }

    /// Drains the broadcast buffer for post-DTIM delivery (More Data
    /// bits set on all but the last frame), recording the burst into
    /// `ctx.metrics` (see
    /// [`BroadcastBuffer::drain_for_delivery_observed`]). This is the
    /// canonical entry point.
    pub fn drain_broadcasts<S: MetricsSink, T: TraceSink>(
        &mut self,
        ctx: &mut ApCtx<S, T>,
    ) -> Vec<BroadcastDataFrame> {
        self.buffer.drain_for_delivery_observed(&mut ctx.metrics)
    }

    /// Uninstrumented [`AccessPoint::drain_broadcasts`] sugar.
    pub fn deliver_broadcasts(&mut self) -> Vec<BroadcastDataFrame> {
        self.drain_broadcasts(&mut ApCtx::untimed())
    }

    /// [`AccessPoint::deliver_broadcasts`] with instrumentation.
    #[deprecated(
        since = "0.1.0",
        note = "use `drain_broadcasts` with `ApCtx::untimed().with_metrics(sink)`"
    )]
    pub fn deliver_broadcasts_observed<S: MetricsSink>(
        &mut self,
        sink: &mut S,
    ) -> Vec<BroadcastDataFrame> {
        self.drain_broadcasts(&mut ApCtx::untimed().with_metrics(sink))
    }

    /// Number of frames currently buffered (`n_f` at the next DTIM).
    pub fn buffered_broadcasts(&self) -> usize {
        self.buffer.len()
    }

    /// The Client UDP Port Table (for inspection and benches).
    pub fn port_table(&self) -> &ClientPortTable {
        &self.port_table
    }

    /// Total UDP Port Messages processed.
    pub fn port_messages_received(&self) -> u64 {
        self.port_messages_received
    }

    /// Captures the AP's durable client state as an [`ApSnapshot`]:
    /// association table (with HIDE capability and buffered-unicast
    /// counts), AID allocator, and the Client UDP Port Table with its
    /// refresh timestamps. The broadcast buffer and partially
    /// reassembled port reports are transient by design and are *not*
    /// captured — a restored AP starts with an empty buffer, exactly as
    /// a rebooted daemon should.
    ///
    /// The snapshot is canonical (clients sorted by MAC, port entries
    /// and freed AIDs sorted ascending), so two APs that processed the
    /// same frames produce byte-identical [`ApSnapshot::to_bytes`]
    /// encodings regardless of internal hash-map iteration order.
    pub fn snapshot(&self) -> ApSnapshot {
        let mut freed: Vec<u16> = self.freed_aids.iter().map(|Reverse(v)| *v).collect();
        freed.sort_unstable();
        let clients = self
            .clients
            .iter()
            .map(|(mac, record)| ClientSnapshot {
                mac: *mac,
                aid: record.aid.value(),
                hide_enabled: record.hide_enabled,
                unicast_buffered: record.unicast_buffered,
            })
            .collect();
        let mut port_entries: Vec<PortEntrySnapshot> = self
            .port_table
            .client_aids()
            .into_iter()
            .map(|aid| PortEntrySnapshot {
                aid: aid.value(),
                last_refresh: self.port_table.last_refresh_of(aid),
                ports: self.port_table.ports_of(aid).to_vec(),
            })
            .collect();
        port_entries.sort_unstable_by_key(|e| e.aid);
        ApSnapshot {
            bssid: self.bssid,
            ssid: self.ssid.clone(),
            dtim_period: self.dtim_period,
            aid_lo: self.aid_lo,
            aid_hi: self.aid_hi,
            next_fresh_aid: self.next_fresh_aid,
            freed_aids: freed,
            port_messages_received: self.port_messages_received,
            clients,
            port_entries,
        }
    }

    /// Reconstructs an AP from a snapshot taken by
    /// [`AccessPoint::snapshot`]. The restored AP answers every
    /// association, port-table and expiry query exactly as the
    /// snapshotted one did; its broadcast buffer starts empty.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidAidRange`] for a bad allocator
    /// range, or [`CoreError::Snapshot`] when the snapshot is
    /// internally inconsistent (AIDs outside the range or duplicated,
    /// port entries for unknown clients, a freed AID above the fresh
    /// watermark).
    pub fn from_snapshot(snapshot: &ApSnapshot) -> Result<Self, CoreError> {
        let mut ap = AccessPoint::with_aid_range(snapshot.bssid, snapshot.aid_lo, snapshot.aid_hi)?;
        ap.ssid = snapshot.ssid.clone();
        if snapshot.dtim_period == 0 {
            return Err(CoreError::Snapshot("DTIM period is zero".to_string()));
        }
        ap.dtim_period = snapshot.dtim_period;
        if snapshot.next_fresh_aid < snapshot.aid_lo
            || snapshot.next_fresh_aid > snapshot.aid_hi.saturating_add(1)
        {
            return Err(CoreError::Snapshot(format!(
                "fresh-AID watermark {} outside range {}..={}",
                snapshot.next_fresh_aid, snapshot.aid_lo, snapshot.aid_hi
            )));
        }
        ap.next_fresh_aid = snapshot.next_fresh_aid;
        ap.port_messages_received = snapshot.port_messages_received;
        for &v in &snapshot.freed_aids {
            if v < snapshot.aid_lo || v >= snapshot.next_fresh_aid {
                return Err(CoreError::Snapshot(format!(
                    "freed AID {v} outside the touched range"
                )));
            }
            ap.freed_aids.push(Reverse(v));
        }
        for client in &snapshot.clients {
            let aid = Aid::new(client.aid).map_err(|_| {
                CoreError::Snapshot(format!("client AID {} is invalid", client.aid))
            })?;
            if client.aid < snapshot.aid_lo
                || client.aid > snapshot.aid_hi
                || client.aid >= snapshot.next_fresh_aid
                || snapshot.freed_aids.binary_search(&client.aid).is_ok()
            {
                return Err(CoreError::Snapshot(format!(
                    "client AID {} is not an allocated AID of the snapshot",
                    client.aid
                )));
            }
            if ap.by_aid.insert(aid, client.mac).is_some() {
                return Err(CoreError::Snapshot(format!(
                    "AID {} assigned to two clients",
                    client.aid
                )));
            }
            if ap
                .clients
                .insert(
                    client.mac,
                    ClientRecord {
                        aid,
                        hide_enabled: client.hide_enabled,
                        unicast_buffered: client.unicast_buffered,
                    },
                )
                .is_some()
            {
                return Err(CoreError::Snapshot(format!(
                    "client {} appears twice",
                    client.mac
                )));
            }
        }
        for entry in &snapshot.port_entries {
            let aid = Aid::new(entry.aid)
                .map_err(|_| CoreError::Snapshot(format!("entry AID {} is invalid", entry.aid)))?;
            if !ap.by_aid.contains_key(&aid) {
                return Err(CoreError::Snapshot(format!(
                    "port entry for unassociated AID {}",
                    entry.aid
                )));
            }
            match entry.last_refresh {
                Some(at) => ap.port_table.update_client_at(aid, &entry.ports, at),
                None => ap.port_table.update_client(aid, &entry.ports),
            }
        }
        ap.port_table.reset_op_counts();
        Ok(ap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_wifi::udp::UdpDatagram;

    fn frame(port: u16) -> BroadcastDataFrame {
        let d = UdpDatagram::new([10, 0, 0, 1], [255; 4], 4000, port, vec![]);
        BroadcastDataFrame::new(MacAddr::station(0), d, false)
    }

    fn port_msg(client: MacAddr, ap: MacAddr, ports: &[u16]) -> UdpPortMessage {
        UdpPortMessage::new(client, ap, ports.iter().copied()).unwrap()
    }

    #[test]
    fn associate_assigns_sequential_aids() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let a = ap.associate(MacAddr::station(1)).unwrap();
        let b = ap.associate(MacAddr::station(2)).unwrap();
        assert_eq!(a.value(), 1);
        assert_eq!(b.value(), 2);
        assert_eq!(ap.client_count(), 2);
    }

    #[test]
    fn reassociation_is_idempotent() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let a = ap.associate(MacAddr::station(1)).unwrap();
        let b = ap.associate(MacAddr::station(1)).unwrap();
        assert_eq!(a, b);
        assert_eq!(ap.client_count(), 1);
    }

    #[test]
    fn disassociate_frees_aid_for_reuse() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let a = ap.associate(MacAddr::station(1)).unwrap();
        ap.disassociate(MacAddr::station(1)).unwrap();
        let b = ap.associate(MacAddr::station(2)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn disassociate_unknown_fails() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        assert!(matches!(
            ap.disassociate(MacAddr::station(9)),
            Err(CoreError::UnknownClient(_))
        ));
    }

    #[test]
    fn port_message_marks_hide_enabled_and_acks() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        ap.associate(mac).unwrap();
        assert!(!ap.is_hide_enabled(mac));
        let ack = ap
            .process_port_message(&port_msg(mac, ap.bssid(), &[5353]), &mut ApCtx::untimed())
            .unwrap();
        assert_eq!(ack.receiver(), mac);
        assert!(ap.is_hide_enabled(mac));
        assert_eq!(ap.port_messages_received(), 1);
    }

    #[test]
    fn fragmented_port_report_reassembles() {
        use hide_wifi::frame::UdpPortMessage as Msg;
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        let ports: Vec<u16> = (1000..1300).collect();
        let msgs = Msg::paginate(mac, ap.bssid(), ports.clone());
        assert!(msgs.len() > 1);
        for (i, m) in msgs.iter().enumerate() {
            // Nothing goes live until the final fragment.
            if i + 1 < msgs.len() {
                ap.process_port_message(m, &mut ApCtx::untimed()).unwrap();
                assert!(ap.port_table().ports_of(aid).len() < ports.len());
            } else {
                ap.process_port_message(m, &mut ApCtx::untimed()).unwrap();
            }
        }
        assert_eq!(ap.port_table().ports_of(aid).len(), ports.len());
        assert!(ap.port_table().client_listens_on(aid, 1299));
    }

    #[test]
    fn unfragmented_message_after_partial_train_discards_nothing_stale() {
        use hide_wifi::frame::UdpPortMessage as Msg;
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        // A dangling first fragment...
        let train = Msg::paginate(mac, ap.bssid(), (0..200u16).collect::<Vec<_>>());
        ap.process_port_message(&train[0], &mut ApCtx::untimed())
            .unwrap();
        // ...followed by a fresh complete (unfragmented-final) report:
        // the final fragment semantics merge the pending half, so the
        // table reflects the union of that train; a subsequent clean
        // report replaces everything.
        ap.process_port_message(&train[1], &mut ApCtx::untimed())
            .unwrap();
        let msg = Msg::new(mac, ap.bssid(), [9999u16]).unwrap();
        ap.process_port_message(&msg, &mut ApCtx::untimed())
            .unwrap();
        assert_eq!(ap.port_table().ports_of(aid), &[9999]);
    }

    #[test]
    fn port_message_from_stranger_rejected() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let err = ap
            .process_port_message(
                &port_msg(MacAddr::station(9), ap.bssid(), &[80]),
                &mut ApCtx::untimed(),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownClient(_)));
    }

    #[test]
    fn dtim_beacon_flags_match_algorithm_one() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac1 = MacAddr::station(1);
        let mac2 = MacAddr::station(2);
        let aid1 = ap.associate(mac1).unwrap();
        let aid2 = ap.associate(mac2).unwrap();
        ap.process_port_message(&port_msg(mac1, ap.bssid(), &[1900]), &mut ApCtx::untimed())
            .unwrap();
        ap.process_port_message(&port_msg(mac2, ap.bssid(), &[5353]), &mut ApCtx::untimed())
            .unwrap();
        ap.enqueue_broadcast(frame(1900));

        let beacon = ap.dtim_beacon(0);
        let btim = beacon.btim().unwrap();
        assert!(btim.is_set(aid1));
        assert!(!btim.is_set(aid2));
        // Legacy path: the TIM broadcast bit is set because frames are
        // buffered, regardless of usefulness.
        assert!(beacon.tim().unwrap().broadcast_buffered());
    }

    #[test]
    fn observed_dtim_beacon_matches_plain_and_records() {
        use hide_obs::{Counter, Recorder};
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        ap.associate(mac).unwrap();
        ap.process_port_message(&port_msg(mac, ap.bssid(), &[1900]), &mut ApCtx::untimed())
            .unwrap();
        ap.enqueue_broadcast(frame(1900));

        let mut rec = Recorder::new();
        let observed = ap
            .clone()
            .emit_dtim_beacon(0, &mut ApCtx::untimed().with_metrics(&mut rec));
        // The deprecated shim must stay byte-for-byte equivalent to the
        // canonical entry point for as long as it exists.
        #[allow(deprecated)]
        let shimmed = {
            let mut shim_rec = Recorder::new();
            ap.clone().dtim_beacon_observed(0, &mut shim_rec)
        };
        let plain = ap.dtim_beacon(0);
        assert_eq!(observed.to_bytes(), plain.to_bytes());
        assert_eq!(shimmed.to_bytes(), plain.to_bytes());
        assert_eq!(rec.counter(Counter::BtimBeacons), 1);
        assert_eq!(rec.counter(Counter::BtimBitsSet), 1);
        assert!(rec.counter(Counter::BtimBytes) > 0);
    }

    #[test]
    fn non_dtim_beacon_has_empty_btim_and_count() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        ap.set_dtim_period(3);
        ap.enqueue_broadcast(frame(1900));
        let beacon = ap.beacon(1, 2);
        assert_eq!(beacon.tim().unwrap().dtim_count(), 2);
        assert!(!beacon.tim().unwrap().broadcast_buffered());
        assert!(beacon.btim().unwrap().is_empty());
    }

    #[test]
    fn beacons_advertise_ssid_and_rates() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        ap.set_ssid("corp-wifi");
        let beacon = Beacon::parse(&ap.dtim_beacon(0).to_bytes()).unwrap();
        assert_eq!(beacon.ssid().as_deref(), Some("corp-wifi"));
        assert!(beacon.tim().is_some());
        assert!(beacon.btim().is_some());
    }

    #[test]
    fn delivery_drains_buffer() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        ap.enqueue_broadcast(frame(1));
        ap.enqueue_broadcast(frame(2));
        assert_eq!(ap.buffered_broadcasts(), 2);
        let burst = ap.deliver_broadcasts();
        assert_eq!(burst.len(), 2);
        assert!(burst[0].more_data());
        assert_eq!(ap.buffered_broadcasts(), 0);
    }

    #[test]
    fn usefulness_follows_port_table() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        ap.process_port_message(&port_msg(mac, ap.bssid(), &[5353]), &mut ApCtx::untimed())
            .unwrap();
        assert!(ap.is_useful_for(aid, &frame(5353)));
        assert!(!ap.is_useful_for(aid, &frame(1900)));
    }

    #[test]
    fn non_udp_frame_is_useful_to_everyone() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let aid = ap.associate(MacAddr::station(1)).unwrap();
        let raw = BroadcastDataFrame::from_raw_body(MacAddr::station(0), vec![0; 40], false);
        assert!(ap.is_useful_for(aid, &raw));
    }

    #[test]
    fn unicast_tim_bit_set_and_cleared() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        ap.buffer_unicast(mac).unwrap();
        let beacon = ap.dtim_beacon(0);
        assert!(beacon.tim().unwrap().traffic_for(aid));
        assert_eq!(ap.ps_poll(mac).unwrap(), 0);
        let beacon = ap.dtim_beacon(1);
        assert!(!beacon.tim().unwrap().traffic_for(aid));
    }

    #[test]
    fn timed_port_message_expires_when_refresh_stops() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        ap.process_port_message(&port_msg(mac, ap.bssid(), &[5353]), &mut ApCtx::at(0.0))
            .unwrap();
        assert!(ap.is_useful_for(aid, &frame(5353)));
        // Still fresh at a cutoff behind the refresh.
        assert!(ap.expire_stale_port_entries(0.0).is_empty());
        let report = ap.expire_stale_port_entries(10.0);
        assert_eq!(report.clients, vec![aid]);
        assert_eq!(report.entries_removed, 1);
        // Expired but still associated and HIDE-enabled.
        assert_eq!(ap.aid_of(mac), Some(aid));
        assert!(ap.is_hide_enabled(mac));
        assert!(!ap.is_useful_for(aid, &frame(5353)));
        // The next refresh brings the interests back.
        ap.process_port_message(&port_msg(mac, ap.bssid(), &[5353]), &mut ApCtx::at(20.0))
            .unwrap();
        assert!(ap.is_useful_for(aid, &frame(5353)));
    }

    #[test]
    fn untimed_port_message_never_expires() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        ap.process_port_message(&port_msg(mac, ap.bssid(), &[5353]), &mut ApCtx::untimed())
            .unwrap();
        assert!(ap.expire_stale_port_entries(f64::MAX).is_empty());
        assert!(ap.is_useful_for(aid, &frame(5353)));
    }

    #[test]
    fn timed_fragmented_report_stamps_on_final_fragment() {
        use hide_wifi::frame::UdpPortMessage as Msg;
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        let ports: Vec<u16> = (1000..1300).collect();
        let msgs = Msg::paginate(mac, ap.bssid(), ports.clone());
        assert!(msgs.len() > 1);
        for (i, m) in msgs.iter().enumerate() {
            ap.process_port_message(m, &mut ApCtx::at(i as f64))
                .unwrap();
        }
        assert_eq!(ap.port_table().ports_of(aid).len(), ports.len());
        assert_eq!(
            ap.port_table().last_refresh_of(aid),
            Some((msgs.len() - 1) as f64)
        );
    }

    #[test]
    fn disassociation_clears_port_table() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mac = MacAddr::station(1);
        let aid = ap.associate(mac).unwrap();
        ap.process_port_message(&port_msg(mac, ap.bssid(), &[1900]), &mut ApCtx::untimed())
            .unwrap();
        ap.disassociate(mac).unwrap();
        assert!(ap.port_table().clients_for_port(1900).is_empty());
        // A frame for the departed client flags nobody.
        ap.enqueue_broadcast(frame(1900));
        let beacon = ap.dtim_beacon(0);
        assert!(!beacon.btim().unwrap().is_set(aid));
    }
}
