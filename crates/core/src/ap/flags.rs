//! Algorithm 1: calculating per-client broadcast flags.
//!
//! Right before a DTIM beacon, the AP resets all broadcast flags, then
//! walks every buffered broadcast frame: it extracts the UDP destination
//! port, looks up the clients listening on that port in the Client UDP
//! Port Table, and sets those clients' flags to 1.
//!
//! Frames that are not UDP-padded are skipped here — HIDE only manages
//! UDP-padded broadcast frames; anything else is announced through the
//! standard TIM broadcast bit and delivered to everyone.

use crate::ap::{BroadcastBuffer, ClientPortTable};
use hide_obs::{Counter, Distribution, MetricsSink, NoopSink};
use hide_wifi::bitmap::PartialVirtualBitmap;

/// Runs Algorithm 1 over the buffered frames, returning the broadcast
/// flags bitmap carried by the BTIM element.
///
/// # Example
///
/// ```
/// use hide_core::ap::{calculate_broadcast_flags, BroadcastBuffer, ClientPortTable};
/// use hide_wifi::frame::BroadcastDataFrame;
/// use hide_wifi::mac::{Aid, MacAddr};
/// use hide_wifi::udp::UdpDatagram;
///
/// let mut table = ClientPortTable::new();
/// table.update_client(Aid::new(1)?, &[5353]);
///
/// let mut buffer = BroadcastBuffer::new();
/// let d = UdpDatagram::new([10, 0, 0, 1], [255; 4], 4000, 5353, vec![]);
/// buffer.push(BroadcastDataFrame::new(MacAddr::station(0), d, false));
///
/// let flags = calculate_broadcast_flags(&buffer, &table);
/// assert!(flags.is_set(Aid::new(1)?));
/// assert!(!flags.is_set(Aid::new(2)?));
/// # Ok::<(), hide_wifi::WifiError>(())
/// ```
pub fn calculate_broadcast_flags(
    buffer: &BroadcastBuffer,
    table: &ClientPortTable,
) -> PartialVirtualBitmap {
    let mut flags = PartialVirtualBitmap::new();
    calculate_broadcast_flags_into(buffer, table, &mut flags);
    flags
}

/// Algorithm 1 into a caller-owned bitmap: one pass over the buffered
/// frames produces every client's flag with no per-frame allocation —
/// each frame costs one hash probe ([`ClientPortTable::postings_for_port`],
/// the `τ_lp` of Eq. 26) plus a walk of the borrowed posting list.
pub fn calculate_broadcast_flags_into(
    buffer: &BroadcastBuffer,
    table: &ClientPortTable,
    flags: &mut PartialVirtualBitmap,
) {
    calculate_broadcast_flags_observed(buffer, table, flags, &mut NoopSink);
}

/// Algorithm 1 with instrumentation: identical to
/// [`calculate_broadcast_flags_into`] (which delegates here with a
/// [`NoopSink`], so the uninstrumented path monomorphizes to the same
/// code), plus per-DTIM metrics — the buffered frame count (`n_f`),
/// frames skipped for not being UDP-padded, and the posting-list length
/// each lookup returned.
pub fn calculate_broadcast_flags_observed<S: MetricsSink>(
    buffer: &BroadcastBuffer,
    table: &ClientPortTable,
    flags: &mut PartialVirtualBitmap,
    sink: &mut S,
) {
    sink.observe(Distribution::FramesPerDtim, buffer.len() as u64);
    // Line 1: initialize the array of broadcast flags to all 0.
    flags.reset();
    // Lines 2-11: for every buffered frame, set the flag of every client
    // listening on its UDP destination port.
    for frame in buffer.iter() {
        let Ok(port) = frame.udp_dst_port() else {
            sink.incr(Counter::NonUdpFrames);
            continue; // not UDP-padded: outside HIDE's scope
        };
        let postings = table.postings_for_port(port);
        sink.observe(Distribution::PostingsPerLookup, postings.len() as u64);
        for &client in postings {
            flags.set(client);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_wifi::frame::BroadcastDataFrame;
    use hide_wifi::mac::{Aid, MacAddr};
    use hide_wifi::udp::UdpDatagram;

    fn aid(v: u16) -> Aid {
        Aid::new(v).unwrap()
    }

    fn frame(port: u16) -> BroadcastDataFrame {
        let d = UdpDatagram::new([10, 0, 0, 1], [255; 4], 4000, port, vec![]);
        BroadcastDataFrame::new(MacAddr::station(0), d, false)
    }

    #[test]
    fn empty_buffer_yields_empty_flags() {
        let table = ClientPortTable::new();
        let buffer = BroadcastBuffer::new();
        assert!(calculate_broadcast_flags(&buffer, &table).is_empty());
    }

    #[test]
    fn flag_set_only_for_listening_clients() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[1900]);
        table.update_client(aid(2), &[5353]);
        let mut buffer = BroadcastBuffer::new();
        buffer.push(frame(1900));
        let flags = calculate_broadcast_flags(&buffer, &table);
        assert!(flags.is_set(aid(1)));
        assert!(!flags.is_set(aid(2)));
    }

    #[test]
    fn one_frame_can_flag_many_clients() {
        let mut table = ClientPortTable::new();
        for v in 1..=5 {
            table.update_client(aid(v), &[5353]);
        }
        let mut buffer = BroadcastBuffer::new();
        buffer.push(frame(5353));
        let flags = calculate_broadcast_flags(&buffer, &table);
        assert_eq!(flags.count(), 5);
    }

    #[test]
    fn multiple_frames_union_their_flags() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[1900]);
        table.update_client(aid(2), &[5353]);
        let mut buffer = BroadcastBuffer::new();
        buffer.push(frame(1900));
        buffer.push(frame(5353));
        let flags = calculate_broadcast_flags(&buffer, &table);
        assert!(flags.is_set(aid(1)));
        assert!(flags.is_set(aid(2)));
    }

    #[test]
    fn non_udp_frames_are_skipped() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[1900]);
        let mut buffer = BroadcastBuffer::new();
        buffer.push(BroadcastDataFrame::from_raw_body(
            MacAddr::station(0),
            vec![0u8; 64], // not LLC/SNAP+IP+UDP
            false,
        ));
        let flags = calculate_broadcast_flags(&buffer, &table);
        assert!(flags.is_empty());
    }

    #[test]
    fn observed_flags_count_skips_and_postings() {
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[1900]);
        table.update_client(aid(2), &[1900]);
        let mut buffer = BroadcastBuffer::new();
        buffer.push(frame(1900)); // 2 postings
        buffer.push(frame(5353)); // 0 postings
        buffer.push(BroadcastDataFrame::from_raw_body(
            MacAddr::station(0),
            vec![0u8; 64],
            false,
        )); // skipped: not UDP
        let mut flags = PartialVirtualBitmap::new();
        let mut rec = hide_obs::Recorder::new();
        calculate_broadcast_flags_observed(&buffer, &table, &mut flags, &mut rec);
        assert_eq!(flags.count(), 2);
        assert_eq!(rec.counter(Counter::NonUdpFrames), 1);
        let per_dtim = rec.distribution(Distribution::FramesPerDtim);
        assert_eq!((per_dtim.count(), per_dtim.max()), (1, 3));
        let postings = rec.distribution(Distribution::PostingsPerLookup);
        assert_eq!(
            (postings.count(), postings.min(), postings.max()),
            (2, 0, 2)
        );
    }

    #[test]
    fn one_lookup_per_buffered_frame() {
        // Eq. (26) charges n_f lookups per DTIM; verify the algorithm
        // performs exactly that many.
        let mut table = ClientPortTable::new();
        table.update_client(aid(1), &[1900]);
        let mut buffer = BroadcastBuffer::new();
        for _ in 0..7 {
            buffer.push(frame(1900));
        }
        table.reset_op_counts();
        let _ = calculate_broadcast_flags(&buffer, &table);
        assert_eq!(table.op_counts().lookups, 7);
    }
}
