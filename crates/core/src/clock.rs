//! Time sources for the AP core.
//!
//! The AP itself is time-agnostic: every timed entry point takes its
//! timestamp through an [`crate::ap::ApCtx`]. What *produces* those
//! timestamps differs by deployment — a discrete-event simulation owns
//! a virtual clock it advances itself, while the `hide-apd` daemon
//! reads the machine's monotonic clock. [`Clock`] is that seam:
//!
//! * [`MonotonicClock`] — wall-progress seconds since construction,
//!   backed by [`std::time::Instant`]; what the daemon's DTIM cadence
//!   and refresh staleness run on.
//! * [`VirtualClock`] — a shared, manually advanced clock for
//!   simulations and tests; cloning yields a handle onto the same
//!   underlying time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotone source of seconds-since-start timestamps.
///
/// Implementations must be monotonically nondecreasing: the AP-side
/// staleness logic ([`crate::ap::ClientPortTable::expire_stale`]) and
/// the daemon's DTIM scheduler both assume time never runs backwards.
pub trait Clock {
    /// Seconds elapsed since the clock's origin.
    fn now(&self) -> f64;
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now(&self) -> f64 {
        (**self).now()
    }
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now(&self) -> f64 {
        (**self).now()
    }
}

/// Real time: seconds since construction, from the OS monotonic clock.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// Virtual time: advanced explicitly, shared between clones.
///
/// The f64 timestamp is stored as its bit pattern in an [`AtomicU64`],
/// so handles on different threads (a test driving a daemon, say) see
/// a consistent value without locks.
///
/// # Example
///
/// ```
/// use hide_core::clock::{Clock, VirtualClock};
///
/// let clock = VirtualClock::new();
/// let handle = clock.clone();
/// clock.advance(1.5);
/// assert_eq!(handle.now(), 1.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    bits: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock at time zero.
    pub fn new() -> Self {
        VirtualClock::starting_at(0.0)
    }

    /// A virtual clock starting at `origin` seconds.
    pub fn starting_at(origin: f64) -> Self {
        VirtualClock {
            bits: Arc::new(AtomicU64::new(origin.to_bits())),
        }
    }

    /// Moves the clock to `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` would move time backwards (monotonicity is part
    /// of the [`Clock`] contract).
    pub fn set(&self, now: f64) {
        let current = self.now();
        assert!(
            now >= current,
            "VirtualClock::set would move time backwards ({now} < {current})"
        );
        self.bits.store(now.to_bits(), Ordering::SeqCst);
    }

    /// Advances the clock by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn advance(&self, dt: f64) {
        assert!(dt >= 0.0, "VirtualClock::advance takes a nonnegative step");
        self.set(self.now() + dt);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let clock = MonotonicClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_is_shared_across_clones() {
        let clock = VirtualClock::starting_at(2.0);
        let other = clock.clone();
        clock.advance(0.5);
        assert_eq!(other.now(), 2.5);
        other.set(4.0);
        assert_eq!(clock.now(), 4.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn virtual_clock_rejects_time_travel() {
        let clock = VirtualClock::starting_at(5.0);
        clock.set(1.0);
    }

    #[test]
    fn clock_references_delegate() {
        fn read<C: Clock>(c: C) -> f64 {
            c.now()
        }
        let clock = VirtualClock::starting_at(7.0);
        assert_eq!(read(&clock), 7.0);
        assert_eq!(read(Arc::new(clock)), 7.0);
    }
}
