//! The HIDE protocol core (Section III of the paper).
//!
//! HIDE is a cooperation between an access point and its smartphone
//! clients that hides *useless* UDP-padded broadcast frames from clients
//! in suspend mode:
//!
//! 1. Before suspending, a [`client::HideClient`] collects its open UDP
//!    ports and sends them to the AP in a *UDP Port Message*.
//! 2. The [`ap::AccessPoint`] stores them in the
//!    [`ap::ClientPortTable`] and ACKs.
//! 3. At each DTIM boundary the AP runs Algorithm 1
//!    ([`ap::calculate_broadcast_flags`]) over its buffered broadcast
//!    frames and announces per-client *broadcast flags* in a BTIM
//!    element in the beacon.
//! 4. A HIDE client checks only its own BTIM bit; legacy clients keep
//!    following the standard one-bit DTIM indication, so both coexist.
//!
//! # Example
//!
//! ```
//! use hide_core::ap::{AccessPoint, ApCtx};
//! use hide_core::client::{HideClient, OpenPortRegistry, WakeDecision};
//! use hide_wifi::frame::BroadcastDataFrame;
//! use hide_wifi::mac::MacAddr;
//! use hide_wifi::udp::UdpDatagram;
//!
//! # fn main() -> Result<(), hide_core::CoreError> {
//! let mut ap = AccessPoint::new(MacAddr::station(0));
//! let mut ports = OpenPortRegistry::new();
//! ports.bind(5353, [0, 0, 0, 0])?; // mDNS on INADDR_ANY
//! let mut client = HideClient::new(MacAddr::station(1), ports);
//!
//! // Associate and synchronize ports before suspending.
//! let aid = ap.associate(client.mac())?;
//! client.set_aid(aid);
//! let msg = client.prepare_suspend()?;
//! let ack = ap.process_port_message(&msg, &mut ApCtx::untimed())?;
//! client.handle_ack(&ack)?;
//!
//! // A useless SSDP frame (port 1900) and a useful mDNS frame (5353).
//! ap.enqueue_broadcast(BroadcastDataFrame::new(
//!     ap.bssid(),
//!     UdpDatagram::new([10, 0, 0, 9], [255; 4], 4000, 1900, vec![]),
//!     false,
//! ));
//! let beacon = ap.dtim_beacon(0);
//! assert_eq!(client.handle_beacon(&beacon)?, WakeDecision::StaySuspended);
//!
//! ap.enqueue_broadcast(BroadcastDataFrame::new(
//!     ap.bssid(),
//!     UdpDatagram::new([10, 0, 0, 9], [255; 4], 4000, 5353, vec![]),
//!     false,
//! ));
//! let beacon = ap.dtim_beacon(1);
//! assert_eq!(client.handle_beacon(&beacon)?, WakeDecision::WakeForBroadcast);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ap;
pub mod client;
pub mod clock;
pub mod error;
pub mod fx;

pub use error::CoreError;
