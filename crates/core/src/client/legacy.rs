//! A legacy (non-HIDE) power-saving client.
//!
//! Follows the standard 802.11 rules: on a DTIM beacon it checks the
//! first bit of the TIM's Bitmap Control field and, when set, stays
//! awake for the entire broadcast delivery. It discards the BTIM
//! element (an unknown element ID to it) — the coexistence property of
//! Section III.D.

use crate::client::agent::WakeDecision;
use crate::error::CoreError;
use hide_wifi::frame::Beacon;
use hide_wifi::ie::Tim;
use hide_wifi::mac::{Aid, MacAddr};

/// A standard 802.11 power-saving client without HIDE support.
///
/// # Example
///
/// ```
/// use hide_core::client::{LegacyClient, WakeDecision};
/// use hide_core::ap::AccessPoint;
/// use hide_wifi::frame::BroadcastDataFrame;
/// use hide_wifi::mac::MacAddr;
/// use hide_wifi::udp::UdpDatagram;
///
/// # fn main() -> Result<(), hide_core::CoreError> {
/// let mut ap = AccessPoint::new(MacAddr::station(0));
/// let mut legacy = LegacyClient::new(MacAddr::station(1));
/// legacy.set_aid(ap.associate(legacy.mac())?);
///
/// // Any buffered broadcast wakes a legacy client, useful or not.
/// let d = UdpDatagram::new([10, 0, 0, 1], [255; 4], 1, 1900, vec![]);
/// ap.enqueue_broadcast(BroadcastDataFrame::new(ap.bssid(), d, false));
/// let beacon = ap.dtim_beacon(0);
/// assert_eq!(legacy.handle_beacon(&beacon)?, WakeDecision::WakeForBroadcast);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LegacyClient {
    mac: MacAddr,
    aid: Option<Aid>,
}

impl LegacyClient {
    /// Creates a legacy client.
    pub fn new(mac: MacAddr) -> Self {
        LegacyClient { mac, aid: None }
    }

    /// The client's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Records the AID assigned at association.
    pub fn set_aid(&mut self, aid: Aid) {
        self.aid = Some(aid);
    }

    /// Standard beacon handling: wake when the one-bit broadcast
    /// indication is set or when unicast traffic is buffered for us.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotAssociated`] when the client has no AID.
    pub fn handle_beacon(&self, beacon: &Beacon) -> Result<WakeDecision, CoreError> {
        let aid = self.aid.ok_or(CoreError::NotAssociated)?;
        if beacon.tim().is_some_and(Tim::broadcast_buffered) {
            return Ok(WakeDecision::WakeForBroadcast);
        }
        if beacon.tim().is_some_and(|tim| tim.traffic_for(aid)) {
            return Ok(WakeDecision::WakeForUnicast);
        }
        Ok(WakeDecision::StaySuspended)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ap::{AccessPoint, ApCtx};
    use hide_wifi::frame::BroadcastDataFrame;
    use hide_wifi::udp::UdpDatagram;

    fn frame(port: u16) -> BroadcastDataFrame {
        let d = UdpDatagram::new([10, 0, 0, 1], [255; 4], 4000, port, vec![]);
        BroadcastDataFrame::new(MacAddr::station(0), d, false)
    }

    #[test]
    fn requires_association() {
        let legacy = LegacyClient::new(MacAddr::station(1));
        let beacon = Beacon::builder(MacAddr::station(0)).dtim(0, 1).build();
        assert!(matches!(
            legacy.handle_beacon(&beacon),
            Err(CoreError::NotAssociated)
        ));
    }

    #[test]
    fn wakes_for_any_buffered_broadcast() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mut legacy = LegacyClient::new(MacAddr::station(1));
        legacy.set_aid(ap.associate(legacy.mac()).unwrap());
        ap.enqueue_broadcast(frame(1900));
        let beacon = ap.dtim_beacon(0);
        assert_eq!(
            legacy.handle_beacon(&beacon).unwrap(),
            WakeDecision::WakeForBroadcast
        );
    }

    #[test]
    fn stays_suspended_when_nothing_buffered() {
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mut legacy = LegacyClient::new(MacAddr::station(1));
        legacy.set_aid(ap.associate(legacy.mac()).unwrap());
        let beacon = ap.dtim_beacon(0);
        assert_eq!(
            legacy.handle_beacon(&beacon).unwrap(),
            WakeDecision::StaySuspended
        );
    }

    #[test]
    fn coexistence_hide_sleeps_while_legacy_wakes() {
        use crate::client::{HideClient, OpenPortRegistry};

        let mut ap = AccessPoint::new(MacAddr::station(0));

        let mut legacy = LegacyClient::new(MacAddr::station(1));
        legacy.set_aid(ap.associate(legacy.mac()).unwrap());

        let mut reg = OpenPortRegistry::new();
        reg.bind(5353, [0, 0, 0, 0]).unwrap();
        let mut hide = HideClient::new(MacAddr::station(2), reg);
        hide.set_aid(ap.associate(hide.mac()).unwrap());
        hide.set_bssid(ap.bssid());
        let msg = hide.prepare_suspend().unwrap();
        let ack = ap
            .process_port_message(&msg, &mut ApCtx::untimed())
            .unwrap();
        hide.handle_ack(&ack).unwrap();

        // A frame useless to the HIDE client (it listens on 5353 only).
        ap.enqueue_broadcast(frame(1900));
        let beacon = ap.dtim_beacon(0);

        assert_eq!(
            legacy.handle_beacon(&beacon).unwrap(),
            WakeDecision::WakeForBroadcast,
            "legacy client must receive every broadcast"
        );
        assert_eq!(
            hide.handle_beacon(&beacon).unwrap(),
            WakeDecision::StaySuspended,
            "HIDE client sleeps through the useless frame"
        );
    }
}
