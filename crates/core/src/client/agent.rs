//! The HIDE client agent (Fig. 2's client-side state machine).

use crate::client::OpenPortRegistry;
use crate::error::CoreError;
use hide_wifi::assoc::{AssociationRequest, AssociationResponse};
use hide_wifi::frame::{Ack, Beacon, BroadcastDataFrame, UdpPortMessage};
use hide_wifi::ie::Tim;
use hide_wifi::mac::{Aid, MacAddr};

/// What a suspended client should do after inspecting a beacon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WakeDecision {
    /// No useful broadcast and no unicast buffered: remain suspended.
    StaySuspended,
    /// The client's BTIM bit is set: prepare the radio, receive the
    /// broadcast delivery, then wake the system to process it.
    WakeForBroadcast,
    /// Only unicast traffic is buffered: PS-Poll it.
    WakeForUnicast,
}

/// Power state the agent believes the system is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AgentState {
    Active,
    AwaitingAck { seq: u16 },
    Suspended,
}

/// The client half of the HIDE protocol.
///
/// Drives the Fig. 2 sequence: collect open UDP ports, send the UDP
/// Port Message, wait for the ACK, suspend, then evaluate each beacon's
/// BTIM bit while suspended.
#[derive(Debug, Clone)]
pub struct HideClient {
    mac: MacAddr,
    aid: Option<Aid>,
    bssid: MacAddr,
    ports: OpenPortRegistry,
    state: AgentState,
    seq: u16,
    synced_generation: Option<u64>,
    port_messages_sent: u64,
    retransmissions: u64,
}

impl HideClient {
    /// Creates a client with the given MAC address and port registry.
    pub fn new(mac: MacAddr, ports: OpenPortRegistry) -> Self {
        HideClient {
            mac,
            aid: None,
            bssid: MacAddr::BROADCAST,
            ports,
            state: AgentState::Active,
            seq: 0,
            synced_generation: None,
            port_messages_sent: 0,
            retransmissions: 0,
        }
    }

    /// Records the BSSID of the associated AP; UDP Port Messages are
    /// addressed to it.
    pub fn set_bssid(&mut self, bssid: MacAddr) {
        self.bssid = bssid;
    }

    /// Builds an over-the-air association request for `ssid`, declaring
    /// HIDE support.
    pub fn association_request(&self, ap: MacAddr, ssid: impl Into<String>) -> AssociationRequest {
        AssociationRequest::new(self.mac, ap, ssid).with_hide_support()
    }

    /// Processes the AP's association response, recording the assigned
    /// AID and BSSID on success.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotAssociated`] when the AP denied the
    /// request and [`CoreError::UnexpectedAck`] when the response is
    /// addressed to another station.
    pub fn handle_association_response(
        &mut self,
        response: &AssociationResponse,
    ) -> Result<Aid, CoreError> {
        if response.client() != self.mac {
            return Err(CoreError::UnexpectedAck {
                receiver: response.client(),
                expected: self.mac,
            });
        }
        let Some(aid) = response.aid().filter(|_| response.is_success()) else {
            return Err(CoreError::NotAssociated);
        };
        self.aid = Some(aid);
        self.bssid = response.ap();
        Ok(aid)
    }

    /// The client's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// The association ID, once associated.
    pub fn aid(&self) -> Option<Aid> {
        self.aid
    }

    /// Records the AID assigned at association time.
    pub fn set_aid(&mut self, aid: Aid) {
        self.aid = Some(aid);
    }

    /// Mutable access to the port registry (apps bind/close ports while
    /// the system is active).
    pub fn ports_mut(&mut self) -> &mut OpenPortRegistry {
        // Any port change happens in active mode by definition — the
        // paper notes the system must have resumed to process such an
        // event.
        self.state = AgentState::Active;
        &mut self.ports
    }

    /// The port registry.
    pub fn ports(&self) -> &OpenPortRegistry {
        &self.ports
    }

    /// Whether the agent believes the system is suspended.
    pub fn is_suspended(&self) -> bool {
        self.state == AgentState::Suspended
    }

    /// Whether the port set changed since the last acknowledged sync
    /// (i.e. whether `prepare_suspend` will actually transmit).
    pub fn needs_sync(&self) -> bool {
        self.synced_generation != Some(self.ports.generation())
    }

    /// Builds the UDP Port Message to send before entering suspend
    /// (Fig. 2, step 1). Always returns a message — the paper's client
    /// sends one before every suspend; callers that want to skip
    /// redundant syncs can check [`HideClient::needs_sync`] first.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotAssociated`] when called before
    /// [`HideClient::set_aid`], and propagates element-size errors for
    /// pathological port counts.
    pub fn prepare_suspend(&mut self) -> Result<UdpPortMessage, CoreError> {
        if self.aid.is_none() {
            return Err(CoreError::NotAssociated);
        }
        self.seq = (self.seq + 1) & 0x0fff;
        let msg = UdpPortMessage::new(self.mac, self.bssid, self.ports.reportable_ports())?
            .with_seq(self.seq);
        self.state = AgentState::AwaitingAck { seq: self.seq };
        self.port_messages_sent += 1;
        Ok(msg)
    }

    /// Like [`HideClient::prepare_suspend`] but paginates arbitrarily
    /// large port sets into a fragment train (More Fragments bit set on
    /// all but the last message). The AP reassembles the train into one
    /// table refresh; the final message's ACK completes the handshake.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotAssociated`] when called before
    /// association.
    pub fn prepare_suspend_paginated(&mut self) -> Result<Vec<UdpPortMessage>, CoreError> {
        if self.aid.is_none() {
            return Err(CoreError::NotAssociated);
        }
        self.seq = (self.seq + 1) & 0x0fff;
        let msgs = UdpPortMessage::paginate(self.mac, self.bssid, self.ports.reportable_ports())
            .into_iter()
            .map(|m| m.with_seq(self.seq))
            .collect::<Vec<_>>();
        self.state = AgentState::AwaitingAck { seq: self.seq };
        self.port_messages_sent += msgs.len() as u64;
        Ok(msgs)
    }

    /// Re-builds the last UDP Port Message after an ACK timeout (the
    /// normal 802.11 retransmission path).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotAssociated`] if the client was never
    /// associated.
    pub fn retransmit(&mut self) -> Result<UdpPortMessage, CoreError> {
        if self.aid.is_none() {
            return Err(CoreError::NotAssociated);
        }
        self.retransmissions += 1;
        let msg = UdpPortMessage::new(self.mac, self.bssid, self.ports.reportable_ports())?
            .with_seq(self.seq);
        Ok(msg)
    }

    /// Handles the AP's ACK: the sync succeeded, enter suspend mode
    /// (Fig. 2, step 3).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnexpectedAck`] when the ACK is addressed to
    /// another station.
    pub fn handle_ack(&mut self, ack: &Ack) -> Result<(), CoreError> {
        if ack.receiver() != self.mac {
            return Err(CoreError::UnexpectedAck {
                receiver: ack.receiver(),
                expected: self.mac,
            });
        }
        if matches!(self.state, AgentState::AwaitingAck { .. }) {
            self.synced_generation = Some(self.ports.generation());
            self.state = AgentState::Suspended;
        }
        Ok(())
    }

    /// Inspects a beacon while suspended and decides whether to wake
    /// (Fig. 2, steps 4-5).
    ///
    /// HIDE semantics: the client checks *its own* BTIM bit rather than
    /// the legacy all-clients broadcast bit. If the BTIM bit is set it
    /// must receive the broadcast delivery (regardless of unicast
    /// state); otherwise it stays suspended unless unicast frames are
    /// buffered for it. Under a legacy AP (no BTIM element in the
    /// beacon) the client falls back to the standard one-bit DTIM
    /// indication — it cannot risk missing broadcasts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotAssociated`] when the client has no AID.
    pub fn handle_beacon(&self, beacon: &Beacon) -> Result<WakeDecision, CoreError> {
        let aid = self.aid.ok_or(CoreError::NotAssociated)?;
        let broadcast = match beacon.btim() {
            Some(btim) => btim.is_set(aid),
            None => beacon.tim().is_some_and(Tim::broadcast_buffered),
        };
        if broadcast {
            return Ok(WakeDecision::WakeForBroadcast);
        }
        let unicast = beacon.tim().is_some_and(|tim| tim.traffic_for(aid));
        if unicast {
            return Ok(WakeDecision::WakeForUnicast);
        }
        Ok(WakeDecision::StaySuspended)
    }

    /// Processes a received broadcast frame once awake: returns whether
    /// an application actually consumes it (its destination port is
    /// bound to `INADDR_ANY`).
    pub fn consumes(&self, frame: &BroadcastDataFrame) -> bool {
        frame
            .udp_dst_port()
            .map(|port| self.ports.accepts_broadcast(port))
            .unwrap_or(false)
    }

    /// Marks the system resumed to active mode (frame processing, app
    /// activity).
    pub fn resume(&mut self) {
        self.state = AgentState::Active;
    }

    /// Total UDP Port Messages sent (the `M` of Eq. 18).
    pub fn port_messages_sent(&self) -> u64 {
        self.port_messages_sent
    }

    /// Total retransmissions performed.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_wifi::bitmap::PartialVirtualBitmap;
    use hide_wifi::ie::{Btim, InformationElement, Tim};

    fn client_with_ports(ports: &[u16]) -> HideClient {
        let mut reg = OpenPortRegistry::new();
        for &p in ports {
            reg.bind(p, [0, 0, 0, 0]).unwrap();
        }
        let mut c = HideClient::new(MacAddr::station(1), reg);
        c.set_aid(Aid::new(1).unwrap());
        c
    }

    fn beacon(btim_aids: &[u16], tim_aids: &[u16]) -> Beacon {
        let mut flags = PartialVirtualBitmap::new();
        for &v in btim_aids {
            flags.set(Aid::new(v).unwrap());
        }
        let mut unicast = PartialVirtualBitmap::new();
        for &v in tim_aids {
            unicast.set(Aid::new(v).unwrap());
        }
        Beacon::builder(MacAddr::station(0))
            .tim(Tim::new(0, 1, false, unicast))
            .element(InformationElement::Btim(Btim::new(flags)))
            .build()
    }

    #[test]
    fn over_the_air_association_flow() {
        use crate::ap::AccessPoint;
        use hide_wifi::assoc::AssociationRequest;

        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mut client = HideClient::new(MacAddr::station(1), OpenPortRegistry::new());

        // Request and response cross the air as real bytes.
        let req_bytes = client.association_request(ap.bssid(), "lab").to_bytes();
        let req = AssociationRequest::parse(&req_bytes).unwrap();
        assert!(req.supports_hide());
        let resp_bytes = ap.handle_association_request(&req).to_bytes();
        let resp = hide_wifi::assoc::AssociationResponse::parse(&resp_bytes).unwrap();
        let aid = client.handle_association_response(&resp).unwrap();

        assert_eq!(Some(aid), ap.aid_of(client.mac()));
        assert!(ap.is_hide_enabled(client.mac()), "capability recorded");
        // The client can now run the suspend handshake.
        let msg = client.prepare_suspend().unwrap();
        assert_eq!(msg.ap(), ap.bssid());
    }

    #[test]
    fn denied_association_leaves_client_unassociated() {
        use hide_wifi::assoc::AssociationResponse;
        let mut client = HideClient::new(MacAddr::station(1), OpenPortRegistry::new());
        let resp = AssociationResponse::denied(MacAddr::station(0), client.mac(), 17);
        assert!(matches!(
            client.handle_association_response(&resp),
            Err(CoreError::NotAssociated)
        ));
        assert!(client.aid().is_none());
    }

    #[test]
    fn response_for_other_station_rejected() {
        use hide_wifi::assoc::AssociationResponse;
        let mut client = HideClient::new(MacAddr::station(1), OpenPortRegistry::new());
        let resp = AssociationResponse::success(
            MacAddr::station(0),
            MacAddr::station(9),
            Aid::new(5).unwrap(),
        );
        assert!(matches!(
            client.handle_association_response(&resp),
            Err(CoreError::UnexpectedAck { .. })
        ));
    }

    #[test]
    fn suspend_requires_association() {
        let mut c = HideClient::new(MacAddr::station(1), OpenPortRegistry::new());
        assert!(matches!(c.prepare_suspend(), Err(CoreError::NotAssociated)));
    }

    #[test]
    fn suspend_flow_reaches_suspended_state() {
        let mut c = client_with_ports(&[5353]);
        assert!(!c.is_suspended());
        let msg = c.prepare_suspend().unwrap();
        assert_eq!(msg.ports(), &[5353]);
        assert!(!c.is_suspended(), "must wait for the ACK");
        c.handle_ack(&Ack::new(c.mac())).unwrap();
        assert!(c.is_suspended());
        assert_eq!(c.port_messages_sent(), 1);
    }

    #[test]
    fn foreign_ack_rejected() {
        let mut c = client_with_ports(&[]);
        let _ = c.prepare_suspend().unwrap();
        let err = c.handle_ack(&Ack::new(MacAddr::station(9))).unwrap_err();
        assert!(matches!(err, CoreError::UnexpectedAck { .. }));
        assert!(!c.is_suspended());
    }

    #[test]
    fn btim_bit_wakes_for_broadcast() {
        let c = client_with_ports(&[5353]);
        let d = c.handle_beacon(&beacon(&[1], &[])).unwrap();
        assert_eq!(d, WakeDecision::WakeForBroadcast);
    }

    #[test]
    fn broadcast_takes_priority_over_unicast() {
        let c = client_with_ports(&[5353]);
        let d = c.handle_beacon(&beacon(&[1], &[1])).unwrap();
        assert_eq!(d, WakeDecision::WakeForBroadcast);
    }

    #[test]
    fn unicast_only_wakes_for_unicast() {
        let c = client_with_ports(&[]);
        let d = c.handle_beacon(&beacon(&[], &[1])).unwrap();
        assert_eq!(d, WakeDecision::WakeForUnicast);
    }

    #[test]
    fn other_clients_bits_are_ignored() {
        let c = client_with_ports(&[]);
        let d = c.handle_beacon(&beacon(&[2, 3], &[4])).unwrap();
        assert_eq!(d, WakeDecision::StaySuspended);
    }

    #[test]
    fn needs_sync_tracks_port_changes() {
        let mut c = client_with_ports(&[80]);
        assert!(c.needs_sync());
        let _ = c.prepare_suspend().unwrap();
        c.handle_ack(&Ack::new(c.mac())).unwrap();
        assert!(!c.needs_sync());
        c.ports_mut().bind(443, [0, 0, 0, 0]).unwrap();
        assert!(c.needs_sync());
        assert!(!c.is_suspended(), "port change implies active mode");
    }

    #[test]
    fn paginated_suspend_flow_with_many_ports() {
        use crate::ap::{AccessPoint, ApCtx};
        let mut ap = AccessPoint::new(MacAddr::station(0));
        let mut reg = OpenPortRegistry::new();
        for p in 1000u16..1200 {
            reg.bind(p, [0, 0, 0, 0]).unwrap();
        }
        let mut client = HideClient::new(MacAddr::station(1), reg);
        let aid = ap.associate(client.mac()).unwrap();
        client.set_aid(aid);
        client.set_bssid(ap.bssid());

        let msgs = client.prepare_suspend_paginated().unwrap();
        assert!(msgs.len() > 1, "200 ports need multiple fragments");
        let mut last_ack = None;
        for m in &msgs {
            last_ack = Some(ap.process_port_message(m, &mut ApCtx::untimed()).unwrap());
        }
        client.handle_ack(&last_ack.unwrap()).unwrap();
        assert!(client.is_suspended());
        assert_eq!(ap.port_table().ports_of(aid).len(), 200);
    }

    #[test]
    fn retransmit_keeps_sequence_number() {
        let mut c = client_with_ports(&[80]);
        let m1 = c.prepare_suspend().unwrap();
        let m2 = c.retransmit().unwrap();
        assert_eq!(m1.seq(), m2.seq());
        assert_eq!(c.retransmissions(), 1);
        let m3 = c.prepare_suspend().unwrap();
        assert_ne!(m3.seq(), m1.seq());
    }

    #[test]
    fn consumes_matches_bound_ports() {
        use hide_wifi::udp::UdpDatagram;
        let c = client_with_ports(&[5353]);
        let useful = BroadcastDataFrame::new(
            MacAddr::station(0),
            UdpDatagram::new([10, 0, 0, 1], [255; 4], 1, 5353, vec![]),
            false,
        );
        let useless = BroadcastDataFrame::new(
            MacAddr::station(0),
            UdpDatagram::new([10, 0, 0, 1], [255; 4], 1, 1900, vec![]),
            false,
        );
        assert!(c.consumes(&useful));
        assert!(!c.consumes(&useless));
    }

    #[test]
    fn beacon_without_btim_falls_back_to_legacy_dtim_bit() {
        // Under a legacy AP the HIDE client must honour the standard
        // one-bit broadcast indication or it would miss broadcasts.
        let c = client_with_ports(&[5353]);
        let legacy_beacon = Beacon::builder(MacAddr::station(0))
            .tim(Tim::new(0, 1, true, PartialVirtualBitmap::new()))
            .build();
        let d = c.handle_beacon(&legacy_beacon).unwrap();
        assert_eq!(d, WakeDecision::WakeForBroadcast);

        let quiet_beacon = Beacon::builder(MacAddr::station(0))
            .tim(Tim::new(0, 1, false, PartialVirtualBitmap::new()))
            .build();
        let d = c.handle_beacon(&quiet_beacon).unwrap();
        assert_eq!(d, WakeDecision::StaySuspended);
    }
}
