//! The client's open UDP port registry.
//!
//! Mirrors the smartphone's socket table. Per Section III.B, only ports
//! bound to the wildcard source address `INADDR_ANY` (`0.0.0.0`) are
//! reported to the AP — ports bound to a specific interface address
//! receive no broadcast traffic through it.

use crate::error::CoreError;
use std::collections::BTreeMap;

/// The wildcard IPv4 address `0.0.0.0`.
pub const INADDR_ANY: [u8; 4] = [0, 0, 0, 0];

/// A client's table of bound UDP ports.
///
/// # Example
///
/// ```
/// use hide_core::client::OpenPortRegistry;
///
/// let mut reg = OpenPortRegistry::new();
/// reg.bind(5353, [0, 0, 0, 0])?;      // mDNS on INADDR_ANY: reported
/// reg.bind(6000, [192, 168, 1, 5])?;  // interface-bound: not reported
/// assert_eq!(reg.reportable_ports(), vec![5353]);
/// reg.close(5353);
/// assert!(reg.reportable_ports().is_empty());
/// # Ok::<(), hide_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenPortRegistry {
    bindings: BTreeMap<u16, [u8; 4]>,
    generation: u64,
}

impl OpenPortRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        OpenPortRegistry::default()
    }

    /// Binds `port` on source address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PortInUse`] when the port is already bound
    /// (one binding per port, as with `SO_REUSEADDR` unset).
    pub fn bind(&mut self, port: u16, addr: [u8; 4]) -> Result<(), CoreError> {
        if self.bindings.contains_key(&port) {
            return Err(CoreError::PortInUse(port));
        }
        self.bindings.insert(port, addr);
        self.generation += 1;
        Ok(())
    }

    /// Closes `port`; closing an unbound port is a no-op.
    pub fn close(&mut self, port: u16) {
        if self.bindings.remove(&port).is_some() {
            self.generation += 1;
        }
    }

    /// Whether `port` is bound (to any address).
    pub fn is_bound(&self, port: u16) -> bool {
        self.bindings.contains_key(&port)
    }

    /// Whether a broadcast datagram to `port` would be delivered to an
    /// application on this client — i.e. the port is bound to
    /// `INADDR_ANY`.
    pub fn accepts_broadcast(&self, port: u16) -> bool {
        self.bindings.get(&port) == Some(&INADDR_ANY)
    }

    /// The ports to report in a UDP Port Message: those bound to
    /// `INADDR_ANY`, sorted ascending (Section III.B).
    pub fn reportable_ports(&self) -> Vec<u16> {
        self.bindings
            .iter()
            .filter(|(_, &addr)| addr == INADDR_ANY)
            .map(|(&port, _)| port)
            .collect()
    }

    /// Number of bound ports (any address).
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// `true` when no port is bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Monotonic change counter; bumps on every successful bind/close.
    /// The HIDE agent uses it to decide whether a fresh UDP Port
    /// Message is needed before the next suspend.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_close_cycle() {
        let mut reg = OpenPortRegistry::new();
        reg.bind(80, INADDR_ANY).unwrap();
        assert!(reg.is_bound(80));
        assert!(reg.accepts_broadcast(80));
        reg.close(80);
        assert!(!reg.is_bound(80));
        assert!(reg.is_empty());
    }

    #[test]
    fn double_bind_rejected() {
        let mut reg = OpenPortRegistry::new();
        reg.bind(80, INADDR_ANY).unwrap();
        assert!(matches!(
            reg.bind(80, [10, 0, 0, 1]),
            Err(CoreError::PortInUse(80))
        ));
    }

    #[test]
    fn interface_bound_ports_not_reported() {
        let mut reg = OpenPortRegistry::new();
        reg.bind(1900, INADDR_ANY).unwrap();
        reg.bind(7000, [192, 168, 0, 2]).unwrap();
        assert_eq!(reg.reportable_ports(), vec![1900]);
        assert!(!reg.accepts_broadcast(7000));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn reportable_ports_sorted() {
        let mut reg = OpenPortRegistry::new();
        for p in [500u16, 100, 300] {
            reg.bind(p, INADDR_ANY).unwrap();
        }
        assert_eq!(reg.reportable_ports(), vec![100, 300, 500]);
    }

    #[test]
    fn generation_tracks_changes() {
        let mut reg = OpenPortRegistry::new();
        let g0 = reg.generation();
        reg.bind(80, INADDR_ANY).unwrap();
        let g1 = reg.generation();
        assert!(g1 > g0);
        reg.close(80);
        assert!(reg.generation() > g1);
        let g2 = reg.generation();
        reg.close(80); // no-op
        assert_eq!(reg.generation(), g2);
        let _ = reg.bind(81, INADDR_ANY);
        assert!(reg.generation() > g2);
    }

    #[test]
    fn failed_bind_does_not_bump_generation() {
        let mut reg = OpenPortRegistry::new();
        reg.bind(80, INADDR_ANY).unwrap();
        let g = reg.generation();
        let _ = reg.bind(80, INADDR_ANY);
        assert_eq!(reg.generation(), g);
    }
}
