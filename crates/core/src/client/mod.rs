//! Client-side HIDE: the open-port registry, the HIDE agent that syncs
//! ports before suspending and interprets BTIM bits, and a legacy
//! (non-HIDE) client for coexistence testing.

mod agent;
mod legacy;
mod ports;

pub use agent::{HideClient, WakeDecision};
pub use legacy::LegacyClient;
pub use ports::OpenPortRegistry;
