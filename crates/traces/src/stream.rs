//! Streaming (iterator-based) trace generation.
//!
//! [`crate::generate::generate`] materializes a whole `Vec<TraceFrame>`
//! before anything consumes it. That is fine for one client and a
//! 45-minute trace, but a fleet kernel simulating thousands of BSSes
//! wants each BSS's broadcast arrivals *pulled* one event at a time, so
//! the working set per BSS stays a single frame. [`FrameStream`] is the
//! lazy form of the same two-state MMPP: it consumes its RNG in exactly
//! the order the batch generator does, so collecting a stream
//! reproduces [`crate::generate::generate`]'s frames bit for bit
//! (before the batch generator's post-hoc *More Data* assignment, which
//! needs the following frame and therefore cannot be streamed).
//!
//! # Example
//!
//! ```
//! use hide_traces::scenario::Scenario;
//! use hide_traces::stream::FrameStream;
//!
//! let stream = FrameStream::new(&Scenario::Starbucks.params(), 60.0, 7);
//! let batch = Scenario::Starbucks.generate(60.0, 7);
//! let streamed: Vec<_> = stream.collect();
//! assert_eq!(streamed.len(), batch.len());
//! assert!(streamed
//!     .iter()
//!     .zip(&batch.frames)
//!     .all(|(s, b)| s.time == b.time && s.dst_port == b.dst_port));
//! ```

use crate::generate::GeneratorParams;
use crate::record::TraceFrame;
use hide_wifi::phy::DataRate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws an exponential variate with the given mean.
fn exp(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// A lazy MMPP broadcast-frame source: an [`Iterator`] over
/// [`TraceFrame`]s, never materializing the trace.
///
/// Frames arrive time-sorted with `more_data` unset (the *More Data*
/// bit needs lookahead; AP-side delivery logic recomputes it anyway).
#[derive(Debug, Clone)]
pub struct FrameStream {
    params: GeneratorParams,
    duration: f64,
    rng: StdRng,
    t: f64,
    in_burst: bool,
    state_end: f64,
    done: bool,
}

impl FrameStream {
    /// Creates a stream over `params` covering `[0, duration)` seconds,
    /// seeded exactly like [`crate::generate::generate`].
    pub fn new(params: &GeneratorParams, duration: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Same initial phase draw as the batch generator.
        let state_end = exp(&mut rng, params.mean_idle_secs) * rng.gen_range(0.1..1.0);
        FrameStream {
            params: params.clone(),
            duration,
            rng,
            t: 0.0,
            in_burst: false,
            state_end,
            done: false,
        }
    }

    /// The stream's horizon in seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }
}

impl Iterator for FrameStream {
    type Item = TraceFrame;

    fn next(&mut self) -> Option<TraceFrame> {
        if self.done {
            return None;
        }
        loop {
            if self.t >= self.duration {
                self.done = true;
                return None;
            }
            if self.t >= self.state_end {
                self.in_burst = !self.in_burst;
                let mean = if self.in_burst {
                    self.params.mean_burst_secs
                } else {
                    self.params.mean_idle_secs
                };
                self.state_end = self.t + exp(&mut self.rng, mean);
                continue;
            }
            let rate = if self.in_burst {
                self.params.burst_rate_fps
            } else {
                self.params.idle_rate_fps
            };
            let gap = if rate > 0.0 {
                exp(&mut self.rng, 1.0 / rate)
            } else {
                self.state_end - self.t + 1e-9
            };
            self.t += gap;
            if self.t >= self.duration {
                self.done = true;
                return None;
            }
            if self.t >= self.state_end {
                // Gap crossed a state boundary; re-draw from the new
                // state (same thinning approximation as the batch path).
                continue;
            }
            let (port, typical) = self.params.port_mix.sample(&mut self.rng);
            let jitter = self.rng.gen_range(0.75..1.25);
            let body = ((typical as f64 * jitter) as u16).max(40);
            let rate = if self.rng.gen_bool(0.8) {
                DataRate::R1M
            } else {
                DataRate::R2M
            };
            return Some(TraceFrame {
                time: self.t,
                len_bytes: body.saturating_add(36 + 24),
                rate,
                dst_port: port,
                more_data: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::scenario::Scenario;

    #[test]
    fn stream_matches_batch_generator() {
        for scenario in Scenario::ALL {
            let params = scenario.params();
            let batch = generate::generate(scenario.label(), &params, 120.0, 99);
            let streamed: Vec<TraceFrame> = FrameStream::new(&params, 120.0, 99).collect();
            assert_eq!(streamed.len(), batch.len(), "{scenario}");
            for (s, b) in streamed.iter().zip(&batch.frames) {
                assert_eq!(s.time, b.time, "{scenario}");
                assert_eq!(s.len_bytes, b.len_bytes, "{scenario}");
                assert_eq!(s.rate, b.rate, "{scenario}");
                assert_eq!(s.dst_port, b.dst_port, "{scenario}");
                // `more_data` deliberately differs: streams never set it.
                assert!(!s.more_data);
            }
        }
    }

    #[test]
    fn stream_is_sorted_and_bounded() {
        let frames: Vec<TraceFrame> = FrameStream::new(&Scenario::Wml.params(), 60.0, 3).collect();
        assert!(!frames.is_empty());
        assert!(frames.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(frames.iter().all(|f| f.time >= 0.0 && f.time < 60.0));
    }

    #[test]
    fn stream_is_fused_after_end() {
        let mut stream = FrameStream::new(&Scenario::Starbucks.params(), 10.0, 1);
        while stream.next().is_some() {}
        assert!(stream.next().is_none());
        assert!(stream.next().is_none());
    }

    #[test]
    fn zero_duration_stream_is_empty() {
        let mut stream = FrameStream::new(&Scenario::CsDept.params(), 0.0, 5);
        assert!(stream.next().is_none());
    }
}
