//! Unicast traffic overlay.
//!
//! HIDE only manages broadcast frames; buffered *unicast* frames are
//! announced through the standard TIM bitmap and wake the client no
//! matter which solution is in use ("the client stays in suspend mode
//! as long as there are no unicast frames buffered", Section III.A).
//! This module generates a Poisson unicast arrival process so the
//! simulator can measure how background unicast traffic dilutes HIDE's
//! savings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A unicast arrival schedule for one client.
///
/// # Example
///
/// ```
/// use hide_traces::unicast::UnicastTrace;
///
/// let u = UnicastTrace::poisson(600.0, 0.05, 7); // one frame every ~20 s
/// assert!(u.arrivals().windows(2).all(|w| w[0] <= w[1]));
/// assert!(u.mean_rate() < 0.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UnicastTrace {
    duration: f64,
    arrivals: Vec<f64>,
    frame_bytes: u16,
}

impl UnicastTrace {
    /// Generates Poisson arrivals at `rate` frames/second over
    /// `duration` seconds, with 500-byte frames.
    ///
    /// # Panics
    ///
    /// Panics if `duration` or `rate` is negative.
    pub fn poisson(duration: f64, rate: f64, seed: u64) -> Self {
        assert!(duration >= 0.0, "duration must be non-negative");
        assert!(rate >= 0.0, "rate must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrivals = Vec::new();
        if rate > 0.0 {
            let mut t = 0.0;
            loop {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() / rate;
                if t >= duration {
                    break;
                }
                arrivals.push(t);
            }
        }
        UnicastTrace {
            duration,
            arrivals,
            frame_bytes: 500,
        }
    }

    /// An empty overlay (no unicast traffic).
    pub fn none(duration: f64) -> Self {
        UnicastTrace {
            duration,
            arrivals: Vec::new(),
            frame_bytes: 500,
        }
    }

    /// Sets the unicast frame size in bytes.
    #[must_use]
    pub fn with_frame_bytes(mut self, bytes: u16) -> Self {
        self.frame_bytes = bytes;
        self
    }

    /// Arrival times, sorted ascending.
    pub fn arrivals(&self) -> &[f64] {
        &self.arrivals
    }

    /// Unicast frame size in bytes.
    pub fn frame_bytes(&self) -> u16 {
        self.frame_bytes
    }

    /// Schedule duration in seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Number of unicast frames.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// `true` when there is no unicast traffic.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Empirical arrival rate in frames/second.
    pub fn mean_rate(&self) -> f64 {
        if self.duration > 0.0 {
            self.arrivals.len() as f64 / self.duration
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_converges() {
        let u = UnicastTrace::poisson(36_000.0, 0.1, 3);
        assert!((u.mean_rate() - 0.1).abs() < 0.02, "rate {}", u.mean_rate());
    }

    #[test]
    fn zero_rate_is_empty() {
        let u = UnicastTrace::poisson(100.0, 0.0, 3);
        assert!(u.is_empty());
        assert_eq!(u.mean_rate(), 0.0);
    }

    #[test]
    fn none_constructor() {
        let u = UnicastTrace::none(50.0);
        assert!(u.is_empty());
        assert_eq!(u.duration(), 50.0);
    }

    #[test]
    fn arrivals_sorted_and_bounded() {
        let u = UnicastTrace::poisson(300.0, 1.0, 9);
        assert!(!u.is_empty());
        assert!(u.arrivals().windows(2).all(|w| w[0] <= w[1]));
        assert!(u.arrivals().iter().all(|t| (0.0..300.0).contains(t)));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            UnicastTrace::poisson(100.0, 0.5, 4),
            UnicastTrace::poisson(100.0, 0.5, 4)
        );
        assert_ne!(
            UnicastTrace::poisson(100.0, 0.5, 4),
            UnicastTrace::poisson(100.0, 0.5, 5)
        );
    }

    #[test]
    fn frame_bytes_builder() {
        let u = UnicastTrace::none(10.0).with_frame_bytes(1200);
        assert_eq!(u.frame_bytes(), 1200);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn negative_rate_panics() {
        let _ = UnicastTrace::poisson(10.0, -1.0, 0);
    }
}
