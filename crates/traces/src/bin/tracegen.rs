//! Trace generation and inspection CLI.
//!
//! ```text
//! tracegen gen <scenario> <duration_s> <seed> [out.json]   generate (prints stats)
//! tracegen stats <trace.json>                              inspect a saved trace
//! tracegen cdf <scenario> <duration_s> <seed>              print the Fig.6 CDF points
//! tracegen list                                            list scenarios
//! ```

use hide_traces::io;
use hide_traces::record::Trace;
use hide_traces::scenario::Scenario;
use std::process::ExitCode;

fn parse_scenario(name: &str) -> Option<Scenario> {
    Scenario::ALL
        .into_iter()
        .find(|s| s.label().eq_ignore_ascii_case(name))
}

fn print_stats(trace: &Trace) {
    println!("scenario:  {}", trace.scenario);
    println!("duration:  {:.0} s", trace.duration);
    println!("frames:    {}", trace.len());
    println!("mean rate: {:.2} frames/s", trace.mean_fps());
    let cdf = trace.fps_cdf();
    println!(
        "fps p25/p50/p75/max: {:.0}/{:.0}/{:.0}/{:.0}",
        cdf.quantile(0.25),
        cdf.quantile(0.50),
        cdf.quantile(0.75),
        cdf.max()
    );
    println!("top ports:");
    for (port, count) in trace.port_histogram().into_iter().take(8) {
        println!(
            "  {:>5}  {:>6} frames ({:.1}%)",
            port,
            count,
            count as f64 / trace.len().max(1) as f64 * 100.0
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        eprintln!(
            "usage: tracegen gen <scenario> <duration_s> <seed> [out.json]\n\
             \x20      tracegen stats <trace.json>\n\
             \x20      tracegen cdf <scenario> <duration_s> <seed>\n\
             \x20      tracegen list"
        );
        ExitCode::from(2)
    };

    match args.first().map(String::as_str) {
        Some("list") => {
            for s in Scenario::ALL {
                let p = s.params();
                println!(
                    "{:<10} idle {:>4.1} fps / burst {:>4.1} fps, long-run mean {:.1} fps",
                    s.label(),
                    p.idle_rate_fps,
                    p.burst_rate_fps,
                    p.mean_fps()
                );
            }
            ExitCode::SUCCESS
        }
        Some("gen") if args.len() >= 4 => {
            let Some(scenario) = parse_scenario(&args[1]) else {
                eprintln!("unknown scenario '{}'; try `tracegen list`", args[1]);
                return ExitCode::from(2);
            };
            let (Ok(duration), Ok(seed)) = (args[2].parse::<f64>(), args[3].parse::<u64>()) else {
                return usage();
            };
            let trace = scenario.generate(duration, seed);
            print_stats(&trace);
            if let Some(path) = args.get(4) {
                if let Err(e) = io::save(&trace, path) {
                    eprintln!("failed to save: {e}");
                    return ExitCode::FAILURE;
                }
                println!("saved to {path}");
            }
            ExitCode::SUCCESS
        }
        Some("stats") if args.len() >= 2 => match io::load(&args[1]) {
            Ok(trace) => {
                print_stats(&trace);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("failed to load {}: {e}", args[1]);
                ExitCode::FAILURE
            }
        },
        Some("cdf") if args.len() >= 4 => {
            let Some(scenario) = parse_scenario(&args[1]) else {
                eprintln!("unknown scenario '{}'", args[1]);
                return ExitCode::from(2);
            };
            let (Ok(duration), Ok(seed)) = (args[2].parse::<f64>(), args[3].parse::<u64>()) else {
                return usage();
            };
            let trace = scenario.generate(duration, seed);
            println!("frames_per_sec,cumulative_probability");
            for (x, p) in trace.fps_cdf().plot_points(50) {
                println!("{x:.2},{p:.4}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
