//! Empirical distribution statistics for traces (Fig. 6's CDFs).

/// An empirical cumulative distribution function over f64 samples.
///
/// # Example
///
/// ```
/// use hide_traces::stats::Cdf;
///
/// let cdf = Cdf::from_samples([1.0, 2.0, 2.0, 10.0]);
/// assert_eq!(cdf.eval(0.5), 0.0);
/// assert_eq!(cdf.eval(2.0), 0.75);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// assert!((cdf.mean() - 3.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(f64::total_cmp);
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`); returns 0 for an
    /// empty CDF.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// Sample mean (0 for an empty CDF).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Evenly-spaced `(x, P(X <= x))` points for plotting, at the given
    /// number of steps across `[min, max]`.
    pub fn plot_points(&self, steps: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || steps == 0 {
            return Vec::new();
        }
        let (lo, hi) = (self.min(), self.max());
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        (0..=steps)
            .map(|i| {
                let x = lo + span * i as f64 / steps as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::from_samples([]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.eval(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), 0.0);
        assert_eq!(cdf.mean(), 0.0);
        assert!(cdf.plot_points(10).is_empty());
    }

    #[test]
    fn nan_samples_dropped() {
        let cdf = Cdf::from_samples([1.0, f64::NAN, 3.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn eval_is_monotone() {
        let cdf = Cdf::from_samples([5.0, 1.0, 3.0, 3.0, 9.0]);
        let mut prev = 0.0;
        for x in 0..12 {
            let p = cdf.eval(x as f64);
            assert!(p >= prev);
            prev = p;
        }
        assert_eq!(cdf.eval(100.0), 1.0);
    }

    #[test]
    fn quantile_edges() {
        let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
        assert_eq!(cdf.quantile(0.25), 1.0);
        assert_eq!(cdf.quantile(0.26), 2.0);
        // Out-of-range q clamps.
        assert_eq!(cdf.quantile(2.0), 4.0);
        assert_eq!(cdf.quantile(-1.0), 1.0);
    }

    #[test]
    fn plot_points_span_range() {
        let cdf = Cdf::from_samples([0.0, 10.0]);
        let pts = cdf.plot_points(10);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[10].0, 10.0);
        assert_eq!(pts[10].1, 1.0);
    }

    #[test]
    fn quantile_inverse_of_eval() {
        let cdf = Cdf::from_samples((1..=100).map(|i| i as f64));
        for q in [0.1, 0.25, 0.5, 0.9] {
            let x = cdf.quantile(q);
            assert!((cdf.eval(x) - q).abs() < 0.011);
        }
    }
}
