//! The trace generator: a two-state Markov-modulated Poisson process
//! with a realistic broadcast service-port mix.
//!
//! Real venue broadcast traffic is bursty: quiet stretches punctuated by
//! discovery storms (a laptop waking, a Chromecast announcing, Dropbox
//! LAN-sync beacons). A two-state MMPP — an *idle* state with a low
//! Poisson rate and a *burst* state with a high rate, exponential dwell
//! times — captures exactly the burstiness the energy model is
//! sensitive to (wakelock renewals vs. fresh suspend cycles).

use crate::record::{Trace, TraceFrame};
use hide_wifi::phy::DataRate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Well-known UDP ports that dominate real broadcast traffic.
pub mod ports {
    /// NetBIOS name service.
    pub const NETBIOS_NS: u16 = 137;
    /// NetBIOS datagram service.
    pub const NETBIOS_DGM: u16 = 138;
    /// DHCP server port.
    pub const DHCP_SERVER: u16 = 67;
    /// SSDP / UPnP discovery (the paper's printer-discovery example).
    pub const SSDP: u16 = 1900;
    /// Multicast DNS (Bonjour).
    pub const MDNS: u16 = 5353;
    /// Dropbox LAN sync discovery.
    pub const DROPBOX_LANSYNC: u16 = 17500;
    /// Spotify Connect discovery.
    pub const SPOTIFY: u16 = 57621;
    /// Steam in-home streaming discovery.
    pub const STEAM: u16 = 27036;
}

/// A weighted UDP destination-port distribution with per-port typical
/// frame sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct PortMix {
    /// `(port, weight, typical_body_bytes)` entries; weights need not
    /// be normalized.
    entries: Vec<(u16, f64, u16)>,
    total_weight: f64,
}

impl PortMix {
    /// Builds a mix from `(port, weight, typical_len_bytes)` entries.
    ///
    /// # Panics
    ///
    /// Panics when `entries` is empty or total weight is non-positive —
    /// mixes are compile-time scenario constants.
    pub fn new(entries: Vec<(u16, f64, u16)>) -> Self {
        assert!(!entries.is_empty(), "port mix must have entries");
        let total_weight: f64 = entries.iter().map(|e| e.1).sum();
        assert!(total_weight > 0.0, "port mix weights must be positive");
        PortMix {
            entries,
            total_weight,
        }
    }

    /// Appends a long tail of `count` minor application ports sharing
    /// `total_weight`, with individually varied weights. Real captures
    /// show dozens of rare discovery ports (per-app game/sync/IoT
    /// protocols); the tail is also what lets a useful-port set
    /// approximate any small traffic fraction closely.
    fn with_minor_tail(mut self, count: usize, total_weight: f64, base_port: u16) -> Self {
        // Weights proportional to 1, 2, .., count so the tail offers
        // fine-grained traffic shares.
        let denom: f64 = (1..=count).map(|i| i as f64).sum();
        for i in 0..count {
            let port = base_port.wrapping_add((i as u16).wrapping_mul(137));
            let weight = total_weight * (i + 1) as f64 / denom;
            let len = 140 + ((i * 23) % 160) as u16;
            self.entries.push((port, weight, len));
            self.total_weight += weight;
        }
        self
    }

    /// Campus mix: Windows laptops (NetBIOS heavy), SSDP projectors,
    /// plenty of mDNS, plus a long tail of minor app ports.
    pub fn campus() -> Self {
        PortMix::new(vec![
            (ports::SSDP, 0.25, 380),
            (ports::MDNS, 0.20, 220),
            (ports::NETBIOS_NS, 0.14, 110),
            (ports::NETBIOS_DGM, 0.09, 250),
            (ports::DROPBOX_LANSYNC, 0.08, 180),
            (ports::DHCP_SERVER, 0.05, 350),
            (ports::SPOTIFY, 0.04, 120),
            (ports::STEAM, 0.03, 150),
        ])
        .with_minor_tail(24, 0.12, 40000)
    }

    /// Office mix: fewer phones, more workstations and printers.
    pub fn office() -> Self {
        PortMix::new(vec![
            (ports::SSDP, 0.29, 400),
            (ports::NETBIOS_NS, 0.18, 110),
            (ports::NETBIOS_DGM, 0.13, 250),
            (ports::MDNS, 0.13, 200),
            (ports::DHCP_SERVER, 0.07, 350),
            (ports::DROPBOX_LANSYNC, 0.08, 180),
        ])
        .with_minor_tail(24, 0.12, 41000)
    }

    /// Café mix: Apple-device heavy (mDNS), Spotify, light NetBIOS.
    pub fn cafe() -> Self {
        PortMix::new(vec![
            (ports::MDNS, 0.34, 240),
            (ports::SSDP, 0.18, 360),
            (ports::SPOTIFY, 0.11, 120),
            (ports::DROPBOX_LANSYNC, 0.09, 180),
            (ports::NETBIOS_NS, 0.08, 110),
            (ports::DHCP_SERVER, 0.06, 350),
        ])
        .with_minor_tail(24, 0.14, 42000)
    }

    /// Samples a `(port, body_len)` pair.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> (u16, u16) {
        let mut x = rng.gen_range(0.0..self.total_weight);
        for &(port, w, len) in &self.entries {
            if x < w {
                return (port, len);
            }
            x -= w;
        }
        let &(port, _, len) = self.entries.last().expect("non-empty");
        (port, len)
    }

    /// The distinct ports in the mix.
    pub fn ports(&self) -> Vec<u16> {
        self.entries.iter().map(|e| e.0).collect()
    }
}

/// MMPP calibration for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorParams {
    /// Poisson rate in the idle state, frames/second.
    pub idle_rate_fps: f64,
    /// Poisson rate in the burst state, frames/second.
    pub burst_rate_fps: f64,
    /// Mean dwell time in the idle state, seconds.
    pub mean_idle_secs: f64,
    /// Mean dwell time in the burst state, seconds.
    pub mean_burst_secs: f64,
    /// Destination-port distribution.
    pub port_mix: PortMix,
}

impl GeneratorParams {
    /// The long-run mean frame rate of the MMPP.
    pub fn mean_fps(&self) -> f64 {
        (self.idle_rate_fps * self.mean_idle_secs + self.burst_rate_fps * self.mean_burst_secs)
            / (self.mean_idle_secs + self.mean_burst_secs)
    }

    /// Scales both Poisson rates by `factor` (dwell times and port mix
    /// unchanged) — used to modulate activity over a day.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        GeneratorParams {
            idle_rate_fps: self.idle_rate_fps * factor,
            burst_rate_fps: self.burst_rate_fps * factor,
            mean_idle_secs: self.mean_idle_secs,
            mean_burst_secs: self.mean_burst_secs,
            port_mix: self.port_mix.clone(),
        }
    }
}

/// Hour-by-hour activity multipliers for a venue that opens in the
/// morning, peaks midday and afternoon, and empties at night — the
/// diurnal pattern of a campus building or café.
pub const DIURNAL_ACTIVITY: [f64; 24] = [
    0.02, 0.02, 0.02, 0.02, 0.02, 0.05, // 00-05: closed/overnight gear only
    0.15, 0.40, 0.80, 1.00, 1.00, 0.90, // 06-11: opening through morning peak
    1.00, 1.00, 0.95, 0.90, 0.80, 0.70, // 12-17: midday/afternoon
    0.50, 0.35, 0.25, 0.15, 0.08, 0.04, // 18-23: evening wind-down
];

/// Generates a full-day trace: 24 hourly segments whose MMPP rates are
/// `params` scaled by [`DIURNAL_ACTIVITY`], concatenated.
///
/// # Example
///
/// ```
/// use hide_traces::generate::{diurnal, PortMix, GeneratorParams};
///
/// let params = GeneratorParams {
///     idle_rate_fps: 2.0,
///     burst_rate_fps: 15.0,
///     mean_idle_secs: 15.0,
///     mean_burst_secs: 6.0,
///     port_mix: PortMix::cafe(),
/// };
/// let day = diurnal("cafe-day", &params, 42);
/// assert_eq!(day.duration, 86_400.0);
/// ```
pub fn diurnal(scenario: &str, params: &GeneratorParams, seed: u64) -> Trace {
    const HOUR: f64 = 3600.0;
    let mut frames = Vec::new();
    for (hour, &activity) in DIURNAL_ACTIVITY.iter().enumerate() {
        let segment = generate(
            scenario,
            &params.scaled(activity),
            HOUR,
            seed.wrapping_add(hour as u64).wrapping_mul(0x9e3779b9),
        );
        let offset = hour as f64 * HOUR;
        frames.extend(segment.frames.into_iter().map(|f| TraceFrame {
            time: f.time + offset,
            ..f
        }));
    }
    let mut trace = Trace::new(scenario, 24.0 * HOUR, frames);
    trace.assign_more_data(hide_wifi::timing::TIME_UNIT_SECS * 100.0);
    trace
}

/// Draws an exponential variate with the given mean.
fn exp<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Generates a trace with the MMPP model.
///
/// Frames get a data rate of 1 Mbit/s (80%) or 2 Mbit/s (20%) — the
/// basic rates real APs use for broadcast — a body length jittered
/// ±25% around the port's typical size, and *More Data* bits assigned
/// with the same-beacon-interval rule at the default 102.4 ms interval.
pub fn generate(scenario: &str, params: &GeneratorParams, duration: f64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut frames = Vec::new();
    let mut t = 0.0f64;
    let mut in_burst = false;
    // Start each state machine with a random phase into an idle dwell.
    let mut state_end = exp(&mut rng, params.mean_idle_secs) * rng.gen_range(0.1..1.0);

    while t < duration {
        if t >= state_end {
            in_burst = !in_burst;
            let mean = if in_burst {
                params.mean_burst_secs
            } else {
                params.mean_idle_secs
            };
            state_end = t + exp(&mut rng, mean);
            continue;
        }
        let rate = if in_burst {
            params.burst_rate_fps
        } else {
            params.idle_rate_fps
        };
        let gap = if rate > 0.0 {
            exp(&mut rng, 1.0 / rate)
        } else {
            state_end - t + 1e-9
        };
        t += gap;
        if t >= duration {
            break;
        }
        if t >= state_end {
            // The gap crossed a state boundary; re-draw from the new
            // state next iteration (thinning approximation).
            continue;
        }
        let (port, typical) = params.port_mix.sample(&mut rng);
        let jitter = rng.gen_range(0.75..1.25);
        let body = ((typical as f64 * jitter) as u16).max(40);
        let rate = if rng.gen_bool(0.8) {
            DataRate::R1M
        } else {
            DataRate::R2M
        };
        frames.push(TraceFrame {
            time: t,
            len_bytes: body.saturating_add(36 + 24), // + UDP stack + MAC header
            rate,
            dst_port: port,
            more_data: false,
        });
    }

    let mut trace = Trace::new(scenario, duration, frames);
    trace.assign_more_data(hide_wifi::timing::TIME_UNIT_SECS * 100.0);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> GeneratorParams {
        GeneratorParams {
            idle_rate_fps: 2.0,
            burst_rate_fps: 20.0,
            mean_idle_secs: 10.0,
            mean_burst_secs: 5.0,
            port_mix: PortMix::campus(),
        }
    }

    #[test]
    fn mean_fps_formula() {
        let p = params();
        assert!((p.mean_fps() - (2.0 * 10.0 + 20.0 * 5.0) / 15.0).abs() < 1e-12);
    }

    #[test]
    fn generated_times_sorted_and_in_range() {
        let t = generate("test", &params(), 300.0, 1);
        assert!(!t.is_empty());
        for w in t.frames.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(t.frames.iter().all(|f| f.time >= 0.0 && f.time < 300.0));
    }

    #[test]
    fn long_run_rate_near_mmpp_mean() {
        let p = params();
        let t = generate("test", &p, 7200.0, 5);
        let mean = t.mean_fps();
        let expected = p.mean_fps();
        assert!(
            (mean - expected).abs() / expected < 0.25,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn ports_come_from_mix() {
        let p = params();
        let t = generate("test", &p, 120.0, 2);
        let allowed = p.port_mix.ports();
        assert!(t.frames.iter().all(|f| allowed.contains(&f.dst_port)));
    }

    #[test]
    fn lengths_cover_stack_overhead() {
        let t = generate("test", &params(), 120.0, 3);
        // Minimum: 40-byte body + 36 UDP stack + 24 MAC header.
        assert!(t.frames.iter().all(|f| f.len_bytes >= 100));
    }

    #[test]
    fn burstiness_visible_in_variance() {
        // An MMPP's per-second counts must be overdispersed relative to
        // a plain Poisson process of the same mean.
        let t = generate("test", &params(), 3600.0, 7);
        let counts = t.per_second_counts();
        let n = counts.len() as f64;
        let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / n;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!(var > 1.5 * mean, "variance {var} vs mean {mean}");
    }

    #[test]
    fn port_mix_sampling_respects_weights() {
        let mix = PortMix::new(vec![(1, 9.0, 100), (2, 1.0, 100)]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ones = 0;
        for _ in 0..10_000 {
            if mix.sample(&mut rng).0 == 1 {
                ones += 1;
            }
        }
        assert!((8500..9500).contains(&ones), "got {ones}");
    }

    #[test]
    #[should_panic(expected = "entries")]
    fn empty_mix_panics() {
        let _ = PortMix::new(vec![]);
    }

    #[test]
    fn scaled_params_scale_rates_only() {
        let p = params();
        let s = p.scaled(0.5);
        assert_eq!(s.idle_rate_fps, 1.0);
        assert_eq!(s.burst_rate_fps, 10.0);
        assert_eq!(s.mean_idle_secs, p.mean_idle_secs);
        assert!((s.mean_fps() - p.mean_fps() * 0.5).abs() < 1e-12);
    }

    #[test]
    fn diurnal_day_has_quiet_nights_and_busy_noons() {
        let day = diurnal("day", &params(), 5);
        assert_eq!(day.duration, 86_400.0);
        let hour_count = |h: usize| {
            day.frames
                .iter()
                .filter(|f| f.time >= h as f64 * 3600.0 && f.time < (h + 1) as f64 * 3600.0)
                .count()
        };
        let night = hour_count(3);
        let noon = hour_count(12);
        assert!(
            noon > 10 * night.max(1),
            "noon {noon} should dwarf night {night}"
        );
        // Frames stay sorted across segment boundaries.
        assert!(day.frames.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn diurnal_is_deterministic() {
        let a = diurnal("day", &params(), 5);
        let b = diurnal("day", &params(), 5);
        assert_eq!(a, b);
    }
}
