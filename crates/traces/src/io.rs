//! Trace serialization: JSON save/load so generated traces can be
//! inspected, archived and replayed byte-identically.

use crate::record::Trace;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors from trace (de)serialization.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// Filesystem error.
    Io(io::Error),
    /// JSON encoding/decoding error.
    Json(serde_json::Error),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace file i/o error: {e}"),
            TraceIoError::Json(e) => write!(f, "trace json error: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Json(e) => Some(e),
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Json(e)
    }
}

/// Serializes a trace to JSON.
///
/// # Errors
///
/// Returns [`TraceIoError::Json`] on encoding failure.
pub fn to_json(trace: &Trace) -> Result<String, TraceIoError> {
    Ok(serde_json::to_string(trace)?)
}

/// Deserializes a trace from JSON.
///
/// # Errors
///
/// Returns [`TraceIoError::Json`] on malformed input.
pub fn from_json(json: &str) -> Result<Trace, TraceIoError> {
    Ok(serde_json::from_str(json)?)
}

/// Writes a trace to a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError`] on filesystem or encoding failure.
pub fn save<P: AsRef<Path>>(trace: &Trace, path: P) -> Result<(), TraceIoError> {
    fs::write(path, to_json(trace)?)?;
    Ok(())
}

/// Reads a trace from a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError`] on filesystem or decoding failure.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Trace, TraceIoError> {
    from_json(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn json_round_trip() {
        let trace = Scenario::Starbucks.generate(60.0, 21);
        let json = to_json(&trace).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn file_round_trip() {
        let trace = Scenario::Wrl.generate(30.0, 22);
        let dir = std::env::temp_dir().join("hide_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrl.json");
        save(&trace, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_error() {
        assert!(matches!(from_json("{not json"), Err(TraceIoError::Json(_))));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load("/nonexistent/path/trace.json"),
            Err(TraceIoError::Io(_))
        ));
    }
}
