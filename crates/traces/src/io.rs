//! Trace serialization: JSON save/load so generated traces can be
//! inspected, archived and replayed byte-identically.
//!
//! The codec is self-contained: a trace has a fixed, flat shape (a
//! header plus an array of frames of four scalars and a rate tag), so a
//! small hand-rolled writer/parser covers it without an external JSON
//! dependency. Floats are emitted with Rust's shortest round-trip
//! formatting (`{:?}`), which guarantees save → load is lossless.

use crate::record::{Trace, TraceFrame};
use hide_wifi::phy::DataRate;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A JSON encoding/decoding failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    msg: String,
    /// Byte offset in the input where decoding failed (0 for encoding).
    offset: usize,
}

impl JsonError {
    fn new(msg: impl Into<String>, offset: usize) -> Self {
        JsonError {
            msg: msg.into(),
            offset,
        }
    }

    /// Byte offset in the input at which decoding failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Errors from trace (de)serialization.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// Filesystem error.
    Io(io::Error),
    /// JSON encoding/decoding error.
    Json(JsonError),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace file i/o error: {e}"),
            TraceIoError::Json(e) => write!(f, "trace json error: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Json(e) => Some(e),
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<JsonError> for TraceIoError {
    fn from(e: JsonError) -> Self {
        TraceIoError::Json(e)
    }
}

fn rate_tag(rate: DataRate) -> &'static str {
    match rate {
        DataRate::R1M => "R1M",
        DataRate::R2M => "R2M",
        DataRate::R5_5M => "R5_5M",
        DataRate::R11M => "R11M",
    }
}

fn rate_from_tag(tag: &str, offset: usize) -> Result<DataRate, JsonError> {
    match tag {
        "R1M" => Ok(DataRate::R1M),
        "R2M" => Ok(DataRate::R2M),
        "R5_5M" => Ok(DataRate::R5_5M),
        "R11M" => Ok(DataRate::R11M),
        other => Err(JsonError::new(
            format!("unknown data rate {other:?}"),
            offset,
        )),
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes a trace to JSON.
///
/// # Errors
///
/// Returns [`TraceIoError::Json`] on encoding failure (never occurs for
/// well-formed traces; kept for API stability).
pub fn to_json(trace: &Trace) -> Result<String, TraceIoError> {
    // ~64 bytes per frame is a comfortable overestimate.
    let mut out = String::with_capacity(64 + trace.frames.len() * 64);
    out.push_str("{\"scenario\":");
    push_json_string(&mut out, &trace.scenario);
    out.push_str(",\"duration\":");
    out.push_str(&format!("{:?}", trace.duration));
    out.push_str(",\"frames\":[");
    for (i, f) in trace.frames.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"time\":{:?},\"len_bytes\":{},\"rate\":\"{}\",\"dst_port\":{},\"more_data\":{}}}",
            f.time,
            f.len_bytes,
            rate_tag(f.rate),
            f.dst_port,
            f.more_data
        ));
    }
    out.push_str("]}");
    Ok(out)
}

/// A minimal recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

/// A parsed JSON value. Numbers stay as text slices so the caller picks
/// the integer/float interpretation.
enum Value {
    String(String),
    Number(f64),
    Bool(bool),
    Array(Vec<(usize, Value)>),
    Object(Vec<(String, usize, Value)>),
    Null,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError::new(msg, self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.input.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.input[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected keyword {word:?}")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| JsonError::new("invalid utf-8 in number", start))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| JsonError::new(format!("invalid number {text:?}"), start))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .input
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.input[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            let at = self.pos;
            items.push((at, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let at = self.pos;
            let value = self.parse_value()?;
            fields.push((key, at, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

fn field<'v>(
    fields: &'v [(String, usize, Value)],
    name: &str,
    obj_at: usize,
) -> Result<(usize, &'v Value), JsonError> {
    fields
        .iter()
        .find(|(k, _, _)| k == name)
        .map(|(_, at, v)| (*at, v))
        .ok_or_else(|| JsonError::new(format!("missing field {name:?}"), obj_at))
}

fn as_f64(v: (usize, &Value), name: &str) -> Result<f64, JsonError> {
    match v.1 {
        Value::Number(n) => Ok(*n),
        _ => Err(JsonError::new(
            format!("field {name:?} must be a number"),
            v.0,
        )),
    }
}

fn as_u16(v: (usize, &Value), name: &str) -> Result<u16, JsonError> {
    let n = as_f64(v, name)?;
    if n.fract() == 0.0 && (0.0..=u16::MAX as f64).contains(&n) {
        Ok(n as u16)
    } else {
        Err(JsonError::new(format!("field {name:?} must be a u16"), v.0))
    }
}

/// Deserializes a trace from JSON.
///
/// # Errors
///
/// Returns [`TraceIoError::Json`] on malformed input.
pub fn from_json(json: &str) -> Result<Trace, TraceIoError> {
    let mut parser = Parser::new(json);
    let root = parser.parse_value()?;
    parser.skip_ws();
    if parser.peek().is_some() {
        return Err(JsonError::new("trailing data after trace object", parser.pos).into());
    }

    let fields = match root {
        Value::Object(f) => f,
        _ => return Err(JsonError::new("trace must be a JSON object", 0).into()),
    };

    let scenario = match field(&fields, "scenario", 0)? {
        (_, Value::String(s)) => s.clone(),
        (at, _) => return Err(JsonError::new("field \"scenario\" must be a string", at).into()),
    };
    let duration = as_f64(field(&fields, "duration", 0)?, "duration")?;
    let raw_frames = match field(&fields, "frames", 0)? {
        (_, Value::Array(items)) => items,
        (at, _) => return Err(JsonError::new("field \"frames\" must be an array", at).into()),
    };

    let mut frames = Vec::with_capacity(raw_frames.len());
    for (at, item) in raw_frames {
        let f = match item {
            Value::Object(f) => f,
            _ => return Err(JsonError::new("frame must be a JSON object", *at).into()),
        };
        let rate = match field(f, "rate", *at)? {
            (rat, Value::String(tag)) => rate_from_tag(tag, rat)?,
            (rat, _) => return Err(JsonError::new("field \"rate\" must be a string", rat).into()),
        };
        let more_data = match field(f, "more_data", *at)? {
            (_, Value::Bool(b)) => *b,
            (mat, _) => {
                return Err(JsonError::new("field \"more_data\" must be a bool", mat).into())
            }
        };
        frames.push(TraceFrame {
            time: as_f64(field(f, "time", *at)?, "time")?,
            len_bytes: as_u16(field(f, "len_bytes", *at)?, "len_bytes")?,
            rate,
            dst_port: as_u16(field(f, "dst_port", *at)?, "dst_port")?,
            more_data,
        });
    }

    Ok(Trace {
        scenario,
        duration,
        frames,
    })
}

/// Writes a trace to a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError`] on filesystem or encoding failure.
pub fn save<P: AsRef<Path>>(trace: &Trace, path: P) -> Result<(), TraceIoError> {
    fs::write(path, to_json(trace)?)?;
    Ok(())
}

/// Reads a trace from a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError`] on filesystem or decoding failure.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Trace, TraceIoError> {
    from_json(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn json_round_trip() {
        let trace = Scenario::Starbucks.generate(60.0, 21);
        let json = to_json(&trace).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn file_round_trip() {
        let trace = Scenario::Wrl.generate(30.0, 22);
        let dir = std::env::temp_dir().join("hide_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrl.json");
        save(&trace, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_error() {
        assert!(matches!(from_json("{not json"), Err(TraceIoError::Json(_))));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load("/nonexistent/path/trace.json"),
            Err(TraceIoError::Io(_))
        ));
    }

    #[test]
    fn whitespace_and_escapes_are_tolerated() {
        let json = r#" {
            "scenario" : "café \"lab\"",
            "duration" : 1.5 ,
            "frames" : [ { "time": 0.25, "len_bytes": 300,
                           "rate": "R11M", "dst_port": 5353,
                           "more_data": true } ]
        } "#;
        let t = from_json(json).unwrap();
        assert_eq!(t.scenario, "café \"lab\"");
        assert_eq!(t.frames.len(), 1);
        assert_eq!(t.frames[0].dst_port, 5353);
        assert!(t.frames[0].more_data);
        // Round-trips through the compact writer too.
        let back = from_json(&to_json(&t).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn float_precision_survives_round_trip() {
        let mut trace = Scenario::Classroom.generate(10.0, 7);
        if let Some(f) = trace.frames.first_mut() {
            f.time = 0.1 + 0.2; // classic non-representable sum
        }
        let back = from_json(&to_json(&trace).unwrap()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn bad_rate_tag_is_json_error() {
        let json = r#"{"scenario":"x","duration":1.0,"frames":[{"time":0.0,"len_bytes":100,"rate":"R54M","dst_port":1,"more_data":false}]}"#;
        assert!(matches!(from_json(json), Err(TraceIoError::Json(_))));
    }
}
