//! Synthetic WiFi broadcast-traffic traces.
//!
//! The HIDE paper evaluates on five traces captured in real venues: a
//! classroom building, a CS department, a college library (WML), a
//! Starbucks store and a city public library (WRL), each 30–60 minutes
//! of peak-hour UDP-padded broadcast traffic (Fig. 6). The captures are
//! not public, so this crate generates *synthetic equivalents*: seeded
//! two-state Markov-modulated Poisson processes calibrated so the
//! per-second frame-count CDFs match Fig. 6's qualitative shapes and
//! averages, with a realistic service-discovery port mix
//! (SSDP, mDNS, NetBIOS, Dropbox LAN-sync, Spotify, DHCP, …).
//!
//! The energy model only consumes frame arrival times, lengths, data
//! rates, *More Data* bits and UDP destination ports — exactly what the
//! generator controls — so matching volume and burstiness preserves the
//! quantities the evaluation is sensitive to (see DESIGN.md §4).
//!
//! # Example
//!
//! ```
//! use hide_traces::scenario::Scenario;
//!
//! let trace = Scenario::Classroom.generate(120.0, 7);
//! assert!(trace.mean_fps() > Scenario::Starbucks.generate(120.0, 7).mean_fps());
//! let cdf = trace.fps_cdf();
//! assert!(cdf.quantile(0.5) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod io;
pub mod record;
pub mod scenario;
pub mod stats;
pub mod stream;
pub mod unicast;
pub mod useful;

pub use record::{Trace, TraceFrame};
pub use scenario::Scenario;
pub use stats::Cdf;
pub use stream::FrameStream;
pub use useful::Usefulness;
