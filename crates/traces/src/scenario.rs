//! The five capture scenarios of the HIDE evaluation and their
//! generator calibrations.

use crate::generate::{self, GeneratorParams, PortMix};
use crate::record::Trace;
use std::fmt;

/// The five real-world scenarios the paper collected traces in
/// (Section VI.A.2), ordered as the figures list them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// A classroom building during lectures — heavy traffic.
    Classroom,
    /// A CS department — moderate traffic.
    CsDept,
    /// The college library (WML) — heavy traffic.
    Wml,
    /// An off-campus Starbucks store — light traffic.
    Starbucks,
    /// The city public library (WRL) — light traffic.
    Wrl,
}

impl Scenario {
    /// All scenarios in the paper's presentation order.
    pub const ALL: [Scenario; 5] = [
        Scenario::Classroom,
        Scenario::CsDept,
        Scenario::Wml,
        Scenario::Starbucks,
        Scenario::Wrl,
    ];

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Classroom => "Classroom",
            Scenario::CsDept => "CS_Dept",
            Scenario::Wml => "WML",
            Scenario::Starbucks => "Starbucks",
            Scenario::Wrl => "WRL",
        }
    }

    /// Generator calibration for this scenario. Burst/idle rates and
    /// dwell times are chosen so the per-second frame-count CDF matches
    /// Fig. 6's shape: Starbucks and WRL light (mean ≈ 2 and ≈ 4 fps),
    /// CS Dept moderate (≈ 8 fps), Classroom and WML heavy (≈ 17 and
    /// ≈ 25 fps).
    pub fn params(&self) -> GeneratorParams {
        match self {
            Scenario::Classroom => GeneratorParams {
                idle_rate_fps: 7.0,
                burst_rate_fps: 32.0,
                mean_idle_secs: 10.0,
                mean_burst_secs: 7.0,
                port_mix: PortMix::campus(),
            },
            Scenario::CsDept => GeneratorParams {
                idle_rate_fps: 3.0,
                burst_rate_fps: 20.0,
                mean_idle_secs: 15.0,
                mean_burst_secs: 6.0,
                port_mix: PortMix::office(),
            },
            Scenario::Wml => GeneratorParams {
                idle_rate_fps: 10.0,
                burst_rate_fps: 40.0,
                mean_idle_secs: 8.0,
                mean_burst_secs: 8.0,
                port_mix: PortMix::campus(),
            },
            Scenario::Starbucks => GeneratorParams {
                idle_rate_fps: 0.5,
                burst_rate_fps: 8.0,
                mean_idle_secs: 30.0,
                mean_burst_secs: 5.0,
                port_mix: PortMix::cafe(),
            },
            Scenario::Wrl => GeneratorParams {
                idle_rate_fps: 1.0,
                burst_rate_fps: 12.0,
                mean_idle_secs: 20.0,
                mean_burst_secs: 6.0,
                port_mix: PortMix::cafe(),
            },
        }
    }

    /// Generates a trace of the given duration with a deterministic
    /// seed. The paper's traces are 30–60 minutes; any duration works.
    pub fn generate(&self, duration_secs: f64, seed: u64) -> Trace {
        generate::generate(self.label(), &self.params(), duration_secs, seed)
    }

    /// Generates all five traces at the paper's nominal 45-minute
    /// midpoint duration, seeds derived from `base_seed`.
    pub fn generate_all(duration_secs: f64, base_seed: u64) -> Vec<Trace> {
        Scenario::ALL
            .iter()
            .enumerate()
            .map(|(i, s)| s.generate(duration_secs, base_seed.wrapping_add(i as u64)))
            .collect()
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = Scenario::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["Classroom", "CS_Dept", "WML", "Starbucks", "WRL"]
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::Wml.generate(60.0, 42);
        let b = Scenario::Wml.generate(60.0, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scenario::Wml.generate(60.0, 1);
        let b = Scenario::Wml.generate(60.0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn volume_ordering_matches_fig6() {
        // Long traces so MMPP averages converge: WML > Classroom >
        // CS Dept > WRL > Starbucks.
        let d = 1800.0;
        let wml = Scenario::Wml.generate(d, 3).mean_fps();
        let classroom = Scenario::Classroom.generate(d, 3).mean_fps();
        let cs = Scenario::CsDept.generate(d, 3).mean_fps();
        let wrl = Scenario::Wrl.generate(d, 3).mean_fps();
        let sb = Scenario::Starbucks.generate(d, 3).mean_fps();
        assert!(wml > classroom, "WML {wml} vs Classroom {classroom}");
        assert!(classroom > cs, "Classroom {classroom} vs CS {cs}");
        assert!(cs > wrl, "CS {cs} vs WRL {wrl}");
        assert!(wrl > sb, "WRL {wrl} vs Starbucks {sb}");
    }

    #[test]
    fn averages_near_calibration_targets() {
        let d = 3600.0;
        let mean = |s: Scenario| s.generate(d, 11).mean_fps();
        assert!((1.0..4.0).contains(&mean(Scenario::Starbucks)));
        assert!((2.0..7.0).contains(&mean(Scenario::Wrl)));
        assert!((5.0..12.0).contains(&mean(Scenario::CsDept)));
        assert!((12.0..24.0).contains(&mean(Scenario::Classroom)));
        assert!((18.0..32.0).contains(&mean(Scenario::Wml)));
    }

    #[test]
    fn generate_all_produces_five() {
        let traces = Scenario::generate_all(30.0, 9);
        assert_eq!(traces.len(), 5);
        assert_eq!(traces[0].scenario, "Classroom");
        assert_eq!(traces[4].scenario, "WRL");
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Scenario::CsDept.to_string(), "CS_Dept");
    }
}
