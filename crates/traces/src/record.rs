//! Trace records: one captured (synthesized) broadcast frame per entry.

use crate::stats::Cdf;
use hide_wifi::phy::DataRate;
use std::collections::BTreeMap;

/// One UDP-padded broadcast frame in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceFrame {
    /// On-air start time, seconds from trace start.
    pub time: f64,
    /// Total frame length in bytes (MAC header + LLC/SNAP + IP + UDP +
    /// payload), the `l_i` of the energy model.
    pub len_bytes: u16,
    /// PHY data rate the frame was sent at (`r_i`).
    pub rate: DataRate,
    /// UDP destination port — what HIDE keys usefulness on.
    pub dst_port: u16,
    /// The MAC *More Data* bit as observed on air.
    pub more_data: bool,
}

impl TraceFrame {
    /// On-air duration of the frame in seconds (PHY preamble included).
    pub fn airtime(&self) -> f64 {
        hide_wifi::phy::airtime_of_total_bytes(self.len_bytes as usize, self.rate)
    }
}

/// A broadcast traffic trace: a duration plus time-sorted frames.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Name of the capture scenario.
    pub scenario: String,
    /// Capture duration in seconds.
    pub duration: f64,
    /// Frames sorted by [`TraceFrame::time`].
    pub frames: Vec<TraceFrame>,
}

impl Trace {
    /// Creates a trace, sorting frames by time.
    pub fn new(scenario: impl Into<String>, duration: f64, mut frames: Vec<TraceFrame>) -> Self {
        frames.sort_by(|a, b| a.time.total_cmp(&b.time));
        Trace {
            scenario: scenario.into(),
            duration,
            frames,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the trace has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Mean broadcast frames per second over the whole trace — the
    /// black squares of Fig. 6.
    pub fn mean_fps(&self) -> f64 {
        if self.duration > 0.0 {
            self.frames.len() as f64 / self.duration
        } else {
            0.0
        }
    }

    /// Per-second frame counts (1-second bins over the duration).
    pub fn per_second_counts(&self) -> Vec<u32> {
        let bins = self.duration.ceil().max(1.0) as usize;
        let mut counts = vec![0u32; bins];
        for f in &self.frames {
            let bin = (f.time as usize).min(bins - 1);
            counts[bin] += 1;
        }
        counts
    }

    /// Empirical CDF of the per-second frame counts — the curves of
    /// Fig. 6.
    pub fn fps_cdf(&self) -> Cdf {
        Cdf::from_samples(self.per_second_counts().iter().map(|&c| c as f64))
    }

    /// Histogram of frames per UDP destination port, descending by
    /// count.
    pub fn port_histogram(&self) -> Vec<(u16, usize)> {
        let mut map: BTreeMap<u16, usize> = BTreeMap::new();
        for f in &self.frames {
            *map.entry(f.dst_port).or_insert(0) += 1;
        }
        let mut hist: Vec<(u16, usize)> = map.into_iter().collect();
        hist.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hist
    }

    /// Recomputes every frame's *More Data* bit with the same-beacon-
    /// interval rule: set when the next frame starts in the same beacon
    /// interval of length `beacon_interval`.
    pub fn assign_more_data(&mut self, beacon_interval: f64) {
        let n = self.frames.len();
        for i in 0..n {
            let more = i + 1 < n && {
                let a = (self.frames[i].time / beacon_interval) as u64;
                let b = (self.frames[i + 1].time / beacon_interval) as u64;
                a == b
            };
            self.frames[i].more_data = more;
        }
    }

    /// Returns the sub-trace containing only frames whose index
    /// satisfies `keep`, preserving duration and scenario.
    pub fn filter_by_index<F: FnMut(usize) -> bool>(&self, mut keep: F) -> Trace {
        Trace {
            scenario: self.scenario.clone(),
            duration: self.duration,
            frames: self
                .frames
                .iter()
                .enumerate()
                .filter(|(i, _)| keep(*i))
                .map(|(_, f)| *f)
                .collect(),
        }
    }

    /// Extracts the window `[start, end)` as a new trace whose frames
    /// are re-based to start at time 0.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= start < end`.
    pub fn slice(&self, start: f64, end: f64) -> Trace {
        assert!(start >= 0.0 && end > start, "need 0 <= start < end");
        let end = end.min(self.duration);
        let frames = self
            .frames
            .iter()
            .filter(|f| f.time >= start && f.time < end)
            .map(|f| TraceFrame {
                time: f.time - start,
                ..*f
            })
            .collect();
        Trace {
            scenario: format!("{}[{start:.0}s..{end:.0}s]", self.scenario),
            duration: end - start,
            frames,
        }
    }

    /// Merges several traces onto one timeline (superimposing their
    /// frames; think multiple capture points at the same venue). The
    /// result spans the longest input.
    pub fn merge<'a, I: IntoIterator<Item = &'a Trace>>(name: &str, traces: I) -> Trace {
        let mut frames = Vec::new();
        let mut duration = 0.0f64;
        for t in traces {
            frames.extend_from_slice(&t.frames);
            duration = duration.max(t.duration);
        }
        Trace::new(name, duration.max(f64::MIN_POSITIVE), frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(time: f64, port: u16) -> TraceFrame {
        TraceFrame {
            time,
            len_bytes: 300,
            rate: DataRate::R1M,
            dst_port: port,
            more_data: false,
        }
    }

    #[test]
    fn new_sorts_frames() {
        let t = Trace::new("x", 10.0, vec![frame(5.0, 1), frame(1.0, 2)]);
        assert!(t.frames[0].time < t.frames[1].time);
    }

    #[test]
    fn mean_fps() {
        let frames = (0..20).map(|i| frame(i as f64 * 0.5, 1)).collect();
        let t = Trace::new("x", 10.0, frames);
        assert!((t.mean_fps() - 2.0).abs() < 1e-12);
        let empty = Trace::new("x", 10.0, vec![]);
        assert_eq!(empty.mean_fps(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn per_second_counts_bins_correctly() {
        let t = Trace::new(
            "x",
            3.0,
            vec![frame(0.1, 1), frame(0.9, 1), frame(1.5, 1), frame(2.99, 1)],
        );
        assert_eq!(t.per_second_counts(), vec![2, 1, 1]);
    }

    #[test]
    fn frame_at_exact_duration_goes_to_last_bin() {
        let t = Trace::new("x", 2.0, vec![frame(2.0, 1)]);
        assert_eq!(t.per_second_counts(), vec![0, 1]);
    }

    #[test]
    fn port_histogram_descending() {
        let t = Trace::new("x", 10.0, vec![frame(0.0, 5), frame(1.0, 5), frame(2.0, 9)]);
        assert_eq!(t.port_histogram(), vec![(5, 2), (9, 1)]);
    }

    #[test]
    fn assign_more_data_uses_beacon_intervals() {
        let mut t = Trace::new(
            "x",
            1.0,
            vec![frame(0.01, 1), frame(0.05, 1), frame(0.30, 1)],
        );
        t.assign_more_data(0.1024);
        let bits: Vec<bool> = t.frames.iter().map(|f| f.more_data).collect();
        assert_eq!(bits, vec![true, false, false]);
    }

    #[test]
    fn filter_by_index_keeps_metadata() {
        let t = Trace::new("x", 10.0, vec![frame(0.0, 1), frame(1.0, 2)]);
        let f = t.filter_by_index(|i| i == 1);
        assert_eq!(f.len(), 1);
        assert_eq!(f.frames[0].dst_port, 2);
        assert_eq!(f.duration, 10.0);
        assert_eq!(f.scenario, "x");
    }

    #[test]
    fn slice_rebases_times() {
        let t = Trace::new("x", 10.0, vec![frame(1.0, 1), frame(4.0, 2), frame(9.0, 3)]);
        let s = t.slice(3.0, 8.0);
        assert_eq!(s.len(), 1);
        assert!((s.frames[0].time - 1.0).abs() < 1e-12);
        assert_eq!(s.duration, 5.0);
        assert!(s.scenario.contains("x["));
    }

    #[test]
    fn slice_clamps_to_duration() {
        let t = Trace::new("x", 10.0, vec![frame(9.5, 1)]);
        let s = t.slice(9.0, 100.0);
        assert_eq!(s.duration, 1.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "start < end")]
    fn bad_slice_panics() {
        let t = Trace::new("x", 10.0, vec![]);
        let _ = t.slice(5.0, 5.0);
    }

    #[test]
    fn merge_superimposes_sorted() {
        let a = Trace::new("a", 10.0, vec![frame(1.0, 1), frame(5.0, 1)]);
        let b = Trace::new("b", 20.0, vec![frame(3.0, 2)]);
        let m = Trace::merge("ab", [&a, &b]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.duration, 20.0);
        let times: Vec<f64> = m.frames.iter().map(|f| f.time).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let m = Trace::merge("none", []);
        assert!(m.is_empty());
    }

    #[test]
    fn airtime_positive_and_rate_sensitive() {
        let slow = frame(0.0, 1);
        let mut fast = frame(0.0, 1);
        fast.rate = DataRate::R11M;
        assert!(fast.airtime() < slow.airtime());
        assert!(fast.airtime() > 0.0);
    }
}
