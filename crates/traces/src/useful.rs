//! Marking frames useful vs. useless.
//!
//! The evaluation parameterizes on "k% of the broadcast frames are
//! useful to the smartphone" (Figs. 7–9 use 10, 8, 6, 4 and 2%). Two
//! strategies realize a target fraction:
//!
//! * [`Usefulness::port_based`] — the faithful-to-the-mechanism one:
//!   choose a set of UDP ports whose traffic share approximates the
//!   target, mark every frame to those ports useful. This is exactly
//!   what happens in a real deployment where usefulness is a property
//!   of the port, and it is the default used by the experiments.
//! * [`Usefulness::bernoulli`] — i.i.d. per-frame marking, kept as an
//!   ablation to show the energy results do not hinge on the port
//!   structure.

use crate::record::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A per-frame usefulness marking (`u_i` of Eq. 1), aligned with a
/// trace's frame order.
#[derive(Debug, Clone, PartialEq)]
pub struct Usefulness {
    flags: Vec<bool>,
    useful_ports: Vec<u16>,
}

impl Usefulness {
    /// Marks useful the frames whose destination port belongs to a set
    /// chosen so the useful-traffic share best approximates
    /// `target_fraction`.
    ///
    /// Ports are considered in ascending order of traffic share and
    /// greedily added while staying at or below the target; then the
    /// single next port is added if doing so lands closer to the
    /// target. The achieved fraction is exact for the given trace.
    ///
    /// # Panics
    ///
    /// Panics if `target_fraction` is outside `[0, 1]`.
    pub fn port_based(trace: &Trace, target_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&target_fraction),
            "target fraction must be in [0, 1]"
        );
        let total = trace.len();
        if total == 0 || target_fraction == 0.0 {
            return Usefulness {
                flags: vec![false; total],
                useful_ports: Vec::new(),
            };
        }

        // Ascending by frequency, so small ports fill the budget finely.
        let mut hist = trace.port_histogram();
        hist.reverse();

        let mut chosen: Vec<u16> = Vec::new();
        let mut covered = 0usize;
        let budget = target_fraction * total as f64;
        for &(port, count) in &hist {
            if (covered + count) as f64 <= budget {
                chosen.push(port);
                covered += count;
            }
        }
        // Consider one overshoot port if it gets us closer.
        if let Some(&(port, count)) = hist
            .iter()
            .find(|(p, c)| !chosen.contains(p) && (covered + c) as f64 > budget && *c > 0)
        {
            let under = budget - covered as f64;
            let over = (covered + count) as f64 - budget;
            if over < under {
                chosen.push(port);
            }
        }
        chosen.sort_unstable();

        let flags = trace
            .frames
            .iter()
            .map(|f| chosen.binary_search(&f.dst_port).is_ok())
            .collect();
        Usefulness {
            flags,
            useful_ports: chosen,
        }
    }

    /// Like [`Usefulness::port_based`], but considers ports in a seeded
    /// random order instead of ascending frequency, so different seeds
    /// yield different (equally valid) useful port sets for the same
    /// target — how a network of distinct clients is modelled.
    ///
    /// # Panics
    ///
    /// Panics if `target_fraction` is outside `[0, 1]`.
    pub fn port_based_seeded(trace: &Trace, target_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&target_fraction),
            "target fraction must be in [0, 1]"
        );
        let total = trace.len();
        if total == 0 || target_fraction == 0.0 {
            return Usefulness {
                flags: vec![false; total],
                useful_ports: Vec::new(),
            };
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hist = trace.port_histogram();
        // Fisher-Yates shuffle for an unbiased port order.
        for i in (1..hist.len()).rev() {
            hist.swap(i, rng.gen_range(0..=i));
        }
        let mut chosen: Vec<u16> = Vec::new();
        let mut covered = 0usize;
        let budget = target_fraction * total as f64;
        for &(port, count) in &hist {
            if (covered + count) as f64 <= budget {
                chosen.push(port);
                covered += count;
            }
        }
        if chosen.is_empty() {
            // Ensure at least the smallest shuffled-in port qualifies
            // when the budget is tiny but nonzero.
            if let Some(&(port, count)) = hist.iter().min_by_key(|(_, c)| *c) {
                if count as f64 <= budget * 2.0 {
                    chosen.push(port);
                }
            }
        }
        chosen.sort_unstable();
        let flags = trace
            .frames
            .iter()
            .map(|f| chosen.binary_search(&f.dst_port).is_ok())
            .collect();
        Usefulness {
            flags,
            useful_ports: chosen,
        }
    }

    /// Marks useful exactly the frames destined to `ports`.
    pub fn from_ports(trace: &Trace, ports: &[u16]) -> Self {
        let mut sorted = ports.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let flags = trace
            .frames
            .iter()
            .map(|f| sorted.binary_search(&f.dst_port).is_ok())
            .collect();
        Usefulness {
            flags,
            useful_ports: sorted,
        }
    }

    /// Marks each frame useful independently with probability
    /// `fraction` (seeded).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn bernoulli(trace: &Trace, fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let flags = trace
            .frames
            .iter()
            .map(|_| rng.gen_bool(fraction))
            .collect();
        Usefulness {
            flags,
            useful_ports: Vec::new(),
        }
    }

    /// Marks every frame useful — the receive-all viewpoint.
    pub fn all(trace: &Trace) -> Self {
        Usefulness {
            flags: vec![true; trace.len()],
            useful_ports: trace.port_histogram().iter().map(|&(p, _)| p).collect(),
        }
    }

    /// Per-frame flags (`u_i`), aligned with the trace's frames.
    pub fn flags(&self) -> &[bool] {
        &self.flags
    }

    /// Whether frame `i` is useful.
    pub fn is_useful(&self, i: usize) -> bool {
        self.flags.get(i).copied().unwrap_or(false)
    }

    /// The chosen useful port set (empty for Bernoulli marking).
    pub fn useful_ports(&self) -> &[u16] {
        &self.useful_ports
    }

    /// The achieved useful fraction (`n'/n` of Eq. 1).
    pub fn achieved_fraction(&self) -> f64 {
        if self.flags.is_empty() {
            return 0.0;
        }
        self.flags.iter().filter(|&&b| b).count() as f64 / self.flags.len() as f64
    }

    /// Number of useful frames.
    pub fn useful_count(&self) -> usize {
        self.flags.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn port_based_hits_target_fraction_closely() {
        let trace = Scenario::Wml.generate(1800.0, 13);
        for target in [0.02, 0.04, 0.06, 0.08, 0.10] {
            let marking = Usefulness::port_based(&trace, target);
            let achieved = marking.achieved_fraction();
            assert!(
                (achieved - target).abs() < 0.05,
                "target {target}, achieved {achieved}"
            );
        }
    }

    #[test]
    fn port_based_is_port_consistent() {
        let trace = Scenario::CsDept.generate(600.0, 4);
        let marking = Usefulness::port_based(&trace, 0.10);
        for (i, f) in trace.frames.iter().enumerate() {
            let in_set = marking.useful_ports().contains(&f.dst_port);
            assert_eq!(marking.is_useful(i), in_set);
        }
    }

    #[test]
    fn zero_target_marks_nothing() {
        let trace = Scenario::Starbucks.generate(300.0, 5);
        let marking = Usefulness::port_based(&trace, 0.0);
        assert_eq!(marking.useful_count(), 0);
        assert!(marking.useful_ports().is_empty());
    }

    #[test]
    fn full_target_marks_everything_available() {
        let trace = Scenario::Starbucks.generate(300.0, 5);
        let marking = Usefulness::port_based(&trace, 1.0);
        assert_eq!(marking.useful_count(), trace.len());
    }

    #[test]
    fn all_marks_everything() {
        let trace = Scenario::Wrl.generate(300.0, 6);
        let marking = Usefulness::all(&trace);
        assert_eq!(marking.useful_count(), trace.len());
        assert_eq!(marking.achieved_fraction(), 1.0);
    }

    #[test]
    fn bernoulli_is_seeded_and_near_fraction() {
        let trace = Scenario::Classroom.generate(1800.0, 8);
        let a = Usefulness::bernoulli(&trace, 0.1, 99);
        let b = Usefulness::bernoulli(&trace, 0.1, 99);
        assert_eq!(a, b);
        let achieved = a.achieved_fraction();
        assert!((achieved - 0.1).abs() < 0.02, "achieved {achieved}");
    }

    #[test]
    fn empty_trace_handled() {
        let trace = Trace::new("empty", 10.0, vec![]);
        let marking = Usefulness::port_based(&trace, 0.5);
        assert_eq!(marking.achieved_fraction(), 0.0);
        assert!(!marking.is_useful(0));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn out_of_range_target_panics() {
        let trace = Trace::new("x", 1.0, vec![]);
        let _ = Usefulness::port_based(&trace, 1.5);
    }

    #[test]
    fn seeded_port_based_varies_with_seed() {
        let trace = Scenario::Wml.generate(1800.0, 51);
        let a = Usefulness::port_based_seeded(&trace, 0.10, 1);
        let b = Usefulness::port_based_seeded(&trace, 0.10, 2);
        let c = Usefulness::port_based_seeded(&trace, 0.10, 1);
        assert_eq!(a, c, "same seed must reproduce");
        assert_ne!(
            a.useful_ports(),
            b.useful_ports(),
            "different seeds should pick different sets"
        );
        for m in [&a, &b] {
            let achieved = m.achieved_fraction();
            assert!((achieved - 0.10).abs() < 0.06, "achieved {achieved}");
        }
    }

    #[test]
    fn from_ports_marks_exactly_those_ports() {
        let trace = Scenario::CsDept.generate(300.0, 9);
        let hist = trace.port_histogram();
        let ports = vec![hist[0].0, hist[2].0];
        let m = Usefulness::from_ports(&trace, &ports);
        for (i, f) in trace.frames.iter().enumerate() {
            assert_eq!(m.is_useful(i), ports.contains(&f.dst_port));
        }
        assert_eq!(m.useful_count(), hist[0].1 + hist[2].1);
    }
}
