//! Property tests over the policy layer: the FSM pricing invariant
//! (no transition or dwell can ever charge a negative or non-finite
//! nanojoule amount, for any physically-plausible device) and the
//! schedule/parse round-trip laws of [`WakePolicy`].

use hide_energy::attribution::WakePricing;
use hide_energy::fsm::{RadioState, TransitionTable};
use hide_energy::profile::DeviceProfile;
use hide_policy::{builtin, ScheduleConfig, WakePolicy};
use proptest::prelude::*;

/// A positive, finite multiplier spanning six orders of magnitude —
/// wide enough to cover any real radio without leaving f64 sanity.
fn mult() -> impl Strategy<Value = f64> {
    1e-3f64..1e3
}

proptest! {
    /// Satellite 3c: for ANY profile built from positive finite
    /// constants, every price the transition table can emit is a
    /// finite non-negative nanojoule amount, and the derived fleet
    /// wake pricing carries only finite integers.
    #[test]
    fn fsm_prices_never_negative_or_non_finite(
        wakelock in mult(),
        resume_e in mult(),
        suspend_e in mult(),
        beacon_e in mult(),
        rx in mult(),
        tx in mult(),
        idle in mult(),
        promo in 0.0f64..1e3,
        timer in 0.0f64..1e2,
        dwell in 0.0f64..1e4,
    ) {
        let profile = DeviceProfile::builder("proptest")
            .wakelock_secs(wakelock)
            .resume_energy(resume_e * 1e-3)
            .suspend_energy(suspend_e * 1e-3)
            .beacon_energy(beacon_e * 1e-4)
            .rx_power(rx)
            .tx_power(tx)
            .idle_power(idle)
            .build();
        let table = TransitionTable::with_wifi_lpm(&profile, promo, timer);
        prop_assert!(table.is_priced_sane());
        for t in table.transitions() {
            prop_assert!(t.energy_nj < u64::MAX / 2, "rounded price overflows");
        }
        for state in RadioState::ALL {
            let nj = table.dwell_nj(state, dwell);
            prop_assert!(nj < u64::MAX / 2);
            // Dwell pricing is monotone in time: longer never cheaper.
            prop_assert!(table.dwell_nj(state, dwell * 2.0) >= nj);
        }
        // The table carries no beacon length (beacon_nj stays 0 until
        // from_profile fills it); the wake prices must agree exactly.
        let table_pricing = WakePricing::from_table(&table);
        let profile_pricing = WakePricing::from_profile(&profile);
        prop_assert_eq!(table_pricing.wake_nj, profile_pricing.wake_nj);
        prop_assert_eq!(table_pricing.forgone_nj, profile_pricing.forgone_nj);
        prop_assert!(profile_pricing.beacon_nj > 0);
        prop_assert!(profile_pricing.forgone_nj <= profile_pricing.wake_nj);
    }

    /// Every registry device prices sane under ANY promotion knobs.
    #[test]
    fn registry_devices_price_sane_under_any_knobs(
        idx in 0usize..6,
        promo in 0.0f64..1e3,
        timer in 0.0f64..1e2,
    ) {
        let entry = builtin()[idx];
        let table = TransitionTable::with_wifi_lpm(&entry.profile, promo, timer);
        prop_assert!(table.is_priced_sane());
        prop_assert!(entry.profile.is_consistent());
    }

    /// `parse(name())` round-trips for every scheduled configuration.
    #[test]
    fn scheduled_parse_roundtrip(interval in 1u32..512, period in 1u32..512) {
        let cfg = ScheduleConfig { interval_dtims: interval, period_dtims: period }.normalized();
        let spec = format!("scheduled:{}:{}", cfg.interval_dtims, cfg.period_dtims);
        let parsed = WakePolicy::parse(&spec).unwrap();
        prop_assert_eq!(parsed.schedule(), Some(cfg));
        // The window predicate is periodic and the duty cycle is the
        // fraction of in-window DTIMs over one full period.
        let interval = u64::from(cfg.interval_dtims);
        let hits = (0..interval).filter(|&i| cfg.in_window(i)).count() as f64;
        let duty = hits / interval as f64;
        prop_assert!((duty - cfg.duty_cycle()).abs() < 1e-12);
        for i in 0..interval {
            prop_assert_eq!(cfg.in_window(i), cfg.in_window(i + interval));
        }
    }
}
