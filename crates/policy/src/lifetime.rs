//! Life-Add-style battery-lifetime projection: turn joules spent over a
//! simulated horizon into projected standby time on a named battery.
//!
//! The projection is deliberately simple — constant average draw over
//! the horizon, scaled to one client — because its job is comparative:
//! the same battery under two policies yields a lifetime *gain*, and
//! that gain is what the `hide-metrics/1` artifact pins. All exported
//! numbers are integers (micro-watts, seconds, parts-per-million) so
//! the artifact stays byte-stable across platforms.

use hide_energy::battery::Battery;

/// An integer-only battery-lifetime projection for one policy run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifetimeProjection {
    /// Battery capacity, milli-watt-hours (rounded).
    pub capacity_mwh: u64,
    /// Clients the fleet energy was averaged over.
    pub clients: u64,
    /// Average per-client draw under the policy, micro-watts (rounded).
    pub avg_draw_uw: u64,
    /// Projected standby seconds on this battery under the policy.
    pub projected_secs: u64,
    /// Projected standby seconds under the receive-all baseline.
    pub baseline_secs: u64,
    /// Lifetime gain of the policy over the baseline, parts-per-million
    /// (negative when the policy costs battery life).
    pub lifetime_gain_ppm: i64,
}

impl LifetimeProjection {
    /// Projects standby lifetime from fleet totals.
    ///
    /// `total_j` and `baseline_j` are the summed energy of `clients`
    /// clients over `duration_secs` of simulated time; the projection
    /// divides down to one client before extrapolating.
    ///
    /// # Panics
    ///
    /// Panics if `duration_secs`, `clients`, or either energy total is
    /// not positive — a projection over an empty run is meaningless.
    #[must_use]
    pub fn project(
        battery: &Battery,
        total_j: f64,
        baseline_j: f64,
        duration_secs: f64,
        clients: u64,
    ) -> Self {
        assert!(duration_secs > 0.0, "duration must be positive");
        assert!(clients > 0, "need at least one client");
        assert!(
            total_j > 0.0 && baseline_j > 0.0,
            "energy totals must be positive"
        );
        let n = clients as f64;
        let draw_w = total_j / duration_secs / n;
        let baseline_draw_w = baseline_j / duration_secs / n;
        let projected = battery.standby_hours(draw_w) * 3600.0;
        let baseline = battery.standby_hours(baseline_draw_w) * 3600.0;
        let gain_ppm = (projected / baseline - 1.0) * 1e6;
        LifetimeProjection {
            capacity_mwh: (battery.capacity_wh() * 1e3).round() as u64,
            clients,
            avg_draw_uw: (draw_w * 1e6).round() as u64,
            projected_secs: projected.round() as u64,
            baseline_secs: baseline.round() as u64,
            lifetime_gain_ppm: gain_ppm.round() as i64,
        }
    }

    /// The `battery` section body for the `hide-metrics/1` artifact:
    /// a single-line JSON object of integers, keys in declaration
    /// order.
    #[must_use]
    pub fn to_metrics_section(&self) -> String {
        format!(
            "{{\"capacity_mwh\":{},\"clients\":{},\"avg_draw_uw\":{},\"projected_secs\":{},\"baseline_secs\":{},\"lifetime_gain_ppm\":{}}}",
            self.capacity_mwh,
            self.clients,
            self.avg_draw_uw,
            self.projected_secs,
            self.baseline_secs,
            self.lifetime_gain_ppm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saving_energy_extends_life() {
        let b = Battery::NEXUS_ONE;
        // Policy spends half the baseline energy → double the lifetime.
        let p = LifetimeProjection::project(&b, 50.0, 100.0, 1000.0, 1);
        assert_eq!(p.projected_secs, 2 * p.baseline_secs);
        assert_eq!(p.lifetime_gain_ppm, 1_000_000);
    }

    #[test]
    fn equal_energy_means_zero_gain() {
        let b = Battery::GALAXY_S4;
        let p = LifetimeProjection::project(&b, 70.0, 70.0, 600.0, 7);
        assert_eq!(p.projected_secs, p.baseline_secs);
        assert_eq!(p.lifetime_gain_ppm, 0);
    }

    #[test]
    fn costlier_policy_goes_negative() {
        let b = Battery::NEXUS_ONE;
        let p = LifetimeProjection::project(&b, 120.0, 100.0, 1000.0, 2);
        assert!(p.lifetime_gain_ppm < 0);
        assert!(p.projected_secs < p.baseline_secs);
    }

    #[test]
    fn per_client_scaling() {
        let b = Battery::NEXUS_ONE;
        // Ten clients spending 10x the energy of one client draw the
        // same per-client power → identical projection.
        let one = LifetimeProjection::project(&b, 30.0, 60.0, 600.0, 1);
        let ten = LifetimeProjection::project(&b, 300.0, 600.0, 600.0, 10);
        assert_eq!(one.projected_secs, ten.projected_secs);
        assert_eq!(one.avg_draw_uw, ten.avg_draw_uw);
    }

    #[test]
    fn section_is_single_line_integer_json() {
        let b = Battery::NEXUS_ONE;
        let p = LifetimeProjection::project(&b, 50.0, 100.0, 1000.0, 1);
        let s = p.to_metrics_section();
        assert!(!s.contains('\n'));
        assert!(!s.contains('.'));
        assert!(s.starts_with("{\"capacity_mwh\":"));
        assert!(s.ends_with('}'));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_panics() {
        let _ = LifetimeProjection::project(&Battery::NEXUS_ONE, 1.0, 1.0, 0.0, 1);
    }
}
