//! Power-save policy subsystem: the device-profile registry and the
//! pluggable wake-policy seam.
//!
//! The HIDE paper's claim is an energy *delta* — what a phone spends
//! under AP-side broadcast hiding versus what it would have spent
//! waking for every multicast burst. Turning that delta into a real
//! experiment axis needs two things the energy layer alone does not
//! provide:
//!
//! * **[`registry`]** — named [`DeviceEntry`]s pairing a
//!   [`DeviceProfile`](hide_energy::profile::DeviceProfile) with its
//!   battery and its PowerTutor promotion knobs (packet-rate threshold,
//!   inactivity timer), spanning IoT-class to tablet-class radios;
//! * **[`wake`]** — the [`WakePolicy`] enum the simulators dispatch
//!   on: [`WakePolicy::Hide`] (the paper's protocol, byte-identical to
//!   the pre-seam engine), [`WakePolicy::LegacyPsm`] (wake on every
//!   DTIM with buffered traffic — the paper's receive-all baseline as
//!   an actual protocol), and [`WakePolicy::ScheduledWake`] (Wi-Fi
//!   8-primer-style negotiated wake windows with a configurable
//!   service interval/period).
//!
//! [`lifetime`] closes the loop with Life-Add-style battery-lifetime
//! projections: joules spent over a horizon become projected standby
//! seconds per policy, emitted as the integer-only `battery` section of
//! the `hide-metrics/1` artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lifetime;
pub mod registry;
pub mod wake;

pub use lifetime::LifetimeProjection;
pub use registry::{builtin, lookup, registry_keys, DeviceEntry};
pub use wake::{ScheduleConfig, WakePolicy};
