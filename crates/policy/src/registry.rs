//! The device-profile registry: every named device the CLIs accept via
//! `--device`, pairing energy constants with a battery and the
//! PowerTutor promotion knobs.
//!
//! The two Table I phones stay available under their historical
//! constants; the four extensions span the radio-power range from
//! IoT-class (≈ 0.21 W receive) to tablet-class (≈ 0.72 W receive), so
//! cross-device sweeps exercise both ends of the paper's wake-cost
//! asymmetry.

use hide_energy::battery::Battery;
use hide_energy::fsm::TransitionTable;
use hide_energy::profile::{
    DeviceProfile, GALAXY_S4, IOT_CAM, NEXUS_ONE, NOTE_4, PIXEL_3A, TABLET_PRO,
};
use hide_energy::WakePricing;

/// One registry row: a device profile plus everything the policy layer
/// adds on top of the raw energy constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceEntry {
    /// Stable kebab-case registry key (`--device` spelling).
    pub key: &'static str,
    /// The Section-IV energy constants.
    pub profile: DeviceProfile,
    /// Battery rating, milliamp-hours.
    pub battery_mah: f64,
    /// Battery nominal voltage, volts.
    pub battery_volts: f64,
    /// PowerTutor WiFi packet-rate promotion threshold, packets/second.
    pub promotion_pkts_per_sec: f64,
    /// PowerTutor WiFi high→low inactivity timer, seconds.
    pub inactivity_timer_secs: f64,
}

impl DeviceEntry {
    /// The battery as a [`Battery`] (usable watt-hours).
    #[must_use]
    pub fn battery(&self) -> Battery {
        Battery::from_mah(self.battery_mah, self.battery_volts)
    }

    /// The device's multi-radio transition table with its registry
    /// promotion knobs applied.
    #[must_use]
    pub fn transition_table(&self) -> TransitionTable {
        TransitionTable::with_wifi_lpm(
            &self.profile,
            self.promotion_pkts_per_sec,
            self.inactivity_timer_secs,
        )
    }

    /// Pre-rounded integer wake prices for this device — the exact
    /// integers [`WakePricing::from_profile`] derives, via the
    /// transition table.
    #[must_use]
    pub fn pricing(&self) -> WakePricing {
        WakePricing::from_profile(&self.profile)
    }
}

/// Every built-in device, in registry order (Table I first).
#[must_use]
pub fn builtin() -> Vec<DeviceEntry> {
    vec![
        DeviceEntry {
            key: "nexus-one",
            profile: NEXUS_ONE,
            battery_mah: 1400.0,
            battery_volts: 3.7,
            promotion_pkts_per_sec: 15.0,
            inactivity_timer_secs: 1.0,
        },
        DeviceEntry {
            key: "galaxy-s4",
            profile: GALAXY_S4,
            battery_mah: 2600.0,
            battery_volts: 3.8,
            promotion_pkts_per_sec: 15.0,
            inactivity_timer_secs: 1.2,
        },
        DeviceEntry {
            key: "pixel-3a",
            profile: PIXEL_3A,
            battery_mah: 3000.0,
            battery_volts: 3.85,
            promotion_pkts_per_sec: 20.0,
            inactivity_timer_secs: 0.8,
        },
        DeviceEntry {
            key: "note-4",
            profile: NOTE_4,
            battery_mah: 3220.0,
            battery_volts: 3.85,
            promotion_pkts_per_sec: 15.0,
            inactivity_timer_secs: 1.5,
        },
        DeviceEntry {
            key: "iot-cam",
            profile: IOT_CAM,
            battery_mah: 800.0,
            battery_volts: 3.7,
            promotion_pkts_per_sec: 5.0,
            inactivity_timer_secs: 0.3,
        },
        DeviceEntry {
            key: "tablet-pro",
            profile: TABLET_PRO,
            battery_mah: 7300.0,
            battery_volts: 3.8,
            promotion_pkts_per_sec: 25.0,
            inactivity_timer_secs: 2.0,
        },
    ]
}

/// Case-insensitive lookup by registry key or profile display name.
#[must_use]
pub fn lookup(name: &str) -> Option<DeviceEntry> {
    builtin().into_iter().find(|e| {
        e.key.eq_ignore_ascii_case(name)
            || e.profile.name.eq_ignore_ascii_case(name)
            || e.profile.name.replace(' ', "-").eq_ignore_ascii_case(name)
    })
}

/// All registry keys, in registry order (for CLI help text).
#[must_use]
pub fn registry_keys() -> Vec<&'static str> {
    builtin().into_iter().map(|e| e.key).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_table_i_plus_four() {
        let all = builtin();
        assert!(all.len() >= 6);
        assert_eq!(all[0].key, "nexus-one");
        assert_eq!(all[0].profile, NEXUS_ONE);
        assert_eq!(all[1].profile, GALAXY_S4);
        for e in &all {
            assert!(e.profile.is_consistent(), "{}", e.key);
            assert!(e.battery_mah > 0.0 && e.battery_volts > 0.0);
            assert!(e.transition_table().is_priced_sane(), "{}", e.key);
        }
    }

    #[test]
    fn table_i_batteries_match_energy_constants() {
        // The registry's mAh ratings reproduce the battery module's
        // watt-hour constants for the paper's two phones.
        let n1 = lookup("nexus-one").unwrap();
        assert!((n1.battery().capacity_wh() - Battery::NEXUS_ONE.capacity_wh()).abs() < 1e-9);
        let s4 = lookup("galaxy-s4").unwrap();
        assert!((s4.battery().capacity_wh() - Battery::GALAXY_S4.capacity_wh()).abs() < 1e-9);
    }

    #[test]
    fn lookup_is_forgiving() {
        assert!(lookup("nexus-one").is_some());
        assert!(lookup("Nexus One").is_some());
        assert!(lookup("NEXUS-ONE").is_some());
        assert!(lookup("tablet-pro").is_some());
        assert!(lookup("walkie-talkie").is_none());
    }

    #[test]
    fn keys_are_unique_kebab_case() {
        let mut keys = registry_keys();
        assert!(keys.iter().all(|k| k
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')));
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), builtin().len());
    }

    #[test]
    fn pricing_comes_from_the_transition_table() {
        // DeviceEntry::pricing and a hand-derived table price agree on
        // the wake columns for every registry device.
        for e in builtin() {
            let via_profile = e.pricing();
            let via_table = WakePricing::from_table(&e.transition_table());
            assert_eq!(via_profile.wake_nj, via_table.wake_nj, "{}", e.key);
            assert_eq!(via_profile.forgone_nj, via_table.forgone_nj, "{}", e.key);
        }
    }
}
