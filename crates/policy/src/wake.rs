//! The pluggable wake-policy seam.
//!
//! [`WakePolicy`] is enum-dispatched rather than trait-object-dispatched
//! on purpose: the fleet engine's DTIM sweep is the hottest loop in the
//! workspace, and an enum the engine can hoist out of the loop (`Hide`
//! compiles to the exact pre-seam code path; see
//! `bench_throughput` measurement 7) costs nothing where a vtable call
//! per client per DTIM would.

/// Configuration of an AP-negotiated wake schedule (Wi-Fi 8 primer's
/// scheduled-wake / TWT-style operation): the client is awake for
/// `period_dtims` consecutive DTIMs out of every `interval_dtims`, and
/// deep-sleeps through the rest — beacons included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleConfig {
    /// Service interval: schedule length in DTIM beacons (≥ 1).
    pub interval_dtims: u32,
    /// Service period: awake DTIMs at the start of each interval
    /// (≥ 1, clamped to the interval).
    pub period_dtims: u32,
}

impl Default for ScheduleConfig {
    /// One awake DTIM out of every eight — with the paper's 102.4 ms
    /// DTIM spacing, a wake window about every 0.82 s.
    fn default() -> Self {
        ScheduleConfig {
            interval_dtims: 8,
            period_dtims: 1,
        }
    }
}

impl ScheduleConfig {
    /// Normalizes the knobs: interval ≥ 1, 1 ≤ period ≤ interval.
    #[must_use]
    pub fn normalized(self) -> Self {
        let interval_dtims = self.interval_dtims.max(1);
        ScheduleConfig {
            interval_dtims,
            period_dtims: self.period_dtims.clamp(1, interval_dtims),
        }
    }

    /// Whether a suspended client on this schedule is awake at DTIM
    /// number `dtim_index` (0-based).
    #[inline]
    #[must_use]
    pub fn in_window(&self, dtim_index: u64) -> bool {
        dtim_index % u64::from(self.interval_dtims) < u64::from(self.period_dtims)
    }

    /// Fraction of DTIMs inside the wake window.
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        f64::from(self.period_dtims) / f64::from(self.interval_dtims)
    }
}

/// Which power-save protocol suspended clients run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum WakePolicy {
    /// The paper's protocol: clients register listened UDP ports with
    /// the AP, which flags only the clients whose buffered traffic is
    /// useful. The default, byte-identical to the pre-seam engine.
    #[default]
    Hide,
    /// Standard 802.11 power-save: every suspended client wakes for
    /// every DTIM with buffered broadcast traffic — the paper's
    /// receive-all baseline as a live protocol.
    LegacyPsm,
    /// Wi-Fi 8-primer-style negotiated wake windows: suspended clients
    /// deep-sleep through every beacon outside their service window
    /// and receive-all inside it. Broadcast bursts outside the window
    /// are *deferred* (slept through), not missed.
    ScheduledWake(ScheduleConfig),
}

impl WakePolicy {
    /// The CLI spellings [`parse`](Self::parse) accepts, for help text.
    pub const NAMES: [&'static str; 3] = ["hide", "psm", "scheduled[:interval[:period]]"];

    /// Stable snake_case key (`hide`, `psm`, `scheduled`) used in CLI
    /// flags and metrics sections.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            WakePolicy::Hide => "hide",
            WakePolicy::LegacyPsm => "psm",
            WakePolicy::ScheduledWake(_) => "scheduled",
        }
    }

    /// Dense id for the integer-only metrics artifact: 0 = hide,
    /// 1 = psm, 2 = scheduled.
    #[must_use]
    pub fn kind_id(&self) -> u64 {
        match self {
            WakePolicy::Hide => 0,
            WakePolicy::LegacyPsm => 1,
            WakePolicy::ScheduledWake(_) => 2,
        }
    }

    /// Parses a CLI spelling: `hide`, `psm` (or `legacy-psm`),
    /// `scheduled`, `scheduled:INTERVAL`, `scheduled:INTERVAL:PERIOD`
    /// (DTIM counts).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the accepted spellings.
    pub fn parse(s: &str) -> Result<Self, String> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "hide" => return Ok(WakePolicy::Hide),
            "psm" | "legacy-psm" | "legacy_psm" => return Ok(WakePolicy::LegacyPsm),
            "scheduled" => return Ok(WakePolicy::ScheduledWake(ScheduleConfig::default())),
            _ => {}
        }
        if let Some(rest) = lower.strip_prefix("scheduled:") {
            let mut parts = rest.split(':');
            let parse_u32 = |part: Option<&str>, what: &str| {
                part.map(|p| {
                    p.parse::<u32>()
                        .map_err(|_| format!("bad scheduled {what} {p:?}"))
                })
                .transpose()
            };
            let interval = parse_u32(parts.next(), "interval")?;
            let period = parse_u32(parts.next(), "period")?;
            if parts.next().is_some() {
                return Err(format!("too many ':' segments in policy {s:?}"));
            }
            let d = ScheduleConfig::default();
            let cfg = ScheduleConfig {
                interval_dtims: interval.unwrap_or(d.interval_dtims),
                period_dtims: period.unwrap_or(d.period_dtims),
            }
            .normalized();
            return Ok(WakePolicy::ScheduledWake(cfg));
        }
        Err(format!(
            "unknown policy {s:?}; valid: {}",
            Self::NAMES.join(", ")
        ))
    }

    /// Whether clients register and refresh listened ports with the AP
    /// (UDP Port Messages). Only HIDE does; under the other policies
    /// clients associate without HIDE support and never transmit
    /// refreshes.
    #[must_use]
    pub fn uses_port_refresh(&self) -> bool {
        matches!(self, WakePolicy::Hide)
    }

    /// Whether the AP attaches the BTIM element to DTIM beacons. Only
    /// HIDE needs it; the other policies run TIM-only beacons, so the
    /// Eq. 16 BTIM byte overhead is zero.
    #[must_use]
    pub fn ap_btim_enabled(&self) -> bool {
        matches!(self, WakePolicy::Hide)
    }

    /// The negotiated wake schedule, when one exists.
    #[must_use]
    pub fn schedule(&self) -> Option<ScheduleConfig> {
        match self {
            WakePolicy::ScheduledWake(cfg) => Some(cfg.normalized()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        assert_eq!(WakePolicy::parse("hide").unwrap(), WakePolicy::Hide);
        assert_eq!(WakePolicy::parse("HIDE").unwrap(), WakePolicy::Hide);
        assert_eq!(WakePolicy::parse("psm").unwrap(), WakePolicy::LegacyPsm);
        assert_eq!(
            WakePolicy::parse("legacy-psm").unwrap(),
            WakePolicy::LegacyPsm
        );
        assert_eq!(
            WakePolicy::parse("scheduled").unwrap(),
            WakePolicy::ScheduledWake(ScheduleConfig::default())
        );
        assert!(WakePolicy::parse("twt").is_err());
    }

    #[test]
    fn parse_scheduled_knobs() {
        let p = WakePolicy::parse("scheduled:16").unwrap();
        assert_eq!(
            p.schedule().unwrap(),
            ScheduleConfig {
                interval_dtims: 16,
                period_dtims: 1
            }
        );
        let p = WakePolicy::parse("scheduled:16:4").unwrap();
        assert_eq!(
            p.schedule().unwrap(),
            ScheduleConfig {
                interval_dtims: 16,
                period_dtims: 4
            }
        );
        // Period clamps to the interval; zero interval normalizes to 1.
        let p = WakePolicy::parse("scheduled:4:9").unwrap();
        assert_eq!(p.schedule().unwrap().period_dtims, 4);
        let p = WakePolicy::parse("scheduled:0:0").unwrap();
        assert_eq!(
            p.schedule().unwrap(),
            ScheduleConfig {
                interval_dtims: 1,
                period_dtims: 1
            }
        );
        assert!(WakePolicy::parse("scheduled:x").is_err());
        assert!(WakePolicy::parse("scheduled:1:2:3").is_err());
    }

    #[test]
    fn window_membership_and_duty_cycle() {
        let s = ScheduleConfig {
            interval_dtims: 8,
            period_dtims: 2,
        };
        let awake: Vec<u64> = (0..16).filter(|&i| s.in_window(i)).collect();
        assert_eq!(awake, vec![0, 1, 8, 9]);
        assert!((s.duty_cycle() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn policy_capability_matrix() {
        let sched = WakePolicy::ScheduledWake(ScheduleConfig::default());
        assert!(WakePolicy::Hide.uses_port_refresh());
        assert!(WakePolicy::Hide.ap_btim_enabled());
        assert!(!WakePolicy::LegacyPsm.uses_port_refresh());
        assert!(!WakePolicy::LegacyPsm.ap_btim_enabled());
        assert!(!sched.uses_port_refresh());
        assert!(!sched.ap_btim_enabled());
        assert_eq!(WakePolicy::Hide.kind_id(), 0);
        assert_eq!(WakePolicy::LegacyPsm.kind_id(), 1);
        assert_eq!(sched.kind_id(), 2);
        assert_eq!(WakePolicy::default(), WakePolicy::Hide);
    }
}
