//! The long-running AP service.
//!
//! Thread layout (no async runtime; plain threads and channels):
//!
//! ```text
//!  data UDP socket ──▶ router thread ──┬──▶ shard 0 (AccessPoint, AIDs 1..)
//!                                      ├──▶ shard 1 (AccessPoint, ...)
//!  timer thread (DTIM cadence) ────────┤         │
//!  ctrl UDP socket ──▶ ctrl thread ────┘         └──▶ ACKs out the
//!                                                     data socket
//! ```
//!
//! The router parses each datagram with [`AnyFrame::parse`] and routes
//! it by client MAC to one shard; broadcast data frames fan out to
//! every shard (each shard's AP serves its own clients' BTIM flags, so
//! each needs the full broadcast stream). Shards apply backpressure:
//! when a shard's queue exceeds the configured watermark the router
//! drops *data* frames (management traffic is never dropped), exactly
//! like a real AP's bounded broadcast buffer.

use crate::config::ApdConfig;
use crate::ctrl::{CtrlParseError, CtrlRequest, CtrlResponse};
use crate::error::ApdError;
use crate::shard::{monotonic_secs, shard_of, Shard, ShardCmd, ShardFinal, ShardStats};
use crate::snapshot::ApdSnapshot;
use crate::telemetry::{self, RouterCounters, RuntimePlane, ShardHealth};
use hide_core::ap::{AccessPoint, ApSnapshot};
use hide_obs::{log_info, AtomicRuntime, NoopRuntime, Recorder, RtStage, RuntimeSink};
use hide_wifi::frame::AnyFrame;
use hide_wifi::mac::MacAddr;
use std::net::{SocketAddr, UdpSocket};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long blocking socket reads wait before re-checking the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Daemon-wide statistics: router totals plus every shard's totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct DaemonStats {
    /// Datagrams received on the data socket.
    pub frames_received: u64,
    /// Datagrams that failed to parse as any supported frame.
    pub parse_errors: u64,
    /// Broadcast data frames dropped by backpressure.
    pub dropped_backpressure: u64,
    /// Totals accumulated across all shards.
    pub shards: ShardStats,
}

impl DaemonStats {
    /// Renders the stats as the control protocol's `key=value` line.
    #[must_use]
    pub fn to_line(&self) -> String {
        let s = &self.shards;
        format!(
            "frames_received={} parse_errors={} dropped_backpressure={} \
             port_messages={} acks_sent={} associations={} assoc_denied={} \
             disassociations={} broadcasts_enqueued={} beacons={} \
             frames_delivered={} entries_expired={} unknown_clients={} \
             ignored_frames={} clients={}",
            self.frames_received,
            self.parse_errors,
            self.dropped_backpressure,
            s.port_messages,
            s.acks_sent,
            s.associations,
            s.assoc_denied,
            s.disassociations,
            s.broadcasts_enqueued,
            s.beacons,
            s.frames_delivered,
            s.entries_expired,
            s.unknown_clients,
            s.ignored_frames,
            s.clients,
        )
    }
}

/// Everything the control plane needs to serve requests; shared
/// between the ctrl thread and the in-process [`DaemonHandle`] so both
/// answer identically.
struct ControlPlane {
    cfg: ApdConfig,
    shard_txs: Vec<Sender<ShardCmd>>,
    counters: Arc<RouterCounters>,
    rt: Arc<RuntimePlane>,
    tick_counter: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
}

impl ControlPlane {
    fn gather_snapshots(&self) -> Result<Vec<ApSnapshot>, ApdError> {
        let mut snaps = Vec::with_capacity(self.shard_txs.len());
        for tx in &self.shard_txs {
            let (reply_tx, reply_rx) = channel();
            tx.send(ShardCmd::Snapshot(reply_tx))
                .map_err(|_| ApdError::ChannelClosed("shard"))?;
            snaps.push(
                reply_rx
                    .recv()
                    .map_err(|_| ApdError::ChannelClosed("shard"))?,
            );
        }
        Ok(snaps)
    }

    fn gather_stats(&self) -> Result<DaemonStats, ApdError> {
        let mut stats = DaemonStats {
            frames_received: self.counters.frames_received.load(Ordering::Relaxed),
            parse_errors: self.counters.parse_errors.load(Ordering::Relaxed),
            dropped_backpressure: self.counters.dropped_backpressure.load(Ordering::Relaxed),
            ..DaemonStats::default()
        };
        for tx in &self.shard_txs {
            let (reply_tx, reply_rx) = channel();
            tx.send(ShardCmd::Stats(reply_tx))
                .map_err(|_| ApdError::ChannelClosed("shard"))?;
            let shard = reply_rx
                .recv()
                .map_err(|_| ApdError::ChannelClosed("shard"))?;
            stats.shards.merge(&shard);
        }
        Ok(stats)
    }

    fn gather_metrics(&self) -> Result<Recorder, ApdError> {
        let mut merged = Recorder::new();
        for tx in &self.shard_txs {
            let (reply_tx, reply_rx) = channel();
            tx.send(ShardCmd::Metrics(reply_tx))
                .map_err(|_| ApdError::ChannelClosed("shard"))?;
            let rec = reply_rx
                .recv()
                .map_err(|_| ApdError::ChannelClosed("shard"))?;
            merged.merge_from(&rec);
        }
        Ok(merged)
    }

    /// Live telemetry: merged shard metrics rendered as
    /// `hide-metrics/1` with a `daemon` section of router/shard
    /// totals.
    fn metrics_json(&self) -> Result<String, ApdError> {
        let stats = self.gather_stats()?;
        let recorder = self.gather_metrics()?;
        let daemon = format!(
            "{{\"frames_received\": {}, \"parse_errors\": {}, \"dropped_backpressure\": {}, \
             \"port_messages\": {}, \"beacons\": {}, \"clients\": {}}}",
            stats.frames_received,
            stats.parse_errors,
            stats.dropped_backpressure,
            stats.shards.port_messages,
            stats.shards.beacons,
            stats.shards.clients,
        );
        Ok(recorder.to_json_with_sections(&[("daemon", &daemon)]))
    }

    fn write_snapshot(&self, path: &Path) -> Result<(), ApdError> {
        let snap = ApdSnapshot::new(self.gather_snapshots()?);
        std::fs::write(path, snap.to_bytes())?;
        Ok(())
    }

    fn tick(&self, beacons: u64) -> Result<(), ApdError> {
        for _ in 0..beacons {
            let index = self.tick_counter.fetch_add(1, Ordering::Relaxed);
            let now = self.cfg.stale_timeout_secs.is_some().then(monotonic_secs);
            for tx in &self.shard_txs {
                tx.send(ShardCmd::Tick { index, now })
                    .map_err(|_| ApdError::ChannelClosed("shard"))?;
            }
        }
        Ok(())
    }

    /// The `hide-apd-health/1` wall-clock health document.
    fn health_json(&self) -> String {
        telemetry::health_json(&self.rt, &self.counters)
    }

    /// The Prometheus-style text exposition.
    fn expo_text(&self) -> String {
        telemetry::expo_text(&self.rt, &self.counters)
    }

    fn serve(&self, req: CtrlRequest) -> CtrlResponse {
        match req {
            CtrlRequest::Ping => CtrlResponse::pong(),
            CtrlRequest::Stats => match self.gather_stats() {
                Ok(stats) => CtrlResponse::Ok(stats.to_line()),
                Err(e) => CtrlResponse::err("internal", e.to_string()),
            },
            CtrlRequest::Metrics => match self.metrics_json() {
                Ok(json) => CtrlResponse::Ok(json),
                Err(e) => CtrlResponse::err("internal", e.to_string()),
            },
            CtrlRequest::Snapshot => match &self.cfg.snapshot_path {
                Some(path) => match self.write_snapshot(path) {
                    Ok(()) => CtrlResponse::Ok(path.display().to_string()),
                    Err(e) => CtrlResponse::err("internal", e.to_string()),
                },
                None => CtrlResponse::err("no-snapshot-path", "no snapshot path configured"),
            },
            CtrlRequest::Health => CtrlResponse::Ok(self.health_json()),
            CtrlRequest::Expo => CtrlResponse::Ok(self.expo_text()),
            CtrlRequest::Tick(n) => match self.tick(n) {
                Ok(()) => CtrlResponse::Ok(String::new()),
                Err(e) => CtrlResponse::err("internal", e.to_string()),
            },
            CtrlRequest::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                CtrlResponse::Ok(String::new())
            }
        }
    }
}

/// A running daemon: spawn it, talk to it (in-process or over its
/// sockets), shut it down.
pub struct DaemonHandle {
    data_addr: SocketAddr,
    ctrl_addr: SocketAddr,
    plane: Arc<ControlPlane>,
    shutdown: Arc<AtomicBool>,
    router: Option<JoinHandle<()>>,
    timer: Option<JoinHandle<()>>,
    ctrl: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<ShardFinal>>,
}

impl DaemonHandle {
    /// Binds the sockets, restores any snapshot, and starts the
    /// router, shard, timer and control threads.
    ///
    /// # Errors
    ///
    /// Returns [`ApdError::Config`] for an invalid configuration,
    /// [`ApdError::Io`] when a socket cannot bind, and
    /// [`ApdError::Snapshot`] when restore is requested and the file
    /// is malformed or does not match the shard count.
    pub fn spawn(cfg: ApdConfig) -> Result<DaemonHandle, ApdError> {
        cfg.validate()?;
        if cfg.runtime_telemetry {
            let hists = Arc::new(AtomicRuntime::new());
            Self::spawn_inner(cfg, Arc::clone(&hists), Some(hists))
        } else {
            // Monomorphized against the no-op sink: the hot paths
            // never read the clock for stage timing.
            Self::spawn_inner(cfg, NoopRuntime, None)
        }
    }

    fn spawn_inner<R>(
        cfg: ApdConfig,
        runtime: R,
        hists: Option<Arc<AtomicRuntime>>,
    ) -> Result<DaemonHandle, ApdError>
    where
        R: RuntimeSink + Clone + 'static,
    {
        let data_socket = UdpSocket::bind(&cfg.bind_addr)?;
        data_socket.set_read_timeout(Some(POLL_INTERVAL))?;
        let data_addr = data_socket.local_addr()?;
        let ctrl_socket = UdpSocket::bind(&cfg.ctrl_addr)?;
        ctrl_socket.set_read_timeout(Some(POLL_INTERVAL))?;
        let ctrl_addr = ctrl_socket.local_addr()?;

        let restored = Self::load_restore(&cfg)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(RouterCounters::default());
        let tick_counter = Arc::new(AtomicU64::new(0));

        // Per-shard channels, depth counters and health cells exist
        // before any thread starts so the runtime plane (and its
        // shared epoch) covers every shard from the first command.
        let mut shard_txs = Vec::with_capacity(cfg.shards);
        let mut shard_rxs = Vec::with_capacity(cfg.shards);
        let mut depths = Vec::with_capacity(cfg.shards);
        let mut cells = Vec::with_capacity(cfg.shards);
        for _ in 0..cfg.shards {
            let (tx, rx) = channel();
            let depth = Arc::new(AtomicUsize::new(0));
            cells.push(Arc::new(ShardHealth::new(Arc::clone(&depth))));
            shard_txs.push(tx);
            shard_rxs.push(rx);
            depths.push(depth);
        }
        let rt = Arc::new(RuntimePlane::new(
            hists,
            cells.clone(),
            cfg.backpressure_watermark,
            cfg.watchdog_stall_secs,
            cfg.watchdog_interval_secs,
        ));

        // --- shard threads ---
        let mut shards = Vec::with_capacity(cfg.shards);
        for (i, rx) in shard_rxs.into_iter().enumerate() {
            let ap = match &restored {
                Some(snaps) => AccessPoint::from_snapshot(&snaps[i])?,
                None => {
                    let (lo, hi) = cfg.aid_range_of(i);
                    let mut ap = AccessPoint::with_aid_range(cfg.bssid, lo, hi)?;
                    ap.set_ssid(cfg.ssid.clone());
                    ap.set_dtim_period(cfg.dtim_period);
                    ap
                }
            };
            let shard = Shard {
                ap,
                reply_socket: data_socket.try_clone()?,
                rx,
                depth: Arc::clone(&depths[i]),
                stale_timeout_secs: cfg.stale_timeout_secs,
                runtime: runtime.clone(),
                health: Arc::clone(&cells[i]),
                epoch: rt.epoch,
            };
            shards.push(
                std::thread::Builder::new()
                    .name(format!("apd-shard-{i}"))
                    .spawn(move || shard.run())?,
            );
        }

        let plane = Arc::new(ControlPlane {
            cfg: cfg.clone(),
            shard_txs: shard_txs.clone(),
            counters: Arc::clone(&counters),
            rt: Arc::clone(&rt),
            tick_counter: Arc::clone(&tick_counter),
            shutdown: Arc::clone(&shutdown),
        });

        // --- router thread ---
        let router = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let txs = shard_txs.clone();
            let depths = depths.clone();
            let watermark = cfg.backpressure_watermark;
            let runtime = runtime.clone();
            std::thread::Builder::new()
                .name("apd-router".into())
                .spawn(move || {
                    route_loop(
                        &data_socket,
                        &txs,
                        &depths,
                        watermark,
                        &counters,
                        &runtime,
                        &shutdown,
                    );
                })?
        };

        // --- ctrl thread ---
        let ctrl = {
            let shutdown = Arc::clone(&shutdown);
            let plane = Arc::clone(&plane);
            std::thread::Builder::new()
                .name("apd-ctrl".into())
                .spawn(move || ctrl_loop(&ctrl_socket, &plane, &shutdown))?
        };

        // --- timer thread (optional) ---
        let timer = match cfg.beacon_interval_secs {
            Some(secs) => {
                let shutdown = Arc::clone(&shutdown);
                let plane = Arc::clone(&plane);
                let every = cfg.metrics_every_ticks.max(1);
                Some(
                    std::thread::Builder::new()
                        .name("apd-timer".into())
                        .spawn(move || timer_loop(secs, every, &plane, &shutdown))?,
                )
            }
            None => None,
        };

        // --- watchdog thread ---
        let watchdog = {
            let shutdown = Arc::clone(&shutdown);
            let rt = Arc::clone(&rt);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("apd-watchdog".into())
                .spawn(move || telemetry::watchdog_loop(&rt, &counters, &shutdown))?
        };

        log_info!(
            "listening data={data_addr} ctrl={ctrl_addr} shards={} telemetry={}",
            cfg.shards,
            if cfg.runtime_telemetry { "on" } else { "off" },
        );

        Ok(DaemonHandle {
            data_addr,
            ctrl_addr,
            plane,
            shutdown,
            router: Some(router),
            timer,
            ctrl: Some(ctrl),
            watchdog: Some(watchdog),
            shards,
        })
    }

    fn load_restore(cfg: &ApdConfig) -> Result<Option<Vec<ApSnapshot>>, ApdError> {
        let path = match (&cfg.snapshot_path, cfg.restore) {
            (Some(path), true) if path.exists() => path,
            _ => return Ok(None),
        };
        let bytes = std::fs::read(path)?;
        let snap = ApdSnapshot::parse(&bytes)?;
        if snap.shards.len() != cfg.shards {
            return Err(ApdError::Snapshot(format!(
                "snapshot has {} shards, daemon configured for {}",
                snap.shards.len(),
                cfg.shards
            )));
        }
        Ok(Some(snap.shards))
    }

    /// The data socket's bound address.
    #[must_use]
    pub fn data_addr(&self) -> SocketAddr {
        self.data_addr
    }

    /// The control socket's bound address.
    #[must_use]
    pub fn ctrl_addr(&self) -> SocketAddr {
        self.ctrl_addr
    }

    /// `true` once shutdown has been requested (in-process or via the
    /// control socket).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Advances the DTIM cadence by `beacons` ticks, as the timer
    /// thread would.
    ///
    /// # Errors
    ///
    /// Returns [`ApdError::ChannelClosed`] when a shard has exited.
    pub fn tick(&self, beacons: u64) -> Result<(), ApdError> {
        self.plane.tick(beacons)
    }

    /// A point-in-time image of every shard's client table.
    ///
    /// # Errors
    ///
    /// Returns [`ApdError::ChannelClosed`] when a shard has exited.
    pub fn snapshot(&self) -> Result<ApdSnapshot, ApdError> {
        Ok(ApdSnapshot::new(self.plane.gather_snapshots()?))
    }

    /// Current daemon-wide statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ApdError::ChannelClosed`] when a shard has exited.
    pub fn stats(&self) -> Result<DaemonStats, ApdError> {
        self.plane.gather_stats()
    }

    /// The live `hide-metrics/1` telemetry document.
    ///
    /// # Errors
    ///
    /// Returns [`ApdError::ChannelClosed`] when a shard has exited.
    pub fn metrics_json(&self) -> Result<String, ApdError> {
        self.plane.metrics_json()
    }

    /// The live `hide-apd-health/1` wall-clock health document (stage
    /// latency summaries, per-shard gauges, watchdog state, recent
    /// warn/error log records). Never blocks on shard threads.
    #[must_use]
    pub fn health_json(&self) -> String {
        self.plane.health_json()
    }

    /// The live Prometheus-style text exposition of the wall-clock
    /// plane. Never blocks on shard threads.
    #[must_use]
    pub fn expo_text(&self) -> String {
        self.plane.expo_text()
    }

    /// Blocks until shutdown is requested (e.g. by a `shutdown`
    /// control request), polling at the socket cadence.
    pub fn wait_for_shutdown_request(&self) {
        while !self.is_shutting_down() {
            std::thread::sleep(POLL_INTERVAL);
        }
    }

    /// Shuts the daemon down: stops the router/timer/ctrl threads,
    /// drains and joins every shard, writes a final snapshot when a
    /// path is configured, and returns the final statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ApdError::Io`] when the final snapshot cannot be
    /// written; shutdown still completes (threads are joined) in that
    /// case.
    pub fn shutdown(mut self) -> Result<DaemonStats, ApdError> {
        self.shutdown.store(true, Ordering::SeqCst);
        for handle in [
            self.router.take(),
            self.timer.take(),
            self.ctrl.take(),
            self.watchdog.take(),
        ]
        .into_iter()
        .flatten()
        {
            let _ = handle.join();
        }

        let mut stats = DaemonStats {
            frames_received: self.plane.counters.frames_received.load(Ordering::Relaxed),
            parse_errors: self.plane.counters.parse_errors.load(Ordering::Relaxed),
            dropped_backpressure: self
                .plane
                .counters
                .dropped_backpressure
                .load(Ordering::Relaxed),
            ..DaemonStats::default()
        };
        let mut snapshots = Vec::with_capacity(self.shards.len());
        let mut recorder = Recorder::new();
        for (tx, handle) in self.plane.shard_txs.iter().zip(self.shards.drain(..)) {
            let (reply_tx, reply_rx) = channel();
            let _ = tx.send(ShardCmd::Shutdown(reply_tx));
            drop(reply_rx);
            match handle.join() {
                Ok(fin) => {
                    stats.shards.merge(&fin.stats);
                    recorder.merge_from(&fin.recorder);
                    snapshots.push(fin.snapshot);
                }
                Err(_) => return Err(ApdError::ChannelClosed("shard panicked")),
            }
        }
        if let Some(path) = &self.plane.cfg.telemetry_path {
            let daemon = format!(
                "{{\"frames_received\": {}, \"parse_errors\": {}, \"dropped_backpressure\": {}, \
                 \"port_messages\": {}, \"beacons\": {}, \"clients\": {}}}",
                stats.frames_received,
                stats.parse_errors,
                stats.dropped_backpressure,
                stats.shards.port_messages,
                stats.shards.beacons,
                stats.shards.clients,
            );
            std::fs::write(path, recorder.to_json_with_sections(&[("daemon", &daemon)]))?;
        }
        if let Some(path) = &self.plane.cfg.snapshot_path {
            std::fs::write(path, ApdSnapshot::new(snapshots).to_bytes())?;
        }
        // Final wall-clock health dump — written last so it reflects
        // the fully drained daemon.
        if let Some(path) = &self.plane.cfg.health_path {
            std::fs::write(path, self.plane.health_json())?;
        }
        log_info!(
            "shutdown complete: frames_received={} port_messages={} clients={}",
            stats.frames_received,
            stats.shards.port_messages,
            stats.shards.clients,
        );
        Ok(stats)
    }
}

/// The router loop: receive, parse, route. The `recv` stage times the
/// blocking receive of datagrams that actually arrive; the `route`
/// stage times parse plus shard dispatch.
fn route_loop<R: RuntimeSink>(
    socket: &UdpSocket,
    txs: &[Sender<ShardCmd>],
    depths: &[Arc<AtomicUsize>],
    watermark: usize,
    counters: &RouterCounters,
    runtime: &R,
    shutdown: &AtomicBool,
) {
    let mut buf = [0u8; 65536];
    while !shutdown.load(Ordering::SeqCst) {
        let recv_timer = runtime.start();
        let (len, from) = match socket.recv_from(&mut buf) {
            Ok(ok) => ok,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => continue,
        };
        runtime.finish(RtStage::Recv, recv_timer);
        let route_timer = runtime.start();
        counters.frames_received.fetch_add(1, Ordering::Relaxed);
        let frame = match AnyFrame::parse(&buf[..len]) {
            Ok(frame) => frame,
            Err(_) => {
                counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                runtime.finish(RtStage::Route, route_timer);
                continue;
            }
        };
        match route_mac(&frame) {
            Route::Client(mac) => {
                let i = shard_of(mac, txs.len());
                depths[i].fetch_add(1, Ordering::Relaxed);
                let _ = txs[i].send(ShardCmd::Frame(frame, from));
            }
            Route::AllShards => {
                // Broadcast data: every shard buffers it, subject to
                // per-shard backpressure.
                for (i, tx) in txs.iter().enumerate() {
                    if depths[i].load(Ordering::Relaxed) >= watermark {
                        counters
                            .dropped_backpressure
                            .fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    depths[i].fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(ShardCmd::Frame(frame.clone(), from));
                }
            }
        }
        runtime.finish(RtStage::Route, route_timer);
    }
}

enum Route {
    Client(MacAddr),
    AllShards,
}

/// Which client address (and therefore shard) a frame belongs to.
fn route_mac(frame: &AnyFrame) -> Route {
    match frame {
        AnyFrame::UdpPortMessage(msg) => Route::Client(msg.client()),
        AnyFrame::AssociationRequest(req) => Route::Client(req.client()),
        AnyFrame::AssociationResponse(resp) => Route::Client(resp.client()),
        AnyFrame::Disassociation(notice) => Route::Client(notice.from()),
        AnyFrame::PsPoll(poll) => Route::Client(poll.transmitter()),
        AnyFrame::Ack(ack) => Route::Client(ack.receiver()),
        AnyFrame::Data(_) | AnyFrame::Beacon(_) => Route::AllShards,
        _ => Route::AllShards,
    }
}

/// The control loop: one datagram in, one out.
fn ctrl_loop(socket: &UdpSocket, plane: &ControlPlane, shutdown: &AtomicBool) {
    let mut buf = [0u8; 4096];
    while !shutdown.load(Ordering::SeqCst) {
        let (len, from) = match socket.recv_from(&mut buf) {
            Ok(ok) => ok,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => continue,
        };
        let resp = match std::str::from_utf8(&buf[..len]) {
            Ok(text) => match CtrlRequest::parse(text) {
                Ok(req) => plane.serve(req),
                Err(CtrlParseError::UnknownCommand(verb)) => {
                    CtrlResponse::err("unknown-command", verb)
                }
                Err(CtrlParseError::Malformed(detail)) => CtrlResponse::err("malformed", detail),
            },
            Err(_) => CtrlResponse::err("malformed", "request is not utf-8"),
        };
        let _ = socket.send_to(resp.encode().as_bytes(), from);
    }
}

/// The timer loop: DTIM cadence plus periodic telemetry dumps.
fn timer_loop(interval_secs: f64, metrics_every: u64, plane: &ControlPlane, shutdown: &AtomicBool) {
    let interval = Duration::from_secs_f64(interval_secs);
    let mut ticks: u64 = 0;
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        if plane.tick(1).is_err() {
            break;
        }
        ticks += 1;
        if ticks.is_multiple_of(metrics_every) {
            if let Some(path) = &plane.cfg.telemetry_path {
                if let Ok(json) = plane.metrics_json() {
                    let _ = std::fs::write(path, json);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_rejects_bad_config() {
        assert!(matches!(
            DaemonHandle::spawn(ApdConfig::new().shards(0)),
            Err(ApdError::Config(_))
        ));
    }

    #[test]
    fn spawn_ping_stats_shutdown() {
        let handle = DaemonHandle::spawn(ApdConfig::new()).unwrap();
        assert_ne!(handle.data_addr().port(), 0);
        assert_ne!(handle.ctrl_addr().port(), 0);
        let stats = handle.stats().unwrap();
        assert_eq!(stats.frames_received, 0);
        let final_stats = handle.shutdown().unwrap();
        assert_eq!(final_stats.shards.port_messages, 0);
    }

    #[test]
    fn ticks_emit_beacons_on_every_shard() {
        let handle = DaemonHandle::spawn(ApdConfig::new().shards(3)).unwrap();
        handle.tick(5).unwrap();
        let stats = handle.stats().unwrap();
        assert_eq!(stats.shards.beacons, 15);
        handle.shutdown().unwrap();
    }

    #[test]
    fn metrics_json_carries_schema_and_daemon_section() {
        let handle = DaemonHandle::spawn(ApdConfig::new()).unwrap();
        handle.tick(2).unwrap();
        let json = handle.metrics_json().unwrap();
        assert!(json.contains("\"schema\": \"hide-metrics/1\""));
        assert!(json.contains("\"daemon\": {"));
        assert!(json.contains("\"beacons\": 2"));
        handle.shutdown().unwrap();
    }

    #[test]
    fn health_and_expo_are_always_served() {
        let handle = DaemonHandle::spawn(ApdConfig::new().shards(2)).unwrap();
        handle.tick(1).unwrap();
        let health = handle.health_json();
        assert!(health.contains("\"schema\": \"hide-apd-health/1\""));
        assert!(health.contains("\"telemetry\": \"on\""));
        assert_eq!(telemetry::parse_health_shards(&health).len(), 2);
        let expo = handle.expo_text();
        assert!(expo.contains("hide_apd_shard_queue_depth{shard=\"1\"}"));
        handle.shutdown().unwrap();
    }

    #[test]
    fn noop_runtime_daemon_serves_empty_stage_histograms() {
        let handle = DaemonHandle::spawn(ApdConfig::new().runtime_telemetry(false)).unwrap();
        handle.tick(4).unwrap();
        // Stats is served by the shard thread after the queued ticks,
        // so once it returns the progress gauges are up to date.
        handle.stats().unwrap();
        let health = handle.health_json();
        assert!(health.contains("\"telemetry\": \"off\""));
        for (stage, count) in telemetry::parse_health_stage_counts(&health) {
            assert_eq!(count, 0, "stage {stage} recorded through the noop sink");
        }
        // The always-on gauge plane still works without the clocked seam.
        let shards = telemetry::parse_health_shards(&health);
        assert!(shards[0].processed >= 4);
        handle.shutdown().unwrap();
    }

    #[test]
    fn shutdown_writes_the_health_dump() {
        let path = std::env::temp_dir().join(format!("apd_health_{}.json", std::process::id()));
        let handle = DaemonHandle::spawn(ApdConfig::new().health_path(path.clone())).unwrap();
        handle.tick(2).unwrap();
        handle.shutdown().unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(json.contains("\"schema\": \"hide-apd-health/1\""));
        assert!(json.contains("\"watchdog\": {"));
    }

    #[test]
    fn shutdown_telemetry_dump_carries_daemon_section() {
        let path = std::env::temp_dir().join(format!("apd_final_{}.json", std::process::id()));
        let handle = DaemonHandle::spawn(ApdConfig::new().telemetry_path(path.clone())).unwrap();
        handle.tick(3).unwrap();
        handle.shutdown().unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(json.contains("\"schema\": \"hide-metrics/1\""));
        assert!(json.contains("\"daemon\": {"));
        assert!(json.contains("\"beacons\": 3"));
    }
}
