//! Loopback load generator for the daemon.
//!
//! Replays a [`Scenario`] trace against a running daemon over its real
//! wire formats: associates a population of HIDE clients, then
//! interleaves UDP Port Message refresh rounds (ACK-matched) with the
//! trace's broadcast data frames (fire-and-forget, like real
//! broadcast traffic), and reports the sustained message rate.

use crate::error::ApdError;
use hide_traces::scenario::Scenario;
use hide_wifi::assoc::AssociationRequest;
use hide_wifi::frame::{AnyFrame, BroadcastDataFrame, UdpPortMessage};
use hide_wifi::mac::MacAddr;
use hide_wifi::udp::UdpDatagram;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

/// Load-generator parameters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct LoadgenConfig {
    /// Clients to associate.
    pub clients: usize,
    /// UDP Port Message refresh rounds (one message per client per
    /// round).
    pub rounds: usize,
    /// Open ports each client advertises.
    pub ports_per_client: usize,
    /// Scenario whose trace supplies the broadcast stream.
    pub scenario: Scenario,
    /// Seconds of trace to generate.
    pub trace_secs: f64,
    /// Trace generator seed.
    pub seed: u64,
    /// Per-reply receive timeout.
    pub timeout: Duration,
    /// BSSID of the daemon under test (addressed in every message).
    pub bssid: MacAddr,
}

impl LoadgenConfig {
    /// The default workload: 64 clients, 200 refresh rounds, the
    /// Starbucks scenario.
    #[must_use]
    pub fn new() -> Self {
        LoadgenConfig {
            clients: 64,
            rounds: 200,
            ports_per_client: 8,
            scenario: Scenario::Starbucks,
            trace_secs: 60.0,
            seed: 2016,
            timeout: Duration::from_secs(5),
            bssid: MacAddr::station(0),
        }
    }
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig::new()
    }
}

/// What a load-generator run measured.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct LoadgenReport {
    /// Clients successfully associated.
    pub associations: u64,
    /// UDP Port Messages sent.
    pub port_messages: u64,
    /// ACKs received back.
    pub acks: u64,
    /// Broadcast data frames replayed from the trace.
    pub broadcasts_sent: u64,
    /// Wall-clock seconds of the measured (post-association) phase.
    pub elapsed_secs: f64,
    /// Sustained daemon-bound messages per second over the measured
    /// phase (ACK-matched port messages plus broadcast frames).
    pub msgs_per_sec: f64,
}

/// MAC of load-generator client `i`.
fn client_mac(i: usize) -> MacAddr {
    MacAddr::station(1 + i as u32)
}

/// Runs the workload against the daemon's data socket.
///
/// # Errors
///
/// Returns [`ApdError::Timeout`] when the daemon stops answering,
/// [`ApdError::Io`] on socket failures, and [`ApdError::Wifi`] when a
/// reply fails to decode.
pub fn run(data_addr: SocketAddr, cfg: &LoadgenConfig) -> Result<LoadgenReport, ApdError> {
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    socket.set_read_timeout(Some(cfg.timeout))?;
    socket.connect(data_addr)?;

    // --- associate every client, lockstep ---
    let mut associations = 0u64;
    for i in 0..cfg.clients {
        let req = AssociationRequest::new(client_mac(i), cfg.bssid, "hide").with_hide_support();
        socket.send(&req.to_bytes())?;
        let resp = recv_frame(&socket, "association response")?;
        match resp {
            AnyFrame::AssociationResponse(resp) if resp.is_success() => associations += 1,
            AnyFrame::AssociationResponse(_) => {}
            other => {
                return Err(ApdError::Ctrl(format!(
                    "expected an association response, got {:?}",
                    other.subtype()
                )))
            }
        }
    }

    // --- measured phase: refresh rounds interleaved with the trace ---
    let trace = cfg.scenario.generate(cfg.trace_secs, cfg.seed);
    let broadcasts_per_round = trace.frames.len().div_ceil(cfg.rounds.max(1));
    let mut frames = trace.frames.iter();

    let mut port_messages = 0u64;
    let mut acks = 0u64;
    let mut broadcasts_sent = 0u64;
    let started = Instant::now();
    for round in 0..cfg.rounds {
        // One windowed refresh burst: send every client's port message,
        // then collect the ACKs.
        for i in 0..cfg.clients {
            let base = 10000 + (i as u16 % 100) * 100;
            let ports = (0..cfg.ports_per_client as u16).map(|p| base + p);
            let msg =
                UdpPortMessage::new(client_mac(i), cfg.bssid, ports)?.with_seq(round as u16 % 4096);
            socket.send(&msg.to_bytes())?;
            port_messages += 1;
        }
        for _ in 0..cfg.clients {
            if matches!(recv_frame(&socket, "ack")?, AnyFrame::Ack(_)) {
                acks += 1;
            }
        }
        // Replay this round's slice of the broadcast trace.
        for f in frames.by_ref().take(broadcasts_per_round) {
            let datagram = UdpDatagram::new(
                [10, 0, 0, 2],
                [255; 4],
                4000,
                f.dst_port,
                vec![0; (f.len_bytes as usize).saturating_sub(60)],
            );
            let frame = BroadcastDataFrame::new(cfg.bssid, datagram, false);
            socket.send(&frame.to_bytes())?;
            broadcasts_sent += 1;
        }
    }
    let elapsed_secs = started.elapsed().as_secs_f64();

    let total = port_messages + broadcasts_sent;
    Ok(LoadgenReport {
        associations,
        port_messages,
        acks,
        broadcasts_sent,
        elapsed_secs,
        msgs_per_sec: if elapsed_secs > 0.0 {
            total as f64 / elapsed_secs
        } else {
            0.0
        },
    })
}

fn recv_frame(socket: &UdpSocket, what: &'static str) -> Result<AnyFrame, ApdError> {
    let mut buf = [0u8; 65536];
    let len = socket.recv(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut {
            ApdError::Timeout(what)
        } else {
            ApdError::Io(e)
        }
    })?;
    Ok(AnyFrame::parse(&buf[..len])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ApdConfig;
    use crate::daemon::DaemonHandle;

    #[test]
    fn loadgen_drives_a_daemon_end_to_end() {
        let handle = DaemonHandle::spawn(ApdConfig::new().shards(2)).unwrap();
        let cfg = LoadgenConfig {
            clients: 8,
            rounds: 5,
            trace_secs: 5.0,
            ..LoadgenConfig::new()
        };
        let report = run(handle.data_addr(), &cfg).unwrap();
        assert_eq!(report.associations, 8);
        assert_eq!(report.port_messages, 40);
        assert_eq!(report.acks, 40);
        assert!(report.msgs_per_sec > 0.0);

        let stats = handle.shutdown().unwrap();
        assert_eq!(stats.shards.associations, 8);
        assert_eq!(stats.shards.port_messages, 40);
        assert_eq!(stats.shards.acks_sent, 40);
        // Each broadcast fans out to both shards.
        assert_eq!(stats.shards.broadcasts_enqueued, report.broadcasts_sent * 2);
    }
}
