//! Daemon configuration.

use crate::error::ApdError;
use hide_wifi::mac::{MacAddr, MAX_AID};
use std::path::PathBuf;

/// Configuration for [`DaemonHandle::spawn`](crate::DaemonHandle::spawn).
///
/// Marked `#[non_exhaustive]`: construct via [`ApdConfig::new`] (or
/// `Default`) and refine with the chainable setters, so new knobs can
/// be added without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ApdConfig {
    /// Address the data socket binds (UDP). Port 0 picks an ephemeral
    /// port; read the real one from
    /// [`DaemonHandle::data_addr`](crate::DaemonHandle::data_addr).
    pub bind_addr: String,
    /// Address the control socket binds (UDP).
    pub ctrl_addr: String,
    /// Number of shard threads; the AID space `1..=2007` is split into
    /// that many disjoint ranges, one per shard.
    pub shards: usize,
    /// BSSID the daemon's access point advertises.
    pub bssid: MacAddr,
    /// SSID the daemon's access point advertises.
    pub ssid: String,
    /// DTIM period (beacons per DTIM).
    pub dtim_period: u8,
    /// Real-time seconds between DTIM ticks, or `None` to disable the
    /// timer thread — cadence is then driven by `tick` control
    /// requests, which is what lockstep tests and the load generator
    /// use.
    pub beacon_interval_secs: Option<f64>,
    /// Emit a `hide-metrics/1` telemetry dump every this many DTIM
    /// ticks (only when [`ApdConfig::telemetry_path`] is set).
    pub metrics_every_ticks: u64,
    /// Where periodic telemetry dumps are written (overwritten each
    /// time, so the file always holds the latest snapshot).
    pub telemetry_path: Option<PathBuf>,
    /// Where `snapshot` control requests and shutdown write the client
    /// table (`hide-apdsnap/1`).
    pub snapshot_path: Option<PathBuf>,
    /// Restore the client table from [`ApdConfig::snapshot_path`] at
    /// spawn when the file exists.
    pub restore: bool,
    /// Expire port-table entries not refreshed for this many seconds
    /// (checked at each DTIM tick). `None` disables expiry *and* makes
    /// every port-message refresh untimed, which keeps daemon state
    /// byte-comparable with offline replays.
    pub stale_timeout_secs: Option<f64>,
    /// Maximum broadcast data frames queued per shard before the
    /// router starts dropping them (management frames are never
    /// dropped).
    pub backpressure_watermark: usize,
    /// Record wall-clock stage latencies through the live
    /// [`hide_obs::AtomicRuntime`] seam. When `false` the daemon is
    /// compiled against [`hide_obs::NoopRuntime`] and never reads the
    /// clock on the hot path; `health`/`expo` still work but report
    /// empty stage histograms.
    pub runtime_telemetry: bool,
    /// Last-progress age (seconds) beyond which the watchdog flags a
    /// shard with a non-empty inbound queue as stalled.
    pub watchdog_stall_secs: f64,
    /// Seconds between watchdog checks (also the rate-meter sampling
    /// cadence).
    pub watchdog_interval_secs: f64,
    /// Where the final `hide-apd-health/1` document is written at
    /// shutdown.
    pub health_path: Option<PathBuf>,
}

impl ApdConfig {
    /// The default loopback configuration: one shard, ephemeral ports,
    /// no timer, no persistence.
    #[must_use]
    pub fn new() -> Self {
        ApdConfig {
            bind_addr: "127.0.0.1:0".into(),
            ctrl_addr: "127.0.0.1:0".into(),
            shards: 1,
            bssid: MacAddr::station(0),
            ssid: "hide".into(),
            dtim_period: 1,
            beacon_interval_secs: None,
            metrics_every_ticks: 100,
            telemetry_path: None,
            snapshot_path: None,
            restore: false,
            stale_timeout_secs: None,
            backpressure_watermark: 4096,
            runtime_telemetry: true,
            watchdog_stall_secs: 5.0,
            watchdog_interval_secs: 1.0,
            health_path: None,
        }
    }

    /// Sets the data-socket bind address.
    #[must_use]
    pub fn bind(mut self, addr: impl Into<String>) -> Self {
        self.bind_addr = addr.into();
        self
    }

    /// Sets the control-socket bind address.
    #[must_use]
    pub fn ctrl(mut self, addr: impl Into<String>) -> Self {
        self.ctrl_addr = addr.into();
        self
    }

    /// Sets the shard count.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables the DTIM timer thread at `secs` per beacon interval.
    #[must_use]
    pub fn beacon_interval_secs(mut self, secs: f64) -> Self {
        self.beacon_interval_secs = Some(secs);
        self
    }

    /// Sets the telemetry dump path.
    #[must_use]
    pub fn telemetry_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.telemetry_path = Some(path.into());
        self
    }

    /// Sets the snapshot path.
    #[must_use]
    pub fn snapshot_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_path = Some(path.into());
        self
    }

    /// Restores from the snapshot path at spawn when the file exists.
    #[must_use]
    pub fn restore(mut self, restore: bool) -> Self {
        self.restore = restore;
        self
    }

    /// Sets the port-table staleness timeout.
    #[must_use]
    pub fn stale_timeout_secs(mut self, secs: f64) -> Self {
        self.stale_timeout_secs = Some(secs);
        self
    }

    /// Sets the per-shard broadcast backpressure watermark.
    #[must_use]
    pub fn backpressure_watermark(mut self, frames: usize) -> Self {
        self.backpressure_watermark = frames;
        self
    }

    /// Enables or disables wall-clock stage-latency recording.
    #[must_use]
    pub fn runtime_telemetry(mut self, on: bool) -> Self {
        self.runtime_telemetry = on;
        self
    }

    /// Sets the watchdog stall threshold (seconds of no progress with
    /// a non-empty queue).
    #[must_use]
    pub fn watchdog_stall_secs(mut self, secs: f64) -> Self {
        self.watchdog_stall_secs = secs;
        self
    }

    /// Sets the watchdog check cadence.
    #[must_use]
    pub fn watchdog_interval_secs(mut self, secs: f64) -> Self {
        self.watchdog_interval_secs = secs;
        self
    }

    /// Sets the shutdown health-dump path.
    #[must_use]
    pub fn health_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.health_path = Some(path.into());
        self
    }

    /// The disjoint AID range `(lo, hi)` shard `index` owns.
    ///
    /// The 2007 AIDs are split as evenly as possible; earlier shards
    /// take the remainder, and every AID belongs to exactly one shard.
    #[must_use]
    pub fn aid_range_of(&self, index: usize) -> (u16, u16) {
        let shards = self.shards as u16;
        let per = MAX_AID / shards;
        let extra = MAX_AID % shards;
        let i = index as u16;
        let lo = 1 + i * per + i.min(extra);
        let hi = lo + per - 1 + u16::from(i < extra);
        (lo, hi)
    }

    pub(crate) fn validate(&self) -> Result<(), ApdError> {
        if self.shards == 0 {
            return Err(ApdError::Config("shards must be >= 1".into()));
        }
        if self.shards > usize::from(MAX_AID) {
            return Err(ApdError::Config(format!(
                "shards {} exceeds the {} available AIDs",
                self.shards, MAX_AID
            )));
        }
        if let Some(secs) = self.beacon_interval_secs {
            if secs.is_nan() || secs <= 0.0 {
                return Err(ApdError::Config(format!(
                    "beacon interval must be positive, got {secs}"
                )));
            }
        }
        if let Some(secs) = self.stale_timeout_secs {
            if secs.is_nan() || secs <= 0.0 {
                return Err(ApdError::Config(format!(
                    "stale timeout must be positive, got {secs}"
                )));
            }
        }
        if self.backpressure_watermark == 0 {
            return Err(ApdError::Config(
                "backpressure watermark must be >= 1".into(),
            ));
        }
        for (name, secs) in [
            ("watchdog stall threshold", self.watchdog_stall_secs),
            ("watchdog interval", self.watchdog_interval_secs),
        ] {
            if secs.is_nan() || secs <= 0.0 {
                return Err(ApdError::Config(format!(
                    "{name} must be positive, got {secs}"
                )));
            }
        }
        Ok(())
    }
}

impl Default for ApdConfig {
    fn default() -> Self {
        ApdConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aid_ranges_partition_the_space() {
        for shards in [1usize, 2, 3, 7, 64] {
            let cfg = ApdConfig::new().shards(shards);
            let mut covered = 0u32;
            let mut prev_hi = 0u16;
            for i in 0..shards {
                let (lo, hi) = cfg.aid_range_of(i);
                assert_eq!(lo, prev_hi + 1, "shards={shards} i={i}");
                assert!(hi >= lo);
                covered += u32::from(hi - lo + 1);
                prev_hi = hi;
            }
            assert_eq!(prev_hi, MAX_AID, "shards={shards}");
            assert_eq!(covered, u32::from(MAX_AID));
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(ApdConfig::new().shards(0).validate().is_err());
        assert!(ApdConfig::new()
            .beacon_interval_secs(0.0)
            .validate()
            .is_err());
        assert!(ApdConfig::new()
            .stale_timeout_secs(-1.0)
            .validate()
            .is_err());
        assert!(ApdConfig::new()
            .backpressure_watermark(0)
            .validate()
            .is_err());
        assert!(ApdConfig::new()
            .watchdog_stall_secs(0.0)
            .validate()
            .is_err());
        assert!(ApdConfig::new()
            .watchdog_interval_secs(f64::NAN)
            .validate()
            .is_err());
        assert!(ApdConfig::new().validate().is_ok());
    }
}
