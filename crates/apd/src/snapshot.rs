//! On-disk snapshot of the whole daemon (`hide-apdsnap/1`).
//!
//! A daemon snapshot is the shard count followed by one
//! [`ApSnapshot`] (`hide-apsnap/1`) per shard, in shard order. Each
//! per-shard block is self-terminating (its `end` line), so the
//! container needs no lengths or escaping.

use crate::error::ApdError;
use hide_core::ap::ApSnapshot;

/// Magic first line of the container format.
pub const APDSNAP_MAGIC: &str = "hide-apdsnap/1";

/// A point-in-time image of every shard's client table.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ApdSnapshot {
    /// One AP snapshot per shard, in shard order.
    pub shards: Vec<ApSnapshot>,
}

impl ApdSnapshot {
    /// Wraps per-shard snapshots into a container.
    #[must_use]
    pub fn new(shards: Vec<ApSnapshot>) -> Self {
        ApdSnapshot { shards }
    }

    /// Serializes the container to its canonical text.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(APDSNAP_MAGIC.as_bytes());
        out.push(b'\n');
        out.extend_from_slice(format!("shards {}\n", self.shards.len()).as_bytes());
        for shard in &self.shards {
            out.extend_from_slice(&shard.to_bytes());
        }
        out
    }

    /// Parses a container previously produced by
    /// [`ApdSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ApdError::Snapshot`] on a bad magic line, a shard
    /// count mismatch, or any malformed per-shard block.
    pub fn parse(buf: &[u8]) -> Result<Self, ApdError> {
        let text =
            std::str::from_utf8(buf).map_err(|e| ApdError::Snapshot(format!("not utf-8: {e}")))?;
        let mut rest = text;
        let magic = take_line(&mut rest);
        if magic != APDSNAP_MAGIC {
            return Err(ApdError::Snapshot(format!(
                "bad magic {magic:?}, expected {APDSNAP_MAGIC:?}"
            )));
        }
        let header = take_line(&mut rest);
        let count: usize = header
            .strip_prefix("shards ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ApdError::Snapshot(format!("bad shard-count line {header:?}")))?;
        let mut shards = Vec::with_capacity(count);
        for i in 0..count {
            let block = take_block(&mut rest)
                .ok_or_else(|| ApdError::Snapshot(format!("shard {i} block truncated")))?;
            let snap = ApSnapshot::parse(block.as_bytes())
                .map_err(|e| ApdError::Snapshot(format!("shard {i}: {e}")))?;
            shards.push(snap);
        }
        if !rest.trim().is_empty() {
            return Err(ApdError::Snapshot("trailing data after last shard".into()));
        }
        Ok(ApdSnapshot { shards })
    }
}

/// Splits the next line off `rest` (without its newline).
fn take_line<'a>(rest: &mut &'a str) -> &'a str {
    match rest.find('\n') {
        Some(i) => {
            let line = &rest[..i];
            *rest = &rest[i + 1..];
            line
        }
        None => std::mem::take(rest),
    }
}

/// Splits one self-terminating `hide-apsnap/1` block (through its
/// `end` line) off `rest`.
fn take_block(rest: &mut &str) -> Option<String> {
    let mut block = String::new();
    loop {
        if rest.is_empty() {
            return None;
        }
        let line = take_line(rest);
        block.push_str(line);
        block.push('\n');
        if line == "end" {
            return Some(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_core::ap::{AccessPoint, ApCtx};
    use hide_wifi::frame::UdpPortMessage;
    use hide_wifi::mac::MacAddr;

    fn populated_ap(bssid_idx: u32, lo: u16, hi: u16, clients: u32) -> AccessPoint {
        let mut ap = AccessPoint::with_aid_range(MacAddr::station(bssid_idx), lo, hi).unwrap();
        for i in 0..clients {
            let mac = MacAddr::station(100 + i);
            ap.associate(mac).unwrap();
            let msg = UdpPortMessage::new(mac, ap.bssid(), [5353, 1900 + i as u16]).unwrap();
            ap.process_port_message(&msg, &mut ApCtx::untimed())
                .unwrap();
        }
        ap
    }

    #[test]
    fn container_round_trips() {
        let snap = ApdSnapshot::new(vec![
            populated_ap(0, 1, 1000, 3).snapshot(),
            populated_ap(0, 1001, 2007, 2).snapshot(),
        ]);
        let bytes = snap.to_bytes();
        let back = ApdSnapshot::parse(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn empty_container_round_trips() {
        let snap = ApdSnapshot::new(vec![]);
        assert_eq!(ApdSnapshot::parse(&snap.to_bytes()).unwrap(), snap);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(ApdSnapshot::parse(b"nope").is_err());
        assert!(ApdSnapshot::parse(b"hide-apdsnap/1\nshards x\n").is_err());
        assert!(ApdSnapshot::parse(b"hide-apdsnap/1\nshards 1\n").is_err());
        let mut ok = ApdSnapshot::new(vec![populated_ap(0, 1, 2007, 1).snapshot()]).to_bytes();
        ok.extend_from_slice(b"trailing\n");
        assert!(ApdSnapshot::parse(&ok).is_err());
    }
}
