//! The shard worker thread.
//!
//! Each shard owns one [`AccessPoint`] over a disjoint AID range plus
//! a [`Recorder`], and processes commands from the router, the timer
//! and the control plane over a single channel — so a shard's state is
//! only ever touched from its own thread and needs no locks. Replies
//! (ACKs, association responses) go straight out a clone of the data
//! socket.

use crate::telemetry::{ShardHealth, GAUGE_SAMPLE_EVERY};
use hide_core::ap::{AccessPoint, ApCtx, ApSnapshot};
use hide_obs::{Recorder, RtStage, RuntimeSink};
use hide_wifi::frame::AnyFrame;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// A command delivered to a shard thread.
pub(crate) enum ShardCmd {
    /// A routed wire frame and who sent it.
    Frame(AnyFrame, SocketAddr),
    /// DTIM boundary number `n`: emit the beacon, drain the broadcast
    /// buffer, expire stale port entries.
    Tick { index: u64, now: Option<f64> },
    /// Report the current client table.
    Snapshot(Sender<ApSnapshot>),
    /// Report the accumulated metrics.
    Metrics(Sender<Recorder>),
    /// Report the running statistics.
    Stats(Sender<ShardStats>),
    /// Exit the thread after replying on the channel.
    Shutdown(Sender<ShardFinal>),
}

/// Running per-shard statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardStats {
    /// UDP Port Messages applied to the port table.
    pub port_messages: u64,
    /// ACKs sent back to clients.
    pub acks_sent: u64,
    /// Successful associations.
    pub associations: u64,
    /// Denied association requests (AID range exhausted).
    pub assoc_denied: u64,
    /// Disassociations processed.
    pub disassociations: u64,
    /// Broadcast data frames enqueued.
    pub broadcasts_enqueued: u64,
    /// DTIM beacons emitted.
    pub beacons: u64,
    /// Broadcast frames delivered (drained) at DTIM boundaries.
    pub frames_delivered: u64,
    /// Port-table entries dropped by staleness expiry.
    pub entries_expired: u64,
    /// Frames that addressed a client this shard does not know.
    pub unknown_clients: u64,
    /// Frames of types an AP does not consume (beacons, ACKs).
    pub ignored_frames: u64,
    /// Currently associated clients.
    pub clients: u64,
}

impl ShardStats {
    /// Accumulates `other` into `self` (for daemon-wide totals).
    pub fn merge(&mut self, other: &ShardStats) {
        self.port_messages += other.port_messages;
        self.acks_sent += other.acks_sent;
        self.associations += other.associations;
        self.assoc_denied += other.assoc_denied;
        self.disassociations += other.disassociations;
        self.broadcasts_enqueued += other.broadcasts_enqueued;
        self.beacons += other.beacons;
        self.frames_delivered += other.frames_delivered;
        self.entries_expired += other.entries_expired;
        self.unknown_clients += other.unknown_clients;
        self.ignored_frames += other.ignored_frames;
        self.clients += other.clients;
    }
}

/// What a shard thread returns when joined.
pub(crate) struct ShardFinal {
    pub snapshot: ApSnapshot,
    pub stats: ShardStats,
    pub recorder: Recorder,
}

pub(crate) struct Shard<R: RuntimeSink> {
    pub ap: AccessPoint,
    pub reply_socket: UdpSocket,
    pub rx: Receiver<ShardCmd>,
    /// Queued-frame depth, shared with the router for backpressure.
    pub depth: Arc<AtomicUsize>,
    /// Staleness window in seconds; `None` disables expiry and makes
    /// refreshes untimed.
    pub stale_timeout_secs: Option<f64>,
    /// Wall-clock stage-latency sink ([`hide_obs::NoopRuntime`] when
    /// runtime telemetry is off — then the clock is never read here).
    pub runtime: R,
    /// This shard's live health cells (watchdog and `health` readers).
    pub health: Arc<ShardHealth>,
    /// The runtime plane's epoch, shared so progress stamps are
    /// comparable with the watchdog's clock.
    pub epoch: Instant,
}

impl<R: RuntimeSink> Shard<R> {
    /// Runs the shard loop until shutdown (or all senders dropped).
    pub fn run(mut self) -> ShardFinal {
        let mut stats = ShardStats::default();
        let mut recorder = Recorder::new();
        let mut processed = 0u64;
        while let Ok(cmd) = self.rx.recv() {
            match cmd {
                ShardCmd::Frame(frame, from) => {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    let t = self.runtime.start();
                    self.handle_frame(frame, from, &mut stats, &mut recorder);
                    self.runtime.finish(RtStage::Handle, t);
                }
                ShardCmd::Tick { index, now } => {
                    let t = self.runtime.start();
                    self.handle_tick(index, now, &mut stats, &mut recorder);
                    self.runtime.finish(RtStage::Handle, t);
                    self.sample_gauges();
                }
                ShardCmd::Snapshot(reply) => {
                    let _ = reply.send(self.ap.snapshot());
                }
                ShardCmd::Metrics(reply) => {
                    let _ = reply.send(recorder.clone());
                }
                ShardCmd::Stats(reply) => {
                    stats.clients = self.ap.client_count() as u64;
                    self.sample_gauges();
                    let _ = reply.send(stats);
                }
                ShardCmd::Shutdown(reply) => {
                    stats.clients = self.ap.client_count() as u64;
                    let _ = reply.send(ShardFinal {
                        snapshot: self.ap.snapshot(),
                        stats,
                        recorder: recorder.clone(),
                    });
                    break;
                }
            }
            processed += 1;
            self.mark_progress(processed);
        }
        stats.clients = self.ap.client_count() as u64;
        ShardFinal {
            snapshot: self.ap.snapshot(),
            stats,
            recorder,
        }
    }

    /// Stamp forward progress after every command; refresh the gauges
    /// every [`GAUGE_SAMPLE_EVERY`] commands so their staleness is
    /// bounded without per-message table walks.
    fn mark_progress(&self, processed: u64) {
        self.health.processed.store(processed, Ordering::Relaxed);
        self.health
            .last_progress_nanos
            .store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if processed.is_multiple_of(GAUGE_SAMPLE_EVERY) {
            self.sample_gauges();
        }
    }

    fn sample_gauges(&self) {
        self.health
            .backlog
            .store(self.ap.buffered_broadcasts() as u64, Ordering::Relaxed);
        self.health
            .ports
            .store(self.ap.port_table().port_count() as u64, Ordering::Relaxed);
        self.health
            .clients
            .store(self.ap.client_count() as u64, Ordering::Relaxed);
    }

    fn handle_frame(
        &mut self,
        frame: AnyFrame,
        from: SocketAddr,
        stats: &mut ShardStats,
        recorder: &mut Recorder,
    ) {
        match frame {
            AnyFrame::UdpPortMessage(msg) => {
                let mut ctx = match self.stale_timeout_secs {
                    Some(_) => ApCtx::at(monotonic_secs()),
                    None => ApCtx::untimed(),
                }
                .with_metrics(&mut *recorder);
                match self.ap.process_port_message(&msg, &mut ctx) {
                    Ok(ack) => {
                        stats.port_messages += 1;
                        let bytes = ack.to_bytes();
                        let t = self.runtime.start();
                        let sent = self.reply_socket.send_to(&bytes, from).is_ok();
                        self.runtime.finish(RtStage::Send, t);
                        if sent {
                            stats.acks_sent += 1;
                        }
                    }
                    Err(_) => stats.unknown_clients += 1,
                }
            }
            AnyFrame::AssociationRequest(req) => {
                let resp = self.ap.handle_association_request(&req);
                if resp.is_success() {
                    stats.associations += 1;
                } else {
                    stats.assoc_denied += 1;
                }
                let bytes = resp.to_bytes();
                let t = self.runtime.start();
                let _ = self.reply_socket.send_to(&bytes, from);
                self.runtime.finish(RtStage::Send, t);
            }
            AnyFrame::Disassociation(notice) => match self.ap.handle_disassociation(&notice) {
                Ok(()) => stats.disassociations += 1,
                Err(_) => stats.unknown_clients += 1,
            },
            AnyFrame::Data(data) => {
                self.ap.enqueue_broadcast(data);
                stats.broadcasts_enqueued += 1;
            }
            AnyFrame::PsPoll(poll) => {
                if self.ap.ps_poll(poll.transmitter()).is_err() {
                    stats.unknown_clients += 1;
                }
            }
            AnyFrame::Beacon(_) | AnyFrame::Ack(_) | AnyFrame::AssociationResponse(_) => {
                stats.ignored_frames += 1;
            }
            _ => stats.ignored_frames += 1,
        }
    }

    fn handle_tick(
        &mut self,
        index: u64,
        now: Option<f64>,
        stats: &mut ShardStats,
        recorder: &mut Recorder,
    ) {
        let mut ctx = match now {
            Some(now) => ApCtx::at(now),
            None => ApCtx::untimed(),
        }
        .with_metrics(&mut *recorder);
        self.ap.emit_dtim_beacon(index, &mut ctx);
        stats.beacons += 1;
        let delivered = self
            .ap
            .drain_broadcasts(&mut ApCtx::untimed().with_metrics(&mut *recorder));
        stats.frames_delivered += delivered.len() as u64;
        if let (Some(timeout), Some(now)) = (self.stale_timeout_secs, now) {
            let report = self.ap.expire_stale_port_entries(now - timeout);
            stats.entries_expired += report.entries_removed;
        }
    }
}

/// Seconds since an arbitrary process-wide epoch (first call).
///
/// All shard and timer threads share the epoch so port-refresh stamps
/// and expiry cutoffs are comparable across threads.
pub(crate) fn monotonic_secs() -> f64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// The shard a client address routes to: FNV-1a over the six octets.
pub(crate) fn shard_of(mac: hide_wifi::mac::MacAddr, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in mac.octets() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_wifi::mac::MacAddr;

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 5, 16] {
            for i in 0..200u32 {
                let mac = MacAddr::station(i);
                let s = shard_of(mac, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(mac, shards), "routing must be deterministic");
            }
        }
    }

    #[test]
    fn shard_routing_spreads_clients() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for i in 0..4000u32 {
            counts[shard_of(MacAddr::station(i), shards)] += 1;
        }
        for (i, &n) in counts.iter().enumerate() {
            assert!(n > 100, "shard {i} starved: {n} of 4000");
        }
    }

    #[test]
    fn monotonic_secs_never_goes_backwards() {
        let a = monotonic_secs();
        let b = monotonic_secs();
        assert!(b >= a);
    }
}
