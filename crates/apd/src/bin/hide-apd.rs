//! The `hide-apd` daemon binary.
//!
//! ```text
//! hide-apd [--bind ADDR] [--ctrl ADDR] [--shards N]
//!          [--beacon-interval-ms MS] [--stale-timeout SECS]
//!          [--snapshot PATH] [--restore] [--telemetry PATH]
//!          [--metrics-every-ticks N] [--health PATH]
//!          [--log-level LEVEL] [--watchdog-stall SECS]
//!          [--watchdog-interval SECS] [--no-runtime-telemetry]
//! ```
//!
//! Prints the bound data and control addresses on stdout, then serves
//! until a `shutdown` control request arrives. A final snapshot is
//! written on the way out when `--snapshot` is set, and a final
//! `hide-apd-health/1` dump when `--health` is set. All diagnostics go
//! through the leveled logger: `--log-level off` makes stderr
//! byte-silent.

use hide_apd::{ApdConfig, DaemonHandle};
use hide_obs::{log_error, log_info, LogLevel};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = ApdConfig::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--bind" => cfg.bind_addr = value("--bind"),
            "--ctrl" => cfg.ctrl_addr = value("--ctrl"),
            "--shards" => cfg.shards = parse(&value("--shards"), "--shards"),
            "--beacon-interval-ms" => {
                let ms: f64 = parse(&value("--beacon-interval-ms"), "--beacon-interval-ms");
                cfg.beacon_interval_secs = Some(ms / 1000.0);
            }
            "--stale-timeout" => {
                cfg.stale_timeout_secs = Some(parse(&value("--stale-timeout"), "--stale-timeout"));
            }
            "--snapshot" => cfg.snapshot_path = Some(value("--snapshot").into()),
            "--restore" => cfg.restore = true,
            "--telemetry" => cfg.telemetry_path = Some(value("--telemetry").into()),
            "--metrics-every-ticks" => {
                cfg.metrics_every_ticks =
                    parse(&value("--metrics-every-ticks"), "--metrics-every-ticks");
            }
            "--health" => cfg.health_path = Some(value("--health").into()),
            "--log-level" => {
                let level: LogLevel = parse(&value("--log-level"), "--log-level");
                hide_obs::log::set_level(level);
            }
            "--watchdog-stall" => {
                cfg.watchdog_stall_secs = parse(&value("--watchdog-stall"), "--watchdog-stall");
            }
            "--watchdog-interval" => {
                cfg.watchdog_interval_secs =
                    parse(&value("--watchdog-interval"), "--watchdog-interval");
            }
            "--no-runtime-telemetry" => cfg.runtime_telemetry = false,
            "--help" | "-h" => {
                println!(
                    "hide-apd: the HIDE access point as a long-running UDP service\n\
                     options: --bind ADDR --ctrl ADDR --shards N --beacon-interval-ms MS\n\
                     \x20        --stale-timeout SECS --snapshot PATH --restore\n\
                     \x20        --telemetry PATH --metrics-every-ticks N --health PATH\n\
                     \x20        --log-level off|error|warn|info|debug --watchdog-stall SECS\n\
                     \x20        --watchdog-interval SECS --no-runtime-telemetry"
                );
                return ExitCode::SUCCESS;
            }
            other => fail(&format!("unknown option {other:?} (try --help)")),
        }
    }

    let handle = match DaemonHandle::spawn(cfg) {
        Ok(handle) => handle,
        Err(e) => {
            log_error!("spawn failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("data {}", handle.data_addr());
    println!("ctrl {}", handle.ctrl_addr());

    handle.wait_for_shutdown_request();
    match handle.shutdown() {
        Ok(stats) => {
            log_info!("clean shutdown; {}", stats.to_line());
            ExitCode::SUCCESS
        }
        Err(e) => {
            log_error!("shutdown error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse<T: std::str::FromStr>(text: &str, what: &str) -> T
where
    T::Err: std::fmt::Display,
{
    text.parse()
        .unwrap_or_else(|e| fail(&format!("bad {what} value {text:?}: {e}")))
}

/// Usage errors always print, regardless of log level: the user asked
/// for something unintelligible, so silence would be worse.
fn fail(msg: &str) -> ! {
    eprintln!("hide-apd: {msg}");
    std::process::exit(2);
}
