//! Loopback load generator, throughput benchmark and live top-style
//! monitor for `hide-apd`.
//!
//! ```text
//! apd_loadgen [--target ADDR | (spawns its own daemon)]
//!             [--clients N] [--rounds N] [--shards N]
//!             [--scenario NAME] [--seed N] [--out PATH] [--smoke]
//!             [--log-level LEVEL]
//! apd_loadgen --watch CTRL_ADDR [--watch-count N]
//! ```
//!
//! Without `--target` the benchmark spawns an in-process daemon on
//! loopback, drives it, checks a clean shutdown (snapshot written and
//! parseable), then re-runs the identical workload against a daemon
//! with runtime telemetry disabled and records both rates (and the
//! overhead delta) into a `BENCH_apd.json` artifact. `--smoke`
//! additionally scrapes the `health`/`expo` control commands mid-run
//! and enforces: every hot-path stage histogram non-empty, no shard
//! stalled, the deterministic metrics plane free of wall-clock keys,
//! and the floors in `golden/perf_floors.toml` (sustained rate plus
//! the telemetry-overhead ratio). This is what CI runs.
//!
//! `--watch` is `apd_top`: poll a running daemon's control socket once
//! per second and render a one-line-per-shard health table.

use hide_apd::{loadgen, ApdConfig, ApdSnapshot, DaemonHandle, LoadgenConfig};
use hide_obs::{log_error, LogLevel};
use hide_traces::scenario::Scenario;
use std::net::UdpSocket;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    if let Some(level) = flag("--log-level") {
        match level.parse::<LogLevel>() {
            Ok(level) => hide_obs::log::set_level(level),
            Err(e) => {
                eprintln!("apd_loadgen: bad --log-level {level:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(ctrl) = flag("--watch") {
        let count: u64 = flag("--watch-count").map_or(0, |n| n.parse().expect("--watch-count"));
        return watch(&ctrl, count);
    }

    let mut cfg = LoadgenConfig::new();
    if let Some(n) = flag("--clients") {
        cfg.clients = n.parse().expect("--clients");
    }
    if let Some(n) = flag("--rounds") {
        cfg.rounds = n.parse().expect("--rounds");
    }
    if let Some(name) = flag("--scenario") {
        cfg.scenario = match name.as_str() {
            "classroom" => Scenario::Classroom,
            "cs_dept" => Scenario::CsDept,
            "wml" => Scenario::Wml,
            "starbucks" => Scenario::Starbucks,
            "wrl" => Scenario::Wrl,
            other => {
                log_error!("unknown scenario {other:?}");
                return ExitCode::FAILURE;
            }
        };
    }
    if let Some(n) = flag("--seed") {
        cfg.seed = n.parse().expect("--seed");
    }
    if smoke {
        // Seconds-long CI run; the floor is on rate, not volume.
        cfg.clients = 32;
        cfg.rounds = 50;
        cfg.trace_secs = 20.0;
    }
    let shards: usize = flag("--shards").map_or(2, |n| n.parse().expect("--shards"));
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_apd.json".into());

    // --- daemon: external target, or our own on loopback ---
    let (target, handle, snap_path) = match flag("--target") {
        Some(addr) => (addr.parse().expect("--target"), None, None),
        None => {
            let snap_path =
                std::env::temp_dir().join(format!("apd_loadgen_{}.snap", std::process::id()));
            let daemon_cfg = ApdConfig::new()
                .shards(shards)
                .snapshot_path(snap_path.clone());
            let handle = DaemonHandle::spawn(daemon_cfg).expect("spawn daemon");
            (handle.data_addr(), Some(handle), Some(snap_path))
        }
    };

    let report = match loadgen::run(target, &cfg) {
        Ok(report) => report,
        Err(e) => {
            log_error!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "apd_loadgen: {} clients, {} port messages ({} acked), {} broadcasts \
         in {:.3} s -> {:.0} msgs/s",
        report.associations,
        report.port_messages,
        report.acks,
        report.broadcasts_sent,
        report.elapsed_secs,
        report.msgs_per_sec
    );

    // --- smoke: scrape the live wall-clock plane before shutdown ---
    if smoke {
        if let Some(handle) = &handle {
            if let Err(msg) = smoke_scrape(handle) {
                log_error!("SMOKE FAILURE: {msg}");
                return ExitCode::FAILURE;
            }
            println!("apd_loadgen: health/expo scrape ok (4 stages live, no stalls)");
        }
    }

    // --- clean shutdown with a final snapshot, when we own the daemon ---
    if let Some(handle) = handle {
        handle.tick(4).expect("tick");
        let stats = handle.shutdown().expect("clean shutdown");
        if stats.shards.acks_sent != report.acks {
            log_error!(
                "daemon acked {} but loadgen saw {}",
                stats.shards.acks_sent,
                report.acks
            );
            return ExitCode::FAILURE;
        }
        let snap_path = snap_path.expect("owned daemon has a snapshot path");
        let bytes = std::fs::read(&snap_path).expect("shutdown snapshot written");
        let snap = ApdSnapshot::parse(&bytes).expect("shutdown snapshot parses");
        let clients: usize = snap.shards.iter().map(|s| s.clients.len()).sum();
        let _ = std::fs::remove_file(&snap_path);
        if clients != report.associations as usize {
            log_error!(
                "snapshot holds {clients} clients, expected {}",
                report.associations
            );
            return ExitCode::FAILURE;
        }
        println!("apd_loadgen: clean shutdown, snapshot verified ({clients} clients)");
    }

    // --- telemetry overhead: identical workload, NoopRuntime daemon ---
    let noop_rate = if flag("--target").is_none() {
        let noop_handle =
            DaemonHandle::spawn(ApdConfig::new().shards(shards).runtime_telemetry(false))
                .expect("spawn noop daemon");
        let noop_report = match loadgen::run(noop_handle.data_addr(), &cfg) {
            Ok(report) => report,
            Err(e) => {
                log_error!("noop-runtime run: {e}");
                return ExitCode::FAILURE;
            }
        };
        noop_handle.shutdown().expect("clean noop shutdown");
        println!(
            "apd_loadgen: noop-runtime reference -> {:.0} msgs/s \
             (telemetry overhead {:+.1}%)",
            noop_report.msgs_per_sec,
            overhead_pct(report.msgs_per_sec, noop_report.msgs_per_sec),
        );
        Some(noop_report.msgs_per_sec)
    } else {
        None
    };

    // --- artifact ---
    let overhead = match noop_rate {
        Some(noop) => format!(
            ",\n  \"runtime_overhead\": {{\"msgs_per_sec_telemetry\": {:.0}, \
             \"msgs_per_sec_noop\": {noop:.0}, \"overhead_pct\": {:.2}}}",
            report.msgs_per_sec,
            overhead_pct(report.msgs_per_sec, noop),
        ),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"schema\": \"hide-bench-apd/1\",\n  \"workload\": {{\"clients\": {}, \
         \"rounds\": {}, \"shards\": {}, \"scenario\": \"{}\", \"seed\": {}}},\n  \
         \"apd\": {{\"port_messages\": {}, \"acks\": {}, \"broadcasts\": {}, \
         \"elapsed_secs\": {:.6}, \"msgs_per_sec\": {:.0}}}{overhead}\n}}\n",
        cfg.clients,
        cfg.rounds,
        shards,
        cfg.scenario.label(),
        cfg.seed,
        report.port_messages,
        report.acks,
        report.broadcasts_sent,
        report.elapsed_secs,
        report.msgs_per_sec
    );
    std::fs::write(&out_path, json).expect("write benchmark artifact");
    println!("apd_loadgen: written to {out_path}");

    if smoke {
        let floor = perf_floor("apd_msgs_per_sec_floor");
        if report.msgs_per_sec < floor {
            log_error!(
                "FLOOR VIOLATION: {:.0} msgs/s is below the \
                 golden/perf_floors.toml floor of {floor:.0}",
                report.msgs_per_sec
            );
            return ExitCode::FAILURE;
        }
        println!(
            "apd_loadgen: floor ok ({:.0} >= {floor:.0} msgs/s)",
            report.msgs_per_sec
        );
        if let Some(noop) = noop_rate {
            let min_ratio = perf_floor("apd_telemetry_min_rate_ratio");
            let ratio = report.msgs_per_sec / noop.max(1.0);
            if ratio < min_ratio {
                log_error!(
                    "FLOOR VIOLATION: telemetry run sustains only {ratio:.2}x the \
                     noop-runtime rate (budget {min_ratio:.2}x): {:.0} vs {noop:.0} msgs/s",
                    report.msgs_per_sec
                );
                return ExitCode::FAILURE;
            }
            println!("apd_loadgen: telemetry overhead ok ({ratio:.2}x >= {min_ratio:.2}x)");
        }
    }
    ExitCode::SUCCESS
}

/// One `health` + `expo` + protocol scrape against a live daemon; the
/// smoke gate for the wall-clock plane.
fn smoke_scrape(handle: &DaemonHandle) -> Result<(), String> {
    let ctrl = handle.ctrl_addr().to_string();

    // The ping reply must carry the protocol version tag.
    let pong = ctrl_roundtrip(&ctrl, "ping")?;
    if pong != format!("pong {}", hide_apd::CTRL_PROTOCOL_VERSION) {
        return Err(format!("unexpected ping reply {pong:?}"));
    }
    // Unknown verbs must come back with the stable error code.
    let unknown = ctrl_roundtrip(&ctrl, "launch-missiles")?;
    if !unknown.starts_with("err:unknown-command") {
        return Err(format!("unexpected unknown-verb reply {unknown:?}"));
    }

    let health = ctrl_roundtrip(&ctrl, "health")?;
    let health = health
        .strip_prefix("ok ")
        .ok_or_else(|| format!("health request failed: {health:?}"))?;
    if !health.contains("\"schema\": \"hide-apd-health/1\"") {
        return Err("health reply is not a hide-apd-health/1 document".into());
    }
    for (stage, count) in hide_apd::parse_health_stage_counts(health) {
        if count == 0 {
            return Err(format!(
                "stage histogram {stage:?} is empty after a loopback run"
            ));
        }
    }
    let stalled = hide_apd::parse_health_stalled_shards(health);
    if stalled != 0 {
        return Err(format!("watchdog reports {stalled} stalled shards"));
    }
    for row in hide_apd::parse_health_shards(health) {
        if row.stalled {
            return Err(format!("shard {} is flagged stalled", row.shard));
        }
    }

    let expo = ctrl_roundtrip(&ctrl, "expo")?;
    let expo = expo
        .strip_prefix("ok ")
        .ok_or_else(|| format!("expo request failed: {expo:?}"))?;
    for family in [
        "hide_apd_frames_received_total",
        "hide_apd_stage_latency_nanoseconds",
        "hide_apd_shard_queue_depth",
        "hide_apd_watchdog_stalled_shards",
    ] {
        if !expo.contains(family) {
            return Err(format!("exposition is missing the {family} family"));
        }
    }

    // Two-plane purity: the deterministic metrics artifact must not
    // grow wall-clock sections.
    let metrics = handle.metrics_json().map_err(|e| e.to_string())?;
    for leak in ["p99_ns", "uptime_secs", "hide-apd-health"] {
        if metrics.contains(leak) {
            return Err(format!(
                "wall-clock key {leak:?} leaked into the hide-metrics/1 plane"
            ));
        }
    }
    Ok(())
}

/// One UDP request/reply against a control socket.
fn ctrl_roundtrip(ctrl_addr: &str, request: &str) -> Result<String, String> {
    let socket = UdpSocket::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    socket
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    socket.connect(ctrl_addr).map_err(|e| e.to_string())?;
    socket.send(request.as_bytes()).map_err(|e| e.to_string())?;
    let mut buf = vec![0u8; 262_144];
    let len = socket
        .recv(&mut buf)
        .map_err(|e| format!("no reply to {request:?}: {e}"))?;
    String::from_utf8(buf[..len].to_vec()).map_err(|e| e.to_string())
}

/// `apd_top`: poll `health` once per second and render the per-shard
/// table. `count == 0` polls until interrupted.
fn watch(ctrl_addr: &str, count: u64) -> ExitCode {
    let mut polls = 0u64;
    loop {
        match ctrl_roundtrip(ctrl_addr, "health") {
            Ok(reply) => match reply.strip_prefix("ok ") {
                Some(health) => {
                    println!("--- {ctrl_addr} ---");
                    print!("{}", hide_apd::render_top(health));
                }
                None => {
                    log_error!("health request failed: {reply:?}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                log_error!("watch: {e}");
                return ExitCode::FAILURE;
            }
        }
        polls += 1;
        if count != 0 && polls >= count {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_secs(1));
    }
}

fn overhead_pct(telemetry: f64, noop: f64) -> f64 {
    (noop - telemetry) / noop.max(1.0) * 100.0
}

/// Read one `key = value` number out of the checked-in perf-floor
/// profile (flat TOML; a comment-stripping line scan is the parser).
fn perf_floor(key: &str) -> f64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../golden/perf_floors.toml");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if let Some((k, v)) = line.split_once('=') {
            if k.trim() == key {
                return v
                    .trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("parse {key} in {path}: {e}"));
            }
        }
    }
    panic!("{key} not found in {path}");
}
