//! Loopback load generator and throughput benchmark for `hide-apd`.
//!
//! ```text
//! apd_loadgen [--target ADDR | (spawns its own daemon)]
//!             [--clients N] [--rounds N] [--shards N]
//!             [--scenario NAME] [--seed N] [--out PATH] [--smoke]
//! ```
//!
//! Without `--target` the benchmark spawns an in-process daemon on
//! loopback, drives it, checks a clean shutdown (snapshot written and
//! parseable), and records the sustained message rate into a
//! `BENCH_apd.json` artifact. `--smoke` additionally enforces the
//! `apd_msgs_per_sec_floor` from `golden/perf_floors.toml`, which is
//! what CI runs.

use hide_apd::{loadgen, ApdConfig, ApdSnapshot, DaemonHandle, LoadgenConfig};
use hide_traces::scenario::Scenario;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let mut cfg = LoadgenConfig::new();
    if let Some(n) = flag("--clients") {
        cfg.clients = n.parse().expect("--clients");
    }
    if let Some(n) = flag("--rounds") {
        cfg.rounds = n.parse().expect("--rounds");
    }
    if let Some(name) = flag("--scenario") {
        cfg.scenario = match name.as_str() {
            "classroom" => Scenario::Classroom,
            "cs_dept" => Scenario::CsDept,
            "wml" => Scenario::Wml,
            "starbucks" => Scenario::Starbucks,
            "wrl" => Scenario::Wrl,
            other => {
                eprintln!("apd_loadgen: unknown scenario {other:?}");
                return ExitCode::FAILURE;
            }
        };
    }
    if let Some(n) = flag("--seed") {
        cfg.seed = n.parse().expect("--seed");
    }
    if smoke {
        // Seconds-long CI run; the floor is on rate, not volume.
        cfg.clients = 32;
        cfg.rounds = 50;
        cfg.trace_secs = 20.0;
    }
    let shards: usize = flag("--shards").map_or(2, |n| n.parse().expect("--shards"));
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_apd.json".into());

    // --- daemon: external target, or our own on loopback ---
    let (target, handle, snap_path) = match flag("--target") {
        Some(addr) => (addr.parse().expect("--target"), None, None),
        None => {
            let snap_path =
                std::env::temp_dir().join(format!("apd_loadgen_{}.snap", std::process::id()));
            let daemon_cfg = ApdConfig::new()
                .shards(shards)
                .snapshot_path(snap_path.clone());
            let handle = DaemonHandle::spawn(daemon_cfg).expect("spawn daemon");
            (handle.data_addr(), Some(handle), Some(snap_path))
        }
    };

    let report = match loadgen::run(target, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("apd_loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "apd_loadgen: {} clients, {} port messages ({} acked), {} broadcasts \
         in {:.3} s -> {:.0} msgs/s",
        report.associations,
        report.port_messages,
        report.acks,
        report.broadcasts_sent,
        report.elapsed_secs,
        report.msgs_per_sec
    );

    // --- clean shutdown with a final snapshot, when we own the daemon ---
    if let Some(handle) = handle {
        handle.tick(4).expect("tick");
        let stats = handle.shutdown().expect("clean shutdown");
        if stats.shards.acks_sent != report.acks {
            eprintln!(
                "apd_loadgen: daemon acked {} but loadgen saw {}",
                stats.shards.acks_sent, report.acks
            );
            return ExitCode::FAILURE;
        }
        let snap_path = snap_path.expect("owned daemon has a snapshot path");
        let bytes = std::fs::read(&snap_path).expect("shutdown snapshot written");
        let snap = ApdSnapshot::parse(&bytes).expect("shutdown snapshot parses");
        let clients: usize = snap.shards.iter().map(|s| s.clients.len()).sum();
        let _ = std::fs::remove_file(&snap_path);
        if clients != report.associations as usize {
            eprintln!(
                "apd_loadgen: snapshot holds {clients} clients, expected {}",
                report.associations
            );
            return ExitCode::FAILURE;
        }
        println!("apd_loadgen: clean shutdown, snapshot verified ({clients} clients)");
    }

    // --- artifact ---
    let json = format!(
        "{{\n  \"schema\": \"hide-bench-apd/1\",\n  \"workload\": {{\"clients\": {}, \
         \"rounds\": {}, \"shards\": {}, \"scenario\": \"{}\", \"seed\": {}}},\n  \
         \"apd\": {{\"port_messages\": {}, \"acks\": {}, \"broadcasts\": {}, \
         \"elapsed_secs\": {:.6}, \"msgs_per_sec\": {:.0}}}\n}}\n",
        cfg.clients,
        cfg.rounds,
        shards,
        cfg.scenario.label(),
        cfg.seed,
        report.port_messages,
        report.acks,
        report.broadcasts_sent,
        report.elapsed_secs,
        report.msgs_per_sec
    );
    std::fs::write(&out_path, json).expect("write benchmark artifact");
    println!("apd_loadgen: written to {out_path}");

    if smoke {
        let floor = perf_floor("apd_msgs_per_sec_floor");
        if report.msgs_per_sec < floor {
            eprintln!(
                "apd_loadgen: FLOOR VIOLATION: {:.0} msgs/s is below the \
                 golden/perf_floors.toml floor of {floor:.0}",
                report.msgs_per_sec
            );
            return ExitCode::FAILURE;
        }
        println!(
            "apd_loadgen: floor ok ({:.0} >= {floor:.0} msgs/s)",
            report.msgs_per_sec
        );
    }
    ExitCode::SUCCESS
}

/// Read one `key = value` number out of the checked-in perf-floor
/// profile (flat TOML; a comment-stripping line scan is the parser).
fn perf_floor(key: &str) -> f64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../golden/perf_floors.toml");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if let Some((k, v)) = line.split_once('=') {
            if k.trim() == key {
                return v
                    .trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("parse {key} in {path}: {e}"));
            }
        }
    }
    panic!("{key} not found in {path}");
}
