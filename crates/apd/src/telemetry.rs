//! The daemon's wall-clock telemetry plane.
//!
//! Everything in this module is deliberately on the *other* side of
//! the determinism fence from the `hide-metrics/1` plane: it reads
//! clocks, samples queues, and reports wall-clock latencies, so its
//! output lives in its own `hide-apd-health/1` artifact (and a
//! Prometheus-style text exposition) and must never leak into the
//! deterministic metrics the golden gate pins.
//!
//! The plane has three moving parts:
//!
//! * **Stage latency histograms** — the router and shard hot paths
//!   time four stages (socket recv, parse+route, per-shard handle,
//!   reply send) through the zero-cost [`hide_obs::RuntimeSink`]
//!   seam; with telemetry enabled they land in a shared
//!   [`AtomicRuntime`] any thread can snapshot.
//! * **Per-shard health cells** — each shard keeps cheap atomics
//!   up to date (inbound queue depth, broadcast backlog, port-table
//!   occupancy, client count, processed-command counter, last-progress
//!   stamp); gauges are refreshed on DTIM ticks and every
//!   `GAUGE_SAMPLE_EVERY` commands so the hot path never does more
//!   than a handful of relaxed stores.
//! * **The watchdog** — a 1 Hz ticker that samples windowed message
//!   rates and flags any shard whose last-progress age exceeds the
//!   configured threshold while its inbound queue is non-empty,
//!   escalating through the leveled logger (warn on stall, error
//!   while a stall persists, info on recovery).

use hide_obs::runtime::RATE_WINDOW_SLOTS;
use hide_obs::{log_error, log_info, log_warn};
use hide_obs::{AtomicRuntime, RateMeter, RtStage};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A shard refreshes its gauges every this many processed commands
/// (and on every DTIM tick), so gauge staleness is bounded without
/// per-message costs beyond a progress stamp.
pub(crate) const GAUGE_SAMPLE_EVERY: u64 = 64;

/// How many consecutive stalled watchdog checks escalate the warn to
/// an error record.
const STALL_ESCALATE_CHECKS: u64 = 10;

/// One shard's live health cells. The shard thread writes, the
/// watchdog and health renderers read; everything is relaxed atomics.
#[derive(Debug)]
pub(crate) struct ShardHealth {
    /// Inbound queue depth (incremented by the router at enqueue,
    /// decremented by the shard at dequeue) — shared with the router's
    /// backpressure check.
    pub depth: Arc<AtomicUsize>,
    /// Broadcast frames buffered for the next DTIM flush.
    pub backlog: AtomicU64,
    /// Port-table entries (client, port) currently live.
    pub ports: AtomicU64,
    /// Associated clients.
    pub clients: AtomicU64,
    /// Commands this shard has processed since spawn.
    pub processed: AtomicU64,
    /// Nanoseconds since the plane epoch at the last processed
    /// command.
    pub last_progress_nanos: AtomicU64,
    /// Set by the watchdog while the shard looks stalled.
    pub stalled: AtomicBool,
    /// Consecutive watchdog checks the shard has looked stalled.
    pub stalled_checks: AtomicU64,
}

impl ShardHealth {
    pub(crate) fn new(depth: Arc<AtomicUsize>) -> Self {
        ShardHealth {
            depth,
            backlog: AtomicU64::new(0),
            ports: AtomicU64::new(0),
            clients: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            last_progress_nanos: AtomicU64::new(0),
            stalled: AtomicBool::new(false),
            stalled_checks: AtomicU64::new(0),
        }
    }
}

/// Router-side totals the health plane reads (the router thread
/// writes them; the deterministic `stats`/`metrics` planes read them
/// too).
#[derive(Debug, Default)]
pub(crate) struct RouterCounters {
    pub frames_received: AtomicU64,
    pub parse_errors: AtomicU64,
    pub dropped_backpressure: AtomicU64,
}

/// Everything the health/exposition renderers and the watchdog share.
pub(crate) struct RuntimePlane {
    /// Process epoch all progress stamps are relative to.
    pub epoch: Instant,
    /// The live stage histograms, or `None` when the daemon runs with
    /// the zero-cost [`hide_obs::NoopRuntime`].
    pub hists: Option<Arc<AtomicRuntime>>,
    /// One health cell per shard, in shard order.
    pub shards: Vec<Arc<ShardHealth>>,
    /// The router's broadcast backpressure watermark (context for the
    /// backlog gauge).
    pub watermark: usize,
    /// Last-progress age beyond which a busy shard counts as stalled.
    pub stall_threshold: Duration,
    /// Watchdog cadence.
    pub interval: Duration,
    /// Watchdog checks performed.
    pub checks: AtomicU64,
    /// Healthy→stalled transitions observed.
    pub stall_events: AtomicU64,
    /// Windowed message rate over the router's received-frame counter.
    pub rates: Mutex<RateMeter>,
}

impl RuntimePlane {
    pub(crate) fn new(
        hists: Option<Arc<AtomicRuntime>>,
        shards: Vec<Arc<ShardHealth>>,
        watermark: usize,
        stall_threshold_secs: f64,
        interval_secs: f64,
    ) -> Self {
        RuntimePlane {
            epoch: Instant::now(),
            hists,
            shards,
            watermark,
            stall_threshold: Duration::from_secs_f64(stall_threshold_secs),
            interval: Duration::from_secs_f64(interval_secs),
            checks: AtomicU64::new(0),
            stall_events: AtomicU64::new(0),
            rates: Mutex::new(RateMeter::new()),
        }
    }

    /// Nanoseconds since the plane epoch.
    pub(crate) fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Number of shards currently flagged as stalled.
    pub(crate) fn stalled_shards(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.stalled.load(Ordering::Relaxed))
            .count()
    }

    /// One watchdog pass: sample the rate meter and re-judge every
    /// shard's stall state. Factored out of the loop so tests can
    /// drive it synchronously.
    pub(crate) fn watchdog_check(&self, frames_received_total: u64) {
        self.checks.fetch_add(1, Ordering::Relaxed);
        self.rates
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .sample(frames_received_total);
        let now = self.now_nanos();
        let threshold = self.stall_threshold.as_nanos() as u64;
        for (i, shard) in self.shards.iter().enumerate() {
            let depth = shard.depth.load(Ordering::Relaxed);
            let last = shard.last_progress_nanos.load(Ordering::Relaxed);
            let age = now.saturating_sub(last);
            let looks_stalled = depth > 0 && age > threshold;
            let was_stalled = shard.stalled.load(Ordering::Relaxed);
            if looks_stalled {
                let checks = shard.stalled_checks.fetch_add(1, Ordering::Relaxed) + 1;
                if !was_stalled {
                    shard.stalled.store(true, Ordering::Relaxed);
                    self.stall_events.fetch_add(1, Ordering::Relaxed);
                    log_warn!(
                        "watchdog: shard {i} stalled: queue_depth={depth} \
                         last_progress_age_ms={} threshold_ms={}",
                        age / 1_000_000,
                        threshold / 1_000_000
                    );
                } else if checks.is_multiple_of(STALL_ESCALATE_CHECKS) {
                    log_error!(
                        "watchdog: shard {i} still stalled after {checks} checks: \
                         queue_depth={depth} last_progress_age_ms={}",
                        age / 1_000_000
                    );
                }
            } else {
                shard.stalled_checks.store(0, Ordering::Relaxed);
                if was_stalled {
                    shard.stalled.store(false, Ordering::Relaxed);
                    log_info!("watchdog: shard {i} recovered (queue_depth={depth})");
                }
            }
        }
    }
}

/// The watchdog thread body: ticks at the configured interval until
/// shutdown, re-checking the shutdown flag at a finer grain so the
/// daemon never waits a full interval to exit.
pub(crate) fn watchdog_loop(
    plane: &RuntimePlane,
    counters: &RouterCounters,
    shutdown: &std::sync::atomic::AtomicBool,
) {
    let poll = Duration::from_millis(25);
    let mut next = Instant::now() + plane.interval;
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(poll);
        if Instant::now() < next {
            continue;
        }
        next += plane.interval;
        plane.watchdog_check(counters.frames_received.load(Ordering::Relaxed));
    }
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the `hide-apd-health/1` JSON artifact.
pub(crate) fn health_json(plane: &RuntimePlane, counters: &RouterCounters) -> String {
    let uptime = plane.epoch.elapsed().as_secs_f64();
    let (r1, r10, r60) = {
        let rates = plane.rates.lock().unwrap_or_else(|e| e.into_inner());
        (rates.rate(1), rates.rate(10), rates.rate(RATE_WINDOW_SLOTS))
    };

    let mut out = String::with_capacity(2048);
    out.push_str("{\n  \"schema\": \"hide-apd-health/1\",\n");
    let _ = writeln!(out, "  \"uptime_secs\": {uptime:.6},");
    let _ = writeln!(
        out,
        "  \"log_level\": \"{}\",",
        hide_obs::log::level().label()
    );
    let _ = writeln!(
        out,
        "  \"router\": {{\"frames_received\": {}, \"parse_errors\": {}, \
         \"dropped_backpressure\": {}}},",
        counters.frames_received.load(Ordering::Relaxed),
        counters.parse_errors.load(Ordering::Relaxed),
        counters.dropped_backpressure.load(Ordering::Relaxed),
    );
    let _ = writeln!(
        out,
        "  \"rates\": {{\"msgs_per_sec_1s\": {r1:.1}, \"msgs_per_sec_10s\": {r10:.1}, \
         \"msgs_per_sec_60s\": {r60:.1}}},"
    );

    out.push_str("  \"telemetry\": ");
    out.push_str(if plane.hists.is_some() {
        "\"on\""
    } else {
        "\"off\""
    });
    out.push_str(",\n  \"stages\": {\n");
    for (k, stage) in RtStage::ALL.iter().enumerate() {
        let s = match &plane.hists {
            Some(h) => h.snapshot(*stage).summary(),
            None => hide_obs::LatencyHistogram::new().summary(),
        };
        let _ = writeln!(
            out,
            "    \"{}\": {{\"count\": {}, \"mean_ns\": {:.0}, \"p50_ns\": {}, \
             \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{}",
            stage.label(),
            s.count,
            s.mean_ns,
            s.p50_ns,
            s.p90_ns,
            s.p99_ns,
            s.max_ns,
            if k + 1 < RtStage::ALL.len() { "," } else { "" },
        );
    }
    out.push_str("  },\n  \"shards\": [\n");

    let now = plane.now_nanos();
    for (i, shard) in plane.shards.iter().enumerate() {
        let last = shard.last_progress_nanos.load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "    {{\"shard\": {i}, \"queue_depth\": {}, \"backlog\": {}, \
             \"watermark\": {}, \"ports\": {}, \"clients\": {}, \"processed\": {}, \
             \"last_progress_age_ms\": {}, \"stalled\": {}}}{}",
            shard.depth.load(Ordering::Relaxed),
            shard.backlog.load(Ordering::Relaxed),
            plane.watermark,
            shard.ports.load(Ordering::Relaxed),
            shard.clients.load(Ordering::Relaxed),
            shard.processed.load(Ordering::Relaxed),
            now.saturating_sub(last) / 1_000_000,
            shard.stalled.load(Ordering::Relaxed),
            if i + 1 < plane.shards.len() { "," } else { "" },
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"watchdog\": {{\"stall_threshold_secs\": {:.3}, \"interval_secs\": {:.3}, \
         \"checks\": {}, \"stall_events\": {}, \"stalled_shards\": {}}},",
        plane.stall_threshold.as_secs_f64(),
        plane.interval.as_secs_f64(),
        plane.checks.load(Ordering::Relaxed),
        plane.stall_events.load(Ordering::Relaxed),
        plane.stalled_shards(),
    );

    out.push_str("  \"recent_log\": [\n");
    let records = hide_obs::log::recent_records();
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"ts\": \"{}\", \"level\": \"{}\", \"target\": \"{}\", \
             \"message\": \"{}\"}}{}",
            hide_obs::log::rfc3339_nanos(r.unix_nanos),
            r.level.label(),
            json_escape(&r.target),
            json_escape(&r.message),
            if i + 1 < records.len() { "," } else { "" },
        );
    }
    out.push_str("  ]\n}");
    out
}

/// Render the Prometheus-style text exposition.
pub(crate) fn expo_text(plane: &RuntimePlane, counters: &RouterCounters) -> String {
    let mut out = String::with_capacity(2048);
    let _ = writeln!(
        out,
        "# TYPE hide_apd_uptime_seconds gauge\n\
         hide_apd_uptime_seconds {:.6}",
        plane.epoch.elapsed().as_secs_f64()
    );
    for (name, value) in [
        ("frames_received", &counters.frames_received),
        ("parse_errors", &counters.parse_errors),
        ("dropped_backpressure", &counters.dropped_backpressure),
    ] {
        let _ = writeln!(
            out,
            "# TYPE hide_apd_{name}_total counter\n\
             hide_apd_{name}_total {}",
            value.load(Ordering::Relaxed)
        );
    }
    {
        let rates = plane.rates.lock().unwrap_or_else(|e| e.into_inner());
        out.push_str("# TYPE hide_apd_msgs_per_second gauge\n");
        for (window, secs) in [("1s", 1), ("10s", 10), ("60s", RATE_WINDOW_SLOTS)] {
            let _ = writeln!(
                out,
                "hide_apd_msgs_per_second{{window=\"{window}\"}} {:.1}",
                rates.rate(secs)
            );
        }
    }

    out.push_str("# TYPE hide_apd_stage_latency_nanoseconds summary\n");
    for stage in RtStage::ALL {
        let s = match &plane.hists {
            Some(h) => h.snapshot(stage).summary(),
            None => hide_obs::LatencyHistogram::new().summary(),
        };
        let label = stage.label();
        for (q, v) in [("0.5", s.p50_ns), ("0.9", s.p90_ns), ("0.99", s.p99_ns)] {
            let _ = writeln!(
                out,
                "hide_apd_stage_latency_nanoseconds{{stage=\"{label}\",quantile=\"{q}\"}} {v}"
            );
        }
        let _ = writeln!(
            out,
            "hide_apd_stage_latency_nanoseconds_count{{stage=\"{label}\"}} {}\n\
             hide_apd_stage_latency_nanoseconds_max{{stage=\"{label}\"}} {}",
            s.count, s.max_ns
        );
    }

    for gauge in [
        "queue_depth",
        "backlog",
        "ports",
        "clients",
        "processed_total",
        "last_progress_age_seconds",
        "stalled",
    ] {
        let kind = if gauge == "processed_total" {
            "counter"
        } else {
            "gauge"
        };
        let _ = writeln!(out, "# TYPE hide_apd_shard_{gauge} {kind}");
    }
    let now = plane.now_nanos();
    for (i, shard) in plane.shards.iter().enumerate() {
        let age = now.saturating_sub(shard.last_progress_nanos.load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "hide_apd_shard_queue_depth{{shard=\"{i}\"}} {}\n\
             hide_apd_shard_backlog{{shard=\"{i}\"}} {}\n\
             hide_apd_shard_ports{{shard=\"{i}\"}} {}\n\
             hide_apd_shard_clients{{shard=\"{i}\"}} {}\n\
             hide_apd_shard_processed_total{{shard=\"{i}\"}} {}\n\
             hide_apd_shard_last_progress_age_seconds{{shard=\"{i}\"}} {:.3}\n\
             hide_apd_shard_stalled{{shard=\"{i}\"}} {}",
            shard.depth.load(Ordering::Relaxed),
            shard.backlog.load(Ordering::Relaxed),
            shard.ports.load(Ordering::Relaxed),
            shard.clients.load(Ordering::Relaxed),
            shard.processed.load(Ordering::Relaxed),
            age as f64 / 1e9,
            u8::from(shard.stalled.load(Ordering::Relaxed)),
        );
    }
    let _ = writeln!(
        out,
        "# TYPE hide_apd_watchdog_checks_total counter\n\
         hide_apd_watchdog_checks_total {}\n\
         # TYPE hide_apd_watchdog_stall_events_total counter\n\
         hide_apd_watchdog_stall_events_total {}\n\
         # TYPE hide_apd_watchdog_stalled_shards gauge\n\
         hide_apd_watchdog_stalled_shards {}",
        plane.checks.load(Ordering::Relaxed),
        plane.stall_events.load(Ordering::Relaxed),
        plane.stalled_shards(),
    );
    out
}

// ---------------------------------------------------------------------
// Health-artifact readers (the `apd_top` table and the smoke gates).
// The renderer above is the only writer of this format, so a tolerant
// line/key scan — not a JSON parser — is all the readers need.
// ---------------------------------------------------------------------

/// One shard row scraped back out of a `hide-apd-health/1` document.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct ShardRow {
    /// Shard index.
    pub shard: u64,
    /// Inbound queue depth.
    pub queue_depth: u64,
    /// Broadcast backlog vs the watermark.
    pub backlog: u64,
    /// Backpressure watermark.
    pub watermark: u64,
    /// Port-table occupancy.
    pub ports: u64,
    /// Associated clients.
    pub clients: u64,
    /// Commands processed since spawn.
    pub processed: u64,
    /// Milliseconds since the shard last made progress.
    pub last_progress_age_ms: u64,
    /// Watchdog stall flag.
    pub stalled: bool,
}

fn scan_u64(line: &str, key: &str) -> Option<u64> {
    let at = line.find(&format!("\"{key}\": "))?;
    let rest = &line[at + key.len() + 4..];
    let digits: String = rest
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Scrape the per-shard rows out of a `hide-apd-health/1` document.
#[must_use]
pub fn parse_health_shards(health: &str) -> Vec<ShardRow> {
    health
        .lines()
        .filter(|line| line.contains("\"shard\": "))
        .filter_map(|line| {
            Some(ShardRow {
                shard: scan_u64(line, "shard")?,
                queue_depth: scan_u64(line, "queue_depth")?,
                backlog: scan_u64(line, "backlog")?,
                watermark: scan_u64(line, "watermark")?,
                ports: scan_u64(line, "ports")?,
                clients: scan_u64(line, "clients")?,
                processed: scan_u64(line, "processed")?,
                last_progress_age_ms: scan_u64(line, "last_progress_age_ms")?,
                stalled: line.contains("\"stalled\": true"),
            })
        })
        .collect()
}

/// Scrape the per-stage observation counts (`recv`, `route`, `handle`,
/// `send`, in pipeline order) out of a `hide-apd-health/1` document.
#[must_use]
pub fn parse_health_stage_counts(health: &str) -> Vec<(&'static str, u64)> {
    RtStage::ALL
        .iter()
        .map(|stage| {
            let count = health
                .lines()
                .find(|line| {
                    line.trim_start()
                        .starts_with(&format!("\"{}\": ", stage.label()))
                })
                .and_then(|line| scan_u64(line, "count"))
                .unwrap_or(0);
            (stage.label(), count)
        })
        .collect()
}

/// Number of shards a `hide-apd-health/1` document reports as stalled.
#[must_use]
pub fn parse_health_stalled_shards(health: &str) -> u64 {
    health
        .lines()
        .find(|line| line.contains("\"stalled_shards\": "))
        .and_then(|line| scan_u64(line, "stalled_shards"))
        .unwrap_or(0)
}

/// Render the one-line-per-shard `apd_top` table from a
/// `hide-apd-health/1` document.
#[must_use]
pub fn render_top(health: &str) -> String {
    let shards = parse_health_shards(health);
    let rates = health
        .lines()
        .find(|line| line.contains("\"msgs_per_sec_1s\""))
        .map(|line| {
            let grab = |key: &str| -> f64 {
                line.find(&format!("\"{key}\": "))
                    .map(|at| {
                        line[at + key.len() + 4..]
                            .chars()
                            .take_while(|c| c.is_ascii_digit() || *c == '.')
                            .collect::<String>()
                            .parse()
                            .unwrap_or(0.0)
                    })
                    .unwrap_or(0.0)
            };
            (
                grab("msgs_per_sec_1s"),
                grab("msgs_per_sec_10s"),
                grab("msgs_per_sec_60s"),
            )
        })
        .unwrap_or((0.0, 0.0, 0.0));

    let mut out = format!(
        "msgs/s 1s {:>10.1}  10s {:>10.1}  60s {:>10.1}\n\
         {:>5} {:>7} {:>9} {:>7} {:>8} {:>10} {:>9} {:>8}\n",
        rates.0,
        rates.1,
        rates.2,
        "shard",
        "queue",
        "backlog",
        "ports",
        "clients",
        "processed",
        "age_ms",
        "state",
    );
    for row in &shards {
        let _ = writeln!(
            out,
            "{:>5} {:>7} {:>4}/{:>4} {:>7} {:>8} {:>10} {:>9} {:>8}",
            row.shard,
            row.queue_depth,
            row.backlog,
            row.watermark,
            row.ports,
            row.clients,
            row.processed,
            row.last_progress_age_ms,
            if row.stalled { "STALLED" } else { "ok" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_plane(shards: usize, with_hists: bool) -> RuntimePlane {
        let cells: Vec<Arc<ShardHealth>> = (0..shards)
            .map(|_| Arc::new(ShardHealth::new(Arc::new(AtomicUsize::new(0)))))
            .collect();
        let hists = with_hists.then(|| Arc::new(AtomicRuntime::new()));
        RuntimePlane::new(hists, cells, 4096, 5.0, 1.0)
    }

    #[test]
    fn health_json_carries_schema_stages_and_shards() {
        let plane = test_plane(2, true);
        plane
            .hists
            .as_ref()
            .unwrap()
            .record_nanos(RtStage::Handle, 1_500);
        let counters = RouterCounters::default();
        counters.frames_received.store(7, Ordering::Relaxed);
        let json = health_json(&plane, &counters);
        assert!(json.contains("\"schema\": \"hide-apd-health/1\""));
        assert!(json.contains("\"frames_received\": 7"));
        assert!(json.contains("\"telemetry\": \"on\""));
        let counts = parse_health_stage_counts(&json);
        assert_eq!(counts.len(), 4);
        assert_eq!(counts[2], ("handle", 1));
        assert_eq!(parse_health_shards(&json).len(), 2);
        assert_eq!(parse_health_stalled_shards(&json), 0);
    }

    #[test]
    fn watchdog_flags_and_recovers_a_stalled_shard() {
        let plane = test_plane(1, false);
        let shard = &plane.shards[0];
        // Busy queue, no progress, threshold 5 s: pretend the last
        // progress was 10 s "ago" by backdating the plane epoch.
        shard.depth.store(3, Ordering::Relaxed);
        shard.last_progress_nanos.store(0, Ordering::Relaxed);
        let plane = RuntimePlane {
            epoch: Instant::now() - Duration::from_secs(10),
            ..plane
        };
        plane.watchdog_check(0);
        assert!(plane.shards[0].stalled.load(Ordering::Relaxed));
        assert_eq!(plane.stall_events.load(Ordering::Relaxed), 1);
        assert_eq!(plane.stalled_shards(), 1);

        // Progress arrives: the next check clears the flag.
        let now = plane.now_nanos();
        plane.shards[0]
            .last_progress_nanos
            .store(now, Ordering::Relaxed);
        plane.watchdog_check(10);
        assert!(!plane.shards[0].stalled.load(Ordering::Relaxed));
        assert_eq!(plane.stalled_shards(), 0);
        // Stall events count transitions, not checks.
        assert_eq!(plane.stall_events.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn idle_empty_queue_is_never_stalled() {
        let plane = test_plane(1, false);
        let plane = RuntimePlane {
            epoch: Instant::now() - Duration::from_secs(100),
            ..plane
        };
        plane.watchdog_check(0);
        assert!(!plane.shards[0].stalled.load(Ordering::Relaxed));
    }

    #[test]
    fn expo_exposition_has_all_families() {
        let plane = test_plane(3, true);
        let counters = RouterCounters::default();
        let text = expo_text(&plane, &counters);
        for family in [
            "hide_apd_frames_received_total",
            "hide_apd_msgs_per_second{window=\"10s\"}",
            "hide_apd_stage_latency_nanoseconds{stage=\"recv\",quantile=\"0.5\"}",
            "hide_apd_shard_queue_depth{shard=\"2\"}",
            "hide_apd_watchdog_stalled_shards",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn top_table_renders_one_line_per_shard() {
        let plane = test_plane(4, false);
        let counters = RouterCounters::default();
        let json = health_json(&plane, &counters);
        let table = render_top(&json);
        assert_eq!(table.lines().count(), 2 + 4);
        assert!(table.contains("ok"));
        assert!(!table.contains("STALLED"));
    }
}
