//! `hide-apd`: the HIDE access point as a long-running service.
//!
//! Everything the repo's simulators drive offline — association, the
//! Client UDP Port Table, Algorithm 1 broadcast flags, DTIM cadence —
//! runs here as a daemon terminating the *real* wire formats
//! ([`hide_wifi::frame::AnyFrame`]) over plain UDP sockets:
//!
//! * **Sharded, lock-free state** — the AID space is split into
//!   disjoint ranges, one [`hide_core::ap::AccessPoint`] per shard
//!   thread; a router thread parses datagrams and routes them by
//!   client MAC, so no AP state is ever shared between threads.
//! * **One canonical API** — every protocol operation goes through
//!   [`hide_core::ap::ApCtx`], the same entry points the offline
//!   simulators use, which is what makes daemon state byte-comparable
//!   with offline replays (see the `loopback` integration test).
//! * **Control plane, not signals** — a UDP control socket speaks the
//!   tiny text protocol in [`ctrl`]: `ping`, `stats`, `metrics` (a
//!   live `hide-metrics/1` dump), `snapshot`, `health`, `expo`,
//!   `tick`, `shutdown`.
//! * **Snapshot/restore** — the client table serializes to the
//!   `hide-apdsnap/1` container ([`ApdSnapshot`]) on request and at
//!   shutdown, and restores at spawn.
//! * **Two observability planes** — the deterministic `hide-metrics/1`
//!   plane (byte-identical with offline replays) and a wall-clock
//!   runtime plane ([`telemetry`]): stage latency histograms recorded
//!   through the zero-cost [`hide_obs::RuntimeSink`] seam, per-shard
//!   health gauges, a stall watchdog, and the `hide-apd-health/1` /
//!   Prometheus-style `expo` outputs. Nothing from the wall-clock
//!   plane ever feeds the deterministic artifact.
//!
//! # Example
//!
//! ```
//! use hide_apd::{ApdConfig, DaemonHandle};
//!
//! let handle = DaemonHandle::spawn(ApdConfig::new()).unwrap();
//! // Clients talk to handle.data_addr(); operators to handle.ctrl_addr().
//! handle.tick(3).unwrap(); // drive the DTIM cadence manually
//! let stats = handle.shutdown().unwrap();
//! assert_eq!(stats.shards.beacons, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod ctrl;
pub mod daemon;
pub mod error;
pub mod loadgen;
mod shard;
pub mod snapshot;
pub mod telemetry;

pub use config::ApdConfig;
pub use ctrl::{CtrlParseError, CtrlRequest, CtrlResponse, CTRL_PROTOCOL_VERSION};
pub use daemon::{DaemonHandle, DaemonStats};
pub use error::ApdError;
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use shard::ShardStats;
pub use snapshot::ApdSnapshot;
pub use telemetry::{
    parse_health_shards, parse_health_stage_counts, parse_health_stalled_shards, render_top,
    ShardRow,
};
