//! Error type for the AP daemon.

use hide_core::CoreError;
use hide_wifi::WifiError;
use std::fmt;

/// Errors produced by the daemon, its control protocol, and the load
/// generator.
#[derive(Debug)]
#[non_exhaustive]
pub enum ApdError {
    /// A socket or filesystem operation failed.
    Io(std::io::Error),
    /// The HIDE protocol core rejected an operation.
    Core(CoreError),
    /// A wire frame failed to decode.
    Wifi(WifiError),
    /// The daemon configuration is unusable.
    Config(String),
    /// A control-protocol request or response failed to parse.
    Ctrl(String),
    /// An `hide-apdsnap/1` snapshot file failed to decode.
    Snapshot(String),
    /// A daemon thread disappeared (panicked or already shut down).
    ChannelClosed(&'static str),
    /// The load generator timed out waiting for a daemon reply.
    Timeout(&'static str),
}

impl fmt::Display for ApdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApdError::Io(e) => write!(f, "io: {e}"),
            ApdError::Core(e) => write!(f, "protocol core: {e}"),
            ApdError::Wifi(e) => write!(f, "wire codec: {e}"),
            ApdError::Config(what) => write!(f, "invalid daemon config: {what}"),
            ApdError::Ctrl(what) => write!(f, "control protocol: {what}"),
            ApdError::Snapshot(what) => write!(f, "invalid apd snapshot: {what}"),
            ApdError::ChannelClosed(who) => write!(f, "daemon thread gone: {who}"),
            ApdError::Timeout(what) => write!(f, "timed out waiting for {what}"),
        }
    }
}

impl std::error::Error for ApdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApdError::Io(e) => Some(e),
            ApdError::Core(e) => Some(e),
            ApdError::Wifi(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ApdError {
    fn from(e: std::io::Error) -> Self {
        ApdError::Io(e)
    }
}

impl From<CoreError> for ApdError {
    fn from(e: CoreError) -> Self {
        ApdError::Core(e)
    }
}

impl From<WifiError> for ApdError {
    fn from(e: WifiError) -> Self {
        ApdError::Wifi(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_chains() {
        let e = ApdError::from(CoreError::NoFreeAid);
        assert!(e.to_string().contains("no free association id"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ApdError::Config("zero shards".into())
            .to_string()
            .contains("zero shards"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ApdError>();
    }
}
