//! The control-socket text protocol.
//!
//! One request per UDP datagram, ASCII, newline-insensitive; one
//! datagram back. The codec is trivial on purpose: `printf 'stats' |
//! nc -u 127.0.0.1 <ctrl-port>` is a complete client. Replaces a
//! signal-based trigger (SIGUSR1) so the daemon needs no platform
//! bindings and tests can drive it over loopback.
//!
//! Protocol `hide-apd-ctrl/1`: ping replies carry the protocol
//! version (`pong hide-apd-ctrl/1`), and failures carry a stable
//! machine-readable code (`err:unknown-command launch-missiles`) so
//! scrapers can branch without string-matching free-form prose. Bare
//! `pong` and `err <message>` replies from older daemons still parse.

use crate::error::ApdError;

/// The control protocol version tag carried on ping replies.
pub const CTRL_PROTOCOL_VERSION: &str = "hide-apd-ctrl/1";

/// A request to the daemon's control socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CtrlRequest {
    /// Liveness probe; answered with `pong hide-apd-ctrl/1`.
    Ping,
    /// One-line daemon statistics (`ok key=value ...`).
    Stats,
    /// A full `hide-metrics/1` telemetry dump, returned inline.
    Metrics,
    /// Write the client table to the configured snapshot path.
    Snapshot,
    /// A full `hide-apd-health/1` wall-clock health dump, returned
    /// inline.
    Health,
    /// The Prometheus-style text exposition, returned inline.
    Expo,
    /// Advance the DTIM cadence by `n` beacons (virtual time; used
    /// when the timer thread is disabled).
    Tick(u64),
    /// Begin a clean shutdown.
    Shutdown,
}

/// Why a control request failed to parse. The two variants map to the
/// two stable wire error codes the daemon replies with:
/// `err:unknown-command` and `err:malformed`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlParseError {
    /// The leading verb is not part of the protocol.
    UnknownCommand(String),
    /// A known verb with bad or trailing arguments.
    Malformed(String),
}

impl std::fmt::Display for CtrlParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtrlParseError::UnknownCommand(verb) => write!(f, "unknown command {verb:?}"),
            CtrlParseError::Malformed(detail) => write!(f, "malformed request: {detail}"),
        }
    }
}

impl std::error::Error for CtrlParseError {}

impl From<CtrlParseError> for ApdError {
    fn from(e: CtrlParseError) -> Self {
        ApdError::Ctrl(e.to_string())
    }
}

impl CtrlRequest {
    /// Encodes the request to its wire text.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            CtrlRequest::Ping => "ping".into(),
            CtrlRequest::Stats => "stats".into(),
            CtrlRequest::Metrics => "metrics".into(),
            CtrlRequest::Snapshot => "snapshot".into(),
            CtrlRequest::Health => "health".into(),
            CtrlRequest::Expo => "expo".into(),
            CtrlRequest::Tick(n) => format!("tick {n}"),
            CtrlRequest::Shutdown => "shutdown".into(),
        }
    }

    /// Parses a request from wire text.
    ///
    /// # Errors
    ///
    /// [`CtrlParseError::UnknownCommand`] for verbs outside the
    /// protocol, [`CtrlParseError::Malformed`] for known verbs with
    /// bad or trailing arguments.
    pub fn parse(text: &str) -> Result<Self, CtrlParseError> {
        let mut words = text.split_ascii_whitespace();
        let verb = words.next().unwrap_or("");
        let req = match verb {
            "ping" => CtrlRequest::Ping,
            "stats" => CtrlRequest::Stats,
            "metrics" => CtrlRequest::Metrics,
            "snapshot" => CtrlRequest::Snapshot,
            "health" => CtrlRequest::Health,
            "expo" => CtrlRequest::Expo,
            "tick" => {
                let arg = words
                    .next()
                    .ok_or_else(|| CtrlParseError::Malformed("tick needs a beacon count".into()))?;
                let n = arg.parse().map_err(|e| {
                    CtrlParseError::Malformed(format!("bad tick count {arg:?}: {e}"))
                })?;
                CtrlRequest::Tick(n)
            }
            "shutdown" => CtrlRequest::Shutdown,
            other => return Err(CtrlParseError::UnknownCommand(other.into())),
        };
        if words.next().is_some() {
            return Err(CtrlParseError::Malformed(format!(
                "trailing words in {text:?}"
            )));
        }
        Ok(req)
    }
}

/// A reply from the daemon's control socket.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CtrlResponse {
    /// Reply to [`CtrlRequest::Ping`]. `version` is the daemon's
    /// control protocol tag (empty when talking to a pre-versioning
    /// daemon).
    Pong {
        /// Protocol version tag, normally [`CTRL_PROTOCOL_VERSION`].
        version: String,
    },
    /// Success, with an optional payload (stats line, snapshot path,
    /// or a full metrics/health document).
    Ok(String),
    /// Failure: a stable machine-readable `code` (no whitespace, e.g.
    /// `unknown-command`, `malformed`, `internal`) plus free-form
    /// human detail.
    Err {
        /// Stable machine-readable failure code.
        code: String,
        /// Free-form human-readable detail.
        detail: String,
    },
}

impl CtrlResponse {
    /// The versioned ping reply this daemon sends.
    #[must_use]
    pub fn pong() -> Self {
        CtrlResponse::Pong {
            version: CTRL_PROTOCOL_VERSION.into(),
        }
    }

    /// A coded error reply.
    #[must_use]
    pub fn err(code: impl Into<String>, detail: impl Into<String>) -> Self {
        CtrlResponse::Err {
            code: code.into(),
            detail: detail.into(),
        }
    }

    /// Encodes the response to its wire text.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            CtrlResponse::Pong { version } if version.is_empty() => "pong".into(),
            CtrlResponse::Pong { version } => format!("pong {version}"),
            CtrlResponse::Ok(payload) if payload.is_empty() => "ok".into(),
            CtrlResponse::Ok(payload) => format!("ok {payload}"),
            CtrlResponse::Err { code, detail } if detail.is_empty() => format!("err:{code}"),
            CtrlResponse::Err { code, detail } => format!("err:{code} {detail}"),
        }
    }

    /// Parses a response from wire text. Legacy `err <message>` (no
    /// code) parses with code `error`.
    ///
    /// # Errors
    ///
    /// Returns [`ApdError::Ctrl`] when the text starts with none of
    /// `pong`, `ok`, or `err`.
    pub fn parse(text: &str) -> Result<Self, ApdError> {
        let text = text.trim_end_matches(['\r', '\n']);
        if text == "pong" {
            return Ok(CtrlResponse::Pong {
                version: String::new(),
            });
        }
        if let Some(version) = text.strip_prefix("pong ") {
            return Ok(CtrlResponse::Pong {
                version: version.into(),
            });
        }
        if text == "ok" {
            return Ok(CtrlResponse::Ok(String::new()));
        }
        if let Some(payload) = text.strip_prefix("ok ") {
            return Ok(CtrlResponse::Ok(payload.into()));
        }
        if let Some(rest) = text.strip_prefix("err:") {
            let (code, detail) = match rest.split_once(' ') {
                Some((code, detail)) => (code, detail),
                None => (rest, ""),
            };
            if code.is_empty() {
                return Err(ApdError::Ctrl(format!("empty error code in {text:?}")));
            }
            return Ok(CtrlResponse::Err {
                code: code.into(),
                detail: detail.into(),
            });
        }
        if let Some(msg) = text.strip_prefix("err ") {
            return Ok(CtrlResponse::Err {
                code: "error".into(),
                detail: msg.into(),
            });
        }
        Err(ApdError::Ctrl(format!("unparseable response {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            CtrlRequest::Ping,
            CtrlRequest::Stats,
            CtrlRequest::Metrics,
            CtrlRequest::Snapshot,
            CtrlRequest::Health,
            CtrlRequest::Expo,
            CtrlRequest::Tick(0),
            CtrlRequest::Tick(u64::MAX),
            CtrlRequest::Shutdown,
        ] {
            assert_eq!(CtrlRequest::parse(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            CtrlResponse::pong(),
            CtrlResponse::Ok(String::new()),
            CtrlResponse::Ok("port=1234".into()),
            CtrlResponse::err("unknown-command", "launch-missiles"),
            CtrlResponse::err("no-snapshot-path", ""),
            CtrlResponse::err("internal", "no snapshot path configured"),
        ] {
            assert_eq!(CtrlResponse::parse(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn ping_reply_carries_the_protocol_version() {
        let wire = CtrlResponse::pong().encode();
        assert_eq!(wire, "pong hide-apd-ctrl/1");
        match CtrlResponse::parse(&wire).unwrap() {
            CtrlResponse::Pong { version } => assert_eq!(version, CTRL_PROTOCOL_VERSION),
            other => panic!("expected pong, got {other:?}"),
        }
    }

    #[test]
    fn legacy_replies_still_parse() {
        assert_eq!(
            CtrlResponse::parse("pong").unwrap(),
            CtrlResponse::Pong {
                version: String::new()
            }
        );
        assert_eq!(
            CtrlResponse::parse("err no snapshot path configured").unwrap(),
            CtrlResponse::err("error", "no snapshot path configured"),
        );
    }

    #[test]
    fn unknown_verbs_and_malformed_args_are_distinguished() {
        assert_eq!(
            CtrlRequest::parse("launch-missiles"),
            Err(CtrlParseError::UnknownCommand("launch-missiles".into())),
        );
        assert!(matches!(
            CtrlRequest::parse("tick"),
            Err(CtrlParseError::Malformed(_)),
        ));
        assert!(matches!(
            CtrlRequest::parse("tick four"),
            Err(CtrlParseError::Malformed(_)),
        ));
        assert!(matches!(
            CtrlRequest::parse("ping pong"),
            Err(CtrlParseError::Malformed(_)),
        ));
        assert!(CtrlResponse::parse("maybe").is_err());
        assert!(CtrlResponse::parse("err: missing code").is_err());
    }
}
