//! The control-socket text protocol.
//!
//! One request per UDP datagram, ASCII, newline-insensitive; one
//! datagram back. The codec is trivial on purpose: `printf 'stats' |
//! nc -u 127.0.0.1 <ctrl-port>` is a complete client. Replaces a
//! signal-based trigger (SIGUSR1) so the daemon needs no platform
//! bindings and tests can drive it over loopback.

use crate::error::ApdError;

/// A request to the daemon's control socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CtrlRequest {
    /// Liveness probe; answered with `pong`.
    Ping,
    /// One-line daemon statistics (`ok key=value ...`).
    Stats,
    /// A full `hide-metrics/1` telemetry dump, returned inline.
    Metrics,
    /// Write the client table to the configured snapshot path.
    Snapshot,
    /// Advance the DTIM cadence by `n` beacons (virtual time; used
    /// when the timer thread is disabled).
    Tick(u64),
    /// Begin a clean shutdown.
    Shutdown,
}

impl CtrlRequest {
    /// Encodes the request to its wire text.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            CtrlRequest::Ping => "ping".into(),
            CtrlRequest::Stats => "stats".into(),
            CtrlRequest::Metrics => "metrics".into(),
            CtrlRequest::Snapshot => "snapshot".into(),
            CtrlRequest::Tick(n) => format!("tick {n}"),
            CtrlRequest::Shutdown => "shutdown".into(),
        }
    }

    /// Parses a request from wire text.
    ///
    /// # Errors
    ///
    /// Returns [`ApdError::Ctrl`] for unknown verbs or malformed
    /// arguments.
    pub fn parse(text: &str) -> Result<Self, ApdError> {
        let mut words = text.split_ascii_whitespace();
        let verb = words.next().unwrap_or("");
        let req = match verb {
            "ping" => CtrlRequest::Ping,
            "stats" => CtrlRequest::Stats,
            "metrics" => CtrlRequest::Metrics,
            "snapshot" => CtrlRequest::Snapshot,
            "tick" => {
                let arg = words
                    .next()
                    .ok_or_else(|| ApdError::Ctrl("tick needs a beacon count".into()))?;
                let n = arg
                    .parse()
                    .map_err(|e| ApdError::Ctrl(format!("bad tick count {arg:?}: {e}")))?;
                CtrlRequest::Tick(n)
            }
            "shutdown" => CtrlRequest::Shutdown,
            other => return Err(ApdError::Ctrl(format!("unknown request {other:?}"))),
        };
        if words.next().is_some() {
            return Err(ApdError::Ctrl(format!("trailing words in {text:?}")));
        }
        Ok(req)
    }
}

/// A reply from the daemon's control socket.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CtrlResponse {
    /// Reply to [`CtrlRequest::Ping`].
    Pong,
    /// Success, with an optional payload (stats line, snapshot path,
    /// or a full metrics document).
    Ok(String),
    /// Failure, with the error message.
    Err(String),
}

impl CtrlResponse {
    /// Encodes the response to its wire text.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            CtrlResponse::Pong => "pong".into(),
            CtrlResponse::Ok(payload) if payload.is_empty() => "ok".into(),
            CtrlResponse::Ok(payload) => format!("ok {payload}"),
            CtrlResponse::Err(msg) => format!("err {msg}"),
        }
    }

    /// Parses a response from wire text.
    ///
    /// # Errors
    ///
    /// Returns [`ApdError::Ctrl`] when the text starts with none of
    /// `pong`, `ok`, or `err`.
    pub fn parse(text: &str) -> Result<Self, ApdError> {
        let text = text.trim_end_matches(['\r', '\n']);
        if text == "pong" {
            return Ok(CtrlResponse::Pong);
        }
        if text == "ok" {
            return Ok(CtrlResponse::Ok(String::new()));
        }
        if let Some(payload) = text.strip_prefix("ok ") {
            return Ok(CtrlResponse::Ok(payload.into()));
        }
        if let Some(msg) = text.strip_prefix("err ") {
            return Ok(CtrlResponse::Err(msg.into()));
        }
        Err(ApdError::Ctrl(format!("unparseable response {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            CtrlRequest::Ping,
            CtrlRequest::Stats,
            CtrlRequest::Metrics,
            CtrlRequest::Snapshot,
            CtrlRequest::Tick(0),
            CtrlRequest::Tick(u64::MAX),
            CtrlRequest::Shutdown,
        ] {
            assert_eq!(CtrlRequest::parse(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            CtrlResponse::Pong,
            CtrlResponse::Ok(String::new()),
            CtrlResponse::Ok("port=1234".into()),
            CtrlResponse::Err("no snapshot path configured".into()),
        ] {
            assert_eq!(CtrlResponse::parse(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(CtrlRequest::parse("launch-missiles").is_err());
        assert!(CtrlRequest::parse("tick").is_err());
        assert!(CtrlRequest::parse("tick four").is_err());
        assert!(CtrlRequest::parse("ping pong").is_err());
        assert!(CtrlResponse::parse("maybe").is_err());
    }
}
