//! Loopback integration: the daemon, fed the real wire formats over
//! UDP, must land in exactly the state an offline [`AccessPoint`]
//! replay of the same operations lands in — proven byte-for-byte on
//! the canonical `hide-apsnap/1` serialization.

use hide_apd::ctrl::{CtrlRequest, CtrlResponse};
use hide_apd::{ApdConfig, ApdSnapshot, DaemonHandle};
use hide_core::ap::{AccessPoint, ApCtx};
use hide_wifi::assoc::{AssociationRequest, Disassociation};
use hide_wifi::frame::{AnyFrame, UdpPortMessage};
use hide_wifi::mac::MacAddr;
use std::net::UdpSocket;
use std::time::Duration;

fn client_socket(target: std::net::SocketAddr) -> UdpSocket {
    let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    socket.connect(target).unwrap();
    socket
}

fn recv_frame(socket: &UdpSocket) -> AnyFrame {
    let mut buf = [0u8; 65536];
    let len = socket.recv(&mut buf).unwrap();
    AnyFrame::parse(&buf[..len]).unwrap()
}

/// Replays a lockstep (ACK-waited) client workload against the daemon
/// and the identical operation sequence against an offline AP; their
/// canonical snapshots must be byte-identical.
#[test]
fn daemon_state_equals_offline_replay() {
    let handle = DaemonHandle::spawn(ApdConfig::new()).unwrap();
    let socket = client_socket(handle.data_addr());
    let bssid = MacAddr::station(0);

    let mut offline = AccessPoint::with_aid_range(bssid, 1, 2007).unwrap();
    offline.set_ssid("hide");
    offline.set_dtim_period(1);

    // A workload touching every state transition the snapshot captures:
    // association (HIDE and legacy), port refreshes, re-refreshes with
    // different port sets, and a disassociation that frees an AID.
    for i in 0..12u32 {
        let mac = MacAddr::station(1 + i);
        let req = AssociationRequest::new(mac, bssid, "hide");
        let req = if i % 3 != 2 {
            req.with_hide_support()
        } else {
            req
        };
        socket.send(&req.to_bytes()).unwrap();
        let AnyFrame::AssociationResponse(resp) = recv_frame(&socket) else {
            panic!("expected an association response");
        };
        assert!(resp.is_success());
        let offline_resp = offline.handle_association_request(&req);
        assert_eq!(offline_resp.to_bytes(), resp.to_bytes());
    }
    for round in 0..3u16 {
        for i in 0..12u32 {
            if i % 3 == 2 {
                continue; // legacy clients don't send port messages
            }
            let mac = MacAddr::station(1 + i);
            let ports = (0..=(i as u16 % 5)).map(|p| 5000 + 100 * round + 7 * p);
            let msg = UdpPortMessage::new(mac, bssid, ports)
                .unwrap()
                .with_seq(round);
            socket.send(&msg.to_bytes()).unwrap();
            let AnyFrame::Ack(ack) = recv_frame(&socket) else {
                panic!("expected an ack");
            };
            let offline_ack = offline
                .process_port_message(&msg, &mut ApCtx::untimed())
                .unwrap();
            assert_eq!(offline_ack.to_bytes(), ack.to_bytes());
        }
    }
    // Disassociate one client; the freed AID must round-trip too.
    let notice = Disassociation::new(MacAddr::station(4), bssid, 8);
    socket.send(&notice.to_bytes()).unwrap();
    offline.handle_disassociation(&notice).unwrap();
    // Lockstep barrier: the daemon answers a later port message only
    // after the (unacked) disassociation is processed, because both
    // route to the same shard... but with multiple clients per shard
    // ordering still holds per-socket. Ping the state until it settles.
    wait_until(|| handle.stats().unwrap().shards.disassociations == 1);

    let daemon_snap = handle.snapshot().unwrap();
    assert_eq!(daemon_snap.shards.len(), 1);
    assert_eq!(
        daemon_snap.shards[0].to_bytes(),
        offline.snapshot().to_bytes(),
        "daemon state diverged from the offline replay"
    );

    let stats = handle.shutdown().unwrap();
    assert_eq!(stats.shards.associations, 12);
    assert_eq!(stats.shards.port_messages, 24);
    assert_eq!(stats.parse_errors, 0);
}

/// Snapshot written at shutdown restores into an identical daemon.
#[test]
fn shutdown_snapshot_restores_byte_identically() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("apd_loopback_restore_{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let cfg = ApdConfig::new().shards(2).snapshot_path(path.clone());
    let handle = DaemonHandle::spawn(cfg.clone()).unwrap();
    let socket = client_socket(handle.data_addr());
    for i in 0..6u32 {
        let req = AssociationRequest::new(MacAddr::station(1 + i), MacAddr::station(0), "hide")
            .with_hide_support();
        socket.send(&req.to_bytes()).unwrap();
        recv_frame(&socket);
        let msg =
            UdpPortMessage::new(MacAddr::station(1 + i), MacAddr::station(0), [5353]).unwrap();
        socket.send(&msg.to_bytes()).unwrap();
        recv_frame(&socket);
    }
    let live = handle.snapshot().unwrap();
    handle.shutdown().unwrap();

    let written = ApdSnapshot::parse(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(written, live);

    // Respawn restoring from the file: state must carry over exactly.
    let restored = DaemonHandle::spawn(cfg.restore(true)).unwrap();
    let after = restored.snapshot().unwrap();
    assert_eq!(after.to_bytes(), live.to_bytes());
    let stats = restored.stats().unwrap();
    assert_eq!(stats.shards.clients, 6);
    restored.shutdown().unwrap();
    let _ = std::fs::remove_file(&path);
}

/// The control socket speaks the whole protocol over the wire.
#[test]
fn ctrl_socket_serves_the_protocol() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("apd_loopback_ctrl_{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let handle = DaemonHandle::spawn(ApdConfig::new().snapshot_path(path.clone())).unwrap();
    let ctrl = client_socket(handle.ctrl_addr());
    let mut buf = [0u8; 65536];
    let mut ask = |req: CtrlRequest| -> CtrlResponse {
        ctrl.send(req.encode().as_bytes()).unwrap();
        let len = ctrl.recv(&mut buf).unwrap();
        CtrlResponse::parse(std::str::from_utf8(&buf[..len]).unwrap()).unwrap()
    };

    assert_eq!(ask(CtrlRequest::Ping), CtrlResponse::pong());
    match ask(CtrlRequest::Ping) {
        CtrlResponse::Pong { version } => {
            assert_eq!(version, hide_apd::CTRL_PROTOCOL_VERSION);
        }
        other => panic!("ping failed: {other:?}"),
    }
    assert!(matches!(ask(CtrlRequest::Tick(3)), CtrlResponse::Ok(_)));
    match ask(CtrlRequest::Health) {
        CtrlResponse::Ok(json) => {
            assert!(json.contains("\"schema\": \"hide-apd-health/1\""));
            assert_eq!(hide_apd::parse_health_shards(&json).len(), 1);
        }
        other => panic!("health failed: {other:?}"),
    }
    match ask(CtrlRequest::Expo) {
        CtrlResponse::Ok(text) => {
            assert!(text.contains("hide_apd_frames_received_total"));
        }
        other => panic!("expo failed: {other:?}"),
    }
    // Unknown verbs come back with the stable error code.
    {
        let mut raw = [0u8; 512];
        ctrl.send(b"launch-missiles").unwrap();
        let len = ctrl.recv(&mut raw).unwrap();
        let text = std::str::from_utf8(&raw[..len]).unwrap();
        assert!(
            text.starts_with("err:unknown-command"),
            "unexpected reply {text:?}"
        );
    }
    match ask(CtrlRequest::Stats) {
        CtrlResponse::Ok(line) => assert!(line.contains("beacons=3"), "{line}"),
        other => panic!("stats failed: {other:?}"),
    }
    match ask(CtrlRequest::Metrics) {
        CtrlResponse::Ok(json) => {
            assert!(json.contains("\"schema\": \"hide-metrics/1\""));
            assert!(json.contains("\"daemon\": {"));
        }
        other => panic!("metrics failed: {other:?}"),
    }
    match ask(CtrlRequest::Snapshot) {
        CtrlResponse::Ok(reply_path) => {
            let bytes = std::fs::read(&reply_path).unwrap();
            ApdSnapshot::parse(&bytes).unwrap();
        }
        other => panic!("snapshot failed: {other:?}"),
    }
    assert!(matches!(ask(CtrlRequest::Shutdown), CtrlResponse::Ok(_)));
    handle.wait_for_shutdown_request();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_file(&path);
}

/// Backpressure: flooding broadcast data past the watermark drops
/// frames instead of growing the queue without bound, and never drops
/// management traffic.
#[test]
fn backpressure_drops_data_not_management() {
    let handle = DaemonHandle::spawn(ApdConfig::new().backpressure_watermark(1)).unwrap();
    let socket = client_socket(handle.data_addr());

    // Associate first — management must survive the later flood.
    let mac = MacAddr::station(1);
    let req = AssociationRequest::new(mac, MacAddr::station(0), "hide").with_hide_support();
    socket.send(&req.to_bytes()).unwrap();
    recv_frame(&socket);

    let data = hide_wifi::frame::BroadcastDataFrame::new(
        MacAddr::station(0),
        hide_wifi::udp::UdpDatagram::new([10, 0, 0, 2], [255; 4], 4000, 1900, vec![0; 64]),
        false,
    );
    let bytes = data.to_bytes();
    for _ in 0..2000 {
        socket.send(&bytes).unwrap();
    }
    // Wait for the flood to drain out of the kernel and the router
    // (the loopback socket buffer may itself drop datagrams, so wait
    // for the received count to go quiet rather than hit a total).
    let mut last = 0u64;
    wait_until(|| {
        let now = handle.stats().unwrap().frames_received;
        let quiet = now == last;
        last = now;
        quiet && now > 1
    });

    // A port message must still get through and be acked — resend if
    // the kernel dropped it while its buffer was full.
    let msg = UdpPortMessage::new(mac, MacAddr::station(0), [5353]).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_millis(250)))
        .unwrap();
    let mut acked = false;
    for _ in 0..20 {
        socket.send(&msg.to_bytes()).unwrap();
        let mut buf = [0u8; 65536];
        if let Ok(len) = socket.recv(&mut buf) {
            if matches!(AnyFrame::parse(&buf[..len]).unwrap(), AnyFrame::Ack(_)) {
                acked = true;
                break;
            }
        }
    }
    assert!(acked, "management traffic must survive a broadcast flood");

    let stats = handle.stats().unwrap();
    assert!(
        stats.dropped_backpressure > 0,
        "watermark 1 should have dropped some of 2000 flood frames \
         (received {}, enqueued {}, dropped {})",
        stats.frames_received,
        stats.shards.broadcasts_enqueued,
        stats.dropped_backpressure
    );
    assert!(stats.shards.port_messages >= 1);
    handle.shutdown().unwrap();
}

fn wait_until(mut cond: impl FnMut() -> bool) {
    for _ in 0..200 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("condition not reached within 2 s");
}
