//! Property tests for the daemon's two codecs: the control protocol
//! and the `hide-apdsnap/1` snapshot container.

use hide_apd::ctrl::{CtrlRequest, CtrlResponse};
use hide_apd::{ApdConfig, ApdSnapshot};
use hide_core::ap::{AccessPoint, ApCtx};
use hide_wifi::frame::UdpPortMessage;
use hide_wifi::mac::MacAddr;
use proptest::collection::vec;
use proptest::prelude::*;

fn request_strategy() -> impl Strategy<Value = CtrlRequest> {
    (0usize..8, any::<u64>()).prop_map(|(which, n)| match which {
        0 => CtrlRequest::Ping,
        1 => CtrlRequest::Stats,
        2 => CtrlRequest::Metrics,
        3 => CtrlRequest::Snapshot,
        4 => CtrlRequest::Tick(n),
        5 => CtrlRequest::Health,
        6 => CtrlRequest::Expo,
        _ => CtrlRequest::Shutdown,
    })
}

/// Error codes that survive the wire: non-empty, no whitespace, no
/// colon (the `err:` separator charset).
fn code_strategy() -> impl Strategy<Value = String> {
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";
    vec(0usize..CHARSET.len(), 1..24)
        .prop_map(|idxs| idxs.into_iter().map(|i| CHARSET[i] as char).collect())
}

/// Payload text that survives the line-oriented ctrl codec: printable
/// ASCII with no leading/trailing trim hazards.
fn payload_strategy() -> impl Strategy<Value = String> {
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789=_,.:/ ";
    vec(0usize..CHARSET.len(), 1..64).prop_map(|idxs| {
        let s: String = idxs.into_iter().map(|i| CHARSET[i] as char).collect();
        s.trim().replace("  ", " ")
    })
}

/// One shard's worth of daemon state with a random population.
fn shard_state(clients: &[(u32, Vec<u16>)], lo: u16, hi: u16) -> AccessPoint {
    let mut ap = AccessPoint::with_aid_range(MacAddr::station(0), lo, hi).unwrap();
    for (idx, ports) in clients {
        let mac = MacAddr::station(1 + idx % 500);
        if ap.aid_of(mac).is_some() {
            continue;
        }
        if ap.associate(mac).is_err() {
            break;
        }
        if !ports.is_empty() {
            let take = ports.len().min(100);
            let msg = UdpPortMessage::new(mac, ap.bssid(), ports[..take].to_vec()).unwrap();
            ap.process_port_message(&msg, &mut ApCtx::untimed())
                .unwrap();
        }
    }
    ap
}

proptest! {
    #[test]
    fn ctrl_requests_round_trip(req in request_strategy()) {
        prop_assert_eq!(CtrlRequest::parse(&req.encode()).unwrap(), req);
    }

    #[test]
    fn ctrl_request_parse_never_panics(bytes in vec(any::<u8>(), 0..64)) {
        let _ = CtrlRequest::parse(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn ctrl_responses_round_trip(
        payload in payload_strategy(),
        code in code_strategy(),
        which in 0usize..4,
    ) {
        let resp = match which {
            0 => CtrlResponse::pong(),
            1 => CtrlResponse::Pong { version: payload },
            2 => CtrlResponse::Ok(payload),
            _ => CtrlResponse::Err { code, detail: payload },
        };
        prop_assert_eq!(CtrlResponse::parse(&resp.encode()).unwrap(), resp);
    }

    /// Every unknown-verb request maps to the stable
    /// `err:unknown-command` reply shape, and its encoding parses
    /// back to the same code — the scraping contract.
    #[test]
    fn unknown_verbs_reply_with_a_stable_code(verb in code_strategy()) {
        match CtrlRequest::parse(&verb) {
            // Known verbs parse; everything else must be UnknownCommand.
            Ok(_) => {}
            Err(hide_apd::CtrlParseError::UnknownCommand(got)) => {
                prop_assert_eq!(&got, &verb);
                let wire = CtrlResponse::err("unknown-command", got).encode();
                prop_assert!(wire.starts_with("err:unknown-command"));
                match CtrlResponse::parse(&wire).unwrap() {
                    CtrlResponse::Err { code, detail } => {
                        prop_assert_eq!(code, "unknown-command");
                        prop_assert_eq!(&detail, &verb);
                    }
                    other => return Err(TestCaseError::fail(format!("not an err: {other:?}"))),
                }
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected {e:?}"))),
        }
    }

    #[test]
    fn apd_snapshots_round_trip(
        populations in vec(vec((any::<u32>(), vec(any::<u16>(), 0..12)), 0..20), 1..4),
    ) {
        let cfg = ApdConfig::new().shards(populations.len());
        let shards: Vec<_> = populations
            .iter()
            .enumerate()
            .map(|(i, clients)| {
                let (lo, hi) = cfg.aid_range_of(i);
                shard_state(clients, lo, hi).snapshot()
            })
            .collect();
        let snap = ApdSnapshot::new(shards);
        let bytes = snap.to_bytes();
        let back = ApdSnapshot::parse(&bytes).unwrap();
        prop_assert_eq!(&back, &snap);
        // Canonical: serialization is a fixed point.
        prop_assert_eq!(back.to_bytes(), bytes);
        // And every shard restores into an AP that re-snapshots
        // identically.
        for shard in &snap.shards {
            let restored = AccessPoint::from_snapshot(shard).unwrap();
            prop_assert_eq!(restored.snapshot().to_bytes(), shard.to_bytes());
        }
    }

    #[test]
    fn apd_snapshot_parse_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        let _ = ApdSnapshot::parse(&bytes);
    }
}
