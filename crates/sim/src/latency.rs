//! Broadcast delivery latency.
//!
//! HIDE itself never delays a frame — the AP still delivers at the next
//! DTIM exactly as a standard AP would — but the knobs around it do:
//! a longer DTIM period batches delivery (saving energy, see the DTIM
//! ablation) at the cost of staleness, and service-discovery protocols
//! care about that staleness. This module measures the buffering
//! latency distribution: the time from a frame's arrival at the AP to
//! its transmission after the following DTIM beacon.

use hide_traces::record::Trace;
use hide_traces::stats::Cdf;

/// Summary of a delivery-latency distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// DTIM period the report was computed for.
    pub dtim_period: u8,
    /// Beacon interval in seconds.
    pub beacon_interval: f64,
    /// Mean buffering latency, seconds.
    pub mean_secs: f64,
    /// Median buffering latency, seconds.
    pub p50_secs: f64,
    /// 99th-percentile buffering latency, seconds.
    pub p99_secs: f64,
    /// Worst observed latency, seconds.
    pub max_secs: f64,
    /// Full latency CDF for plotting.
    pub cdf: Cdf,
}

/// Computes the buffering-latency distribution of delivering `trace`
/// through an AP with the given beacon interval and DTIM period,
/// modelling queueing within each delivery burst (frames go out back
/// to back at their airtimes).
///
/// # Panics
///
/// Panics if `beacon_interval` is not positive or `dtim_period` is
/// zero.
pub fn delivery_latency(trace: &Trace, beacon_interval: f64, dtim_period: u8) -> LatencyReport {
    assert!(beacon_interval > 0.0, "beacon interval must be positive");
    assert!(dtim_period > 0, "DTIM period must be positive");
    let dtim_interval = beacon_interval * dtim_period as f64;

    let mut cursor = 0.0f64;
    let mut latencies = Vec::with_capacity(trace.len());
    for f in &trace.frames {
        // First DTIM strictly after arrival, then queue behind earlier
        // deliveries still on air.
        let next_dtim = ((f.time / dtim_interval).floor() + 1.0) * dtim_interval;
        let tx_start = next_dtim.max(cursor);
        let tx_end = tx_start + f.airtime();
        latencies.push(tx_end - f.time);
        cursor = tx_end;
    }

    let cdf = Cdf::from_samples(latencies);
    LatencyReport {
        dtim_period,
        beacon_interval,
        mean_secs: cdf.mean(),
        p50_secs: cdf.quantile(0.5),
        p99_secs: cdf.quantile(0.99),
        max_secs: cdf.max(),
        cdf,
    }
}

/// Sweeps DTIM periods, producing one report per period.
pub fn latency_sweep(trace: &Trace, beacon_interval: f64, periods: &[u8]) -> Vec<LatencyReport> {
    periods
        .iter()
        .map(|&p| delivery_latency(trace, beacon_interval, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_traces::scenario::Scenario;

    const BI: f64 = 0.1024;

    #[test]
    fn latency_bounded_by_dtim_interval_when_uncongested() {
        // Light traffic: every frame waits at most one DTIM interval
        // plus its own airtime.
        let trace = Scenario::Starbucks.generate(600.0, 91);
        let report = delivery_latency(&trace, BI, 1);
        assert!(report.max_secs <= BI + 0.02, "max {}", report.max_secs);
        assert!(report.mean_secs > 0.0);
        assert!(report.p50_secs <= report.p99_secs);
        assert!(report.p99_secs <= report.max_secs);
    }

    #[test]
    fn latency_grows_with_dtim_period() {
        let trace = Scenario::CsDept.generate(600.0, 92);
        let sweep = latency_sweep(&trace, BI, &[1, 2, 3, 5]);
        for w in sweep.windows(2) {
            assert!(
                w[1].mean_secs > w[0].mean_secs,
                "period {} mean {} vs period {} mean {}",
                w[1].dtim_period,
                w[1].mean_secs,
                w[0].dtim_period,
                w[0].mean_secs
            );
        }
    }

    #[test]
    fn mean_latency_roughly_half_interval() {
        // Under DTIM=1 with Poisson-ish arrivals, mean buffering
        // latency is near half a beacon interval (plus airtime).
        let trace = Scenario::Wrl.generate(1800.0, 93);
        let report = delivery_latency(&trace, BI, 1);
        assert!(
            (report.mean_secs - BI / 2.0).abs() < BI / 2.0,
            "mean {}",
            report.mean_secs
        );
    }

    #[test]
    fn heavy_bursts_queue_behind_each_other() {
        // WML's densest bursts exceed one frame per beacon interval, so
        // queueing pushes p99 beyond the no-queue bound.
        let trace = Scenario::Wml.generate(900.0, 94);
        let report = delivery_latency(&trace, BI, 1);
        assert!(report.max_secs > BI, "max {}", report.max_secs);
    }

    #[test]
    #[should_panic(expected = "DTIM period")]
    fn zero_period_panics() {
        let trace = Scenario::Wrl.generate(10.0, 95);
        let _ = delivery_latency(&trace, BI, 0);
    }
}
