//! Sensitivity of the results to the model's fixed parameters.
//!
//! The paper adopts `τ = 1 s` (the WiFi-driver wakelock per received
//! frame) from its reference \[6\] and never varies it; the suspend and
//! resume costs come from two specific handsets. These sweeps quantify
//! how much the headline comparison depends on those choices — the
//! robustness questions a reviewer would ask.

use crate::solution::Solution;
use crate::SimulationBuilder;
use hide_energy::profile::DeviceProfile;
use hide_traces::record::Trace;

/// One point of a parameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityPoint {
    /// The swept parameter's value.
    pub value: f64,
    /// receive-all average power, mW.
    pub receive_all_mw: f64,
    /// client-side lower-bound average power, mW.
    pub client_side_mw: f64,
    /// HIDE:10% average power, mW.
    pub hide_mw: f64,
    /// HIDE:10% saving vs. receive-all.
    pub hide_saving: f64,
}

fn point(trace: &Trace, profile: DeviceProfile, value: f64) -> SensitivityPoint {
    let all = SimulationBuilder::new(trace, profile).run();
    let cs = SimulationBuilder::new(trace, profile)
        .solution(Solution::client_side_lower_bound())
        .run();
    let hide = SimulationBuilder::new(trace, profile)
        .solution(Solution::hide(0.10))
        .run();
    SensitivityPoint {
        value,
        receive_all_mw: all.energy.average_power_mw(),
        client_side_mw: cs.energy.average_power_mw(),
        hide_mw: hide.energy.average_power_mw(),
        hide_saving: hide.energy.saving_vs(&all.energy),
    }
}

/// Sweeps the per-frame wakelock duration `τ`.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn wakelock_sweep(
    trace: &Trace,
    base: DeviceProfile,
    taus_secs: &[f64],
) -> Vec<SensitivityPoint> {
    // Validate before fanning out so the panic carries its message
    // instead of surfacing as a worker-thread failure.
    for &tau in taus_secs {
        assert!(tau > 0.0, "wakelock duration must be positive");
    }
    hide_par::par_map(taus_secs, |&tau| {
        let profile = base.derive().wakelock_secs(tau).build();
        point(trace, profile, tau)
    })
}

/// Sweeps a multiplier on the suspend/resume *energies* (`E_rm`,
/// `E_sp`), interpolating between Nexus-One-like and worse-than-S4
/// state-transfer costs.
///
/// # Panics
///
/// Panics if any multiplier is non-positive.
pub fn state_cost_sweep(
    trace: &Trace,
    base: DeviceProfile,
    multipliers: &[f64],
) -> Vec<SensitivityPoint> {
    for &k in multipliers {
        assert!(k > 0.0, "multiplier must be positive");
    }
    hide_par::par_map(multipliers, |&k| {
        let profile = base
            .derive()
            .resume_energy(base.resume_energy * k)
            .suspend_energy(base.suspend_energy * k)
            .build();
        point(trace, profile, k)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_energy::profile::NEXUS_ONE;
    use hide_traces::scenario::Scenario;

    fn trace() -> Trace {
        Scenario::CsDept.generate(600.0, 101)
    }

    #[test]
    fn hide_wins_across_wakelock_durations() {
        // The headline conclusion must not hinge on τ = 1 s.
        let t = trace();
        let sweep = wakelock_sweep(&t, NEXUS_ONE, &[0.25, 0.5, 1.0, 2.0, 5.0]);
        for p in &sweep {
            assert!(
                p.hide_mw < p.receive_all_mw,
                "tau={}: HIDE {} vs receive-all {}",
                p.value,
                p.hide_mw,
                p.receive_all_mw
            );
            assert!(
                p.hide_saving > 0.2,
                "tau={}: saving {}",
                p.value,
                p.hide_saving
            );
        }
    }

    #[test]
    fn longer_wakelocks_raise_all_solutions() {
        let t = trace();
        let sweep = wakelock_sweep(&t, NEXUS_ONE, &[0.5, 1.0, 2.0]);
        for w in sweep.windows(2) {
            assert!(w[1].receive_all_mw >= w[0].receive_all_mw);
            assert!(w[1].hide_mw >= w[0].hide_mw);
        }
    }

    #[test]
    fn state_costs_hurt_client_side_most() {
        // As suspend/resume get pricier, the client-side solution —
        // which thrashes state transfers — degrades faster than HIDE.
        let t = trace();
        let sweep = state_cost_sweep(&t, NEXUS_ONE, &[1.0, 2.0, 4.0]);
        let cs_growth = sweep.last().unwrap().client_side_mw / sweep[0].client_side_mw;
        let hide_growth = sweep.last().unwrap().hide_mw / sweep[0].hide_mw;
        assert!(
            cs_growth > hide_growth,
            "client-side x{cs_growth:.2} vs HIDE x{hide_growth:.2}"
        );
        // receive-all barely notices: it rarely suspends on this trace.
        let all_growth = sweep.last().unwrap().receive_all_mw / sweep[0].receive_all_mw;
        assert!(all_growth < cs_growth);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tau_panics() {
        let t = trace();
        let _ = wakelock_sweep(&t, NEXUS_ONE, &[0.0]);
    }
}
