//! Experiment runners for the paper's figures.
//!
//! Each function reproduces the data behind one figure:
//!
//! * [`trace_volumes`] — Fig. 6 (CDFs of broadcast frames/second),
//! * [`energy_comparison`] — Figs. 7 and 8 (stacked average power per
//!   solution per trace),
//! * [`suspend_fractions`] — Fig. 9 (fraction of time in suspend mode),
//! * [`savings_summary`] — the headline savings ranges quoted in the
//!   abstract and conclusion.
//!
//! Every runner has a checked `try_*` twin taking a
//! [`Recorder`]: each (trace, solution) cell records into its own local
//! recorder, and the locals are folded back **in input order** after
//! the parallel map, so the merged metrics are byte-identical at any
//! `--jobs` count. The plain functions are thin panicking shims kept
//! for callers that know their traces are valid.

use crate::error::SimError;
use crate::simulation::SimulationBuilder;
use crate::solution::Solution;
use hide_energy::profile::DeviceProfile;
use hide_obs::Recorder;
use hide_traces::record::Trace;

/// The useful-frame percentages Figs. 7 and 8 sweep, in figure order.
pub const PAPER_FRACTIONS: [f64; 5] = [0.10, 0.08, 0.06, 0.04, 0.02];

/// One bar of Figs. 7/8: a solution's stacked average power.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyBar {
    /// Solution label (`receive-all`, `client-side`, `HIDE:10%`, …).
    pub label: String,
    /// `[Eb, Ef, Est, Ewl, Eo] / T` in milliwatts, figure stacking order.
    pub stacked_mw: [f64; 5],
    /// Total average power in milliwatts.
    pub total_mw: f64,
    /// Fraction of time in suspend mode (Fig. 9's metric).
    pub suspend_fraction: f64,
    /// Energy saving vs. the receive-all bar of the same scenario.
    pub saving_vs_receive_all: f64,
}

/// All bars for one trace (one sub-figure of Figs. 7/8).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioComparison {
    /// Scenario label.
    pub scenario: String,
    /// Device name.
    pub device: String,
    /// Bars in figure order: receive-all, client-side, HIDE at each
    /// fraction.
    pub bars: Vec<EnergyBar>,
}

impl ScenarioComparison {
    /// The bar with the given label, if present.
    pub fn bar(&self, label: &str) -> Option<&EnergyBar> {
        self.bars.iter().find(|b| b.label == label)
    }
}

/// Runs the Figs. 7/8 experiment: for every trace, simulate
/// receive-all, the client-side lower bound, and HIDE at each fraction.
///
/// The (trace, solution) cells are independent seeded simulations, so
/// they fan out over [`hide_par`]'s worker pool; results come back in
/// input order, making the output identical for any job count.
pub fn energy_comparison(
    profile: DeviceProfile,
    traces: &[Trace],
    fractions: &[f64],
) -> Vec<ScenarioComparison> {
    try_energy_comparison(profile, traces, fractions, &mut Recorder::new())
        .expect("traces produce valid timelines")
}

/// Checked, instrumented [`energy_comparison`]: every cell's metrics
/// land in `recorder` (merged in input order, so the recording is
/// byte-identical at any `--jobs` count).
///
/// # Errors
///
/// Returns [`SimError::Energy`] when a trace is degenerate.
pub fn try_energy_comparison(
    profile: DeviceProfile,
    traces: &[Trace],
    fractions: &[f64],
    recorder: &mut Recorder,
) -> Result<Vec<ScenarioComparison>, SimError> {
    let mut solutions = Vec::with_capacity(2 + fractions.len());
    solutions.push(Solution::ReceiveAll);
    solutions.push(Solution::client_side_lower_bound());
    solutions.extend(fractions.iter().map(|&f| Solution::hide(f)));

    let cells: Vec<(usize, Solution)> = traces
        .iter()
        .enumerate()
        .flat_map(|(ti, _)| solutions.iter().map(move |&s| (ti, s)))
        .collect();
    let runs = hide_par::par_map(&cells, |&(ti, solution)| {
        let mut local = Recorder::new();
        let result = SimulationBuilder::new(&traces[ti], profile)
            .solution(solution)
            .try_run_observed(&mut local);
        (result, local)
    });
    let mut results = Vec::with_capacity(runs.len());
    for (result, local) in runs {
        recorder.merge_from(&local);
        results.push(result?);
    }

    // Cells for one trace are contiguous; the receive-all cell leads
    // each chunk and anchors the per-scenario saving.
    Ok(results
        .chunks(solutions.len())
        .zip(traces)
        .map(|(chunk, trace)| {
            let baseline_total = chunk[0].energy.breakdown.total();
            let bars = chunk
                .iter()
                .map(|result| {
                    let d = result.energy.duration;
                    EnergyBar {
                        label: result.solution.label(),
                        stacked_mw: result.energy.breakdown.stacked_milliwatts(d),
                        total_mw: result.energy.average_power_mw(),
                        suspend_fraction: result.energy.suspend_fraction(),
                        saving_vs_receive_all: 1.0
                            - result.energy.breakdown.total() / baseline_total,
                    }
                })
                .collect();
            ScenarioComparison {
                scenario: trace.scenario.clone(),
                device: profile.name.to_string(),
                bars,
            }
        })
        .collect())
}

/// One scenario's suspend-time fractions (Fig. 9): receive-all,
/// client-side, HIDE:10%, HIDE:2%.
#[derive(Debug, Clone, PartialEq)]
pub struct SuspendFractionRow {
    /// Scenario label.
    pub scenario: String,
    /// `(solution label, fraction of time suspended)` in figure order.
    pub fractions: Vec<(String, f64)>,
}

/// Runs the Fig. 9 experiment, fanning the (trace, solution) cells out
/// in parallel like [`energy_comparison`].
pub fn suspend_fractions(profile: DeviceProfile, traces: &[Trace]) -> Vec<SuspendFractionRow> {
    try_suspend_fractions(profile, traces, &mut Recorder::new())
        .expect("traces produce valid timelines")
}

/// Checked, instrumented [`suspend_fractions`]: per-cell metrics merge
/// into `recorder` in input order.
///
/// # Errors
///
/// Returns [`SimError::Energy`] when a trace is degenerate.
pub fn try_suspend_fractions(
    profile: DeviceProfile,
    traces: &[Trace],
    recorder: &mut Recorder,
) -> Result<Vec<SuspendFractionRow>, SimError> {
    let solutions = [
        Solution::ReceiveAll,
        Solution::client_side_lower_bound(),
        Solution::hide(0.10),
        Solution::hide(0.02),
    ];
    let cells: Vec<(usize, Solution)> = traces
        .iter()
        .enumerate()
        .flat_map(|(ti, _)| solutions.iter().map(move |&s| (ti, s)))
        .collect();
    let runs = hide_par::par_map(&cells, |&(ti, s)| {
        let mut local = Recorder::new();
        let r = SimulationBuilder::new(&traces[ti], profile)
            .solution(s)
            .try_run_observed(&mut local);
        (r.map(|r| (s.label(), r.energy.suspend_fraction())), local)
    });
    let mut fractions = Vec::with_capacity(runs.len());
    for (row, local) in runs {
        recorder.merge_from(&local);
        fractions.push(row?);
    }
    Ok(fractions
        .chunks(solutions.len())
        .zip(traces)
        .map(|(chunk, trace)| SuspendFractionRow {
            scenario: trace.scenario.clone(),
            fractions: chunk.to_vec(),
        })
        .collect())
}

/// Per-trace volume statistics behind Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceVolume {
    /// Scenario label.
    pub scenario: String,
    /// Mean broadcast frames per second (the black square).
    pub mean_fps: f64,
    /// Frame count in the trace.
    pub frames: usize,
    /// Selected CDF points `(frames/sec, P)`.
    pub cdf_points: Vec<(f64, f64)>,
}

/// Computes the Fig. 6 data for each trace, one worker per trace.
pub fn trace_volumes(traces: &[Trace]) -> Vec<TraceVolume> {
    hide_par::par_map(traces, |t| {
        let cdf = t.fps_cdf();
        TraceVolume {
            scenario: t.scenario.clone(),
            mean_fps: t.mean_fps(),
            frames: t.len(),
            cdf_points: cdf.plot_points(25),
        }
    })
}

/// One row of the unicast-sensitivity extension experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct UnicastSensitivityRow {
    /// Unicast arrival rate, frames/second.
    pub unicast_rate: f64,
    /// receive-all average power, mW.
    pub receive_all_mw: f64,
    /// HIDE:10% average power, mW.
    pub hide_mw: f64,
    /// HIDE:10% saving vs. receive-all at this unicast load.
    pub saving: f64,
}

/// Extension experiment: how background unicast traffic (which wakes
/// the client under every solution) dilutes HIDE's savings.
pub fn unicast_sensitivity(
    profile: DeviceProfile,
    trace: &Trace,
    rates: &[f64],
) -> Vec<UnicastSensitivityRow> {
    try_unicast_sensitivity(profile, trace, rates, &mut Recorder::new())
        .expect("trace produces valid timelines")
}

/// Checked, instrumented [`unicast_sensitivity`]: per-rate metrics
/// merge into `recorder` in input order.
///
/// # Errors
///
/// Returns [`SimError::Energy`] when the trace is degenerate.
pub fn try_unicast_sensitivity(
    profile: DeviceProfile,
    trace: &Trace,
    rates: &[f64],
    recorder: &mut Recorder,
) -> Result<Vec<UnicastSensitivityRow>, SimError> {
    use hide_traces::unicast::UnicastTrace;
    let runs = hide_par::par_map(rates, |&rate| {
        let mut local = Recorder::new();
        let unicast = UnicastTrace::poisson(trace.duration, rate, 99);
        let row = (|| -> Result<UnicastSensitivityRow, SimError> {
            let all = SimulationBuilder::new(trace, profile)
                .unicast(&unicast)
                .try_run_observed(&mut local)?;
            let hide = SimulationBuilder::new(trace, profile)
                .solution(Solution::hide(0.10))
                .unicast(&unicast)
                .try_run_observed(&mut local)?;
            Ok(UnicastSensitivityRow {
                unicast_rate: rate,
                receive_all_mw: all.energy.average_power_mw(),
                hide_mw: hide.energy.average_power_mw(),
                saving: hide.energy.saving_vs(&all.energy),
            })
        })();
        (row, local)
    });
    let mut rows = Vec::with_capacity(runs.len());
    for (row, local) in runs {
        recorder.merge_from(&local);
        rows.push(row?);
    }
    Ok(rows)
}

/// The headline savings ranges quoted in the paper's abstract: min/max
/// HIDE saving vs. receive-all across traces, and the average extra
/// saving over the client-side solution.
#[derive(Debug, Clone, PartialEq)]
pub struct SavingsSummary {
    /// Device name.
    pub device: String,
    /// Useful fraction the summary is for.
    pub fraction: f64,
    /// Minimum saving vs. receive-all across traces.
    pub min_saving: f64,
    /// Maximum saving vs. receive-all across traces.
    pub max_saving: f64,
    /// Mean of (HIDE saving − client-side saving) across traces.
    pub mean_extra_vs_client_side: f64,
}

/// Summarizes a set of [`ScenarioComparison`]s at one HIDE fraction.
///
/// # Panics
///
/// Panics if `comparisons` lack the `receive-all`, `client-side` or
/// requested HIDE bars (they always exist when produced by
/// [`energy_comparison`] with that fraction included).
pub fn savings_summary(comparisons: &[ScenarioComparison], fraction: f64) -> SavingsSummary {
    try_savings_summary(comparisons, fraction).expect("required bars present")
}

/// Checked [`savings_summary`].
///
/// # Errors
///
/// Returns [`SimError::MissingBar`] when a comparison lacks the
/// `client-side` or requested HIDE bar.
pub fn try_savings_summary(
    comparisons: &[ScenarioComparison],
    fraction: f64,
) -> Result<SavingsSummary, SimError> {
    let label = Solution::hide(fraction).label();
    let mut min_saving = f64::INFINITY;
    let mut max_saving = f64::NEG_INFINITY;
    let mut extra_sum = 0.0;
    for c in comparisons {
        let hide = c.bar(&label).ok_or_else(|| SimError::MissingBar {
            label: label.clone(),
        })?;
        let cs = c.bar("client-side").ok_or_else(|| SimError::MissingBar {
            label: "client-side".to_string(),
        })?;
        min_saving = min_saving.min(hide.saving_vs_receive_all);
        max_saving = max_saving.max(hide.saving_vs_receive_all);
        extra_sum += hide.saving_vs_receive_all - cs.saving_vs_receive_all;
    }
    Ok(SavingsSummary {
        device: comparisons
            .first()
            .map(|c| c.device.clone())
            .unwrap_or_default(),
        fraction,
        min_saving,
        max_saving,
        mean_extra_vs_client_side: extra_sum / comparisons.len().max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_energy::profile::NEXUS_ONE;
    use hide_traces::scenario::Scenario;

    fn traces() -> Vec<Trace> {
        Scenario::generate_all(600.0, 31)
    }

    #[test]
    fn energy_comparison_has_expected_bars() {
        let traces = traces();
        let comparisons = energy_comparison(NEXUS_ONE, &traces, &PAPER_FRACTIONS);
        assert_eq!(comparisons.len(), 5);
        for c in &comparisons {
            assert_eq!(c.bars.len(), 7);
            assert_eq!(c.bars[0].label, "receive-all");
            assert_eq!(c.bars[1].label, "client-side");
            assert_eq!(c.bars[2].label, "HIDE:10%");
            assert_eq!(c.bars[6].label, "HIDE:2%");
            // Every HIDE bar must beat receive-all.
            for bar in &c.bars[2..] {
                assert!(
                    bar.saving_vs_receive_all > 0.0,
                    "{} {} saved nothing",
                    c.scenario,
                    bar.label
                );
            }
        }
    }

    #[test]
    fn stacked_components_sum_to_total() {
        let traces = traces();
        let comparisons = energy_comparison(NEXUS_ONE, &traces[..1], &[0.10]);
        for bar in &comparisons[0].bars {
            let sum: f64 = bar.stacked_mw.iter().sum();
            assert!((sum - bar.total_mw).abs() < 1e-9);
        }
    }

    #[test]
    fn suspend_fractions_ordered_by_solution() {
        let traces = traces();
        let rows = suspend_fractions(NEXUS_ONE, &traces);
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert_eq!(row.fractions.len(), 4);
            let get = |label: &str| {
                row.fractions
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            // HIDE:2% suspends at least as much as HIDE:10%, which beats
            // receive-all.
            assert!(get("HIDE:2%") >= get("HIDE:10%") - 1e-9, "{}", row.scenario);
            assert!(get("HIDE:10%") > get("receive-all"), "{}", row.scenario);
            for (_, v) in &row.fractions {
                assert!((0.0..=1.0).contains(v));
            }
        }
    }

    #[test]
    fn trace_volumes_report_means() {
        let traces = traces();
        let vols = trace_volumes(&traces);
        assert_eq!(vols.len(), 5);
        for v in &vols {
            assert!(v.mean_fps > 0.0);
            assert!(!v.cdf_points.is_empty());
            let last = v.cdf_points.last().unwrap();
            assert!((last.1 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn savings_summary_ranges() {
        let traces = traces();
        let comparisons = energy_comparison(NEXUS_ONE, &traces, &[0.10, 0.02]);
        let s10 = savings_summary(&comparisons, 0.10);
        let s2 = savings_summary(&comparisons, 0.02);
        assert!(s10.min_saving <= s10.max_saving);
        assert!(s10.min_saving > 0.0);
        assert!(s2.min_saving >= s10.min_saving - 0.05);
        assert!(s2.max_saving > s10.max_saving - 0.05);
    }
}
