//! Protocol-driven simulation: runs the *actual* HIDE implementation —
//! [`hide_core::ap::AccessPoint`] and [`hide_core::client::HideClient`],
//! real encoded beacons included — over a trace, beacon interval by
//! beacon interval, and feeds the resulting reception timeline through
//! the energy model.
//!
//! This is the ground truth the fast marking-based
//! [`crate::SimulationBuilder`] is validated against: both must agree
//! on which DTIM intervals wake the client and (closely) on energy.

use crate::solution::Solution;
use hide_core::ap::{AccessPoint, ApCtx, BeaconMode};
use hide_core::client::{HideClient, OpenPortRegistry, WakeDecision};
use hide_core::CoreError;
use hide_energy::profile::DeviceProfile;
use hide_energy::timeline::{Overhead, Timeline, TimelineFrame};
use hide_energy::EnergyReport;
use hide_obs::{
    Counter, MetricsSink, NoopSink, NoopTrace, TraceEventKind, TraceSink, WakeCause, WakeClass,
};
use hide_policy::WakePolicy;
use hide_traces::record::Trace;
use hide_traces::useful::Usefulness;
use hide_wifi::frame::{Beacon, BroadcastDataFrame};
use hide_wifi::mac::MacAddr;
use hide_wifi::phy::{self, DataRate};
use hide_wifi::udp::UdpDatagram;

/// Per-run protocol statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Beacons the AP transmitted.
    pub beacons: u64,
    /// DTIM intervals in which the client's BTIM bit was set.
    pub wake_intervals: u64,
    /// Broadcast frames the AP delivered while our client listened.
    pub frames_delivered: u64,
    /// Delivered frames an application on the client consumed.
    pub frames_consumed: u64,
    /// UDP Port Messages the client sent.
    pub port_messages: u64,
    /// Total BTIM bytes across all transmitted beacons.
    pub btim_bytes: u64,
}

/// Outcome of a protocol-driven run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolOutcome {
    /// Energy report computed from the protocol-derived timeline.
    pub energy: EnergyReport,
    /// Protocol statistics.
    pub stats: ProtocolStats,
}

/// Drives the real protocol over a trace.
#[derive(Debug, Clone)]
pub struct ProtocolSimulation<'a> {
    trace: &'a Trace,
    profile: DeviceProfile,
    useful_fraction: f64,
    sync_interval_secs: f64,
    beacon_interval: f64,
    policy: WakePolicy,
}

impl<'a> ProtocolSimulation<'a> {
    /// Creates a protocol simulation at the given useful fraction
    /// (the client binds the same port set the marking-based simulator
    /// would choose).
    pub fn new(trace: &'a Trace, profile: DeviceProfile, useful_fraction: f64) -> Self {
        ProtocolSimulation {
            trace,
            profile,
            useful_fraction,
            sync_interval_secs: 10.0,
            beacon_interval: hide_wifi::timing::TIME_UNIT_SECS * 100.0,
            policy: WakePolicy::Hide,
        }
    }

    /// Sets the UDP Port Message interval.
    pub fn sync_interval_secs(mut self, secs: f64) -> Self {
        self.sync_interval_secs = secs;
        self
    }

    /// Sets the wake policy the client runs. [`WakePolicy::Hide`] (the
    /// default) drives the real BTIM protocol; the other policies run
    /// the AP TIM-only (no BTIM bytes, no UDP Port Messages) and make
    /// the wake decision from the buffered burst alone —
    /// [`WakePolicy::LegacyPsm`] wakes whenever the AP delivers, while
    /// [`WakePolicy::ScheduledWake`] wakes only inside its negotiated
    /// service window and lets the AP buffer across the rest.
    pub fn policy(mut self, policy: WakePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Runs the protocol and evaluates the energy model on the outcome.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors ([`CoreError`]); none occur for valid
    /// traces.
    pub fn run(&self) -> Result<ProtocolOutcome, CoreError> {
        self.run_observed(&mut NoopSink)
    }

    /// [`run`](Self::run), streaming metrics into `sink`: per-beacon
    /// BTIM footprint, AP delivery counts, port-table traffic and the
    /// energy-model counters.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors ([`CoreError`]); none occur for valid
    /// traces.
    pub fn run_observed<S: MetricsSink>(&self, sink: &mut S) -> Result<ProtocolOutcome, CoreError> {
        self.run_traced(sink, &mut NoopTrace)
    }

    /// [`run_observed`](Self::run_observed) with event tracing: every
    /// DTIM boundary, emitted BTIM, and wake decision streams into
    /// `trace` at simulation time. All protocol wakes here are proper
    /// by construction (a single client whose refreshes are never
    /// lost), so every `WakeDecision` carries class `Proper`; the frame
    /// id is the running delivered-frame count of the first consumed
    /// frame. The untraced entry points delegate here with no-op sinks,
    /// so all three compile to the same hot path.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors ([`CoreError`]); none occur for valid
    /// traces.
    pub fn run_traced<S: MetricsSink, T: TraceSink>(
        &self,
        sink: &mut S,
        trace: &mut T,
    ) -> Result<ProtocolOutcome, CoreError> {
        let tau = self.profile.wakelock_secs;
        let marking = Usefulness::port_based(self.trace, self.useful_fraction);
        let hide_mode = self.policy.uses_port_refresh();

        // --- set up AP and client with the real handshake ---
        let mut ap = AccessPoint::new(MacAddr::station(0));
        if !self.policy.ap_btim_enabled() {
            ap.set_beacon_mode(BeaconMode::TimOnly);
        }
        let mut registry = OpenPortRegistry::new();
        for &port in marking.useful_ports() {
            registry.bind(port, [0, 0, 0, 0])?;
        }
        let mut client = HideClient::new(MacAddr::station(1), registry);
        client.set_aid(ap.associate(client.mac())?);
        client.set_bssid(ap.bssid());
        let sync = |client: &mut HideClient, ap: &mut AccessPoint| -> Result<(), CoreError> {
            let msg = client.prepare_suspend()?;
            let ack = ap.process_port_message(&msg, &mut ApCtx::untimed())?;
            client.handle_ack(&ack)
        };
        if hide_mode {
            sync(&mut client, &mut ap)?;
        }

        // --- walk the beacon schedule ---
        let intervals = (self.trace.duration / self.beacon_interval).ceil() as u64;
        let mut frame_iter = self.trace.frames.iter().peekable();
        let mut timeline_frames: Vec<TimelineFrame> = Vec::new();
        let mut stats = ProtocolStats {
            beacons: 0,
            wake_intervals: 0,
            frames_delivered: 0,
            frames_consumed: 0,
            port_messages: u64::from(hide_mode),
            btim_bytes: 0,
        };
        let mut next_sync = self.sync_interval_secs;

        for i in 0..intervals {
            let interval_start = i as f64 * self.beacon_interval;
            let interval_end = interval_start + self.beacon_interval;

            // Frames arriving at the AP during this interval get
            // buffered (we treat trace times as AP arrival times here).
            while let Some(f) = frame_iter.peek() {
                if f.time >= interval_end {
                    break;
                }
                let f = frame_iter.next().expect("peeked");
                let datagram = UdpDatagram::new(
                    [10, 0, 0, 2],
                    [255; 4],
                    4000,
                    f.dst_port,
                    vec![0; (f.len_bytes as usize).saturating_sub(60)],
                );
                ap.enqueue_broadcast(BroadcastDataFrame::new(ap.bssid(), datagram, false));
            }

            // DTIM beacon at the end of the interval, over real bytes.
            let beacon_bytes = ap
                .emit_dtim_beacon(
                    i,
                    &mut ApCtx::untimed()
                        .with_metrics(&mut *sink)
                        .with_trace(&mut *trace),
                )
                .to_bytes();
            stats.beacons += 1;
            let beacon = Beacon::parse(&beacon_bytes).map_err(CoreError::Wifi)?;
            stats.btim_bytes += beacon.btim().map(|b| b.body_len() as u64 + 2).unwrap_or(0);

            if !hide_mode {
                // Non-HIDE policies never consult the BTIM: the wake
                // decision is burst-presence (legacy PSM) optionally
                // gated by the negotiated window (scheduled wake). An
                // out-of-window DTIM leaves the AP buffering, so the
                // burst is deferred to the next window, not dropped.
                let in_window = self.policy.schedule().is_none_or(|s| s.in_window(i));
                if !in_window {
                    continue;
                }
                let delivered = ap.drain_broadcasts(&mut ApCtx::untimed().with_metrics(&mut *sink));
                if delivered.is_empty() {
                    continue;
                }
                stats.wake_intervals += 1;
                // Receive-all semantics: the radio hears the entire
                // burst; the app consumes only its useful frames.
                let mut t = interval_end;
                for frame in &delivered {
                    stats.frames_delivered += 1;
                    if client.consumes(frame) {
                        stats.frames_consumed += 1;
                    }
                    let airtime = phy::airtime_of_total_bytes(frame.len_bytes(), DataRate::R1M);
                    if t <= self.trace.duration {
                        timeline_frames.push(TimelineFrame {
                            start: t,
                            airtime,
                            more_data: false,
                            hold: tau,
                        });
                    }
                    t += airtime;
                }
                if trace.is_enabled() {
                    trace.emit(
                        interval_end,
                        TraceEventKind::WakeDecision {
                            aid: client.aid().map(|a| a.value()).unwrap_or(0),
                            port: 0,
                            frame_id: stats.frames_delivered,
                            class: WakeClass::Legacy,
                            cause: WakeCause::Proper,
                        },
                    );
                }
                continue;
            }

            let decision = client.handle_beacon(&beacon)?;
            let delivered = ap.drain_broadcasts(&mut ApCtx::untimed().with_metrics(&mut *sink));

            if decision == WakeDecision::WakeForBroadcast {
                stats.wake_intervals += 1;
                // The client's radio receives its useful frames from the
                // delivery burst, back to back after the beacon (model
                // accounting follows the paper: only useful frames are
                // charged, Eq. 1).
                let mut t = interval_end;
                let mut first_consumed: Option<(u16, u64)> = None;
                for frame in &delivered {
                    let consumed = client.consumes(frame);
                    stats.frames_delivered += 1;
                    if consumed {
                        stats.frames_consumed += 1;
                        if trace.is_enabled() && first_consumed.is_none() {
                            first_consumed =
                                Some((frame.udp_dst_port().unwrap_or(0), stats.frames_delivered));
                        }
                        let airtime = phy::airtime_of_total_bytes(frame.len_bytes(), DataRate::R1M);
                        if t <= self.trace.duration {
                            timeline_frames.push(TimelineFrame {
                                start: t,
                                airtime,
                                more_data: false,
                                hold: tau,
                            });
                        }
                        t += airtime;
                    }
                }
                if trace.is_enabled() {
                    let (port, frame_id) = first_consumed.unwrap_or((0, 0));
                    trace.emit(
                        interval_end,
                        TraceEventKind::WakeDecision {
                            aid: client.aid().map(|a| a.value()).unwrap_or(0),
                            port,
                            frame_id,
                            class: WakeClass::Proper,
                            cause: WakeCause::Proper,
                        },
                    );
                }
                // Awake now; re-sync before suspending again if due.
                client.resume();
                if interval_end >= next_sync {
                    sync(&mut client, &mut ap)?;
                    stats.port_messages += 1;
                    next_sync += self.sync_interval_secs;
                }
            }
        }

        // A scheduled-wake client deep-sleeps through out-of-window
        // beacons, so the energy model's beacon cadence stretches by
        // the schedule's interval:period ratio. Hide and PSM hear every
        // beacon.
        let heard_beacon_interval = match self.policy.schedule() {
            Some(s) => {
                self.beacon_interval * f64::from(s.interval_dtims) / f64::from(s.period_dtims)
            }
            None => self.beacon_interval,
        };
        let mut timeline =
            Timeline::new(self.trace.duration, heard_beacon_interval, timeline_frames)
                .expect("protocol timeline is valid");
        timeline.recompute_more_data();

        let msg_len = 24 + 2 + 2 * marking.useful_ports().len().min(100);
        let overhead = Overhead {
            btim_bytes_total: stats.btim_bytes as f64,
            port_messages: stats.port_messages,
            port_message_airtime: phy::airtime_of_total_bytes(msg_len, DataRate::R1M),
        };
        ap.port_table().observe_into(sink);
        sink.add(Counter::PortMessages, stats.port_messages);
        let energy = hide_energy::evaluate_observed(&self.profile, &timeline, &overhead, sink);
        Ok(ProtocolOutcome { energy, stats })
    }

    /// The marking-based simulator configured identically, for
    /// cross-validation.
    pub fn marking_equivalent(&self) -> crate::SimulationBuilder<'a> {
        crate::SimulationBuilder::new(self.trace, self.profile)
            .solution(Solution::hide(self.useful_fraction))
            .sync_interval_secs(self.sync_interval_secs)
            .dtim_period(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_energy::profile::NEXUS_ONE;
    use hide_traces::scenario::Scenario;

    #[test]
    fn protocol_run_completes_with_sane_stats() {
        let trace = Scenario::CsDept.generate(300.0, 81);
        let outcome = ProtocolSimulation::new(&trace, NEXUS_ONE, 0.10)
            .run()
            .unwrap();
        assert!(outcome.stats.beacons >= 2929); // 300 s / 102.4 ms
        assert!(outcome.stats.wake_intervals > 0);
        assert!(outcome.stats.frames_consumed > 0);
        assert!(outcome.stats.frames_delivered >= outcome.stats.frames_consumed);
        assert!(outcome.stats.port_messages >= 1);
        assert!(outcome.energy.breakdown.total() > 0.0);
    }

    #[test]
    fn protocol_agrees_with_marking_simulator() {
        // The ground-truth protocol run and the fast marking-based
        // simulator must agree on the consumed-frame count exactly and
        // on energy within a small tolerance (delivery times differ by
        // at most one beacon interval per frame).
        let trace = Scenario::Starbucks.generate(600.0, 83);
        let protocol = ProtocolSimulation::new(&trace, NEXUS_ONE, 0.10);
        let outcome = protocol.run().unwrap();
        let marked = protocol.marking_equivalent().run();

        assert_eq!(
            outcome.stats.frames_consumed as usize, marked.received_frames,
            "consumed-frame counts diverge"
        );
        let a = outcome.energy.breakdown.total();
        let b = marked.energy.breakdown.total();
        assert!((a - b).abs() / b < 0.10, "protocol {a} J vs marking {b} J");
        let sa = outcome.energy.suspend_fraction();
        let sb = marked.energy.suspend_fraction();
        assert!((sa - sb).abs() < 0.05, "suspend {sa} vs {sb}");
    }

    #[test]
    fn zero_useful_fraction_never_wakes() {
        let trace = Scenario::Wrl.generate(200.0, 85);
        let outcome = ProtocolSimulation::new(&trace, NEXUS_ONE, 0.0)
            .run()
            .unwrap();
        assert_eq!(outcome.stats.wake_intervals, 0);
        assert_eq!(outcome.stats.frames_consumed, 0);
        assert!(outcome.energy.suspend_fraction() > 0.95);
    }

    #[test]
    fn observed_run_matches_plain_and_records_protocol_metrics() {
        use hide_obs::{Counter, Recorder};
        let trace = Scenario::Starbucks.generate(120.0, 89);
        let sim = ProtocolSimulation::new(&trace, NEXUS_ONE, 0.10);
        let plain = sim.run().unwrap();
        let mut rec = Recorder::new();
        let observed = sim.run_observed(&mut rec).unwrap();
        assert_eq!(plain, observed);
        assert_eq!(rec.counter(Counter::BtimBeacons), observed.stats.beacons);
        assert_eq!(rec.counter(Counter::BtimBytes), observed.stats.btim_bytes);
        // The AP drains its buffer every DTIM regardless of whether our
        // client is awake, so the AP-side count is a superset of the
        // frames our client saw.
        assert!(rec.counter(Counter::ApFramesDelivered) >= observed.stats.frames_delivered);
        assert_eq!(
            rec.counter(Counter::PortMessages),
            observed.stats.port_messages
        );
        assert_eq!(rec.counter(Counter::EnergyEvals), 1);
        assert!(rec.counter(Counter::PortLookups) > 0);
    }

    #[test]
    fn psm_never_beats_hide_and_carries_no_hide_overhead() {
        // Legacy PSM wakes for every buffered burst and hears the whole
        // thing, so on any traffic-bearing trace it spends at least as
        // much as HIDE — while transmitting zero port messages and
        // hearing zero BTIM bytes.
        use hide_policy::WakePolicy;
        let trace = Scenario::Starbucks.generate(300.0, 91);
        let base = ProtocolSimulation::new(&trace, NEXUS_ONE, 0.10);
        let hide = base.clone().run().unwrap();
        let psm = base.policy(WakePolicy::LegacyPsm).run().unwrap();
        assert_eq!(psm.stats.port_messages, 0);
        assert_eq!(psm.stats.btim_bytes, 0);
        assert!(psm.stats.wake_intervals >= hide.stats.wake_intervals);
        assert!(psm.stats.frames_delivered > psm.stats.frames_consumed);
        assert!(
            psm.energy.breakdown.total() >= hide.energy.breakdown.total(),
            "psm {} J vs hide {} J",
            psm.energy.breakdown.total(),
            hide.energy.breakdown.total()
        );
    }

    #[test]
    fn scheduled_wake_defers_bursts_into_windows() {
        // A 1-in-8 schedule wakes in at most 1/8 of the DTIMs, and the
        // AP buffers across closed windows, so every delivered frame
        // still arrives (at the next open window).
        use hide_policy::{ScheduleConfig, WakePolicy};
        let trace = Scenario::Starbucks.generate(300.0, 91);
        let base = ProtocolSimulation::new(&trace, NEXUS_ONE, 0.10);
        let psm = base.clone().policy(WakePolicy::LegacyPsm).run().unwrap();
        let sched = base
            .policy(WakePolicy::ScheduledWake(ScheduleConfig {
                interval_dtims: 8,
                period_dtims: 1,
            }))
            .run()
            .unwrap();
        assert!(sched.stats.wake_intervals <= sched.stats.beacons / 8 + 1);
        assert!(sched.stats.wake_intervals < psm.stats.wake_intervals);
        // Buffering across windows preserves delivery.
        assert_eq!(sched.stats.frames_delivered, psm.stats.frames_delivered);
        assert_eq!(sched.stats.btim_bytes, 0);
        // Fewer wake cycles and 1/8 the heard beacons: scheduled wake
        // undercuts receive-all PSM.
        assert!(sched.energy.breakdown.total() < psm.energy.breakdown.total());
    }

    #[test]
    fn btim_bytes_accumulate_per_beacon() {
        let trace = Scenario::Starbucks.generate(60.0, 87);
        let outcome = ProtocolSimulation::new(&trace, NEXUS_ONE, 0.10)
            .run()
            .unwrap();
        // Every beacon carries at least the 4-byte empty BTIM.
        assert!(outcome.stats.btim_bytes >= outcome.stats.beacons * 4);
    }
}
