//! Multi-client network simulation: one AP, many heterogeneous
//! clients, partial HIDE adoption.
//!
//! The paper's Figs. 7–9 evaluate a single client against a trace; this
//! module scales that out to a whole BSS, the setting its overhead
//! analysis (Figs. 10–12) assumes: `N` clients, a fraction `p` of them
//! HIDE-enabled, each with its own useful-port set. It reports
//! per-client and aggregate energy, the AP-side hash-table load, and
//! the aggregate port-message airtime (the quantity behind Eq. 21).

use crate::simulation::{MarkingStrategy, SimulationBuilder, SimulationResult};
use crate::solution::Solution;
use hide_energy::profile::DeviceProfile;
use hide_traces::record::Trace;
use hide_wifi::frame::UdpPortMessage;
use hide_wifi::mac::MacAddr;
use hide_wifi::phy::{self, DataRate};

/// One client in the simulated BSS.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSpec {
    /// Display name.
    pub name: String,
    /// Whether the client runs HIDE (`false` = legacy receive-all).
    pub hide_enabled: bool,
    /// Target fraction of broadcast frames useful to this client.
    pub useful_fraction: f64,
    /// Seed choosing which ports make up that fraction.
    pub seed: u64,
}

/// Builds a fleet of `n` clients with `adoption` of them HIDE-enabled,
/// useful fractions cycling through the paper's sweep values.
///
/// `adoption` is clamped to `[0, 1]` (NaN counts as 0), so an
/// out-of-range sweep value can never mislabel the population.
pub fn fleet(n: usize, adoption: f64, base_seed: u64) -> Vec<ClientSpec> {
    let fractions = [0.10, 0.08, 0.06, 0.04, 0.02];
    let adoption = if adoption.is_nan() {
        0.0
    } else {
        adoption.clamp(0.0, 1.0)
    };
    let hide_count = (n as f64 * adoption).round() as usize;
    (0..n)
        .map(|i| ClientSpec {
            name: format!("client-{i}"),
            hide_enabled: i < hide_count,
            useful_fraction: fractions[i % fractions.len()],
            seed: base_seed.wrapping_add(i as u64),
        })
        .collect()
}

/// Outcome for one client.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutcome {
    /// The spec this outcome belongs to.
    pub spec: ClientSpec,
    /// The client's simulation result.
    pub result: SimulationResult,
    /// Saving vs. what this client would burn with receive-all.
    pub saving: f64,
}

/// Aggregate outcome of a network simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkResult {
    /// Per-client outcomes, in spec order.
    pub clients: Vec<ClientOutcome>,
    /// Sum of all clients' average power, milliwatts.
    pub total_power_mw: f64,
    /// Total power if every client ran receive-all, milliwatts.
    pub baseline_power_mw: f64,
    /// Fleet-wide energy saving.
    pub fleet_saving: f64,
    /// UDP Port Messages per second across the BSS (`n_u` of Eq. 21).
    pub port_messages_per_sec: f64,
    /// Fraction of airtime consumed by port messages.
    pub port_message_airtime_share: f64,
}

/// Configures a BSS-level simulation over one trace.
#[derive(Debug, Clone)]
pub struct NetworkSimulation<'a> {
    trace: &'a Trace,
    profile: DeviceProfile,
    clients: Vec<ClientSpec>,
    sync_interval_secs: f64,
}

impl<'a> NetworkSimulation<'a> {
    /// Creates a network simulation.
    pub fn new(trace: &'a Trace, profile: DeviceProfile, clients: Vec<ClientSpec>) -> Self {
        NetworkSimulation {
            trace,
            profile,
            clients,
            sync_interval_secs: 10.0,
        }
    }

    /// Sets the UDP Port Message interval for every HIDE client.
    pub fn sync_interval_secs(mut self, secs: f64) -> Self {
        self.sync_interval_secs = secs;
        self
    }

    /// Runs every client against the trace. Clients are independent,
    /// so they fan out over [`hide_par`]'s worker pool; the shared
    /// receive-all baseline (identical for every client) is computed
    /// once up front instead of once per client.
    pub fn run(&self) -> NetworkResult {
        let span = self.clients.len().max(1) as u16;
        let baseline = SimulationBuilder::new(self.trace, self.profile)
            .network_aid_span(span)
            .run();

        let results = hide_par::par_map(&self.clients, |spec| {
            if spec.hide_enabled {
                SimulationBuilder::new(self.trace, self.profile)
                    .solution(Solution::hide(spec.useful_fraction))
                    .marking(MarkingStrategy::PortBasedSeeded { seed: spec.seed })
                    .sync_interval_secs(self.sync_interval_secs)
                    .network_aid_span(span)
                    .run()
            } else {
                baseline.clone()
            }
        });

        let mut outcomes = Vec::with_capacity(self.clients.len());
        let mut total = 0.0;
        let mut baseline_total = 0.0;
        let mut hide_clients = 0u32;
        for (spec, result) in self.clients.iter().zip(results) {
            if spec.hide_enabled {
                hide_clients += 1;
            }
            total += result.energy.average_power_mw();
            baseline_total += baseline.energy.average_power_mw();
            let saving = result.energy.saving_vs(&baseline.energy);
            outcomes.push(ClientOutcome {
                spec: spec.clone(),
                result,
                saving,
            });
        }

        // Aggregate port-message load (Eq. 21 with p implied by specs).
        let msgs_per_sec = hide_clients as f64 / self.sync_interval_secs;
        let msg = UdpPortMessage::new(
            MacAddr::station(1),
            MacAddr::station(0),
            (0..100u16).map(|i| 1024 + i),
        )
        .expect("within element limit");
        let msg_airtime = phy::airtime_of_total_bytes(msg.len_bytes(), DataRate::R1M);

        NetworkResult {
            clients: outcomes,
            total_power_mw: total,
            baseline_power_mw: baseline_total,
            fleet_saving: if baseline_total > 0.0 {
                1.0 - total / baseline_total
            } else {
                0.0
            },
            port_messages_per_sec: msgs_per_sec,
            port_message_airtime_share: msgs_per_sec * msg_airtime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_energy::profile::NEXUS_ONE;
    use hide_traces::scenario::Scenario;

    fn trace() -> Trace {
        Scenario::CsDept.generate(300.0, 61)
    }

    #[test]
    fn fleet_builder_respects_adoption() {
        let f = fleet(10, 0.5, 1);
        assert_eq!(f.len(), 10);
        assert_eq!(f.iter().filter(|c| c.hide_enabled).count(), 5);
        let g = fleet(10, 1.0, 1);
        assert!(g.iter().all(|c| c.hide_enabled));
    }

    #[test]
    fn fleet_clamps_out_of_range_adoption() {
        // Regression: adoption > 1 used to yield hide_count > n, which
        // marked every client HIDE while claiming a different fraction.
        let over = fleet(10, 1.5, 1);
        assert_eq!(over.iter().filter(|c| c.hide_enabled).count(), 10);
        let under = fleet(10, -0.5, 1);
        assert_eq!(under.iter().filter(|c| c.hide_enabled).count(), 0);
        let nan = fleet(10, f64::NAN, 1);
        assert_eq!(nan.iter().filter(|c| c.hide_enabled).count(), 0);
        // In-range values are untouched.
        let half = fleet(10, 0.5, 1);
        assert_eq!(half.iter().filter(|c| c.hide_enabled).count(), 5);
    }

    #[test]
    fn full_adoption_saves_fleet_energy() {
        let t = trace();
        let result = NetworkSimulation::new(&t, NEXUS_ONE, fleet(8, 1.0, 3)).run();
        assert_eq!(result.clients.len(), 8);
        assert!(result.fleet_saving > 0.3, "saving {}", result.fleet_saving);
        assert!(result.total_power_mw < result.baseline_power_mw);
        for c in &result.clients {
            assert!(c.saving > 0.0, "{} saved nothing", c.spec.name);
        }
    }

    #[test]
    fn zero_adoption_saves_nothing() {
        let t = trace();
        let result = NetworkSimulation::new(&t, NEXUS_ONE, fleet(4, 0.0, 3)).run();
        assert!(result.fleet_saving.abs() < 1e-9);
        assert_eq!(result.port_messages_per_sec, 0.0);
    }

    #[test]
    fn saving_scales_with_adoption() {
        let t = trace();
        let run = |p: f64| {
            NetworkSimulation::new(&t, NEXUS_ONE, fleet(10, p, 3))
                .run()
                .fleet_saving
        };
        let half = run(0.5);
        let full = run(1.0);
        assert!(full > half, "full {full} vs half {half}");
    }

    #[test]
    fn distinct_seeds_give_distinct_port_sets() {
        let t = trace();
        let result = NetworkSimulation::new(&t, NEXUS_ONE, fleet(5, 1.0, 3)).run();
        let counts: Vec<usize> = result
            .clients
            .iter()
            .map(|c| c.result.received_frames)
            .collect();
        // Not all clients should receive an identical frame subset.
        assert!(counts.windows(2).any(|w| w[0] != w[1]), "{counts:?}");
    }

    #[test]
    fn port_message_airtime_share_is_tiny() {
        let t = trace();
        let result = NetworkSimulation::new(&t, NEXUS_ONE, fleet(50, 0.75, 3)).run();
        // ~3.75 msgs/s * ~2 ms each: well under 1% of airtime.
        assert!(result.port_message_airtime_share < 0.01);
        assert!((result.port_messages_per_sec - 3.8).abs() < 0.2);
    }
}
