//! Trace-driven simulation of broadcast-traffic handling
//! (Section VI.A of the HIDE paper).
//!
//! Replays a broadcast trace against one of three solutions and feeds
//! the resulting reception timeline through the Section-IV energy
//! model:
//!
//! * **receive-all** — the stock smartphone: every broadcast frame is
//!   received and holds a 1-second WiFi wakelock;
//! * **client-side** — the driver-filtering baseline of the paper's reference \[6\]:
//!   every frame is still received, but useless frames are dropped and
//!   the system returns to suspend immediately (its *lower bound*
//!   charges no wakelock time for them);
//! * **HIDE** — useless frames never reach the client; only useful
//!   frames are received and wake the device, at the cost of UDP Port
//!   Message transmissions and BTIM bytes in every beacon.
//!
//! # Example
//!
//! ```
//! use hide::prelude::*;
//!
//! let trace = Scenario::Starbucks.generate(300.0, 1);
//! let hide = SimulationBuilder::new(&trace, NEXUS_ONE)
//!     .solution(Solution::hide(0.10))
//!     .run();
//! let all = SimulationBuilder::new(&trace, NEXUS_ONE)
//!     .solution(Solution::ReceiveAll)
//!     .run();
//! assert!(hide.energy.breakdown.total() < all.energy.breakdown.total());
//! assert!(hide.energy.suspend_fraction() > all.energy.suspend_fraction());
//! ```
//!
//! To collect metrics while running, pass a [`hide_obs::Recorder`] to
//! the `try_run_observed`/`try_*` experiment variants; see the
//! [`experiment`] module docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod experiment;
pub mod latency;
pub mod network;
pub mod protocol_sim;
pub mod reliability;
pub mod report;
pub mod sensitivity;
pub mod simulation;
pub mod solution;

pub use error::SimError;
pub use simulation::{SimulationBuilder, SimulationResult};
pub use solution::Solution;
