//! Robustness of HIDE under port-set churn and UDP Port Message loss.
//!
//! The paper assumes the AP's Client UDP Port Table is always current:
//! the client re-syncs before every suspend and 802.11 retransmission
//! recovers lost messages. This module quantifies what happens when
//! that assumption frays — messages lost beyond the retry limit, apps
//! opening and closing ports between syncs — which is the practical
//! risk of moving filtering *away* from the client:
//!
//! * a frame to a **newly-opened** port is not flagged by the stale AP
//!   table → the suspended client misses useful data;
//! * a frame to a **recently-closed** port is still flagged → the
//!   client wakes spuriously, paying the full wake-cycle energy HIDE
//!   was supposed to avoid.

use hide_obs::provenance::CauseCounts;
use hide_obs::WakeCause;
use hide_traces::record::Trace;
use hide_traces::useful::Usefulness;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the reliability simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityConfig {
    /// Per-transmission loss probability of a UDP Port Message.
    pub loss_probability: f64,
    /// 802.11 retransmission attempts after the initial transmission
    /// (a sync fails only if all attempts are lost).
    pub retries: u32,
    /// Interval between the client's sync attempts, seconds.
    pub sync_interval_secs: f64,
    /// Mean time between port-set changes (one port swapped per
    /// change), seconds; exponential inter-change times.
    pub churn_interval_secs: f64,
    /// Target useful fraction of the client's port set.
    pub useful_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            loss_probability: 0.1,
            retries: 3,
            sync_interval_secs: 10.0,
            churn_interval_secs: 120.0,
            useful_fraction: 0.10,
            seed: 1,
        }
    }
}

impl ReliabilityConfig {
    /// Sets the per-transmission loss probability and retry limit.
    #[must_use]
    pub fn with_loss(mut self, loss_probability: f64, retries: u32) -> Self {
        self.loss_probability = loss_probability;
        self.retries = retries;
        self
    }

    /// Sets the client's sync interval, seconds.
    #[must_use]
    pub fn with_sync_interval_secs(mut self, secs: f64) -> Self {
        self.sync_interval_secs = secs;
        self
    }

    /// Sets the mean time between port-set changes, seconds.
    #[must_use]
    pub fn with_churn_interval_secs(mut self, secs: f64) -> Self {
        self.churn_interval_secs = secs;
        self
    }

    /// Sets the target useful fraction of the client's port set.
    #[must_use]
    pub fn with_useful_fraction(mut self, fraction: f64) -> Self {
        self.useful_fraction = fraction;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of a reliability simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityResult {
    /// Sync attempts made.
    pub syncs_attempted: u64,
    /// Syncs lost even after all retries.
    pub syncs_failed: u64,
    /// Port-set changes that occurred.
    pub churn_events: u64,
    /// Fraction of frames that were useful but not flagged (missed
    /// while suspended).
    pub missed_useful_fraction: f64,
    /// Fraction of frames that were useless but still flagged
    /// (spurious wake-ups).
    pub spurious_wake_fraction: f64,
    /// Fraction of trace time the AP's table was out of date.
    pub stale_time_fraction: f64,
    /// Every missed frame attributed to its causal event — the nearest
    /// de-sync (failed sync → `refresh_lost`, port swap → `port_churn`)
    /// preceding the frame, exactly the fleet engine's online walk.
    /// This model has no AP-side staleness expiry, so `entry_expired`
    /// is always 0. `total()` equals the missed-frame count.
    pub missed_causes: CauseCounts,
    /// Every spurious wake attributed likewise. Spurious wakes need the
    /// AP to believe in ports the client left, so `port_churn` is the
    /// only attributable cause; `total()` equals the spurious count.
    pub spurious_causes: CauseCounts,
}

impl ReliabilityResult {
    /// Fraction of *useful* frames the client actually received.
    pub fn useful_delivery_rate(&self, useful_fraction: f64) -> f64 {
        if useful_fraction <= 0.0 {
            return 1.0;
        }
        1.0 - self.missed_useful_fraction / useful_fraction
    }
}

/// Runs the churn/loss simulation over a trace.
///
/// The client's true useful-port set starts as a seeded port-based
/// marking and swaps one port (closing a current one, opening a port
/// of similar traffic share) at each churn event. The AP's view updates
/// only at successful syncs.
pub fn run(trace: &Trace, config: &ReliabilityConfig) -> ReliabilityResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let hist = trace.port_histogram();
    let all_ports: Vec<u16> = hist.iter().map(|&(p, _)| p).collect();

    // True client port set over time, as a sequence of (time, set).
    let initial = Usefulness::port_based_seeded(trace, config.useful_fraction, config.seed)
        .useful_ports()
        .to_vec();
    let mut true_sets: Vec<(f64, Vec<u16>)> = vec![(0.0, initial)];
    let mut t = 0.0;
    let mut churn_events = 0u64;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -config.churn_interval_secs * u.ln();
        if t >= trace.duration {
            break;
        }
        let mut set = true_sets.last().expect("non-empty").1.clone();
        if !set.is_empty() {
            let drop_idx = rng.gen_range(0..set.len());
            set.remove(drop_idx);
        }
        // Open a different port not currently in the set.
        let candidates: Vec<u16> = all_ports
            .iter()
            .copied()
            .filter(|p| !set.contains(p))
            .collect();
        if !candidates.is_empty() {
            set.push(candidates[rng.gen_range(0..candidates.len())]);
            set.sort_unstable();
        }
        true_sets.push((t, set));
        churn_events += 1;
    }

    // Sync schedule: attempt every sync_interval; success unless every
    // transmission (1 + retries) is lost.
    let fail_prob = config
        .loss_probability
        .clamp(0.0, 1.0)
        .powi(config.retries as i32 + 1);
    let mut ap_views: Vec<(f64, Vec<u16>)> = vec![(0.0, true_sets[0].1.clone())];
    let mut syncs_attempted = 0u64;
    let mut syncs_failed = 0u64;
    let mut sync_outcomes: Vec<(f64, bool)> = Vec::new();
    let mut sync_t = config.sync_interval_secs;
    while sync_t < trace.duration {
        syncs_attempted += 1;
        let ok = rng.gen_range(0.0..1.0) >= fail_prob;
        if ok {
            let current = current_set(&true_sets, sync_t).to_vec();
            ap_views.push((sync_t, current));
        } else {
            syncs_failed += 1;
        }
        sync_outcomes.push((sync_t, ok));
        sync_t += config.sync_interval_secs;
    }

    // Per-event cause timeline — the fleet engine's `last_desync` /
    // `churned_since_sync` columns replayed over the merged event
    // stream: a port swap or failed sync records the de-sync, a
    // successful sync clears it. Each misclassified frame is then
    // attributed to the nearest preceding de-sync, not statistically.
    let mut causes: Vec<(f64, Option<WakeCause>, bool)> = vec![(0.0, None, false)];
    {
        let mut churn_iter = true_sets.iter().skip(1).map(|&(t, _)| t).peekable();
        let mut sync_iter = sync_outcomes.iter().copied().peekable();
        // Every arm assigns `desync` before the push reads it.
        let mut desync;
        let mut churned = false;
        loop {
            let next_churn = churn_iter.peek().copied();
            let next_sync = sync_iter.peek().copied();
            match (next_churn, next_sync) {
                (Some(ct), st) if st.is_none_or(|(t, _)| ct <= t) => {
                    churn_iter.next();
                    desync = Some(WakeCause::PortChurn);
                    churned = true;
                    causes.push((ct, desync, churned));
                }
                (_, Some((st, ok))) => {
                    sync_iter.next();
                    if ok {
                        desync = None;
                        churned = false;
                    } else {
                        desync = Some(WakeCause::RefreshLost);
                    }
                    causes.push((st, desync, churned));
                }
                // Only (None, None) reaches here: a Some churn with no
                // pending sync always satisfies the first arm's guard.
                _ => break,
            }
        }
    }
    let cause_at = |t: f64| -> (Option<WakeCause>, bool) {
        let idx = causes.partition_point(|&(start, _, _)| start <= t);
        let (_, desync, churned) = causes[idx.saturating_sub(1)];
        (desync, churned)
    };

    // Classify every frame, attributing each miss and spurious wake.
    let total = trace.len().max(1) as f64;
    let mut missed = 0u64;
    let mut spurious = 0u64;
    let mut missed_causes = CauseCounts::default();
    let mut spurious_causes = CauseCounts::default();
    for f in &trace.frames {
        let truth = current_set(&true_sets, f.time).contains(&f.dst_port);
        let flagged = current_set(&ap_views, f.time).contains(&f.dst_port);
        match (truth, flagged) {
            (true, false) => {
                missed += 1;
                match cause_at(f.time).0 {
                    Some(WakeCause::RefreshLost) => missed_causes.refresh_lost += 1,
                    Some(WakeCause::EntryExpired) => missed_causes.entry_expired += 1,
                    Some(WakeCause::PortChurn) => missed_causes.port_churn += 1,
                    _ => missed_causes.unknown += 1,
                }
            }
            (false, true) => {
                spurious += 1;
                if cause_at(f.time).1 {
                    spurious_causes.port_churn += 1;
                } else {
                    spurious_causes.unknown += 1;
                }
            }
            _ => {}
        }
    }

    // Stale time: intervals where the AP view lags the true set.
    let mut stale = 0.0f64;
    let step = 1.0f64;
    let mut probe = 0.0;
    while probe < trace.duration {
        if current_set(&true_sets, probe) != current_set(&ap_views, probe) {
            stale += step.min(trace.duration - probe);
        }
        probe += step;
    }

    ReliabilityResult {
        syncs_attempted,
        syncs_failed,
        churn_events,
        missed_useful_fraction: missed as f64 / total,
        spurious_wake_fraction: spurious as f64 / total,
        stale_time_fraction: stale / trace.duration,
        missed_causes,
        spurious_causes,
    }
}

/// Runs one reliability simulation per config in parallel, returning
/// results in config order. Each run draws from its own seeded RNG, so
/// the output matches running [`run`] sequentially over the slice.
pub fn run_sweep(trace: &Trace, configs: &[ReliabilityConfig]) -> Vec<ReliabilityResult> {
    hide_par::par_map(configs, |cfg| run(trace, cfg))
}

/// The set in force at time `t` (sets are time-sorted).
fn current_set(sets: &[(f64, Vec<u16>)], t: f64) -> &[u16] {
    let idx = sets.partition_point(|(start, _)| *start <= t);
    &sets[idx.saturating_sub(1)].1
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_traces::scenario::Scenario;

    fn trace() -> Trace {
        Scenario::CsDept.generate(1200.0, 71)
    }

    #[test]
    fn builders_match_field_assignment() {
        let built = ReliabilityConfig::default()
            .with_loss(0.25, 5)
            .with_sync_interval_secs(30.0)
            .with_churn_interval_secs(60.0)
            .with_useful_fraction(0.02)
            .with_seed(7);
        let expected = ReliabilityConfig {
            loss_probability: 0.25,
            retries: 5,
            sync_interval_secs: 30.0,
            churn_interval_secs: 60.0,
            useful_fraction: 0.02,
            seed: 7,
        };
        assert_eq!(built, expected);
    }

    #[test]
    fn no_loss_no_churn_is_perfect() {
        let t = trace();
        let cfg = ReliabilityConfig {
            loss_probability: 0.0,
            churn_interval_secs: 1e12, // effectively never
            ..ReliabilityConfig::default()
        };
        let r = run(&t, &cfg);
        assert_eq!(r.syncs_failed, 0);
        assert_eq!(r.churn_events, 0);
        assert_eq!(r.missed_useful_fraction, 0.0);
        assert_eq!(r.spurious_wake_fraction, 0.0);
        assert_eq!(r.stale_time_fraction, 0.0);
        assert_eq!(r.useful_delivery_rate(0.10), 1.0);
    }

    #[test]
    fn churn_without_loss_recovers_within_a_sync_interval() {
        let t = trace();
        let cfg = ReliabilityConfig {
            loss_probability: 0.0,
            churn_interval_secs: 60.0,
            ..ReliabilityConfig::default()
        };
        let r = run(&t, &cfg);
        assert!(r.churn_events > 0);
        // Staleness bounded by churn_rate * sync_interval.
        let expected_bound = cfg.sync_interval_secs / cfg.churn_interval_secs * 2.0;
        assert!(
            r.stale_time_fraction < expected_bound,
            "stale {} vs bound {expected_bound}",
            r.stale_time_fraction
        );
        assert!(r.missed_useful_fraction < 0.05);
    }

    #[test]
    fn retries_mask_moderate_loss() {
        let t = trace();
        let lossy_no_retry = run(
            &t,
            &ReliabilityConfig {
                loss_probability: 0.5,
                retries: 0,
                churn_interval_secs: 60.0,
                ..ReliabilityConfig::default()
            },
        );
        let lossy_retries = run(
            &t,
            &ReliabilityConfig {
                loss_probability: 0.5,
                retries: 4,
                churn_interval_secs: 60.0,
                ..ReliabilityConfig::default()
            },
        );
        assert!(lossy_no_retry.syncs_failed > lossy_retries.syncs_failed);
        assert!(lossy_no_retry.stale_time_fraction >= lossy_retries.stale_time_fraction);
    }

    #[test]
    fn extreme_loss_degrades_delivery() {
        let t = trace();
        let r = run(
            &t,
            &ReliabilityConfig {
                loss_probability: 1.0,
                retries: 3,
                churn_interval_secs: 60.0,
                ..ReliabilityConfig::default()
            },
        );
        assert_eq!(r.syncs_failed, r.syncs_attempted);
        assert!(r.churn_events > 0);
        // With the AP frozen at the initial view and the port set
        // churning, misses or spurious wakes must appear.
        assert!(r.missed_useful_fraction + r.spurious_wake_fraction > 0.0);
        assert!(r.stale_time_fraction > 0.3);
    }

    #[test]
    fn every_miss_and_spurious_wake_is_attributed_per_event() {
        let t = trace();
        let total = t.len() as f64;
        let r = run(
            &t,
            &ReliabilityConfig {
                loss_probability: 0.6,
                retries: 0,
                churn_interval_secs: 45.0,
                ..ReliabilityConfig::default()
            },
        );
        // The per-event cause walk covers exactly the statistically
        // counted misclassifications — no frame double-counted or lost.
        assert_eq!(
            r.missed_causes.total() as f64 / total,
            r.missed_useful_fraction
        );
        assert_eq!(
            r.spurious_causes.total() as f64 / total,
            r.spurious_wake_fraction
        );
        // This model has no AP-side expiry, and both failure modes
        // found real causal events.
        assert_eq!(r.missed_causes.entry_expired, 0);
        assert_eq!(r.missed_causes.unknown, 0);
        assert_eq!(r.spurious_causes.unknown, 0);
        assert!(r.missed_causes.total() + r.spurious_causes.total() > 0);
    }

    #[test]
    fn loss_free_churn_attributes_everything_to_port_churn() {
        // With refreshes never lost, the only de-sync events are port
        // swaps, so every miss and spurious wake is a churn race.
        let t = trace();
        let r = run(
            &t,
            &ReliabilityConfig {
                loss_probability: 0.0,
                churn_interval_secs: 30.0,
                ..ReliabilityConfig::default()
            },
        );
        assert_eq!(r.missed_causes.refresh_lost, 0);
        assert_eq!(r.missed_causes.total(), r.missed_causes.port_churn);
        assert_eq!(r.spurious_causes.total(), r.spurious_causes.port_churn);
    }

    #[test]
    fn lossy_no_churn_attributes_misses_to_lost_refreshes() {
        // Without churn the true set never moves, so the AP can only go
        // stale... it never does (view == truth forever): nothing to
        // attribute. Add churn-free loss as the control.
        let t = trace();
        let r = run(
            &t,
            &ReliabilityConfig {
                loss_probability: 0.9,
                retries: 0,
                churn_interval_secs: 1e12,
                ..ReliabilityConfig::default()
            },
        );
        assert!(r.syncs_failed > 0);
        assert_eq!(r.missed_causes.total(), 0);
        assert_eq!(r.spurious_causes.total(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = trace();
        let cfg = ReliabilityConfig::default();
        assert_eq!(run(&t, &cfg), run(&t, &cfg));
        let other = ReliabilityConfig {
            seed: 9,
            ..ReliabilityConfig::default()
        };
        // Different seed, very likely different churn timing.
        assert_ne!(run(&t, &cfg).churn_events, 0);
        let _ = run(&t, &other);
    }
}
