//! The trace-driven simulation: trace + solution → reception timeline →
//! energy report.

use crate::solution::Solution;
use hide_energy::profile::DeviceProfile;
use hide_energy::timeline::{EnergyError, Overhead, Timeline, TimelineFrame};
use hide_energy::EnergyReport;
use hide_obs::{Counter, Distribution, MetricsSink, NoopSink};
use hide_traces::record::Trace;
use hide_traces::unicast::UnicastTrace;
use hide_traces::useful::Usefulness;
use hide_wifi::frame::UdpPortMessage;
use hide_wifi::mac::MacAddr;
use hide_wifi::phy::{self, DataRate};

/// How frames are marked useful for a target fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkingStrategy {
    /// Choose a port set whose traffic share approximates the target —
    /// faithful to the HIDE mechanism (default).
    PortBased,
    /// Port-based with a seeded random port order, so different clients
    /// get different (equally valid) useful sets.
    PortBasedSeeded {
        /// Seed choosing the port set.
        seed: u64,
    },
    /// Mark frames i.i.d. with the target probability (ablation).
    Bernoulli {
        /// RNG seed for the marking.
        seed: u64,
    },
}

/// Configures and runs one simulation.
///
/// Defaults follow the paper's evaluation settings (Section VI.A.2):
/// UDP Port Messages every 10 s at 1 Mbit/s carrying 100 ports, beacon
/// interval 102.4 ms.
#[derive(Debug, Clone)]
pub struct SimulationBuilder<'a> {
    trace: &'a Trace,
    profile: DeviceProfile,
    solution: Solution,
    sync_interval_secs: f64,
    ports_per_message: usize,
    port_message_rate: DataRate,
    beacon_interval: f64,
    dtim_period: u8,
    network_aid_span: u16,
    marking: MarkingStrategy,
    unicast: Option<&'a UnicastTrace>,
}

impl<'a> SimulationBuilder<'a> {
    /// Starts a simulation of `trace` on a device with `profile`,
    /// defaulting to the receive-all solution.
    pub fn new(trace: &'a Trace, profile: DeviceProfile) -> Self {
        SimulationBuilder {
            trace,
            profile,
            solution: Solution::ReceiveAll,
            sync_interval_secs: 10.0,
            ports_per_message: 100,
            port_message_rate: DataRate::R1M,
            beacon_interval: hide_wifi::timing::TIME_UNIT_SECS * 100.0,
            dtim_period: 1,
            network_aid_span: 10,
            marking: MarkingStrategy::PortBased,
            unicast: None,
        }
    }

    /// Selects the solution to simulate.
    pub fn solution(mut self, solution: Solution) -> Self {
        self.solution = solution;
        self
    }

    /// Sets the UDP Port Message sending interval `1/f` (paper: 10 s).
    pub fn sync_interval_secs(mut self, secs: f64) -> Self {
        self.sync_interval_secs = secs;
        self
    }

    /// Sets the number of ports per UDP Port Message (paper: 100,
    /// "heavy usage").
    pub fn ports_per_message(mut self, ports: usize) -> Self {
        self.ports_per_message = ports;
        self
    }

    /// Sets the data rate of UDP Port Messages (paper: 1 Mbit/s).
    pub fn port_message_rate(mut self, rate: DataRate) -> Self {
        self.port_message_rate = rate;
        self
    }

    /// Sets the beacon interval in seconds.
    pub fn beacon_interval(mut self, secs: f64) -> Self {
        self.beacon_interval = secs;
        self
    }

    /// Sets the DTIM period in beacon intervals (default 1; the paper
    /// notes typical values of 1–3).
    ///
    /// With a period above 1, trace times are interpreted as AP arrival
    /// times: the AP buffers each frame until the next DTIM beacon and
    /// delivers the batch back to back, which coalesces wake-ups at the
    /// cost of delivery latency.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn dtim_period(mut self, period: u8) -> Self {
        assert!(period > 0, "DTIM period must be positive");
        self.dtim_period = period;
        self
    }

    /// Sets the highest AID in the network, which determines the BTIM
    /// bitmap length and hence the per-beacon overhead.
    pub fn network_aid_span(mut self, span: u16) -> Self {
        self.network_aid_span = span;
        self
    }

    /// Selects the useful-marking strategy.
    pub fn marking(mut self, marking: MarkingStrategy) -> Self {
        self.marking = marking;
        self
    }

    /// Overlays unicast traffic for this client. Unicast frames are
    /// announced through the standard TIM and wake the device under
    /// *every* solution (HIDE only manages broadcast traffic); each is
    /// delivered via PS-Poll right after the first beacon following its
    /// arrival at the AP.
    pub fn unicast(mut self, unicast: &'a UnicastTrace) -> Self {
        self.unicast = Some(unicast);
        self
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError`] when the trace is degenerate (zero
    /// duration or unsorted frames).
    pub fn try_run(&self) -> Result<SimulationResult, EnergyError> {
        self.try_run_observed(&mut NoopSink)
    }

    /// [`SimulationBuilder::try_run`] with instrumentation: counts the
    /// run, its trace/delivered/hidden/wake frames and UDP Port
    /// Messages, feeds the per-run delivered and hidden counts into
    /// their distributions, and forwards the sink into the energy model
    /// ([`hide_energy::evaluate_observed`]). [`SimulationBuilder::try_run`]
    /// delegates here with a [`NoopSink`], so the uninstrumented path
    /// monomorphizes to identical code.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError`] when the trace is degenerate (zero
    /// duration or unsorted frames).
    pub fn try_run_observed<S: MetricsSink>(
        &self,
        sink: &mut S,
    ) -> Result<SimulationResult, EnergyError> {
        let tau = self.profile.wakelock_secs;

        // Build the reception timeline for the chosen solution. Every
        // branch below pushes at most one entry per trace frame (plus
        // the unicast overlay), so one up-front reservation covers the
        // whole construction with no reallocation.
        let unicast_len = self.unicast.map_or(0, |u| u.arrivals().len());
        let mut frames: Vec<TimelineFrame> = Vec::with_capacity(self.trace.len() + unicast_len);
        let mut filtered_by_ap = false;
        let achieved: Option<f64>;
        match self.solution {
            Solution::ReceiveAll => {
                achieved = None;
                for f in &self.trace.frames {
                    frames.push(TimelineFrame {
                        start: f.time,
                        airtime: f.airtime(),
                        more_data: f.more_data,
                        hold: tau,
                    });
                }
            }
            Solution::ClientSide { useful_fraction } => {
                let marking = self.mark_useful(useful_fraction);
                achieved = Some(marking.achieved_fraction());
                for (i, f) in self.trace.frames.iter().enumerate() {
                    frames.push(TimelineFrame {
                        start: f.time,
                        airtime: f.airtime(),
                        more_data: f.more_data,
                        hold: if marking.is_useful(i) { tau } else { 0.0 },
                    });
                }
            }
            Solution::Hide { useful_fraction } => {
                filtered_by_ap = true;
                let marking = self.mark_useful(useful_fraction);
                achieved = Some(marking.achieved_fraction());
                for (i, f) in self.trace.frames.iter().enumerate() {
                    if marking.is_useful(i) {
                        frames.push(TimelineFrame {
                            start: f.time,
                            airtime: f.airtime(),
                            more_data: false, // recomputed below
                            hold: tau,
                        });
                    }
                }
            }
            Solution::Hybrid {
                delivered_fraction,
                useful_fraction,
            } => {
                filtered_by_ap = true;
                // The AP delivers the port-matching share...
                let delivered = self.mark_useful(delivered_fraction);
                // ...and the client's driver keeps only the app-useful
                // sub-share, chosen port-consistently within the
                // delivered sub-trace.
                let sub = self.trace.filter_by_index(|i| delivered.is_useful(i));
                let within = if delivered_fraction > 0.0 {
                    (useful_fraction / delivered_fraction).min(1.0)
                } else {
                    0.0
                };
                let app = Usefulness::port_based(&sub, within);
                achieved = Some(if !self.trace.is_empty() {
                    app.useful_count() as f64 / self.trace.len() as f64
                } else {
                    0.0
                });
                let mut j = 0usize;
                for (i, f) in self.trace.frames.iter().enumerate() {
                    if delivered.is_useful(i) {
                        frames.push(TimelineFrame {
                            start: f.time,
                            airtime: f.airtime(),
                            more_data: false, // recomputed below
                            hold: if app.is_useful(j) { tau } else { 0.0 },
                        });
                        j += 1;
                    }
                }
            }
        }

        // With a DTIM period above 1, the AP buffers frames and delivers
        // them in a burst after each DTIM beacon.
        if self.dtim_period > 1 {
            batch_at_dtim(&mut frames, self.beacon_interval, self.dtim_period);
            frames.retain(|f| f.start <= self.trace.duration);
        }

        // Unicast overlay: delivered right after the first beacon that
        // announces it, waking the device regardless of solution.
        if let Some(unicast) = self.unicast {
            let airtime =
                phy::airtime_of_total_bytes(unicast.frame_bytes() as usize, DataRate::R2M);
            for &arrival in unicast.arrivals() {
                let beacon_idx = (arrival / self.beacon_interval).floor() + 1.0;
                let delivery = beacon_idx * self.beacon_interval;
                if delivery <= self.trace.duration {
                    frames.push(TimelineFrame {
                        start: delivery,
                        airtime,
                        more_data: false,
                        hold: tau,
                    });
                }
            }
            frames.sort_by(|a, b| a.start.total_cmp(&b.start));
        }

        let received_frames = frames.len();
        let wake_frames = frames.iter().filter(|f| f.hold > 0.0).count();

        let mut timeline = Timeline::new(self.trace.duration, self.beacon_interval, frames)?;
        if filtered_by_ap || self.dtim_period > 1 {
            // The More Data bits follow the frames actually delivered
            // to this client, not the raw trace.
            timeline.recompute_more_data();
        }

        let overhead = if self.solution.has_hide_overhead() {
            self.hide_overhead(&timeline)
        } else {
            Overhead::NONE
        };

        sink.incr(Counter::SimsRun);
        sink.add(Counter::TraceFrames, self.trace.len() as u64);
        sink.add(Counter::FramesDelivered, received_frames as u64);
        let hidden = (self.trace.len() - received_frames.min(self.trace.len())) as u64;
        sink.add(Counter::FramesHidden, hidden);
        sink.add(Counter::FramesWake, wake_frames as u64);
        sink.add(Counter::PortMessages, overhead.port_messages);
        sink.observe(Distribution::DeliveredPerRun, received_frames as u64);
        sink.observe(Distribution::HiddenPerRun, hidden);

        let energy = hide_energy::evaluate_observed(&self.profile, &timeline, &overhead, sink);
        Ok(SimulationResult {
            solution: self.solution,
            scenario: self.trace.scenario.clone(),
            device: self.profile.name.to_string(),
            energy,
            achieved_useful_fraction: achieved,
            received_frames,
            wake_frames,
            trace_frames: self.trace.len(),
        })
    }

    /// Runs the simulation.
    ///
    /// # Panics
    ///
    /// Panics when the trace is degenerate; use
    /// [`SimulationBuilder::try_run`] to handle that case.
    pub fn run(&self) -> SimulationResult {
        self.try_run().expect("trace produces a valid timeline")
    }

    fn mark_useful(&self, fraction: f64) -> Usefulness {
        match self.marking {
            MarkingStrategy::PortBased => Usefulness::port_based(self.trace, fraction),
            MarkingStrategy::PortBasedSeeded { seed } => {
                Usefulness::port_based_seeded(self.trace, fraction, seed)
            }
            MarkingStrategy::Bernoulli { seed } => {
                Usefulness::bernoulli(self.trace, fraction, seed)
            }
        }
    }

    /// The `Eo` inputs of Eqs. (15)–(19) for this configuration.
    fn hide_overhead(&self, timeline: &Timeline) -> Overhead {
        // One UDP Port Message per sync interval (Eq. 18, M = f · T).
        let port_messages = (self.trace.duration / self.sync_interval_secs).ceil() as u64;
        // Eq. (19): the message's MAC bytes, preceded by the PHY
        // preamble on air. Build a real frame so the length is honest.
        let msg = UdpPortMessage::new(
            MacAddr::station(1),
            MacAddr::station(0),
            (0..self.ports_per_message as u16).map(|i| 1024 + i),
        )
        .expect("port count within element limit");
        let port_message_airtime =
            phy::airtime_of_total_bytes(msg.len_bytes(), self.port_message_rate);

        // Eq. (16): BTIM bytes in every beacon. The bitmap spans AIDs
        // 1..=network_aid_span; header (2) + offset (1) + bitmap bytes.
        let bitmap_bytes = (self.network_aid_span as usize) / 8 + 1;
        let btim_bytes_per_beacon = (2 + 1 + bitmap_bytes) as f64;
        Overhead {
            btim_bytes_total: btim_bytes_per_beacon * timeline.beacon_count() as f64,
            port_messages,
            port_message_airtime,
        }
    }
}

/// Reschedules frame delivery to post-DTIM bursts: each frame goes on
/// air at the first DTIM beacon after its (AP) arrival time, queued
/// back to back behind earlier deliveries.
fn batch_at_dtim(frames: &mut [TimelineFrame], beacon_interval: f64, period: u8) {
    let dtim_interval = beacon_interval * period as f64;
    let mut cursor = 0.0f64;
    for f in frames.iter_mut() {
        let next_dtim = ((f.start / dtim_interval).floor() + 1.0) * dtim_interval;
        let start = next_dtim.max(cursor);
        f.start = start;
        cursor = start + f.airtime;
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult {
    /// The simulated solution.
    pub solution: Solution,
    /// Scenario label of the trace.
    pub scenario: String,
    /// Device profile name.
    pub device: String,
    /// Full energy report (Eq. 2 breakdown plus state statistics).
    pub energy: EnergyReport,
    /// The useful fraction actually achieved by the marking (None for
    /// receive-all).
    pub achieved_useful_fraction: Option<f64>,
    /// Frames the client's radio received.
    pub received_frames: usize,
    /// Frames that woke the system (held a nonzero wakelock).
    pub wake_frames: usize,
    /// Total frames in the trace.
    pub trace_frames: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hide_energy::profile::{GALAXY_S4, NEXUS_ONE};
    use hide_traces::scenario::Scenario;

    fn trace() -> Trace {
        Scenario::CsDept.generate(600.0, 17)
    }

    #[test]
    fn receive_all_receives_everything() {
        let t = trace();
        let r = SimulationBuilder::new(&t, NEXUS_ONE).run();
        assert_eq!(r.received_frames, t.len());
        assert_eq!(r.wake_frames, t.len());
        assert_eq!(r.energy.breakdown.overhead, 0.0);
        assert!(r.achieved_useful_fraction.is_none());
    }

    #[test]
    fn hide_receives_only_useful() {
        let t = trace();
        let r = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::hide(0.10))
            .run();
        assert!(r.received_frames < t.len());
        assert_eq!(r.received_frames, r.wake_frames);
        let achieved = r.achieved_useful_fraction.unwrap();
        assert!((achieved - 0.10).abs() < 0.06, "achieved {achieved}");
        assert!(r.energy.breakdown.overhead > 0.0);
    }

    #[test]
    fn client_side_receives_all_but_wakes_for_useful() {
        let t = trace();
        let r = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::client_side(0.10))
            .run();
        assert_eq!(r.received_frames, t.len());
        assert!(r.wake_frames < t.len());
        assert_eq!(r.energy.breakdown.overhead, 0.0);
    }

    #[test]
    fn client_side_lower_bound_never_holds_wakelocks() {
        let t = trace();
        let r = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::client_side_lower_bound())
            .run();
        assert_eq!(r.wake_frames, 0);
        assert_eq!(r.energy.breakdown.wakelock, 0.0);
        // But state transfers still cost plenty.
        assert!(r.energy.breakdown.state_transfer > 0.0);
    }

    #[test]
    fn hide_beats_receive_all_and_client_side() {
        let t = trace();
        let all = SimulationBuilder::new(&t, NEXUS_ONE).run();
        let cs = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::client_side_lower_bound())
            .run();
        let hide = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::hide(0.10))
            .run();
        assert!(hide.energy.breakdown.total() < all.energy.breakdown.total());
        assert!(hide.energy.breakdown.total() < cs.energy.breakdown.total());
    }

    #[test]
    fn lower_useful_fraction_saves_more() {
        let t = trace();
        let run = |f: f64| {
            SimulationBuilder::new(&t, NEXUS_ONE)
                .solution(Solution::hide(f))
                .run()
                .energy
                .breakdown
                .total()
        };
        assert!(run(0.02) < run(0.10));
    }

    #[test]
    fn hide_suspends_more_than_alternatives() {
        let t = trace();
        let all = SimulationBuilder::new(&t, NEXUS_ONE).run();
        let hide = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::hide(0.02))
            .run();
        assert!(hide.energy.suspend_fraction() > all.energy.suspend_fraction());
    }

    #[test]
    fn s4_client_side_saves_less_than_on_nexus() {
        // The paper: state transfers are pricier on the S4, so the
        // client-side solution helps much less there.
        let t = Scenario::Classroom.generate(900.0, 23);
        let saving = |p| {
            let all = SimulationBuilder::new(&t, p).run();
            let cs = SimulationBuilder::new(&t, p)
                .solution(Solution::client_side_lower_bound())
                .run();
            cs.energy.saving_vs(&all.energy)
        };
        assert!(saving(GALAXY_S4) < saving(NEXUS_ONE));
    }

    #[test]
    fn overhead_grows_with_sync_frequency() {
        let t = trace();
        let run = |interval: f64| {
            SimulationBuilder::new(&t, NEXUS_ONE)
                .solution(Solution::hide(0.10))
                .sync_interval_secs(interval)
                .run()
                .energy
                .breakdown
                .overhead
        };
        assert!(run(1.0) > run(10.0));
        assert!(run(10.0) > run(60.0));
    }

    #[test]
    fn overhead_is_negligible_at_paper_settings() {
        // The paper's third observation: Eo is negligible even at heavy
        // usage (10 s interval, 100 ports).
        let t = trace();
        let r = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::hide(0.10))
            .run();
        assert!(r.energy.breakdown.overhead < 0.05 * r.energy.breakdown.total());
    }

    #[test]
    fn bernoulli_marking_close_to_port_based() {
        let t = Scenario::Wml.generate(1800.0, 29);
        let pb = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::hide(0.10))
            .run();
        let bn = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::hide(0.10))
            .marking(MarkingStrategy::Bernoulli { seed: 5 })
            .run();
        let a = pb.energy.breakdown.total();
        let b = bn.energy.breakdown.total();
        assert!((a - b).abs() / a < 0.35, "port-based {a} vs bernoulli {b}");
    }

    #[test]
    fn degenerate_trace_is_error() {
        let t = Trace::new("bad", 0.0, vec![]);
        assert!(SimulationBuilder::new(&t, NEXUS_ONE).try_run().is_err());
    }

    #[test]
    fn hybrid_between_hide_levels() {
        // hybrid(10%, 4%): receives like HIDE:10% but wakes like a
        // client-side filter at 4% — energy must land between HIDE:10%
        // and HIDE:4%.
        let t = trace();
        let hide10 = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::hide(0.10))
            .run();
        let hide4 = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::hide(0.04))
            .run();
        let hybrid = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::hybrid(0.10, 0.04))
            .run();
        assert_eq!(hybrid.received_frames, hide10.received_frames);
        assert!(hybrid.wake_frames < hybrid.received_frames);
        let (e10, e4, eh) = (
            hide10.energy.breakdown.total(),
            hide4.energy.breakdown.total(),
            hybrid.energy.breakdown.total(),
        );
        assert!(eh < e10, "hybrid {eh} vs HIDE:10% {e10}");
        assert!(eh > e4 * 0.95, "hybrid {eh} vs HIDE:4% {e4}");
    }

    #[test]
    fn hybrid_achieved_fraction_is_app_level() {
        let t = trace();
        let hybrid = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::hybrid(0.10, 0.04))
            .run();
        let achieved = hybrid.achieved_useful_fraction.unwrap();
        assert!((achieved - 0.04).abs() < 0.03, "achieved {achieved}");
    }

    #[test]
    fn dtim_batching_keeps_frames_and_similar_wake_count() {
        // Batching coalesces same-window frames but can also split a
        // previously-merged wake session by delaying a frame past the
        // prior wakelock; on a real trace the net wake count stays in
        // the same ballpark.
        let t = trace();
        let base = SimulationBuilder::new(&t, NEXUS_ONE).run();
        let batched = SimulationBuilder::new(&t, NEXUS_ONE).dtim_period(3).run();
        let (b, a) = (base.energy.resume_count, batched.energy.resume_count);
        assert!(
            a as f64 <= b as f64 * 1.3 + 5.0,
            "batched resumes {a} vs base {b}"
        );
        // Batching never loses frames beyond the final interval.
        assert!(batched.received_frames >= base.received_frames - 10);
        // Delivery times stay sorted and within the trace.
        assert_eq!(batched.trace_frames, base.trace_frames);
    }

    #[test]
    fn dtim_batching_delivers_in_bursts() {
        // Frames spread inside one DTIM window leave back to back right
        // after the next DTIM beacon.
        let frames = vec![
            hide_traces::record::TraceFrame {
                time: 0.01,
                len_bytes: 300,
                rate: hide_wifi::phy::DataRate::R1M,
                dst_port: 1,
                more_data: false,
            },
            hide_traces::record::TraceFrame {
                time: 0.05,
                len_bytes: 300,
                rate: hide_wifi::phy::DataRate::R1M,
                dst_port: 2,
                more_data: false,
            },
        ];
        let t = Trace::new("burst", 10.0, frames);
        let r = SimulationBuilder::new(&t, NEXUS_ONE).dtim_period(2).run();
        // Both frames delivered, one wake session.
        assert_eq!(r.received_frames, 2);
        assert_eq!(r.energy.resume_count, 1);
    }

    #[test]
    #[should_panic(expected = "DTIM period")]
    fn zero_dtim_period_panics() {
        let t = trace();
        let _ = SimulationBuilder::new(&t, NEXUS_ONE).dtim_period(0);
    }

    #[test]
    fn unicast_wakes_all_solutions_equally() {
        use hide_traces::unicast::UnicastTrace;
        let t = trace();
        let unicast = UnicastTrace::poisson(t.duration, 0.2, 13);
        let hide_quiet = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::hide(0.02))
            .run();
        let hide_busy = SimulationBuilder::new(&t, NEXUS_ONE)
            .solution(Solution::hide(0.02))
            .unicast(&unicast)
            .run();
        assert!(hide_busy.energy.breakdown.total() > hide_quiet.energy.breakdown.total());
        assert!(hide_busy.energy.resume_count >= hide_quiet.energy.resume_count);
        assert!(hide_busy.energy.suspend_fraction() < hide_quiet.energy.suspend_fraction());
    }

    #[test]
    fn unicast_dilutes_hide_savings() {
        use hide_traces::unicast::UnicastTrace;
        let t = trace();
        let saving_at = |rate: f64| {
            let unicast = UnicastTrace::poisson(t.duration, rate, 13);
            let all = SimulationBuilder::new(&t, NEXUS_ONE)
                .unicast(&unicast)
                .run();
            let hide = SimulationBuilder::new(&t, NEXUS_ONE)
                .solution(Solution::hide(0.10))
                .unicast(&unicast)
                .run();
            hide.energy.saving_vs(&all.energy)
        };
        // Heavy unicast keeps the device awake anyway, so HIDE's
        // broadcast filtering matters less.
        assert!(saving_at(0.0) > saving_at(2.0));
    }

    #[test]
    fn empty_unicast_is_a_noop() {
        use hide_traces::unicast::UnicastTrace;
        let t = trace();
        let none = UnicastTrace::none(t.duration);
        let with = SimulationBuilder::new(&t, NEXUS_ONE).unicast(&none).run();
        let without = SimulationBuilder::new(&t, NEXUS_ONE).run();
        assert_eq!(
            with.energy.breakdown.total(),
            without.energy.breakdown.total()
        );
    }
}
