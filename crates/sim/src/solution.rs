//! The three broadcast-handling solutions the evaluation compares.

use std::fmt;

/// A broadcast-traffic handling strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Solution {
    /// Receive and process every broadcast frame (stock behaviour).
    ReceiveAll,
    /// Receive every frame; drop useless ones in the WiFi driver and
    /// re-suspend immediately (the paper's reference \[6\]). `useful_fraction` is the
    /// share of frames that are useful; the paper compares against this
    /// solution's *lower bound*, `useful_fraction = 0`, where no frame
    /// ever holds a wakelock.
    ClientSide {
        /// Fraction of broadcast frames useful to the client, in `[0, 1]`.
        useful_fraction: f64,
    },
    /// The HIDE system: the AP hides useless frames; the client receives
    /// only useful ones.
    Hide {
        /// Fraction of broadcast frames useful to the client, in `[0, 1]`.
        useful_fraction: f64,
    },
    /// HIDE combined with client-side filtering — the paper's stated
    /// future-work direction. The AP's port-level filter is coarse: a
    /// port can be open while the app only wants some of its traffic
    /// (e.g. mDNS queries for *other* services). The AP delivers the
    /// port-matching share; the client's driver drops the rest without
    /// holding a wakelock.
    Hybrid {
        /// Fraction of frames whose port the client listens on (what
        /// the AP delivers), in `[0, 1]`.
        delivered_fraction: f64,
        /// Fraction of frames an app actually consumes (wakes the
        /// system), in `[0, delivered_fraction]`.
        useful_fraction: f64,
    },
}

impl Solution {
    /// HIDE at the given useful fraction.
    ///
    /// # Panics
    ///
    /// Panics if `useful_fraction` is outside `[0, 1]`.
    pub fn hide(useful_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&useful_fraction),
            "useful fraction must be in [0, 1]"
        );
        Solution::Hide { useful_fraction }
    }

    /// The client-side solution at the given useful fraction.
    ///
    /// # Panics
    ///
    /// Panics if `useful_fraction` is outside `[0, 1]`.
    pub fn client_side(useful_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&useful_fraction),
            "useful fraction must be in [0, 1]"
        );
        Solution::ClientSide { useful_fraction }
    }

    /// The client-side solution's lower bound, the comparison point the
    /// paper uses: every frame is useless and holds no wakelock.
    pub fn client_side_lower_bound() -> Self {
        Solution::ClientSide {
            useful_fraction: 0.0,
        }
    }

    /// HIDE plus client-side filtering of the residual useless frames
    /// that share ports with useful traffic.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= useful_fraction <= delivered_fraction <= 1`.
    pub fn hybrid(delivered_fraction: f64, useful_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&delivered_fraction)
                && (0.0..=delivered_fraction).contains(&useful_fraction),
            "need 0 <= useful <= delivered <= 1"
        );
        Solution::Hybrid {
            delivered_fraction,
            useful_fraction,
        }
    }

    /// The useful fraction this solution is parameterized on, if any.
    pub fn useful_fraction(&self) -> Option<f64> {
        match self {
            Solution::ReceiveAll => None,
            Solution::ClientSide { useful_fraction }
            | Solution::Hide { useful_fraction }
            | Solution::Hybrid {
                useful_fraction, ..
            } => Some(*useful_fraction),
        }
    }

    /// Whether this solution incurs HIDE protocol overhead.
    pub fn has_hide_overhead(&self) -> bool {
        matches!(self, Solution::Hide { .. } | Solution::Hybrid { .. })
    }

    /// Figure-style label, e.g. `HIDE:10%`.
    pub fn label(&self) -> String {
        match self {
            Solution::ReceiveAll => "receive-all".to_string(),
            Solution::ClientSide { useful_fraction } if *useful_fraction == 0.0 => {
                "client-side".to_string()
            }
            Solution::ClientSide { useful_fraction } => {
                format!("client-side:{:.0}%", useful_fraction * 100.0)
            }
            Solution::Hide { useful_fraction } => {
                format!("HIDE:{:.0}%", useful_fraction * 100.0)
            }
            Solution::Hybrid {
                delivered_fraction,
                useful_fraction,
            } => format!(
                "hybrid:{:.0}/{:.0}%",
                delivered_fraction * 100.0,
                useful_fraction * 100.0
            ),
        }
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figures() {
        assert_eq!(Solution::ReceiveAll.label(), "receive-all");
        assert_eq!(Solution::client_side_lower_bound().label(), "client-side");
        assert_eq!(Solution::hide(0.10).label(), "HIDE:10%");
        assert_eq!(Solution::hide(0.02).label(), "HIDE:2%");
    }

    #[test]
    fn useful_fraction_accessor() {
        assert_eq!(Solution::ReceiveAll.useful_fraction(), None);
        assert_eq!(Solution::hide(0.06).useful_fraction(), Some(0.06));
        assert_eq!(
            Solution::client_side_lower_bound().useful_fraction(),
            Some(0.0)
        );
    }

    #[test]
    fn only_hide_has_overhead() {
        assert!(Solution::hide(0.1).has_hide_overhead());
        assert!(!Solution::ReceiveAll.has_hide_overhead());
        assert!(!Solution::client_side(0.1).has_hide_overhead());
    }

    #[test]
    #[should_panic(expected = "useful fraction")]
    fn out_of_range_fraction_panics() {
        let _ = Solution::hide(1.5);
    }

    #[test]
    fn hybrid_constructor_and_label() {
        let h = Solution::hybrid(0.10, 0.04);
        assert_eq!(h.label(), "hybrid:10/4%");
        assert_eq!(h.useful_fraction(), Some(0.04));
        assert!(h.has_hide_overhead());
    }

    #[test]
    #[should_panic(expected = "delivered")]
    fn hybrid_rejects_useful_above_delivered() {
        let _ = Solution::hybrid(0.05, 0.10);
    }
}
