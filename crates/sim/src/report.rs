//! Text-table rendering of experiment results, in the same shape the
//! paper's figures report them. Used by the `reproduce` binary and the
//! EXPERIMENTS.md generator.

use crate::experiment::{ScenarioComparison, SuspendFractionRow, TraceVolume};
use std::fmt::Write as _;

/// Renders the Fig. 6 data: per-scenario mean frames/sec and CDF
/// quartiles.
pub fn render_trace_volumes(volumes: &[TraceVolume]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "scenario", "frames", "mean fps", "p25", "p50", "p75", "max"
    );
    for v in volumes {
        let q = |p: f64| {
            // Invert the plotted CDF: smallest x with P >= p.
            v.cdf_points
                .iter()
                .find(|(_, prob)| *prob >= p)
                .map(|(x, _)| *x)
                .unwrap_or(0.0)
        };
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>10.2} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            v.scenario,
            v.frames,
            v.mean_fps,
            q(0.25),
            q(0.50),
            q(0.75),
            v.cdf_points.last().map(|(x, _)| *x).unwrap_or(0.0),
        );
    }
    out
}

/// Renders a Figs. 7/8 panel: stacked average power per solution for
/// every scenario.
pub fn render_energy_comparison(comparisons: &[ScenarioComparison]) -> String {
    let mut out = String::new();
    for c in comparisons {
        let _ = writeln!(out, "--- {} ({}) ---", c.scenario, c.device);
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9}",
            "solution", "Eb/T", "Ef/T", "Est/T", "Ewl/T", "Eo/T", "total mW", "saving"
        );
        for bar in &c.bars {
            let [eb, ef, est, ewl, eo] = bar.stacked_mw;
            let _ = writeln!(
                out,
                "{:<14} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.3} {:>10.2} {:>8.1}%",
                bar.label,
                eb,
                ef,
                est,
                ewl,
                eo,
                bar.total_mw,
                bar.saving_vs_receive_all * 100.0
            );
        }
    }
    out
}

/// Renders the Fig. 9 table: suspend-time fraction per solution per
/// scenario.
pub fn render_suspend_fractions(rows: &[SuspendFractionRow]) -> String {
    let mut out = String::new();
    let labels: Vec<String> = rows
        .first()
        .map(|r| r.fractions.iter().map(|(l, _)| l.clone()).collect())
        .unwrap_or_default();
    let _ = write!(out, "{:<12}", "scenario");
    for l in &labels {
        let _ = write!(out, " {l:>12}");
    }
    let _ = writeln!(out);
    for row in rows {
        let _ = write!(out, "{:<12}", row.scenario);
        for (_, v) in &row.fractions {
            let _ = write!(out, " {:>11.1}%", v * 100.0);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{self, PAPER_FRACTIONS};
    use hide_energy::profile::NEXUS_ONE;
    use hide_traces::scenario::Scenario;

    #[test]
    fn tables_render_nonempty() {
        let traces = Scenario::generate_all(120.0, 41);
        let volumes = experiment::trace_volumes(&traces);
        let vol_table = render_trace_volumes(&volumes);
        assert!(vol_table.contains("Classroom"));
        assert!(vol_table.contains("mean fps"));

        let comparisons = experiment::energy_comparison(NEXUS_ONE, &traces[..1], &PAPER_FRACTIONS);
        let energy_table = render_energy_comparison(&comparisons);
        assert!(energy_table.contains("receive-all"));
        assert!(energy_table.contains("HIDE:2%"));
        assert!(energy_table.contains("Eo/T"));

        let rows = experiment::suspend_fractions(NEXUS_ONE, &traces[..1]);
        let suspend_table = render_suspend_fractions(&rows);
        assert!(suspend_table.contains("HIDE:10%"));
        assert!(suspend_table.contains('%'));
    }

    #[test]
    fn empty_inputs_render_headers_only() {
        assert!(render_energy_comparison(&[]).is_empty());
        let s = render_suspend_fractions(&[]);
        assert!(s.starts_with("scenario"));
    }
}
