//! Error type for the simulation and experiment layer.

use hide_energy::EnergyError;
use std::fmt;

/// Anything the experiment runners can fail with.
///
/// The root `hide` crate folds this into its top-level `HideError`, so
/// binaries see one error surface.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A trace produced a degenerate timeline (zero duration, unsorted
    /// frames).
    Energy(EnergyError),
    /// A summary was requested over comparisons missing a required bar.
    MissingBar {
        /// Label of the absent bar (e.g. `"client-side"`, `"HIDE:10%"`).
        label: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Energy(e) => write!(f, "energy model rejected the timeline: {e}"),
            SimError::MissingBar { label } => {
                write!(f, "comparison is missing the '{label}' bar")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Energy(e) => Some(e),
            SimError::MissingBar { .. } => None,
        }
    }
}

impl From<EnergyError> for SimError {
    fn from(e: EnergyError) -> Self {
        SimError::Energy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::from(EnergyError::NonPositiveDuration(0.0));
        assert!(e.to_string().contains("energy model"));
        assert!(std::error::Error::source(&e).is_some());
        let m = SimError::MissingBar {
            label: "client-side".into(),
        };
        assert!(m.to_string().contains("client-side"));
        assert!(std::error::Error::source(&m).is_none());
    }
}
