//! Property-based tests of simulator invariants over randomly
//! generated traces.

use hide_energy::profile::{GALAXY_S4, NEXUS_ONE};
use hide_sim::solution::Solution;
use hide_sim::SimulationBuilder;
use hide_traces::record::{Trace, TraceFrame};
use hide_wifi::phy::DataRate;
use proptest::collection::vec;
use proptest::prelude::*;

/// A small random trace: gaps (s), lengths (bytes) and ports.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    vec((0.01f64..5.0, 100u16..800, 1u16..40), 1..80).prop_map(|entries| {
        let mut t = 0.5;
        let frames: Vec<TraceFrame> = entries
            .into_iter()
            .map(|(gap, len, port)| {
                t += gap;
                TraceFrame {
                    time: t,
                    len_bytes: len,
                    rate: DataRate::R1M,
                    dst_port: port,
                    more_data: false,
                }
            })
            .collect();
        let duration = t + 10.0;
        let mut trace = Trace::new("prop", duration, frames);
        trace.assign_more_data(0.1024);
        trace
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// HIDE essentially never uses more energy than receive-all on the
    /// same trace. Frame filtering is *almost* monotone in the state
    /// machine: a dropped frame can occasionally convert a cheap
    /// wakelock renewal into a fresh suspend/resume cycle or an aborted
    /// suspend, each worth at most one boundary premium (see the
    /// `machine_energy_bounded_under_subset` property in `hide-energy`).
    #[test]
    fn hide_never_beats_receive_all_backwards(
        trace in trace_strategy(),
        fraction in 0.0f64..0.5,
        s4 in any::<bool>(),
    ) {
        let profile = if s4 { GALAXY_S4 } else { NEXUS_ONE };
        let all = SimulationBuilder::new(&trace, profile).run();
        let hide = SimulationBuilder::new(&trace, profile)
            .solution(Solution::hide(fraction))
            .run();
        // Compare the filtering-sensitive components; Eo is the price
        // of the protocol and Eb is identical by construction.
        let filtered = |r: &hide_sim::SimulationResult| {
            r.energy.breakdown.frames
                + r.energy.breakdown.wakelock
                + r.energy.breakdown.state_transfer
        };
        let extra_boundaries = (hide.energy.resume_count
            + hide.energy.aborted_suspends)
            .saturating_sub(all.energy.resume_count + all.energy.aborted_suspends)
            as f64;
        let per_boundary = profile.wake_cycle_energy()
            + profile.active_idle_power * (profile.wakelock_secs + profile.resume_secs);
        prop_assert!(
            filtered(&hide) <= filtered(&all) + extra_boundaries * per_boundary + 1e-9,
            "HIDE {} vs receive-all {}",
            filtered(&hide),
            filtered(&all)
        );
        prop_assert!(hide.received_frames <= all.received_frames);
        prop_assert!(
            hide.energy.suspend_fraction() >= all.energy.suspend_fraction() - 1e-9
        );
    }

    /// The received-frame count always matches the marking exactly.
    #[test]
    fn received_matches_marking(trace in trace_strategy(), fraction in 0.0f64..1.0) {
        let r = SimulationBuilder::new(&trace, NEXUS_ONE)
            .solution(Solution::hide(fraction))
            .run();
        let achieved = r.achieved_useful_fraction.unwrap();
        let expected = (achieved * trace.len() as f64).round() as usize;
        prop_assert_eq!(r.received_frames, expected);
        prop_assert_eq!(r.wake_frames, r.received_frames);
    }

    /// Client-side receives everything but wakes only for useful
    /// frames; its radio energy equals receive-all's.
    #[test]
    fn client_side_radio_equals_receive_all(trace in trace_strategy()) {
        let all = SimulationBuilder::new(&trace, NEXUS_ONE).run();
        let cs = SimulationBuilder::new(&trace, NEXUS_ONE)
            .solution(Solution::client_side_lower_bound())
            .run();
        prop_assert_eq!(cs.received_frames, all.received_frames);
        prop_assert_eq!(cs.wake_frames, 0);
        prop_assert!((cs.energy.breakdown.frames - all.energy.breakdown.frames).abs() < 1e-9);
        prop_assert_eq!(cs.energy.breakdown.wakelock, 0.0);
    }

    /// Energy reports are always finite and non-negative, for every
    /// solution, on arbitrary traces.
    #[test]
    fn all_solutions_produce_sane_reports(trace in trace_strategy()) {
        for solution in [
            Solution::ReceiveAll,
            Solution::client_side_lower_bound(),
            Solution::client_side(0.3),
            Solution::hide(0.3),
            Solution::hybrid(0.3, 0.1),
        ] {
            let r = SimulationBuilder::new(&trace, NEXUS_ONE)
                .solution(solution)
                .run();
            let total = r.energy.breakdown.total();
            prop_assert!(total.is_finite() && total >= 0.0, "{solution}: {total}");
            let sf = r.energy.suspend_fraction();
            prop_assert!((0.0..=1.0).contains(&sf), "{solution}: suspend {sf}");
        }
    }

    /// DTIM batching never changes how many frames exist, only when
    /// they are delivered (modulo the final-interval spill).
    #[test]
    fn dtim_batching_preserves_frames(trace in trace_strategy(), period in 2u8..5) {
        let base = SimulationBuilder::new(&trace, NEXUS_ONE).run();
        let batched = SimulationBuilder::new(&trace, NEXUS_ONE)
            .dtim_period(period)
            .run();
        prop_assert!(batched.received_frames <= base.received_frames);
        // At most the frames of the last DTIM window can spill.
        prop_assert!(base.received_frames - batched.received_frames <= 16);
    }
}
