//! Property tests of the merge algebra the parallel fan-in relies on:
//! [`Recorder::merge_from`] must be associative and commutative, so
//! that any shuffled worker merge order produces byte-identical
//! `to_json` output.

use hide_obs::{Counter, Distribution, MetricsSink, Recorder, Stage};
use proptest::collection::vec;
use proptest::prelude::*;

/// One recorded operation, decoded from a `(selector, value)` pair so
/// plain integer strategies drive the whole metric namespace.
fn apply_op(rec: &mut Recorder, selector: u8, value: u64) {
    match selector % 3 {
        0 => {
            let c = Counter::ALL[selector as usize % Counter::COUNT];
            rec.add(c, value % 1_000);
        }
        1 => {
            let d = Distribution::ALL[selector as usize % Distribution::COUNT];
            // Bounded so the histogram running sum cannot overflow even
            // across hundreds of merged observations.
            rec.observe(d, value % 1_000_000_000);
        }
        _ => {
            let s = Stage::ALL[selector as usize % Stage::COUNT];
            rec.add_span(s, value % 1_000_000);
        }
    }
}

fn build(ops: &[(u8, u64)]) -> Recorder {
    let mut rec = Recorder::new();
    for &(selector, value) in ops {
        apply_op(&mut rec, selector, value);
    }
    rec
}

/// SplitMix64 step — the same generator the fleet kernel uses for seed
/// derivation; here it turns one u64 into a permutation.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fisher–Yates order derived from a seed (vendored proptest has no
/// shuffle strategy, so the permutation is data, not a strategy).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

fn shards() -> impl Strategy<Value = Vec<Vec<(u8, u64)>>> {
    vec(vec((any::<u8>(), any::<u64>()), 0..12), 2..6)
}

proptest! {
    /// Folding worker recorders in any shuffled order yields the same
    /// recorder — and the same serialized bytes — as input order.
    #[test]
    fn merge_is_commutative_under_shuffle(ops in shards(), seed in any::<u64>()) {
        let recs: Vec<Recorder> = ops.iter().map(|o| build(o)).collect();

        let mut in_order = Recorder::new();
        for r in &recs {
            in_order.merge_from(r);
        }
        let mut shuffled = Recorder::new();
        for &i in &permutation(recs.len(), seed) {
            shuffled.merge_from(&recs[i]);
        }
        prop_assert_eq!(&in_order, &shuffled);
        prop_assert_eq!(in_order.to_json(), shuffled.to_json());
        prop_assert_eq!(in_order.render_summary(), shuffled.render_summary());
    }

    /// Merge is associative: (a + b) + c == a + (b + c).
    #[test]
    fn merge_is_associative(
        a in vec((any::<u8>(), any::<u64>()), 0..12),
        b in vec((any::<u8>(), any::<u64>()), 0..12),
        c in vec((any::<u8>(), any::<u64>()), 0..12),
    ) {
        let (ra, rb, rc) = (build(&a), build(&b), build(&c));

        let mut left = ra.clone();
        left.merge_from(&rb);
        left.merge_from(&rc);

        let mut bc = rb.clone();
        bc.merge_from(&rc);
        let mut right = ra.clone();
        right.merge_from(&bc);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.to_json(), right.to_json());
    }

    /// The empty recorder is the identity element.
    #[test]
    fn empty_recorder_is_identity(ops in vec((any::<u8>(), any::<u64>()), 0..16)) {
        let r = build(&ops);
        let mut left = Recorder::new();
        left.merge_from(&r);
        let mut right = r.clone();
        right.merge_from(&Recorder::new());
        prop_assert_eq!(&left, &r);
        prop_assert_eq!(&right, &r);
    }
}
