//! Property tests for the wall-clock [`LatencyHistogram`]: the merge
//! algebra the daemon's per-shard fan-in relies on, the quantile
//! readout's ordering guarantees, and the cross-platform determinism
//! of the bucket layout (pure integer arithmetic, so the boundaries
//! must be reproducible from first principles).

use hide_obs::latency::{LatencyHistogram, LATENCY_BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

/// Latency-shaped values: everything from sub-bucket integers to
/// saturating outliers (the vendored proptest has no `prop_oneof`, so
/// the class is picked by a mapped discriminant).
fn nanos_strategy() -> impl Strategy<Value = u64> {
    (0usize..5, any::<u64>()).prop_map(|(class, raw)| match class {
        0 => raw % 16,                         // exact unit buckets
        1 => 100 + raw % 1_000_000,            // the µs range
        2 => 1_000_000 + raw % 10_000_000_000, // ms to the 10 s ceiling
        3 => u64::MAX,                         // saturation
        _ => raw,                              // anything
    })
}

fn record_all(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Merge is associative and commutative with sequential recording
    /// as the identity, and preserves exact counts and extremes.
    #[test]
    fn merge_associative_commutative_exact(
        a in vec(nanos_strategy(), 0..64),
        b in vec(nanos_strategy(), 0..64),
        c in vec(nanos_strategy(), 0..64),
    ) {
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));
        let mut seq = LatencyHistogram::new();
        for &v in a.iter().chain(&b).chain(&c) {
            seq.record(v);
        }

        // (a + b) + c
        let mut left = ha.clone();
        left.merge_from(&hb);
        left.merge_from(&hc);
        // a + (b + c)
        let mut bc = hb.clone();
        bc.merge_from(&hc);
        let mut right = ha.clone();
        right.merge_from(&bc);
        // c + b + a
        let mut rev = hc.clone();
        rev.merge_from(&hb);
        rev.merge_from(&ha);

        prop_assert_eq!(&left, &seq);
        prop_assert_eq!(&right, &seq);
        prop_assert_eq!(&rev, &seq);
        prop_assert_eq!(seq.count(), (a.len() + b.len() + c.len()) as u64);
    }

    /// Quantiles are monotone in q, bracketed by min/max, and the
    /// summary readout is internally ordered.
    #[test]
    fn quantiles_are_monotone(values in vec(nanos_strategy(), 1..256)) {
        let h = record_all(&values);
        let mut prev = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let at = h.quantile(q);
            prop_assert!(at >= prev, "quantile({q}) = {at} < {prev}");
            prop_assert!(at >= h.min());
            prop_assert!(at <= h.max());
            prev = at;
        }
        let s = h.summary();
        prop_assert!(s.p50_ns <= s.p90_ns);
        prop_assert!(s.p90_ns <= s.p99_ns);
        prop_assert!(s.p99_ns <= s.max_ns);
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.max_ns, *values.iter().max().unwrap());
    }

    /// A quantile readout is within one bucket (≤ 12.5 % relative, or
    /// exact below 8 ns) of the true order statistic.
    #[test]
    fn quantile_error_is_bounded(values in vec(0u64..20_000_000_000, 1..128)) {
        let h = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize)
                .clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let read = h.quantile(q);
            // The readout is the truth's bucket lower bound (clamped
            // into the observed range), so it never overshoots and
            // undershoots by at most the bucket width.
            prop_assert!(read <= truth);
            let bucket_lo = LatencyHistogram::bucket_lower_bound(
                LatencyHistogram::bucket_index(truth));
            prop_assert!(read >= bucket_lo.min(h.min()).min(truth),
                "q={q}: read {read}, truth {truth}, bucket_lo {bucket_lo}");
        }
    }

    /// The bucket function is deterministic from first principles on
    /// every platform: index and boundary round-trip, and the mapping
    /// is monotone non-decreasing in the value.
    #[test]
    fn bucket_layout_is_deterministic(v in any::<u64>()) {
        let i = LatencyHistogram::bucket_index(v);
        prop_assert!(i < LATENCY_BUCKETS);
        let lo = LatencyHistogram::bucket_lower_bound(i);
        prop_assert!(lo <= v);
        prop_assert_eq!(LatencyHistogram::bucket_index(lo), i);
        if i + 1 < LATENCY_BUCKETS {
            let hi = LatencyHistogram::bucket_lower_bound(i + 1);
            prop_assert!(v < hi);
        }
        if v > 0 {
            prop_assert!(LatencyHistogram::bucket_index(v - 1) <= i);
        }
    }
}
