//! Property tests of the `hide-spill/1` framed codec and the k-way
//! merge the out-of-core export pipeline is built on.
//!
//! Three families:
//!
//! 1. **Round trip** — encode→decode is the identity, at the event
//!    level and through a real spill file at any chunk size (including
//!    1 and larger-than-input).
//! 2. **Hostile bytes** — every strict prefix of a valid file and
//!    every single-byte flip is rejected with a structured
//!    [`SpillError`]; nothing panics and nothing allocates on
//!    attacker-controlled lengths. The chunk checksum is FNV-1a-based,
//!    and a single-byte change always alters the low 32 bits (xor
//!    injects into the low byte, multiplication by an odd prime is
//!    injective mod 2^32), so detection is a guarantee, not a
//!    probability.
//! 3. **Merge order** — [`KWayMerge`] over arbitrarily partitioned,
//!    arbitrarily chunked spilled runs pops the exact sequence the
//!    in-memory tree fold produces. The `(time, source, seq)` key is a
//!    strict total order over distinct events, so this is equality of
//!    sequences, not just multisets.
//!
//! The vendored proptest has no enum strategies, so events are decoded
//! from plain integer tuples (the same idiom `proptest_recorder.rs`
//! uses for the metric namespace).

use hide_obs::spill::{decode_chunk_events, encode_event, read_all_runs};
use hide_obs::trace::{TraceEvent, TraceEventKind, WakeCause, WakeClass};
use hide_obs::{FlightRecorder, KWayMerge, SpillError, SpillIndex, SpillWriter, TraceSink};
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique temp path per proptest case (cases run in one process, so a
/// static counter keeps concurrently open files independent).
fn temp_spill_path() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "hide-proptest-spill-{}-{n}.bin",
        std::process::id()
    ))
}

/// Removes the file even when an assertion inside the case fails.
struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Decodes one event payload from a `(selector, a, b)` integer tuple,
/// covering every kind, every wake class, and every wake cause.
fn kind_from(selector: u8, a: u64, b: u64) -> TraceEventKind {
    let aid = a as u16;
    match selector % 9 {
        0 => TraceEventKind::DtimBoundary {
            buffered: a as u32,
            table_entries: (a >> 32) as u32,
        },
        1 => TraceEventKind::BtimEmitted {
            bytes: a as u32,
            bits_set: (a >> 32) as u32,
        },
        2 => TraceEventKind::WakeDecision {
            aid,
            port: (a >> 16) as u16,
            frame_id: b,
            class: [
                WakeClass::Proper,
                WakeClass::Missed,
                WakeClass::Spurious,
                WakeClass::Legacy,
            ][(a >> 32) as usize % 4],
            cause: [
                WakeCause::Proper,
                WakeCause::RefreshLost,
                WakeCause::EntryExpired,
                WakeCause::PortChurn,
                WakeCause::Unknown,
            ][(a >> 40) as usize % 5],
        },
        3 => TraceEventKind::RefreshApplied { aid },
        4 => TraceEventKind::RefreshLost { aid },
        5 => TraceEventKind::PortChurn { aid },
        6 => TraceEventKind::EntryExpired { aid },
        7 => TraceEventKind::Join {
            aid,
            hide: b.is_multiple_of(2),
        },
        _ => TraceEventKind::Leave { aid },
    }
}

/// Finite time from arbitrary bits — the codec stores exact IEEE-754
/// bits and rejects NaN/inf on decode, so clearing the exponent of a
/// non-finite draw keeps sign, subnormals, and negative zero in scope.
fn time_from(bits: u64) -> f64 {
    let t = f64::from_bits(bits);
    if t.is_finite() {
        t
    } else {
        f64::from_bits(bits & 0x800F_FFFF_FFFF_FFFF)
    }
}

/// Raw material for one arbitrary event.
type RawEvent = (u8, u64, u64, u64, u64);

fn event_from((selector, a, b, time_bits, meta): RawEvent) -> TraceEvent {
    TraceEvent {
        time: time_from(time_bits),
        source: meta as u32,
        seq: meta >> 32,
        kind: kind_from(selector, a, b),
    }
}

fn events_from(raw: &[RawEvent]) -> Vec<TraceEvent> {
    raw.iter().map(|r| event_from(*r)).collect()
}

/// Sorted per-source lanes, as the fleet shards produce them: each
/// lane's events are time-ordered with sequential seq, so every run
/// handed to the merge is sorted under `(time, source, seq)` and all
/// events are globally distinct.
fn lanes_from(raw: &[Vec<(u32, u8, u64, u64)>]) -> Vec<Vec<TraceEvent>> {
    raw.iter()
        .enumerate()
        .map(|(source, lane)| {
            let mut ticks: Vec<u32> = lane.iter().map(|(t, ..)| *t).collect();
            ticks.sort_unstable();
            ticks
                .into_iter()
                .zip(lane)
                .enumerate()
                .map(|(seq, (tick, (_, selector, a, b)))| TraceEvent {
                    time: f64::from(tick) * 1e-3,
                    source: source as u32,
                    seq: seq as u64,
                    kind: kind_from(*selector, *a, *b),
                })
                .collect()
        })
        .collect()
}

/// The in-memory reference: tree-fold the lanes through
/// `FlightRecorder::merge_from`, exactly as the parallel fan-in does.
fn tree_fold(lanes: &[Vec<TraceEvent>]) -> Vec<TraceEvent> {
    let mut recorders: Vec<FlightRecorder> = lanes
        .iter()
        .enumerate()
        .map(|(source, lane)| {
            let mut r = FlightRecorder::new();
            r.set_source(source as u32);
            for e in lane {
                r.emit(e.time, e.kind);
            }
            r
        })
        .collect();
    while recorders.len() > 1 {
        let mut next = Vec::with_capacity(recorders.len().div_ceil(2));
        for pair in recorders.chunks(2) {
            let mut left = pair[0].clone();
            if let Some(right) = pair.get(1) {
                left.merge_from(right);
            }
            next.push(left);
        }
        recorders = next;
    }
    recorders.remove(0).events().copied().collect()
}

/// Bit-exact event equality: `PartialEq` treats `-0.0 == 0.0`, but the
/// codec must preserve the sign bit.
fn assert_events_bit_equal(got: &[TraceEvent], want: &[TraceEvent]) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        prop_assert_eq!(g.time.to_bits(), w.time.to_bits());
        prop_assert_eq!((g.source, g.seq, g.kind), (w.source, w.seq, w.kind));
    }
    Ok(())
}

/// Writes `runs` into a fresh spill file and returns the temp handle.
fn write_spill(
    runs: &[(Vec<TraceEvent>, u64)],
    chunk_events: usize,
) -> (TempFile, hide_obs::SpillIndex) {
    let file = TempFile(temp_spill_path());
    let mut writer = SpillWriter::create(&file.0, chunk_events).expect("create spill");
    for (events, dropped) in runs {
        writer.write_run(events, *dropped).expect("write run");
    }
    let index = writer.finish().expect("finish spill");
    (file, index)
}

proptest! {
    /// Event-level codec: encode then decode is the identity, for any
    /// batch of arbitrary events in one chunk payload.
    #[test]
    fn encode_decode_is_identity(
        raw in vec((any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 0..64),
    ) {
        let events = events_from(&raw);
        let mut payload = Vec::new();
        for e in &events {
            encode_event(&mut payload, e);
        }
        let mut decoded = Vec::new();
        decode_chunk_events(&payload, events.len() as u32, 0, &mut decoded)
            .expect("own encoding must decode");
        assert_events_bit_equal(&decoded, &events)?;
    }

    /// File-level round trip at any chunk size — 1 (every event its
    /// own frame) through larger than the input (one frame total) —
    /// with multiple runs and per-run dropped tallies. Dropped values
    /// are bounded so the index's plain `sum()` cannot overflow in
    /// debug builds.
    #[test]
    fn spill_file_round_trip(
        raw in vec(
            (
                vec((any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 0..30),
                0u64..=u64::from(u32::MAX),
            ),
            0..4,
        ),
        chunk_events in 1usize..64,
    ) {
        let runs: Vec<(Vec<TraceEvent>, u64)> = raw
            .iter()
            .map(|(events, dropped)| (events_from(events), *dropped))
            .collect();
        let (file, index) = write_spill(&runs, chunk_events);
        prop_assert_eq!(index.runs.len(), runs.len());
        prop_assert_eq!(
            index.total_events(),
            runs.iter().map(|(e, _)| e.len() as u64).sum::<u64>()
        );
        prop_assert_eq!(
            index.total_dropped(),
            runs.iter().map(|(_, d)| *d).sum::<u64>()
        );

        let read_back = read_all_runs(&file.0).expect("validated file reads");
        prop_assert_eq!(read_back.len(), runs.len());
        for ((got, got_dropped), (want, want_dropped)) in read_back.iter().zip(&runs) {
            prop_assert_eq!(got_dropped, want_dropped);
            assert_events_bit_equal(got, want)?;
        }
    }

    /// Every strict prefix of a valid spill file is a structured error:
    /// a crash part-way through a run can never read as a shorter,
    /// valid export.
    #[test]
    fn any_strict_prefix_is_a_structured_error(
        raw in vec(
            (
                vec((any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 0..12),
                0u64..1000,
            ),
            1..3,
        ),
        chunk_events in 1usize..16,
        cut_selector in any::<u64>(),
    ) {
        let runs: Vec<(Vec<TraceEvent>, u64)> = raw
            .iter()
            .map(|(events, dropped)| (events_from(events), *dropped))
            .collect();
        let (file, _) = write_spill(&runs, chunk_events);

        let bytes = std::fs::read(&file.0).expect("read spill back");
        let cut = (cut_selector % bytes.len() as u64) as usize; // 0..len: always strict
        let truncated = TempFile(temp_spill_path());
        std::fs::write(&truncated.0, &bytes[..cut]).expect("write prefix");

        let err = SpillIndex::load(&truncated.0).expect_err("prefix must not validate");
        prop_assert!(matches!(
            err,
            SpillError::Truncated { .. } | SpillError::Corrupt { .. } | SpillError::BadMagic { .. }
        ), "unexpected error shape: {err:?}");
        prop_assert!(!err.to_string().is_empty());
    }

    /// Every single-byte flip anywhere in the file is a structured
    /// error — header fields, length fields, payloads, magic, and the
    /// checksums themselves are all covered.
    #[test]
    fn any_single_byte_flip_is_a_structured_error(
        raw in vec(
            (
                vec((any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 0..12),
                0u64..1000,
            ),
            1..3,
        ),
        chunk_events in 1usize..16,
        at_selector in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let runs: Vec<(Vec<TraceEvent>, u64)> = raw
            .iter()
            .map(|(events, dropped)| (events_from(events), *dropped))
            .collect();
        let (file, _) = write_spill(&runs, chunk_events);

        let mut bytes = std::fs::read(&file.0).expect("read spill back");
        let at = (at_selector % bytes.len() as u64) as usize;
        bytes[at] ^= mask;
        let corrupt = TempFile(temp_spill_path());
        std::fs::write(&corrupt.0, &bytes).expect("write corrupted copy");

        let err = SpillIndex::load(&corrupt.0)
            .expect_err("a flipped byte must not validate");
        prop_assert!(matches!(
            err,
            SpillError::Truncated { .. } | SpillError::Corrupt { .. } | SpillError::BadMagic { .. }
        ), "unexpected error shape: {err:?}");
    }

    /// KWayMerge over spilled runs == the in-memory tree fold, for any
    /// lane partitioning and any chunk size — 1, tiny, or larger than
    /// every run.
    #[test]
    fn kway_merge_matches_tree_fold(
        raw in vec(vec((0u32..500_000, any::<u8>(), any::<u64>(), any::<u64>()), 0..40), 1..6),
        chunk_selector in any::<u8>(),
    ) {
        let chunk_events = match chunk_selector % 3 {
            0 => 1,
            1 => 2 + chunk_selector as usize % 6,
            _ => 10_000,
        };
        let lanes = lanes_from(&raw);
        let expected = tree_fold(&lanes);

        let runs: Vec<(Vec<TraceEvent>, u64)> =
            lanes.iter().map(|lane| (lane.clone(), 0)).collect();
        let (_file, index) = write_spill(&runs, chunk_events);
        let merged = index
            .merge()
            .expect("open merge")
            .collect_all()
            .expect("merge clean file");

        assert_events_bit_equal(&merged, &expected)?;
    }

    /// The merge is also correct over in-memory sources: partitioning
    /// sorted events by source lane and merging recovers the globally
    /// sorted sequence.
    #[test]
    fn kway_merge_of_mem_sources_sorts_globally(
        raw in vec(vec((0u32..500_000, any::<u8>(), any::<u64>(), any::<u64>()), 0..40), 1..6),
    ) {
        let lanes = lanes_from(&raw);
        let mut expected: Vec<TraceEvent> = lanes.iter().flatten().copied().collect();
        expected.sort_by(|x, y| {
            x.time
                .total_cmp(&y.time)
                .then(x.source.cmp(&y.source))
                .then(x.seq.cmp(&y.seq))
        });

        let sources: Vec<hide_obs::MemSource> = lanes
            .iter()
            .map(|lane| hide_obs::MemSource::new(lane.clone()))
            .collect();
        let merged = KWayMerge::new(sources)
            .expect("mem sources never fail to open")
            .collect_all()
            .expect("mem sources never fail");

        assert_events_bit_equal(&merged, &expected)?;
    }
}
