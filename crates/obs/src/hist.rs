//! Fixed-bucket histograms with deterministic, mergeable state.
//!
//! Buckets are powers of two: bucket 0 holds the value `0`, bucket `i`
//! (for `1 <= i < 31`) holds values in `[2^(i-1), 2^i)`, and bucket 31
//! absorbs everything from `2^30` up. The layout is fixed at compile
//! time so two histograms merge by elementwise addition — the property
//! the per-worker fan-in in `hide-par` relies on.

/// Number of buckets in every [`Histogram`].
pub const BUCKETS: usize = 32;

/// A fixed-bucket power-of-two histogram.
///
/// `Copy` on purpose: the struct is a few hundred bytes of plain
/// integers, which lets a recorder hold `[Histogram; N]` without
/// allocation and lets callers snapshot one with `=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    /// `u64::MAX` while empty so the first `record` always wins.
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket a value lands in: 0 for 0, otherwise
    /// `min(31, bit-length of v)`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            let bits = (64 - value.leading_zeros()) as usize;
            bits.min(BUCKETS - 1)
        }
    }

    /// Inclusive lower bound of a bucket.
    pub fn bucket_lower_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Fold another histogram into this one (elementwise addition —
    /// associative and commutative, so fan-in order cannot change the
    /// result).
    pub fn merge_from(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded observations, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The non-empty buckets as `(bucket index, observation count)`
    /// pairs, in bucket order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
        for i in 1..BUCKETS - 1 {
            let lo = Histogram::bucket_lower_bound(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(2 * lo - 1), i);
        }
    }

    #[test]
    fn records_summary_stats() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        for v in [5, 0, 12, 12] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 29);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 12);
        assert_eq!(
            h.nonzero_buckets().collect::<Vec<_>>(),
            vec![
                (0, 1), // the 0
                (3, 1), // 5 in [4, 8)
                (4, 2), // 12 twice in [8, 16)
            ]
        );
    }

    /// Merge must be associative and commutative with the sequential
    /// recording as identity — the determinism property hide-par needs.
    #[test]
    fn merge_is_associative_and_commutative() {
        let parts: [&[u64]; 3] = [&[1, 7, 7, 900], &[], &[0, 0, 3]];
        let mut seq = Histogram::new();
        let mut hs: Vec<Histogram> = Vec::new();
        for part in parts {
            let mut h = Histogram::new();
            for &v in part {
                h.record(v);
                seq.record(v);
            }
            hs.push(h);
        }

        // (a + b) + c
        let mut left = hs[0];
        left.merge_from(&hs[1]);
        left.merge_from(&hs[2]);
        // a + (b + c)
        let mut bc = hs[1];
        bc.merge_from(&hs[2]);
        let mut right = hs[0];
        right.merge_from(&bc);
        // c + b + a
        let mut rev = hs[2];
        rev.merge_from(&hs[1]);
        rev.merge_from(&hs[0]);

        assert_eq!(left, seq);
        assert_eq!(right, seq);
        assert_eq!(rev, seq);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let snapshot = h;
        h.merge_from(&Histogram::new());
        assert_eq!(h, snapshot);

        let mut e = Histogram::new();
        e.merge_from(&snapshot);
        assert_eq!(e, snapshot);
    }
}
