//! Trace exporters: JSONL event logs and Chrome-trace/Perfetto JSON.
//!
//! Both formats are rendered with fixed field order and fixed float
//! precision, so exporting the same [`FlightRecorder`] always yields
//! the same bytes. The JSONL export contains **only** simulation-time
//! data and is therefore byte-identical across reruns and `--jobs`
//! counts; the Chrome export can optionally append wall-clock stage
//! spans from a [`Recorder`], which makes it informative but
//! non-deterministic — pass `None` when determinism matters.
//!
//! Each format has two entry points sharing one per-event renderer:
//! the in-memory functions ([`to_jsonl`], [`to_chrome_trace`]) take a
//! merged recorder and return a `String`, while the streaming
//! functions ([`stream_jsonl`], [`stream_chrome_trace`]) pull from any
//! [`EventSource`] — typically a [`KWayMerge`](crate::spill::KWayMerge)
//! over spilled runs — and push straight into an [`io::Write`],
//! holding one event at a time. Because both paths render through the
//! same helpers, their output is byte-identical for the same event
//! sequence; the differential battery in
//! `crates/bench/tests/stream_differential.rs` pins this.

use std::fmt::Write as _;
use std::io;

use crate::recorder::Recorder;
use crate::spill::{EventSource, SpillError};
use crate::trace::{FlightRecorder, TraceEvent, TraceEventKind};
use crate::Stage;

/// Renders one event as a single JSON line (no trailing newline).
fn write_event_jsonl(out: &mut String, e: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"t\":{:.9},\"src\":{},\"seq\":{},\"kind\":\"{}\"",
        e.time,
        e.source,
        e.seq,
        e.kind.name()
    );
    match e.kind {
        TraceEventKind::DtimBoundary {
            buffered,
            table_entries,
        } => {
            let _ = write!(
                out,
                ",\"buffered\":{buffered},\"table_entries\":{table_entries}"
            );
        }
        TraceEventKind::BtimEmitted { bytes, bits_set } => {
            let _ = write!(out, ",\"bytes\":{bytes},\"bits_set\":{bits_set}");
        }
        TraceEventKind::WakeDecision {
            aid,
            port,
            frame_id,
            class,
            cause,
        } => {
            let _ = write!(
                out,
                ",\"aid\":{aid},\"port\":{port},\"frame\":{frame_id},\"class\":\"{}\",\"cause\":\"{}\"",
                class.name(),
                cause.name()
            );
        }
        TraceEventKind::Join { aid, hide } => {
            let _ = write!(out, ",\"aid\":{aid},\"hide\":{hide}");
        }
        TraceEventKind::RefreshApplied { aid }
        | TraceEventKind::RefreshLost { aid }
        | TraceEventKind::PortChurn { aid }
        | TraceEventKind::EntryExpired { aid }
        | TraceEventKind::Leave { aid } => {
            let _ = write!(out, ",\"aid\":{aid}");
        }
    }
    out.push('}');
}

/// Serializes the event log as JSON Lines: one event object per line,
/// in `(time, source, seq)` order, with the schema documented in
/// `docs/metrics-schema.md`. Deterministic byte-for-byte.
#[must_use]
pub fn to_jsonl(rec: &FlightRecorder) -> String {
    let mut out = String::with_capacity(rec.len() * 96);
    for e in rec.events() {
        write_event_jsonl(&mut out, e);
        out.push('\n');
    }
    out
}

/// Streams a sorted event source as JSON Lines into `out`, one event
/// resident at a time. Renders through the same helper as
/// [`to_jsonl`], so for the same event sequence the bytes are
/// identical. Returns the number of events written.
///
/// # Errors
///
/// Propagates the source's decode failures and the writer's I/O
/// failures as [`SpillError`].
pub fn stream_jsonl<S, W>(src: &mut S, out: &mut W) -> Result<u64, SpillError>
where
    S: EventSource,
    W: io::Write,
{
    let mut line = String::with_capacity(160);
    let mut count = 0u64;
    while let Some(e) = src.next_event()? {
        line.clear();
        write_event_jsonl(&mut line, &e);
        line.push('\n');
        out.write_all(line.as_bytes())?;
        count += 1;
    }
    Ok(count)
}

/// Simulation seconds → Chrome-trace microsecond timestamps.
fn sim_micros(time: f64) -> u64 {
    (time * 1e6).round() as u64
}

/// Renders the Chrome-trace opening: header plus process-name
/// metadata (and the stages process when present).
fn write_chrome_prelude(out: &mut String, with_stages: bool) {
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"simulation (sim time)\"}}",
    );
    if with_stages {
        out.push_str(
            ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
             \"args\":{\"name\":\"stages (wall clock)\"}}",
        );
    }
}

/// Renders one simulation event as a Chrome instant event, with its
/// leading `",\n"` separator.
fn write_event_chrome(out: &mut String, e: &TraceEvent) {
    out.push_str(",\n");
    let name: String = match e.kind {
        TraceEventKind::WakeDecision { class, .. } => format!("wake:{}", class.name()),
        _ => e.kind.name().to_string(),
    };
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\
         \"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{",
        e.source,
        sim_micros(e.time)
    );
    match e.kind {
        TraceEventKind::DtimBoundary {
            buffered,
            table_entries,
        } => {
            let _ = write!(
                out,
                "\"buffered\":{buffered},\"table_entries\":{table_entries}"
            );
        }
        TraceEventKind::BtimEmitted { bytes, bits_set } => {
            let _ = write!(out, "\"bytes\":{bytes},\"bits_set\":{bits_set}");
        }
        TraceEventKind::WakeDecision {
            aid,
            port,
            frame_id,
            cause,
            ..
        } => {
            let _ = write!(
                out,
                "\"aid\":{aid},\"port\":{port},\"frame\":{frame_id},\"cause\":\"{}\"",
                cause.name()
            );
        }
        TraceEventKind::Join { aid, hide } => {
            let _ = write!(out, "\"aid\":{aid},\"hide\":{hide}");
        }
        TraceEventKind::RefreshApplied { aid }
        | TraceEventKind::RefreshLost { aid }
        | TraceEventKind::PortChurn { aid }
        | TraceEventKind::EntryExpired { aid }
        | TraceEventKind::Leave { aid } => {
            let _ = write!(out, "\"aid\":{aid}");
        }
    }
    out.push_str("}}");
}

/// Renders the wall-clock stage spans (complete events on process 2)
/// plus the closing bracket.
fn write_chrome_epilogue(out: &mut String, stages: Option<&Recorder>) {
    if let Some(rec) = stages {
        let mut offset_us = 0u64;
        for s in Stage::ALL {
            let t = rec.stage(s);
            if t.calls == 0 {
                continue;
            }
            let dur_us = (t.nanos / 1_000).max(1);
            out.push_str(",\n");
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\"pid\":2,\"tid\":0,\
                 \"ts\":{offset_us},\"dur\":{dur_us},\"args\":{{\"calls\":{}}}}}",
                s.name(),
                t.calls
            );
            offset_us += dur_us;
        }
    }
    out.push_str("\n]}\n");
}

/// Serializes the event log in the Chrome trace event format (load it
/// in `chrome://tracing` or Perfetto).
///
/// Simulation-time events render as instant events (`ph:"i"`) on
/// process 1, one thread track per source lane. When `stages` is
/// given, its wall-clock span timers render as complete events
/// (`ph:"X"`) laid out sequentially on process 2 — useful for eyeballing
/// where an experiment run spent its time, but wall-clock and therefore
/// not deterministic. Pass `None` for byte-stable output.
#[must_use]
pub fn to_chrome_trace(rec: &FlightRecorder, stages: Option<&Recorder>) -> String {
    let mut out = String::with_capacity(rec.len() * 144 + 512);
    write_chrome_prelude(&mut out, stages.is_some());
    for e in rec.events() {
        write_event_chrome(&mut out, e);
    }
    write_chrome_epilogue(&mut out, stages);
    out
}

/// Streams a sorted event source in the Chrome trace event format into
/// `out`, one event resident at a time. Renders through the same
/// helpers as [`to_chrome_trace`], so for the same event sequence and
/// the same `stages` the bytes are identical. Returns the number of
/// simulation events written.
///
/// # Errors
///
/// Propagates the source's decode failures and the writer's I/O
/// failures as [`SpillError`].
pub fn stream_chrome_trace<S, W>(
    src: &mut S,
    stages: Option<&Recorder>,
    out: &mut W,
) -> Result<u64, SpillError>
where
    S: EventSource,
    W: io::Write,
{
    let mut buf = String::with_capacity(512);
    write_chrome_prelude(&mut buf, stages.is_some());
    out.write_all(buf.as_bytes())?;
    let mut count = 0u64;
    while let Some(e) = src.next_event()? {
        buf.clear();
        write_event_chrome(&mut buf, &e);
        out.write_all(buf.as_bytes())?;
        count += 1;
    }
    buf.clear();
    write_chrome_epilogue(&mut buf, stages);
    out.write_all(buf.as_bytes())?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::MemSource;
    use crate::trace::{TraceSink, WakeCause, WakeClass};
    use crate::MetricsSink;

    fn sample() -> FlightRecorder {
        let mut fr = FlightRecorder::new();
        fr.set_source(3);
        fr.emit(
            0.1024,
            TraceEventKind::DtimBoundary {
                buffered: 2,
                table_entries: 5,
            },
        );
        fr.emit(
            0.1024,
            TraceEventKind::BtimEmitted {
                bytes: 4,
                bits_set: 1,
            },
        );
        fr.emit(
            0.1024,
            TraceEventKind::WakeDecision {
                aid: 7,
                port: 5353,
                frame_id: 42,
                class: WakeClass::Missed,
                cause: WakeCause::RefreshLost,
            },
        );
        fr.emit(0.2, TraceEventKind::Join { aid: 9, hide: true });
        fr.emit(0.3, TraceEventKind::Leave { aid: 9 });
        fr
    }

    #[test]
    fn jsonl_lines_are_well_formed_and_ordered() {
        let jsonl = to_jsonl(&sample());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(lines[0].contains("\"kind\":\"dtim_boundary\""));
        assert!(lines[0].contains("\"t\":0.102400000"));
        assert!(lines[2].contains("\"class\":\"missed\""));
        assert!(lines[2].contains("\"cause\":\"refresh_lost\""));
        assert!(lines[3].contains("\"hide\":true"));
    }

    #[test]
    fn jsonl_is_deterministic() {
        assert_eq!(to_jsonl(&sample()), to_jsonl(&sample()));
    }

    #[test]
    fn chrome_trace_has_instant_events_per_source_track() {
        let json = to_chrome_trace(&sample(), None);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"name\":\"wake:missed\""));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"ts\":102400"));
        assert!(!json.contains("\"pid\":2"));
    }

    #[test]
    fn chrome_trace_appends_stage_spans_when_given() {
        let mut rec = Recorder::new();
        rec.add(crate::Counter::SimsRun, 1);
        rec.add_span(Stage::Fig7, 2_000_000);
        rec.add_span(Stage::Fleet, 3_000_000);
        let json = to_chrome_trace(&sample(), Some(&rec));
        assert!(json.contains("\"name\":\"fig7\""));
        assert!(json.contains("\"name\":\"fleet\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn streamed_jsonl_is_byte_identical_to_in_memory() {
        let rec = sample();
        let mut src = MemSource::new(rec.events().copied().collect());
        let mut out = Vec::new();
        let n = stream_jsonl(&mut src, &mut out).unwrap();
        assert_eq!(n, 5);
        assert_eq!(out, to_jsonl(&rec).into_bytes());
    }

    #[test]
    fn streamed_chrome_trace_is_byte_identical_to_in_memory() {
        let rec = sample();
        let mut src = MemSource::new(rec.events().copied().collect());
        let mut out = Vec::new();
        let n = stream_chrome_trace(&mut src, None, &mut out).unwrap();
        assert_eq!(n, 5);
        assert_eq!(out, to_chrome_trace(&rec, None).into_bytes());

        // With stage spans attached, the epilogue must match too.
        let mut stages = Recorder::new();
        stages.add_span(Stage::Fleet, 2_000_000);
        let mut src = MemSource::new(rec.events().copied().collect());
        let mut out = Vec::new();
        stream_chrome_trace(&mut src, Some(&stages), &mut out).unwrap();
        assert_eq!(out, to_chrome_trace(&rec, Some(&stages)).into_bytes());
    }
}
