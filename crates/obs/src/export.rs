//! Trace exporters: JSONL event logs and Chrome-trace/Perfetto JSON.
//!
//! Both formats are rendered with fixed field order and fixed float
//! precision, so exporting the same [`FlightRecorder`] always yields
//! the same bytes. The JSONL export contains **only** simulation-time
//! data and is therefore byte-identical across reruns and `--jobs`
//! counts; the Chrome export can optionally append wall-clock stage
//! spans from a [`Recorder`], which makes it informative but
//! non-deterministic — pass `None` when determinism matters.

use std::fmt::Write as _;

use crate::recorder::Recorder;
use crate::trace::{FlightRecorder, TraceEvent, TraceEventKind};
use crate::Stage;

/// Renders one event as a single JSON line (no trailing newline).
fn write_event_jsonl(out: &mut String, e: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"t\":{:.9},\"src\":{},\"seq\":{},\"kind\":\"{}\"",
        e.time,
        e.source,
        e.seq,
        e.kind.name()
    );
    match e.kind {
        TraceEventKind::DtimBoundary {
            buffered,
            table_entries,
        } => {
            let _ = write!(
                out,
                ",\"buffered\":{buffered},\"table_entries\":{table_entries}"
            );
        }
        TraceEventKind::BtimEmitted { bytes, bits_set } => {
            let _ = write!(out, ",\"bytes\":{bytes},\"bits_set\":{bits_set}");
        }
        TraceEventKind::WakeDecision {
            aid,
            port,
            frame_id,
            class,
            cause,
        } => {
            let _ = write!(
                out,
                ",\"aid\":{aid},\"port\":{port},\"frame\":{frame_id},\"class\":\"{}\",\"cause\":\"{}\"",
                class.name(),
                cause.name()
            );
        }
        TraceEventKind::Join { aid, hide } => {
            let _ = write!(out, ",\"aid\":{aid},\"hide\":{hide}");
        }
        TraceEventKind::RefreshApplied { aid }
        | TraceEventKind::RefreshLost { aid }
        | TraceEventKind::PortChurn { aid }
        | TraceEventKind::EntryExpired { aid }
        | TraceEventKind::Leave { aid } => {
            let _ = write!(out, ",\"aid\":{aid}");
        }
    }
    out.push('}');
}

/// Serializes the event log as JSON Lines: one event object per line,
/// in `(time, source, seq)` order, with the schema documented in
/// `docs/metrics-schema.md`. Deterministic byte-for-byte.
#[must_use]
pub fn to_jsonl(rec: &FlightRecorder) -> String {
    let mut out = String::with_capacity(rec.len() * 96);
    for e in rec.events() {
        write_event_jsonl(&mut out, e);
        out.push('\n');
    }
    out
}

/// Simulation seconds → Chrome-trace microsecond timestamps.
fn sim_micros(time: f64) -> u64 {
    (time * 1e6).round() as u64
}

/// Serializes the event log in the Chrome trace event format (load it
/// in `chrome://tracing` or Perfetto).
///
/// Simulation-time events render as instant events (`ph:"i"`) on
/// process 1, one thread track per source lane. When `stages` is
/// given, its wall-clock span timers render as complete events
/// (`ph:"X"`) laid out sequentially on process 2 — useful for eyeballing
/// where an experiment run spent its time, but wall-clock and therefore
/// not deterministic. Pass `None` for byte-stable output.
#[must_use]
pub fn to_chrome_trace(rec: &FlightRecorder, stages: Option<&Recorder>) -> String {
    let mut out = String::with_capacity(rec.len() * 144 + 512);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"simulation (sim time)\"}}",
    );
    if stages.is_some() {
        out.push_str(
            ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
             \"args\":{\"name\":\"stages (wall clock)\"}}",
        );
    }

    for e in rec.events() {
        out.push_str(",\n");
        let name: String = match e.kind {
            TraceEventKind::WakeDecision { class, .. } => format!("wake:{}", class.name()),
            _ => e.kind.name().to_string(),
        };
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\
             \"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{",
            e.source,
            sim_micros(e.time)
        );
        match e.kind {
            TraceEventKind::DtimBoundary {
                buffered,
                table_entries,
            } => {
                let _ = write!(
                    out,
                    "\"buffered\":{buffered},\"table_entries\":{table_entries}"
                );
            }
            TraceEventKind::BtimEmitted { bytes, bits_set } => {
                let _ = write!(out, "\"bytes\":{bytes},\"bits_set\":{bits_set}");
            }
            TraceEventKind::WakeDecision {
                aid,
                port,
                frame_id,
                cause,
                ..
            } => {
                let _ = write!(
                    out,
                    "\"aid\":{aid},\"port\":{port},\"frame\":{frame_id},\"cause\":\"{}\"",
                    cause.name()
                );
            }
            TraceEventKind::Join { aid, hide } => {
                let _ = write!(out, "\"aid\":{aid},\"hide\":{hide}");
            }
            TraceEventKind::RefreshApplied { aid }
            | TraceEventKind::RefreshLost { aid }
            | TraceEventKind::PortChurn { aid }
            | TraceEventKind::EntryExpired { aid }
            | TraceEventKind::Leave { aid } => {
                let _ = write!(out, "\"aid\":{aid}");
            }
        }
        out.push_str("}}");
    }

    if let Some(rec) = stages {
        let mut offset_us = 0u64;
        for s in Stage::ALL {
            let t = rec.stage(s);
            if t.calls == 0 {
                continue;
            }
            let dur_us = (t.nanos / 1_000).max(1);
            out.push_str(",\n");
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\"pid\":2,\"tid\":0,\
                 \"ts\":{offset_us},\"dur\":{dur_us},\"args\":{{\"calls\":{}}}}}",
                s.name(),
                t.calls
            );
            offset_us += dur_us;
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceSink, WakeCause, WakeClass};
    use crate::MetricsSink;

    fn sample() -> FlightRecorder {
        let mut fr = FlightRecorder::new();
        fr.set_source(3);
        fr.emit(
            0.1024,
            TraceEventKind::DtimBoundary {
                buffered: 2,
                table_entries: 5,
            },
        );
        fr.emit(
            0.1024,
            TraceEventKind::BtimEmitted {
                bytes: 4,
                bits_set: 1,
            },
        );
        fr.emit(
            0.1024,
            TraceEventKind::WakeDecision {
                aid: 7,
                port: 5353,
                frame_id: 42,
                class: WakeClass::Missed,
                cause: WakeCause::RefreshLost,
            },
        );
        fr.emit(0.2, TraceEventKind::Join { aid: 9, hide: true });
        fr.emit(0.3, TraceEventKind::Leave { aid: 9 });
        fr
    }

    #[test]
    fn jsonl_lines_are_well_formed_and_ordered() {
        let jsonl = to_jsonl(&sample());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(lines[0].contains("\"kind\":\"dtim_boundary\""));
        assert!(lines[0].contains("\"t\":0.102400000"));
        assert!(lines[2].contains("\"class\":\"missed\""));
        assert!(lines[2].contains("\"cause\":\"refresh_lost\""));
        assert!(lines[3].contains("\"hide\":true"));
    }

    #[test]
    fn jsonl_is_deterministic() {
        assert_eq!(to_jsonl(&sample()), to_jsonl(&sample()));
    }

    #[test]
    fn chrome_trace_has_instant_events_per_source_track() {
        let json = to_chrome_trace(&sample(), None);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"name\":\"wake:missed\""));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"ts\":102400"));
        assert!(!json.contains("\"pid\":2"));
    }

    #[test]
    fn chrome_trace_appends_stage_spans_when_given() {
        let mut rec = Recorder::new();
        rec.add(crate::Counter::SimsRun, 1);
        rec.add_span(Stage::Fig7, 2_000_000);
        rec.add_span(Stage::Fleet, 3_000_000);
        let json = to_chrome_trace(&sample(), Some(&rec));
        assert!(json.contains("\"name\":\"fig7\""));
        assert!(json.contains("\"name\":\"fleet\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
