//! The [`MetricsSink`] trait and its zero-cost [`NoopSink`].

use crate::metric::{Counter, Distribution};

/// Where instrumented code sends its metrics.
///
/// Hot paths take `S: MetricsSink` as a generic parameter so the
/// compiler monomorphizes per sink: with [`NoopSink`] every call is an
/// empty inlined function and the instrumented code compiles to the
/// same machine code as the uninstrumented version (verified by
/// `bench_throughput`); with [`crate::Recorder`] each call is an array
/// index and an add.
pub trait MetricsSink {
    /// Add `n` to a counter.
    fn add(&mut self, counter: Counter, n: u64);

    /// Record one observation of a distribution.
    fn observe(&mut self, dist: Distribution, value: u64);

    /// Add 1 to a counter.
    #[inline]
    fn incr(&mut self, counter: Counter) {
        self.add(counter, 1);
    }
}

/// A sink that discards everything, at zero cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl MetricsSink for NoopSink {
    #[inline]
    fn add(&mut self, _counter: Counter, _n: u64) {}

    #[inline]
    fn observe(&mut self, _dist: Distribution, _value: u64) {}
}

/// Forwarding impl so instrumented functions can be called with either
/// an owned sink or a borrowed one without extra generics at the call
/// site.
impl<S: MetricsSink + ?Sized> MetricsSink for &mut S {
    #[inline]
    fn add(&mut self, counter: Counter, n: u64) {
        (**self).add(counter, n);
    }

    #[inline]
    fn observe(&mut self, dist: Distribution, value: u64) {
        (**self).observe(dist, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_accepts_everything() {
        let mut sink = NoopSink;
        sink.add(Counter::SimsRun, 10);
        sink.incr(Counter::SimsRun);
        sink.observe(Distribution::FramesPerDtim, 7);
    }

    #[test]
    fn forwarding_impl_reaches_the_recorder() {
        let mut rec = crate::Recorder::new();
        fn record_two<S: MetricsSink>(mut sink: S) {
            sink.incr(Counter::SimsRun);
            sink.incr(Counter::SimsRun);
        }
        record_two(&mut rec);
        assert_eq!(rec.counter(Counter::SimsRun), 2);
    }
}
