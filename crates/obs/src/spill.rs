//! Out-of-core trace spilling: a compact framed on-disk codec for
//! [`TraceEvent`] runs plus the chunked k-way merge that streams them
//! back in global `(time, source, seq)` order with bounded memory.
//!
//! The in-memory export path accumulates every shard's
//! [`FlightRecorder`](crate::FlightRecorder) and tree-folds them before
//! serializing — simple, but resident memory grows with the fleet, and
//! a metro-scale run (100k BSSes) does not fit. This module is the
//! other half of the trade: shards (or windows of shards) spill their
//! **already-sorted** logs to disk as *runs* of fixed-size framed
//! chunks, and [`KWayMerge`] streams the runs straight into the
//! exporters, holding one cursor and one decoded chunk per run.
//!
//! # Determinism contract
//!
//! `(time, source, seq)` is a *strict* total order over distinct
//! events (a source never reuses a sequence number), so any correct
//! merge — the in-memory tree fold or the on-disk k-way merge, at any
//! chunk size, any run partitioning, any `--jobs` count — yields the
//! same event sequence, and therefore byte-identical exports. The
//! codec stores `f64` time as its exact IEEE-754 bits, so nothing is
//! lost in the round trip. The differential tests in
//! `crates/obs/tests/proptest_spill.rs` and
//! `crates/bench/tests/stream_differential.rs` pin this down.
//!
//! # File format (`hide-spill/1`)
//!
//! ```text
//! magic "HIDESPL1"                                       8 bytes
//! frame*                                                 tag-prefixed
//!   0x01 RUN   { events: u64, dropped: u64, crc: u32 }   one per run
//!   0x02 CHUNK { count: u32, bytes: u32, crc: u32 }      then payload
//!   0x03 END   { runs: u32, events: u64, crc: u32 }      exactly once
//! ```
//!
//! Chunk payloads are consecutive event frames (tag byte, raw time
//! bits, source, seq, kind fields — all little-endian, length implied
//! by the tag). Every frame header and chunk payload carries an
//! FNV-1a checksum; a missing `END` frame marks truncation. Decoding
//! never panics: every malformed input maps to a structured
//! [`SpillError`].

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::trace::{TraceEvent, TraceEventKind, WakeCause, WakeClass};

/// Magic bytes opening every spill file.
pub const SPILL_MAGIC: [u8; 8] = *b"HIDESPL1";

/// Default number of events per framed chunk.
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

const TAG_RUN: u8 = 0x01;
const TAG_CHUNK: u8 = 0x02;
const TAG_END: u8 = 0x03;

const RUN_HEADER_LEN: usize = 1 + 8 + 8 + 4;
const CHUNK_HEADER_LEN: usize = 1 + 4 + 4 + 4;
const END_FRAME_LEN: usize = 1 + 4 + 8 + 4;

/// Anything that can go wrong writing or reading a spill file.
///
/// Decoding is total: truncated files, flipped bytes, unknown frame
/// or event tags, and impossible field values all surface as a
/// variant here — never as a panic.
#[derive(Debug)]
#[non_exhaustive]
pub enum SpillError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with [`SPILL_MAGIC`].
    BadMagic {
        /// The bytes actually found (may be shorter than 8).
        found: Vec<u8>,
    },
    /// The file ended mid-frame, or before the `END` frame.
    Truncated {
        /// Byte offset at which more data was expected.
        offset: u64,
    },
    /// A frame failed its checksum or carried an impossible value.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: u64,
        /// What the decoder objected to.
        reason: &'static str,
    },
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "spill I/O error: {e}"),
            SpillError::BadMagic { found } => {
                write!(f, "not a hide-spill/1 file (magic {found:02x?})")
            }
            SpillError::Truncated { offset } => {
                write!(f, "spill file truncated at byte {offset}")
            }
            SpillError::Corrupt { offset, reason } => {
                write!(f, "spill file corrupt at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpillError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SpillError {
    fn from(e: io::Error) -> Self {
        SpillError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes` — the checksum (truncated to 32 bits in
/// frame headers) and the content hash the determinism gates pin.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_extend(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a 64-bit hash from a previous state — lets large
/// exports be hashed as they stream through a writer.
#[must_use]
pub fn fnv1a64_extend(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

fn crc32_of(bytes: &[u8]) -> u32 {
    (fnv1a64(bytes) & 0xffff_ffff) as u32
}

// ---------------------------------------------------------------------
// Event codec
// ---------------------------------------------------------------------

fn kind_tag(kind: &TraceEventKind) -> u8 {
    match kind {
        TraceEventKind::DtimBoundary { .. } => 1,
        TraceEventKind::BtimEmitted { .. } => 2,
        TraceEventKind::WakeDecision { .. } => 3,
        TraceEventKind::RefreshApplied { .. } => 4,
        TraceEventKind::RefreshLost { .. } => 5,
        TraceEventKind::PortChurn { .. } => 6,
        TraceEventKind::EntryExpired { .. } => 7,
        TraceEventKind::Join { .. } => 8,
        TraceEventKind::Leave { .. } => 9,
    }
}

fn class_code(class: WakeClass) -> u8 {
    match class {
        WakeClass::Proper => 0,
        WakeClass::Missed => 1,
        WakeClass::Spurious => 2,
        WakeClass::Legacy => 3,
    }
}

fn class_from(code: u8) -> Option<WakeClass> {
    Some(match code {
        0 => WakeClass::Proper,
        1 => WakeClass::Missed,
        2 => WakeClass::Spurious,
        3 => WakeClass::Legacy,
        _ => return None,
    })
}

fn cause_code(cause: WakeCause) -> u8 {
    match cause {
        WakeCause::Proper => 0,
        WakeCause::RefreshLost => 1,
        WakeCause::EntryExpired => 2,
        WakeCause::PortChurn => 3,
        WakeCause::Unknown => 4,
    }
}

fn cause_from(code: u8) -> Option<WakeCause> {
    Some(match code {
        0 => WakeCause::Proper,
        1 => WakeCause::RefreshLost,
        2 => WakeCause::EntryExpired,
        3 => WakeCause::PortChurn,
        4 => WakeCause::Unknown,
        _ => return None,
    })
}

/// Appends one event frame to `buf`: kind tag, exact `f64` time bits,
/// source, seq, then the kind's fields — all little-endian.
pub fn encode_event(buf: &mut Vec<u8>, e: &TraceEvent) {
    buf.push(kind_tag(&e.kind));
    buf.extend_from_slice(&e.time.to_bits().to_le_bytes());
    buf.extend_from_slice(&e.source.to_le_bytes());
    buf.extend_from_slice(&e.seq.to_le_bytes());
    match e.kind {
        TraceEventKind::DtimBoundary {
            buffered,
            table_entries,
        } => {
            buf.extend_from_slice(&buffered.to_le_bytes());
            buf.extend_from_slice(&table_entries.to_le_bytes());
        }
        TraceEventKind::BtimEmitted { bytes, bits_set } => {
            buf.extend_from_slice(&bytes.to_le_bytes());
            buf.extend_from_slice(&bits_set.to_le_bytes());
        }
        TraceEventKind::WakeDecision {
            aid,
            port,
            frame_id,
            class,
            cause,
        } => {
            buf.extend_from_slice(&aid.to_le_bytes());
            buf.extend_from_slice(&port.to_le_bytes());
            buf.extend_from_slice(&frame_id.to_le_bytes());
            buf.push(class_code(class));
            buf.push(cause_code(cause));
        }
        TraceEventKind::Join { aid, hide } => {
            buf.extend_from_slice(&aid.to_le_bytes());
            buf.push(u8::from(hide));
        }
        TraceEventKind::RefreshApplied { aid }
        | TraceEventKind::RefreshLost { aid }
        | TraceEventKind::PortChurn { aid }
        | TraceEventKind::EntryExpired { aid }
        | TraceEventKind::Leave { aid } => {
            buf.extend_from_slice(&aid.to_le_bytes());
        }
    }
}

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SpillError> {
        if self.pos + n > self.bytes.len() {
            return Err(SpillError::Corrupt {
                offset: self.base + self.pos as u64,
                reason: "event frame runs past its chunk",
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SpillError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SpillError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, SpillError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SpillError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Decodes the event frames of one chunk payload into `out`. `base` is
/// the payload's absolute file offset, used for error reporting.
pub fn decode_chunk_events(
    payload: &[u8],
    count: u32,
    base: u64,
    out: &mut Vec<TraceEvent>,
) -> Result<(), SpillError> {
    let mut r = ByteReader {
        bytes: payload,
        pos: 0,
        base,
    };
    for _ in 0..count {
        let frame_at = base + r.pos as u64;
        let tag = r.u8()?;
        let time = f64::from_bits(r.u64()?);
        let source = r.u32()?;
        let seq = r.u64()?;
        let kind = match tag {
            1 => TraceEventKind::DtimBoundary {
                buffered: r.u32()?,
                table_entries: r.u32()?,
            },
            2 => TraceEventKind::BtimEmitted {
                bytes: r.u32()?,
                bits_set: r.u32()?,
            },
            3 => {
                let aid = r.u16()?;
                let port = r.u16()?;
                let frame_id = r.u64()?;
                let class = class_from(r.u8()?).ok_or(SpillError::Corrupt {
                    offset: frame_at,
                    reason: "invalid wake class code",
                })?;
                let cause = cause_from(r.u8()?).ok_or(SpillError::Corrupt {
                    offset: frame_at,
                    reason: "invalid wake cause code",
                })?;
                TraceEventKind::WakeDecision {
                    aid,
                    port,
                    frame_id,
                    class,
                    cause,
                }
            }
            4 => TraceEventKind::RefreshApplied { aid: r.u16()? },
            5 => TraceEventKind::RefreshLost { aid: r.u16()? },
            6 => TraceEventKind::PortChurn { aid: r.u16()? },
            7 => TraceEventKind::EntryExpired { aid: r.u16()? },
            8 => TraceEventKind::Join {
                aid: r.u16()?,
                hide: r.u8()? != 0,
            },
            9 => TraceEventKind::Leave { aid: r.u16()? },
            _ => {
                return Err(SpillError::Corrupt {
                    offset: frame_at,
                    reason: "unknown event kind tag",
                })
            }
        };
        if !time.is_finite() {
            return Err(SpillError::Corrupt {
                offset: frame_at,
                reason: "non-finite event time",
            });
        }
        out.push(TraceEvent {
            time,
            source,
            seq,
            kind,
        });
    }
    if r.pos != payload.len() {
        return Err(SpillError::Corrupt {
            offset: base + r.pos as u64,
            reason: "trailing bytes after last event frame in chunk",
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Byte range and tallies of one sorted run inside a spill file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMeta {
    /// Offset of the first chunk frame (just past the `RUN` header).
    pub start: u64,
    /// Offset one past the run's final chunk frame.
    pub end: u64,
    /// Events in the run.
    pub events: u64,
    /// Ring-bound drops the producing recorder(s) accumulated — the
    /// drop count travels with the spilled data so accounting stays
    /// exact across spill boundaries.
    pub dropped: u64,
}

/// Appends sorted runs of framed, checksummed chunks to a spill file.
///
/// Each run must be internally sorted by `(time, source, seq)` — shard
/// logs are sorted by construction, window folds by the merge — and
/// the writer records each run's byte range so [`SpillIndex::merge`]
/// can stream them back without re-scanning the file.
#[derive(Debug)]
pub struct SpillWriter {
    out: BufWriter<File>,
    path: PathBuf,
    offset: u64,
    runs: Vec<RunMeta>,
    chunk_events: usize,
    scratch: Vec<u8>,
}

impl SpillWriter {
    /// Creates (truncating) the spill file and writes the magic.
    ///
    /// # Errors
    ///
    /// Any filesystem failure surfaces as [`SpillError::Io`].
    pub fn create(path: impl Into<PathBuf>, chunk_events: usize) -> Result<Self, SpillError> {
        let path = path.into();
        let file = File::create(&path)?;
        let mut out = BufWriter::new(file);
        out.write_all(&SPILL_MAGIC)?;
        Ok(SpillWriter {
            out,
            path,
            offset: SPILL_MAGIC.len() as u64,
            runs: Vec::new(),
            chunk_events: chunk_events.max(1),
            scratch: Vec::new(),
        })
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), SpillError> {
        self.out.write_all(bytes)?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Appends one sorted run, chunked at the writer's chunk size, and
    /// records `dropped` ring-bound evictions alongside it.
    ///
    /// # Errors
    ///
    /// Any filesystem failure surfaces as [`SpillError::Io`].
    pub fn write_run(&mut self, events: &[TraceEvent], dropped: u64) -> Result<(), SpillError> {
        let mut header = [0u8; RUN_HEADER_LEN];
        header[0] = TAG_RUN;
        header[1..9].copy_from_slice(&(events.len() as u64).to_le_bytes());
        header[9..17].copy_from_slice(&dropped.to_le_bytes());
        let crc = crc32_of(&header[1..17]);
        header[17..21].copy_from_slice(&crc.to_le_bytes());
        self.write_all(&header)?;

        let start = self.offset;
        for chunk in events.chunks(self.chunk_events) {
            self.scratch.clear();
            for e in chunk {
                encode_event(&mut self.scratch, e);
            }
            let mut ch = [0u8; CHUNK_HEADER_LEN];
            ch[0] = TAG_CHUNK;
            ch[1..5].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
            ch[5..9].copy_from_slice(&(self.scratch.len() as u32).to_le_bytes());
            ch[9..13].copy_from_slice(&crc32_of(&self.scratch).to_le_bytes());
            self.write_all(&ch)?;
            let payload = std::mem::take(&mut self.scratch);
            self.write_all(&payload)?;
            self.scratch = payload;
        }
        self.runs.push(RunMeta {
            start,
            end: self.offset,
            events: events.len() as u64,
            dropped,
        });
        Ok(())
    }

    /// Writes the `END` frame, flushes, and returns the run index.
    ///
    /// # Errors
    ///
    /// Any filesystem failure surfaces as [`SpillError::Io`].
    pub fn finish(mut self) -> Result<SpillIndex, SpillError> {
        let total: u64 = self.runs.iter().map(|r| r.events).sum();
        let mut end = [0u8; END_FRAME_LEN];
        end[0] = TAG_END;
        end[1..5].copy_from_slice(&(self.runs.len() as u32).to_le_bytes());
        end[5..13].copy_from_slice(&total.to_le_bytes());
        let crc = crc32_of(&end[1..13]);
        end[13..17].copy_from_slice(&crc.to_le_bytes());
        self.write_all(&end)?;
        self.out.flush()?;
        Ok(SpillIndex {
            path: self.path,
            runs: self.runs,
            bytes: self.offset,
        })
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Where every run of a finished spill file lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillIndex {
    /// The spill file.
    pub path: PathBuf,
    /// Byte ranges and tallies, in append order.
    pub runs: Vec<RunMeta>,
    /// Total file size in bytes.
    pub bytes: u64,
}

impl SpillIndex {
    /// Rebuilds the index by scanning a finished spill file,
    /// verifying the magic, every frame checksum, chunk/run event
    /// counts, and the `END` frame.
    ///
    /// # Errors
    ///
    /// [`SpillError::BadMagic`] / [`Truncated`](SpillError::Truncated)
    /// / [`Corrupt`](SpillError::Corrupt) on any malformed input;
    /// [`SpillError::Io`] on filesystem failure.
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, SpillError> {
        let path = path.into();
        let bytes = std::fs::read(&path)?;
        let runs = scan(&bytes)?;
        Ok(SpillIndex {
            path,
            runs,
            bytes: bytes.len() as u64,
        })
    }

    /// Sum of every run's event count.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.runs.iter().map(|r| r.events).sum()
    }

    /// Sum of every run's recorded ring-bound drops.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.runs.iter().map(|r| r.dropped).sum()
    }

    /// Opens one cursor per run and returns the k-way merge over them.
    /// The merge holds one decoded chunk per run — memory is bounded
    /// by `runs × chunk size`, independent of the file size.
    ///
    /// # Errors
    ///
    /// Any filesystem or decode failure surfaces as a [`SpillError`].
    pub fn merge(&self) -> Result<KWayMerge<RunReader>, SpillError> {
        let file = std::rc::Rc::new(File::open(&self.path)?);
        let sources = self
            .runs
            .iter()
            .map(|run| RunReader {
                file: std::rc::Rc::clone(&file),
                offset: run.start,
                end: run.end,
                remaining: run.events,
                chunk: Vec::new().into_iter(),
                buf: Vec::new(),
                decoded: Vec::new(),
            })
            .collect();
        KWayMerge::new(sources)
    }
}

/// Validates `bytes` as a complete spill file and returns its runs.
fn scan(bytes: &[u8]) -> Result<Vec<RunMeta>, SpillError> {
    if bytes.len() < SPILL_MAGIC.len() || bytes[..SPILL_MAGIC.len()] != SPILL_MAGIC {
        return Err(SpillError::BadMagic {
            found: bytes[..bytes.len().min(SPILL_MAGIC.len())].to_vec(),
        });
    }
    let mut pos = SPILL_MAGIC.len();
    let mut runs: Vec<RunMeta> = Vec::new();
    let mut open_run: Option<RunMeta> = None;
    let mut decoded_in_run = 0u64;
    let mut saw_end = false;
    while pos < bytes.len() {
        let frame_at = pos as u64;
        let need = |n: usize, at: usize| -> Result<(), SpillError> {
            if at + n > bytes.len() {
                Err(SpillError::Truncated { offset: at as u64 })
            } else {
                Ok(())
            }
        };
        match bytes[pos] {
            TAG_RUN => {
                need(RUN_HEADER_LEN, pos)?;
                let body = &bytes[pos + 1..pos + 17];
                let crc = u32::from_le_bytes(bytes[pos + 17..pos + 21].try_into().unwrap());
                if crc != crc32_of(body) {
                    return Err(SpillError::Corrupt {
                        offset: frame_at,
                        reason: "run header checksum mismatch",
                    });
                }
                if let Some(mut run) = open_run.take() {
                    if decoded_in_run != run.events {
                        return Err(SpillError::Corrupt {
                            offset: frame_at,
                            reason: "run event count disagrees with its chunks",
                        });
                    }
                    run.end = frame_at;
                    runs.push(run);
                }
                pos += RUN_HEADER_LEN;
                open_run = Some(RunMeta {
                    start: pos as u64,
                    end: pos as u64,
                    events: u64::from_le_bytes(body[..8].try_into().unwrap()),
                    dropped: u64::from_le_bytes(body[8..16].try_into().unwrap()),
                });
                decoded_in_run = 0;
            }
            TAG_CHUNK => {
                if open_run.is_none() {
                    return Err(SpillError::Corrupt {
                        offset: frame_at,
                        reason: "chunk frame outside any run",
                    });
                }
                need(CHUNK_HEADER_LEN, pos)?;
                let count = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().unwrap());
                let len = u32::from_le_bytes(bytes[pos + 5..pos + 9].try_into().unwrap()) as usize;
                let crc = u32::from_le_bytes(bytes[pos + 9..pos + 13].try_into().unwrap());
                need(len, pos + CHUNK_HEADER_LEN)?;
                let payload = &bytes[pos + CHUNK_HEADER_LEN..pos + CHUNK_HEADER_LEN + len];
                if crc != crc32_of(payload) {
                    return Err(SpillError::Corrupt {
                        offset: frame_at,
                        reason: "chunk payload checksum mismatch",
                    });
                }
                // No capacity hint from `count`: the field is outside
                // the payload checksum, and a corrupted value must not
                // drive a giant allocation before decode rejects it.
                let mut events = Vec::new();
                decode_chunk_events(payload, count, (pos + CHUNK_HEADER_LEN) as u64, &mut events)?;
                decoded_in_run += u64::from(count);
                pos += CHUNK_HEADER_LEN + len;
            }
            TAG_END => {
                need(END_FRAME_LEN, pos)?;
                let body = &bytes[pos + 1..pos + 13];
                let crc = u32::from_le_bytes(bytes[pos + 13..pos + 17].try_into().unwrap());
                if crc != crc32_of(body) {
                    return Err(SpillError::Corrupt {
                        offset: frame_at,
                        reason: "end frame checksum mismatch",
                    });
                }
                if let Some(mut run) = open_run.take() {
                    if decoded_in_run != run.events {
                        return Err(SpillError::Corrupt {
                            offset: frame_at,
                            reason: "run event count disagrees with its chunks",
                        });
                    }
                    run.end = frame_at;
                    runs.push(run);
                }
                let end_runs = u32::from_le_bytes(body[..4].try_into().unwrap());
                let end_events = u64::from_le_bytes(body[4..12].try_into().unwrap());
                if end_runs as usize != runs.len()
                    || end_events != runs.iter().map(|r| r.events).sum::<u64>()
                {
                    return Err(SpillError::Corrupt {
                        offset: frame_at,
                        reason: "end frame tallies disagree with the runs",
                    });
                }
                pos += END_FRAME_LEN;
                if pos != bytes.len() {
                    return Err(SpillError::Corrupt {
                        offset: pos as u64,
                        reason: "trailing bytes after end frame",
                    });
                }
                saw_end = true;
            }
            _ => {
                return Err(SpillError::Corrupt {
                    offset: frame_at,
                    reason: "unknown frame tag",
                });
            }
        }
    }
    if !saw_end {
        return Err(SpillError::Truncated {
            offset: bytes.len() as u64,
        });
    }
    Ok(runs)
}

/// A streaming source of events in `(time, source, seq)` order —
/// either a decoded spill run or an in-memory buffer.
pub trait EventSource {
    /// The next event, `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// Decode or I/O failures surface as a [`SpillError`].
    fn next_event(&mut self) -> Result<Option<TraceEvent>, SpillError>;
}

/// An in-memory [`EventSource`] — the zero-disk counterpart used by
/// tests and by single-recorder exports.
#[derive(Debug)]
pub struct MemSource {
    events: std::vec::IntoIter<TraceEvent>,
}

impl MemSource {
    /// Wraps an already-sorted event vector.
    #[must_use]
    pub fn new(events: Vec<TraceEvent>) -> Self {
        MemSource {
            events: events.into_iter(),
        }
    }
}

impl EventSource for MemSource {
    fn next_event(&mut self) -> Result<Option<TraceEvent>, SpillError> {
        Ok(self.events.next())
    }
}

/// A cursor over one run's chunk frames, decoding a chunk at a time.
///
/// All cursors of a merge share one file handle; each positions the
/// shared handle before every read, so the merge stays single-threaded
/// and portable while holding exactly one descriptor open however many
/// runs the file contains.
#[derive(Debug)]
pub struct RunReader {
    file: std::rc::Rc<File>,
    offset: u64,
    end: u64,
    remaining: u64,
    chunk: std::vec::IntoIter<TraceEvent>,
    buf: Vec<u8>,
    decoded: Vec<TraceEvent>,
}

impl RunReader {
    fn read_exact_at(&mut self, len: usize) -> Result<(), SpillError> {
        self.buf.resize(len, 0);
        let mut f: &File = &self.file;
        f.seek(SeekFrom::Start(self.offset))?;
        f.read_exact(&mut self.buf)?;
        self.offset += len as u64;
        Ok(())
    }

    fn refill(&mut self) -> Result<bool, SpillError> {
        if self.remaining == 0 || self.offset >= self.end {
            return Ok(false);
        }
        let frame_at = self.offset;
        self.read_exact_at(CHUNK_HEADER_LEN)?;
        if self.buf[0] != TAG_CHUNK {
            return Err(SpillError::Corrupt {
                offset: frame_at,
                reason: "expected chunk frame inside run",
            });
        }
        let count = u32::from_le_bytes(self.buf[1..5].try_into().unwrap());
        let len = u32::from_le_bytes(self.buf[5..9].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(self.buf[9..13].try_into().unwrap());
        // Re-validate the length against the run's byte range even
        // though `load` scanned the file: if the file shrank or was
        // rewritten since, the corrupted length must surface as an
        // error, not as a giant buffer allocation.
        if len as u64 > self.end.saturating_sub(self.offset) {
            return Err(SpillError::Corrupt {
                offset: frame_at,
                reason: "chunk length exceeds its run",
            });
        }
        let payload_at = self.offset;
        self.read_exact_at(len)?;
        if crc != crc32_of(&self.buf) {
            return Err(SpillError::Corrupt {
                offset: frame_at,
                reason: "chunk payload checksum mismatch",
            });
        }
        self.decoded.clear();
        decode_chunk_events(&self.buf, count, payload_at, &mut self.decoded)?;
        self.remaining = self.remaining.saturating_sub(u64::from(count));
        self.chunk = std::mem::take(&mut self.decoded).into_iter();
        Ok(true)
    }
}

impl EventSource for RunReader {
    fn next_event(&mut self) -> Result<Option<TraceEvent>, SpillError> {
        loop {
            if let Some(e) = self.chunk.next() {
                return Ok(Some(e));
            }
            if !self.refill()? {
                return Ok(None);
            }
        }
    }
}

/// `f64` wrapper ordered by `total_cmp`, so heap keys are `Ord`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TotalF64(f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

type HeapKey = (TotalF64, u32, u64, usize);

struct HeapEntry {
    key: HeapKey,
    event: TraceEvent,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, the merge wants the min.
        other.key.cmp(&self.key)
    }
}

/// Streaming k-way merge over sorted [`EventSource`]s under the global
/// `(time, source, seq)` order, with the source index as the final
/// tie-break — the same left-wins rule the in-memory tree fold
/// applies, so both paths pop identical sequences.
pub struct KWayMerge<S: EventSource> {
    sources: Vec<S>,
    heap: BinaryHeap<HeapEntry>,
}

impl<S: EventSource> KWayMerge<S> {
    /// Primes one cursor per source.
    ///
    /// # Errors
    ///
    /// Propagates the first source's decode or I/O failure.
    pub fn new(mut sources: Vec<S>) -> Result<Self, SpillError> {
        let mut heap = BinaryHeap::with_capacity(sources.len());
        for (lane, src) in sources.iter_mut().enumerate() {
            if let Some(event) = src.next_event()? {
                heap.push(HeapEntry {
                    key: (TotalF64(event.time), event.source, event.seq, lane),
                    event,
                });
            }
        }
        Ok(KWayMerge { sources, heap })
    }

    /// Pops the globally next event, refilling the lane it came from.
    ///
    /// # Errors
    ///
    /// Propagates the lane's decode or I/O failure.
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, SpillError> {
        let Some(HeapEntry { key, event }) = self.heap.pop() else {
            return Ok(None);
        };
        let lane = key.3;
        if let Some(next) = self.sources[lane].next_event()? {
            self.heap.push(HeapEntry {
                key: (TotalF64(next.time), next.source, next.seq, lane),
                event: next,
            });
        }
        Ok(Some(event))
    }

    /// Drains the merge into a vector — test and small-input helper;
    /// metro-scale callers should stream via [`next_event`](Self::next_event).
    ///
    /// # Errors
    ///
    /// Propagates the first decode or I/O failure.
    pub fn collect_all(mut self) -> Result<Vec<TraceEvent>, SpillError> {
        let mut out = Vec::new();
        while let Some(e) = self.next_event()? {
            out.push(e);
        }
        Ok(out)
    }
}

impl<S: EventSource> EventSource for KWayMerge<S> {
    fn next_event(&mut self) -> Result<Option<TraceEvent>, SpillError> {
        KWayMerge::next_event(self)
    }
}

/// An [`io::Write`] adapter that FNV-1a-hashes and counts every byte
/// on its way through — how the determinism gates fingerprint exports
/// that are too large to pin as goldens.
#[derive(Debug)]
pub struct HashingWriter<W: Write> {
    inner: W,
    hash: u64,
    bytes: u64,
}

impl<W: Write> HashingWriter<W> {
    /// Wraps `inner` with a fresh FNV-1a state.
    pub fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hash: 0xcbf2_9ce4_8422_2325,
            bytes: 0,
        }
    }

    /// FNV-1a 64 hash of everything written so far.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Bytes written so far.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash = fnv1a64_extend(self.hash, &buf[..n]);
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Reads every run of a finished spill file into memory — the
/// round-trip half of the codec tests; production paths stream via
/// [`SpillIndex::merge`].
///
/// # Errors
///
/// Any malformed input surfaces as a structured [`SpillError`].
pub fn read_all_runs(path: &Path) -> Result<Vec<(Vec<TraceEvent>, u64)>, SpillError> {
    let index = SpillIndex::load(path)?;
    let mut out = Vec::with_capacity(index.runs.len());
    for run in &index.runs {
        let file = std::rc::Rc::new(File::open(path)?);
        let mut reader = RunReader {
            file,
            offset: run.start,
            end: run.end,
            remaining: run.events,
            chunk: Vec::new().into_iter(),
            buf: Vec::new(),
            decoded: Vec::new(),
        };
        let mut events = Vec::with_capacity(run.events as usize);
        while let Some(e) = reader.next_event()? {
            events.push(e);
        }
        out.push((events, run.dropped));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FlightRecorder, TraceSink};

    fn sample_events() -> Vec<TraceEvent> {
        let mut fr = FlightRecorder::new();
        fr.set_source(3);
        fr.emit(
            0.1,
            TraceEventKind::DtimBoundary {
                buffered: 2,
                table_entries: 5,
            },
        );
        fr.emit(
            0.1,
            TraceEventKind::WakeDecision {
                aid: 7,
                port: 5353,
                frame_id: 42,
                class: WakeClass::Missed,
                cause: WakeCause::RefreshLost,
            },
        );
        fr.emit(0.2, TraceEventKind::Join { aid: 9, hide: true });
        fr.emit(0.3, TraceEventKind::Leave { aid: 9 });
        fr.events().copied().collect()
    }

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "hide-spill-unit-{}-{tag}-{n}.bin",
            std::process::id()
        ))
    }

    #[test]
    fn write_read_round_trip_at_chunk_size_one() {
        let events = sample_events();
        let path = temp_path("rt1");
        let mut w = SpillWriter::create(&path, 1).unwrap();
        w.write_run(&events, 7).unwrap();
        let index = w.finish().unwrap();
        assert_eq!(index.total_events(), 4);
        assert_eq!(index.total_dropped(), 7);
        let runs = read_all_runs(&path).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].0, events);
        assert_eq!(runs[0].1, 7);
        // The scan-built index agrees with the writer's.
        assert_eq!(SpillIndex::load(&path).unwrap(), index);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_of_disjoint_runs_matches_tree_fold() {
        let mut a = FlightRecorder::new();
        a.set_source(0);
        for t in [0.1, 0.5, 0.5] {
            a.emit(t, TraceEventKind::EntryExpired { aid: 1 });
        }
        let mut b = FlightRecorder::new();
        b.set_source(1);
        for t in [0.2, 0.5] {
            b.emit(t, TraceEventKind::EntryExpired { aid: 2 });
        }
        let mut reference = a.clone();
        reference.merge_from(&b);

        let path = temp_path("merge");
        let mut w = SpillWriter::create(&path, 2).unwrap();
        w.write_run(&a.events().copied().collect::<Vec<_>>(), 0)
            .unwrap();
        w.write_run(&b.events().copied().collect::<Vec<_>>(), 0)
            .unwrap();
        let index = w.finish().unwrap();
        let merged = index.merge().unwrap().collect_all().unwrap();
        assert_eq!(merged, reference.events().copied().collect::<Vec<_>>());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_a_structured_error() {
        let path = temp_path("trunc");
        let mut w = SpillWriter::create(&path, 2).unwrap();
        w.write_run(&sample_events(), 0).unwrap();
        w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in [0, 4, 9, full.len() / 2, full.len() - 1] {
            let short = &full[..cut];
            std::fs::write(&path, short).unwrap();
            let err = SpillIndex::load(&path).unwrap_err();
            assert!(
                matches!(
                    err,
                    SpillError::Truncated { .. } | SpillError::BadMagic { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_byte_is_a_structured_error() {
        let path = temp_path("corrupt");
        let mut w = SpillWriter::create(&path, 3).unwrap();
        w.write_run(&sample_events(), 1).unwrap();
        w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        for at in [8, 12, 25, 40, full.len() - 3] {
            let mut bad = full.clone();
            bad[at] ^= 0x5a;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                SpillIndex::load(&path).is_err(),
                "flip at {at} went undetected"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hashing_writer_matches_one_shot_fnv() {
        let mut hw = HashingWriter::new(Vec::new());
        hw.write_all(b"hello ").unwrap();
        hw.write_all(b"world").unwrap();
        assert_eq!(hw.hash(), fnv1a64(b"hello world"));
        assert_eq!(hw.bytes(), 11);
        assert_eq!(hw.into_inner(), b"hello world".to_vec());
    }
}
