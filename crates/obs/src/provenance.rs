//! Wakeup provenance: causal attribution of missed and spurious
//! wakeups from the event log.
//!
//! For every `WakeDecision` classified missed or spurious, the analyzer
//! walks the log **backward** over that client's events (same source
//! lane, same AID) to the nearest de-synchronizing event — a lost UDP
//! Port Message refresh, a staleness expiry, or a port-churn race — and
//! stops at the nearest *synchronizing* event (an applied refresh or a
//! join), beyond which the AP and ground-truth tables agreed and no
//! earlier event can be the cause.
//!
//! The fleet engine performs the same attribution online (it is O(1)
//! per wake decision there) and stamps the result into each
//! `WakeDecision` event; this analyzer re-derives the causes
//! independently from the log, so the two can be cross-checked — a
//! disagreement means either the engine or the log is wrong.

use crate::trace::{FlightRecorder, TraceEvent, TraceEventKind, WakeCause, WakeClass};

/// Per-cause tallies for one wake classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CauseCounts {
    /// Attributed to a lost UDP Port Message refresh.
    pub refresh_lost: u64,
    /// Attributed to AP-side staleness expiry.
    pub entry_expired: u64,
    /// Attributed to a client-side port-churn race.
    pub port_churn: u64,
    /// No causal event found before the nearest sync point (or the
    /// ring bound dropped it).
    pub unknown: u64,
}

impl CauseCounts {
    /// Sum over all causes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.refresh_lost + self.entry_expired + self.port_churn + self.unknown
    }

    fn bump(&mut self, cause: WakeCause) {
        match cause {
            WakeCause::RefreshLost => self.refresh_lost += 1,
            WakeCause::EntryExpired => self.entry_expired += 1,
            WakeCause::PortChurn => self.port_churn += 1,
            WakeCause::Proper | WakeCause::Unknown => self.unknown += 1,
        }
    }
}

/// The full provenance breakdown of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProvenanceBreakdown {
    /// Wake decisions classified proper.
    pub proper: u64,
    /// Legacy (receive-all) wakes.
    pub legacy: u64,
    /// Missed wakeups, by cause.
    pub missed: CauseCounts,
    /// Spurious wakeups, by cause.
    pub spurious: CauseCounts,
}

impl ProvenanceBreakdown {
    /// True when every missed and spurious wakeup found a cause.
    #[must_use]
    pub fn fully_attributed(&self) -> bool {
        self.missed.unknown == 0 && self.spurious.unknown == 0
    }
}

/// Is this event a de-sync or sync point for `(source, aid)`, and if
/// de-sync, which cause does it carry for the given classification?
fn cause_at(kind: &TraceEventKind, class: WakeClass) -> Option<Result<WakeCause, ()>> {
    // `Ok(cause)` attributes; `Err(())` is a sync boundary (stop, unknown).
    match (kind, class) {
        (TraceEventKind::RefreshLost { .. }, WakeClass::Missed) => Some(Ok(WakeCause::RefreshLost)),
        (TraceEventKind::EntryExpired { .. }, WakeClass::Missed) => {
            Some(Ok(WakeCause::EntryExpired))
        }
        (TraceEventKind::PortChurn { .. }, _) => Some(Ok(WakeCause::PortChurn)),
        (TraceEventKind::RefreshApplied { .. } | TraceEventKind::Join { .. }, _) => Some(Err(())),
        _ => None,
    }
}

/// Walks backward from `at` to the causal event for a missed or
/// spurious wake of `(source, aid)`.
fn attribute(events: &[&TraceEvent], at: usize, class: WakeClass) -> WakeCause {
    let me = events[at];
    let (source, aid) = match me.kind {
        TraceEventKind::WakeDecision { aid, .. } => (me.source, aid),
        _ => return WakeCause::Unknown,
    };
    for e in events[..at].iter().rev() {
        if e.source != source {
            continue;
        }
        let event_aid = match e.kind {
            TraceEventKind::RefreshApplied { aid }
            | TraceEventKind::RefreshLost { aid }
            | TraceEventKind::PortChurn { aid }
            | TraceEventKind::EntryExpired { aid }
            | TraceEventKind::Join { aid, .. }
            | TraceEventKind::Leave { aid } => aid,
            _ => continue,
        };
        if event_aid != aid {
            continue;
        }
        match cause_at(&e.kind, class) {
            Some(Ok(cause)) => return cause,
            Some(Err(())) => return WakeCause::Unknown,
            None => continue,
        }
    }
    WakeCause::Unknown
}

/// Analyzes a trace: re-derives the cause of every missed and spurious
/// wakeup by walking the log backward, independently of the causes the
/// engine stamped online.
#[must_use]
pub fn analyze(rec: &FlightRecorder) -> ProvenanceBreakdown {
    let events: Vec<&TraceEvent> = rec.events().collect();
    let mut out = ProvenanceBreakdown::default();
    for (i, e) in events.iter().enumerate() {
        let TraceEventKind::WakeDecision { class, .. } = e.kind else {
            continue;
        };
        match class {
            WakeClass::Proper => out.proper += 1,
            WakeClass::Legacy => out.legacy += 1,
            WakeClass::Missed => out.missed.bump(attribute(&events, i, class)),
            WakeClass::Spurious => out.spurious.bump(attribute(&events, i, class)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSink;

    fn wake(class: WakeClass) -> TraceEventKind {
        TraceEventKind::WakeDecision {
            aid: 1,
            port: 5353,
            frame_id: 0,
            class,
            cause: WakeCause::Unknown,
        }
    }

    #[test]
    fn missed_wake_attributes_to_nearest_desync() {
        let mut fr = FlightRecorder::new();
        fr.emit(0.0, TraceEventKind::Join { aid: 1, hide: true });
        fr.emit(0.1, TraceEventKind::RefreshApplied { aid: 1 });
        fr.emit(0.2, TraceEventKind::RefreshLost { aid: 1 });
        fr.emit(0.3, wake(WakeClass::Missed));
        let b = analyze(&fr);
        assert_eq!(b.missed.refresh_lost, 1);
        assert_eq!(b.missed.total(), 1);
        assert!(b.fully_attributed());
    }

    #[test]
    fn sync_boundary_stops_the_walk() {
        let mut fr = FlightRecorder::new();
        fr.emit(0.1, TraceEventKind::RefreshLost { aid: 1 });
        fr.emit(0.2, TraceEventKind::RefreshApplied { aid: 1 });
        fr.emit(0.3, wake(WakeClass::Missed));
        let b = analyze(&fr);
        assert_eq!(b.missed.unknown, 1);
        assert!(!b.fully_attributed());
    }

    #[test]
    fn spurious_wake_attributes_to_port_churn_only() {
        let mut fr = FlightRecorder::new();
        fr.emit(0.1, TraceEventKind::RefreshLost { aid: 1 });
        fr.emit(0.2, TraceEventKind::PortChurn { aid: 1 });
        fr.emit(0.3, wake(WakeClass::Spurious));
        let b = analyze(&fr);
        assert_eq!(b.spurious.port_churn, 1);
        // A second spurious wake with only a lost refresh behind it
        // stays unknown: losing a refresh cannot flag a *wrong* port.
        let mut fr2 = FlightRecorder::new();
        fr2.emit(0.1, TraceEventKind::RefreshLost { aid: 1 });
        fr2.emit(0.3, wake(WakeClass::Spurious));
        assert_eq!(analyze(&fr2).spurious.unknown, 1);
    }

    #[test]
    fn attribution_is_per_client_and_per_source() {
        let mut fr = FlightRecorder::new();
        // De-sync on a different AID and a different source must not
        // leak into client (src 0, aid 1).
        fr.emit(0.1, TraceEventKind::RefreshLost { aid: 2 });
        let mut other = FlightRecorder::new();
        other.set_source(9);
        other.emit(0.15, TraceEventKind::RefreshLost { aid: 1 });
        fr.merge_from(&other);
        fr.emit(0.3, wake(WakeClass::Missed));
        let b = analyze(&fr);
        assert_eq!(b.missed.unknown, 1);
        assert_eq!(b.missed.refresh_lost, 0);
    }

    #[test]
    fn proper_and_legacy_are_tallied() {
        let mut fr = FlightRecorder::new();
        fr.emit(0.1, wake(WakeClass::Proper));
        fr.emit(
            0.2,
            TraceEventKind::WakeDecision {
                aid: 2,
                port: 0,
                frame_id: 1,
                class: WakeClass::Legacy,
                cause: WakeCause::Proper,
            },
        );
        let b = analyze(&fr);
        assert_eq!(b.proper, 1);
        assert_eq!(b.legacy, 1);
        assert_eq!(b.missed.total() + b.spurious.total(), 0);
    }
}
