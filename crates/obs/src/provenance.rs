//! Wakeup provenance: causal attribution of missed and spurious
//! wakeups from the event log.
//!
//! For every `WakeDecision` classified missed or spurious, the analyzer
//! walks the log **backward** over that client's events (same source
//! lane, same AID) to the nearest de-synchronizing event — a lost UDP
//! Port Message refresh, a staleness expiry, or a port-churn race — and
//! stops at the nearest *synchronizing* event (an applied refresh or a
//! join), beyond which the AP and ground-truth tables agreed and no
//! earlier event can be the cause.
//!
//! The fleet engine performs the same attribution online (it is O(1)
//! per wake decision there) and stamps the result into each
//! `WakeDecision` event; this analyzer re-derives the causes
//! independently from the log, so the two can be cross-checked — a
//! disagreement means either the engine or the log is wrong.

use crate::trace::{FlightRecorder, TraceEvent, TraceEventKind, WakeCause, WakeClass};

/// Per-cause tallies for one wake classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CauseCounts {
    /// Attributed to a lost UDP Port Message refresh.
    pub refresh_lost: u64,
    /// Attributed to AP-side staleness expiry.
    pub entry_expired: u64,
    /// Attributed to a client-side port-churn race.
    pub port_churn: u64,
    /// No causal event found before the nearest sync point (or the
    /// ring bound dropped it).
    pub unknown: u64,
}

impl CauseCounts {
    /// Sum over all causes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.refresh_lost + self.entry_expired + self.port_churn + self.unknown
    }

    /// Adds another tally into this one (field-wise).
    pub fn merge_from(&mut self, other: &CauseCounts) {
        self.refresh_lost += other.refresh_lost;
        self.entry_expired += other.entry_expired;
        self.port_churn += other.port_churn;
        self.unknown += other.unknown;
    }

    fn bump(&mut self, cause: WakeCause) {
        match cause {
            WakeCause::RefreshLost => self.refresh_lost += 1,
            WakeCause::EntryExpired => self.entry_expired += 1,
            WakeCause::PortChurn => self.port_churn += 1,
            WakeCause::Proper | WakeCause::Unknown => self.unknown += 1,
        }
    }
}

/// The full provenance breakdown of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProvenanceBreakdown {
    /// Wake decisions classified proper.
    pub proper: u64,
    /// Legacy (receive-all) wakes.
    pub legacy: u64,
    /// Missed wakeups, by cause.
    pub missed: CauseCounts,
    /// Spurious wakeups, by cause.
    pub spurious: CauseCounts,
}

impl ProvenanceBreakdown {
    /// True when every missed and spurious wakeup found a cause.
    #[must_use]
    pub fn fully_attributed(&self) -> bool {
        self.missed.unknown == 0 && self.spurious.unknown == 0
    }
}

/// Is this event a de-sync or sync point for `(source, aid)`, and if
/// de-sync, which cause does it carry for the given classification?
fn cause_at(kind: &TraceEventKind, class: WakeClass) -> Option<Result<WakeCause, ()>> {
    // `Ok(cause)` attributes; `Err(())` is a sync boundary (stop, unknown).
    match (kind, class) {
        (TraceEventKind::RefreshLost { .. }, WakeClass::Missed) => Some(Ok(WakeCause::RefreshLost)),
        (TraceEventKind::EntryExpired { .. }, WakeClass::Missed) => {
            Some(Ok(WakeCause::EntryExpired))
        }
        (TraceEventKind::PortChurn { .. }, _) => Some(Ok(WakeCause::PortChurn)),
        (TraceEventKind::RefreshApplied { .. } | TraceEventKind::Join { .. }, _) => Some(Err(())),
        _ => None,
    }
}

/// Walks backward from `at` to the causal event for a missed or
/// spurious wake of `(source, aid)`.
fn attribute(events: &[&TraceEvent], at: usize, class: WakeClass) -> WakeCause {
    let me = events[at];
    let (source, aid) = match me.kind {
        TraceEventKind::WakeDecision { aid, .. } => (me.source, aid),
        _ => return WakeCause::Unknown,
    };
    for e in events[..at].iter().rev() {
        if e.source != source {
            continue;
        }
        let event_aid = match e.kind {
            TraceEventKind::RefreshApplied { aid }
            | TraceEventKind::RefreshLost { aid }
            | TraceEventKind::PortChurn { aid }
            | TraceEventKind::EntryExpired { aid }
            | TraceEventKind::Join { aid, .. }
            | TraceEventKind::Leave { aid } => aid,
            _ => continue,
        };
        if event_aid != aid {
            continue;
        }
        match cause_at(&e.kind, class) {
            Some(Ok(cause)) => return cause,
            Some(Err(())) => return WakeCause::Unknown,
            None => continue,
        }
    }
    WakeCause::Unknown
}

/// Analyzes a trace: re-derives the cause of every missed and spurious
/// wakeup by walking the log backward, independently of the causes the
/// engine stamped online.
#[must_use]
pub fn analyze(rec: &FlightRecorder) -> ProvenanceBreakdown {
    let events: Vec<&TraceEvent> = rec.events().collect();
    let mut out = ProvenanceBreakdown::default();
    for (i, e) in events.iter().enumerate() {
        let TraceEventKind::WakeDecision { class, .. } = e.kind else {
            continue;
        };
        match class {
            WakeClass::Proper => out.proper += 1,
            WakeClass::Legacy => out.legacy += 1,
            WakeClass::Missed => out.missed.bump(attribute(&events, i, class)),
            WakeClass::Spurious => out.spurious.bump(attribute(&events, i, class)),
        }
    }
    out
}

/// Identity of one association lane: the emitting source (BSS index in
/// fleet runs) and the AID the AP assigned.
///
/// This is the only client identity the on-air protocol exposes, so
/// per-client attribution is really per-(source, AID): a client that
/// disassociates and rejoins under a new AID opens a new lane, and a
/// reused AID continues the old one.
pub type ClientKey = (u32, u16);

/// Wake-decision tallies for one client (one association lane).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientWakes {
    /// Wake decisions classified proper.
    pub proper: u64,
    /// Legacy (receive-all) wakes.
    pub legacy: u64,
    /// Missed wakeups, by cause.
    pub missed: CauseCounts,
    /// Spurious wakeups, by cause.
    pub spurious: CauseCounts,
}

impl ClientWakes {
    /// Total wake decisions recorded for this client.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.proper + self.legacy + self.missed.total() + self.spurious.total()
    }

    /// Adds another tally into this one (field-wise).
    pub fn merge_from(&mut self, other: &ClientWakes) {
        self.proper += other.proper;
        self.legacy += other.legacy;
        self.missed.merge_from(&other.missed);
        self.spurious.merge_from(&other.spurious);
    }

    fn bump(&mut self, class: WakeClass, cause: WakeCause) {
        match class {
            WakeClass::Proper => self.proper += 1,
            WakeClass::Legacy => self.legacy += 1,
            WakeClass::Missed => self.missed.bump(cause),
            WakeClass::Spurious => self.spurious.bump(cause),
        }
    }
}

/// Per-client wake-decision tallies for a whole trace, sorted by
/// [`ClientKey`] — the join surface between the flight recorder's
/// provenance stream and the energy model (`hide_energy::attribution`
/// prices each row under a device profile).
///
/// Merging is field-wise addition under a sorted key merge, so it is
/// associative and commutative and per-shard ledgers fanned in any
/// order produce identical rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProvenanceLedger {
    rows: Vec<(ClientKey, ClientWakes)>,
}

impl ProvenanceLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        ProvenanceLedger::default()
    }

    /// The rows in ascending `(source, aid)` order.
    #[must_use]
    pub fn rows(&self) -> &[(ClientKey, ClientWakes)] {
        &self.rows
    }

    /// Number of clients (association lanes) with at least one wake
    /// decision.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no wake decisions were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The tallies for one client, if any were recorded.
    #[must_use]
    pub fn get(&self, key: ClientKey) -> Option<&ClientWakes> {
        self.rows
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| &self.rows[i].1)
    }

    /// Mutable access to one client's row, inserted zeroed when absent.
    pub fn entry(&mut self, key: ClientKey) -> &mut ClientWakes {
        let i = match self.rows.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => i,
            Err(i) => {
                self.rows.insert(i, (key, ClientWakes::default()));
                i
            }
        };
        &mut self.rows[i].1
    }

    /// Sum over every client.
    #[must_use]
    pub fn totals(&self) -> ClientWakes {
        let mut out = ClientWakes::default();
        for (_, w) in &self.rows {
            out.merge_from(w);
        }
        out
    }

    /// Folds another ledger into this one: rows with the same key add
    /// field-wise, new keys insert in sorted position.
    pub fn merge_from(&mut self, other: &ProvenanceLedger) {
        let mut merged = Vec::with_capacity(self.rows.len() + other.rows.len());
        let (mut a, mut b) = (self.rows.iter().peekable(), other.rows.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some((ka, _)), Some((kb, _))) => match ka.cmp(kb) {
                    std::cmp::Ordering::Less => merged.push(*a.next().unwrap()),
                    std::cmp::Ordering::Greater => merged.push(*b.next().unwrap()),
                    std::cmp::Ordering::Equal => {
                        let (k, mut w) = *a.next().unwrap();
                        w.merge_from(&b.next().unwrap().1);
                        merged.push((k, w));
                    }
                },
                (Some(_), None) => merged.push(*a.next().unwrap()),
                (None, Some(_)) => merged.push(*b.next().unwrap()),
                (None, None) => break,
            }
        }
        self.rows = merged;
    }
}

/// Joins the trace's wake-decision stream into a per-client ledger
/// using the causes the engine stamped online (cross-checked against
/// the backward walk by [`analyze`]).
#[must_use]
pub fn per_client(rec: &FlightRecorder) -> ProvenanceLedger {
    let mut out = ProvenanceLedger::new();
    for e in rec.events() {
        let TraceEventKind::WakeDecision {
            aid, class, cause, ..
        } = e.kind
        else {
            continue;
        };
        out.entry((e.source, aid)).bump(class, cause);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSink;

    fn wake(class: WakeClass) -> TraceEventKind {
        TraceEventKind::WakeDecision {
            aid: 1,
            port: 5353,
            frame_id: 0,
            class,
            cause: WakeCause::Unknown,
        }
    }

    #[test]
    fn missed_wake_attributes_to_nearest_desync() {
        let mut fr = FlightRecorder::new();
        fr.emit(0.0, TraceEventKind::Join { aid: 1, hide: true });
        fr.emit(0.1, TraceEventKind::RefreshApplied { aid: 1 });
        fr.emit(0.2, TraceEventKind::RefreshLost { aid: 1 });
        fr.emit(0.3, wake(WakeClass::Missed));
        let b = analyze(&fr);
        assert_eq!(b.missed.refresh_lost, 1);
        assert_eq!(b.missed.total(), 1);
        assert!(b.fully_attributed());
    }

    #[test]
    fn sync_boundary_stops_the_walk() {
        let mut fr = FlightRecorder::new();
        fr.emit(0.1, TraceEventKind::RefreshLost { aid: 1 });
        fr.emit(0.2, TraceEventKind::RefreshApplied { aid: 1 });
        fr.emit(0.3, wake(WakeClass::Missed));
        let b = analyze(&fr);
        assert_eq!(b.missed.unknown, 1);
        assert!(!b.fully_attributed());
    }

    #[test]
    fn spurious_wake_attributes_to_port_churn_only() {
        let mut fr = FlightRecorder::new();
        fr.emit(0.1, TraceEventKind::RefreshLost { aid: 1 });
        fr.emit(0.2, TraceEventKind::PortChurn { aid: 1 });
        fr.emit(0.3, wake(WakeClass::Spurious));
        let b = analyze(&fr);
        assert_eq!(b.spurious.port_churn, 1);
        // A second spurious wake with only a lost refresh behind it
        // stays unknown: losing a refresh cannot flag a *wrong* port.
        let mut fr2 = FlightRecorder::new();
        fr2.emit(0.1, TraceEventKind::RefreshLost { aid: 1 });
        fr2.emit(0.3, wake(WakeClass::Spurious));
        assert_eq!(analyze(&fr2).spurious.unknown, 1);
    }

    #[test]
    fn attribution_is_per_client_and_per_source() {
        let mut fr = FlightRecorder::new();
        // De-sync on a different AID and a different source must not
        // leak into client (src 0, aid 1).
        fr.emit(0.1, TraceEventKind::RefreshLost { aid: 2 });
        let mut other = FlightRecorder::new();
        other.set_source(9);
        other.emit(0.15, TraceEventKind::RefreshLost { aid: 1 });
        fr.merge_from(&other);
        fr.emit(0.3, wake(WakeClass::Missed));
        let b = analyze(&fr);
        assert_eq!(b.missed.unknown, 1);
        assert_eq!(b.missed.refresh_lost, 0);
    }

    fn wake_for(aid: u16, class: WakeClass, cause: WakeCause) -> TraceEventKind {
        TraceEventKind::WakeDecision {
            aid,
            port: 5353,
            frame_id: 0,
            class,
            cause,
        }
    }

    #[test]
    fn per_client_ledger_splits_by_source_and_aid() {
        let mut a = FlightRecorder::new();
        a.emit(0.1, wake_for(1, WakeClass::Proper, WakeCause::Proper));
        a.emit(0.2, wake_for(1, WakeClass::Missed, WakeCause::RefreshLost));
        a.emit(0.3, wake_for(2, WakeClass::Spurious, WakeCause::PortChurn));
        let mut b = FlightRecorder::new();
        b.set_source(5);
        b.emit(0.15, wake_for(1, WakeClass::Legacy, WakeCause::Proper));
        a.merge_from(&b);

        let ledger = per_client(&a);
        assert_eq!(ledger.len(), 3);
        let keys: Vec<ClientKey> = ledger.rows().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![(0, 1), (0, 2), (5, 1)]);
        let c01 = ledger.get((0, 1)).unwrap();
        assert_eq!(c01.proper, 1);
        assert_eq!(c01.missed.refresh_lost, 1);
        assert_eq!(ledger.get((0, 2)).unwrap().spurious.port_churn, 1);
        assert_eq!(ledger.get((5, 1)).unwrap().legacy, 1);
        assert_eq!(ledger.get((9, 9)), None);
        let totals = ledger.totals();
        assert_eq!(totals.total(), 4);
    }

    #[test]
    fn ledger_merge_adds_and_interleaves() {
        let mut a = ProvenanceLedger::new();
        a.entry((0, 1)).proper = 2;
        a.entry((2, 1)).missed.entry_expired = 1;
        let mut b = ProvenanceLedger::new();
        b.entry((0, 1)).proper = 3;
        b.entry((1, 4)).legacy = 7;

        // a + b == b + a, and shared keys add field-wise.
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.len(), 3);
        assert_eq!(ab.get((0, 1)).unwrap().proper, 5);
        assert_eq!(ab.get((1, 4)).unwrap().legacy, 7);
        let mut with_empty = ab.clone();
        with_empty.merge_from(&ProvenanceLedger::new());
        assert_eq!(with_empty, ab);
    }

    #[test]
    fn proper_and_legacy_are_tallied() {
        let mut fr = FlightRecorder::new();
        fr.emit(0.1, wake(WakeClass::Proper));
        fr.emit(
            0.2,
            TraceEventKind::WakeDecision {
                aid: 2,
                port: 0,
                frame_id: 1,
                class: WakeClass::Legacy,
                cause: WakeCause::Proper,
            },
        );
        let b = analyze(&fr);
        assert_eq!(b.proper, 1);
        assert_eq!(b.legacy, 1);
        assert_eq!(b.missed.total() + b.spurious.total(), 0);
    }
}
