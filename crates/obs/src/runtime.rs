//! The wall-clock runtime-telemetry seam.
//!
//! This is the third zero-cost instrumentation seam in the workspace,
//! and the first one that is *allowed* to observe wall-clock time:
//!
//! * [`crate::MetricsSink`] — deterministic counters/histograms
//!   (feeds `hide-metrics/1`, byte-identical at any `--jobs`);
//! * [`crate::TraceSink`] — deterministic structured events;
//! * [`RuntimeSink`] (this module) — wall-clock stage latencies for
//!   long-running services (feeds `hide-apd-health/1` and the
//!   Prometheus-style exposition, **never** the deterministic
//!   artifacts).
//!
//! Hot paths are generic over `R: RuntimeSink`. With [`NoopRuntime`]
//! the [`RuntimeSink::start`] token is `()` and both calls inline to
//! nothing — crucially, the clock is never read — so the
//! uninstrumented daemon pays zero cost, a claim `apd_loadgen --smoke`
//! enforces against the budget in `golden/perf_floors.toml`. With
//! [`AtomicRuntime`] each stage records into a lock-free
//! [`LatencyHistogram`]-shaped grid of atomics that any thread can
//! snapshot without stopping the world.

use crate::latency::{LatencyHistogram, LATENCY_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The instrumented stages of a service hot path, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtStage {
    /// Blocking socket receive (successful receives only).
    Recv,
    /// Datagram parse plus shard routing.
    Route,
    /// Per-shard frame/tick handling.
    Handle,
    /// Reply (ACK / association response) transmission.
    Send,
}

impl RtStage {
    /// Number of stages.
    pub const COUNT: usize = 4;

    /// All stages, in pipeline order.
    pub const ALL: [RtStage; RtStage::COUNT] = [
        RtStage::Recv,
        RtStage::Route,
        RtStage::Handle,
        RtStage::Send,
    ];

    /// Dense index for array storage.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            RtStage::Recv => 0,
            RtStage::Route => 1,
            RtStage::Handle => 2,
            RtStage::Send => 3,
        }
    }

    /// Stable lowercase label (artifact and exposition key).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RtStage::Recv => "recv",
            RtStage::Route => "route",
            RtStage::Handle => "handle",
            RtStage::Send => "send",
        }
    }
}

/// Where a service hot path sends its wall-clock stage timings.
///
/// The `start`/`finish` pair brackets one stage execution; the token
/// carries the start instant so the no-op implementation never touches
/// the clock.
pub trait RuntimeSink: Send + Sync {
    /// Opaque start token returned by [`RuntimeSink::start`].
    type Timer: Copy;

    /// Begin timing a stage execution.
    fn start(&self) -> Self::Timer;

    /// Finish timing and record the elapsed nanoseconds for `stage`.
    fn finish(&self, stage: RtStage, timer: Self::Timer);
}

/// A runtime sink that discards everything — and never reads the
/// clock — at zero cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRuntime;

impl RuntimeSink for NoopRuntime {
    type Timer = ();

    #[inline]
    fn start(&self) -> Self::Timer {}

    #[inline]
    fn finish(&self, _stage: RtStage, _timer: Self::Timer) {}
}

/// One lock-free latency grid: the atomic twin of
/// [`LatencyHistogram`], snapshot-able while threads keep recording.
struct AtomicLatency {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicLatency {
    fn new() -> Self {
        AtomicLatency {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, nanos: u64) {
        self.buckets[LatencyHistogram::bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.min.fetch_min(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy. Concurrent recording can skew the
    /// separately-loaded atomics against each other by in-flight
    /// increments; the copy derives `count` from the bucket totals so
    /// quantile walks always terminate consistently.
    fn snapshot(&self) -> LatencyHistogram {
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        LatencyHistogram::from_raw(
            buckets,
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// The live runtime-telemetry sink: one atomic latency grid per
/// [`RtStage`], shared across every daemon thread.
pub struct AtomicRuntime {
    stages: [AtomicLatency; RtStage::COUNT],
}

impl AtomicRuntime {
    /// A fresh, empty runtime plane.
    #[must_use]
    pub fn new() -> Self {
        AtomicRuntime {
            stages: std::array::from_fn(|_| AtomicLatency::new()),
        }
    }

    /// Record a latency directly (used by tests and by callers that
    /// already hold a duration).
    #[inline]
    pub fn record_nanos(&self, stage: RtStage, nanos: u64) {
        self.stages[stage.index()].record(nanos);
    }

    /// A point-in-time copy of one stage's histogram.
    #[must_use]
    pub fn snapshot(&self, stage: RtStage) -> LatencyHistogram {
        self.stages[stage.index()].snapshot()
    }
}

impl Default for AtomicRuntime {
    fn default() -> Self {
        AtomicRuntime::new()
    }
}

impl RuntimeSink for AtomicRuntime {
    type Timer = Instant;

    #[inline]
    fn start(&self) -> Self::Timer {
        Instant::now()
    }

    #[inline]
    fn finish(&self, stage: RtStage, timer: Self::Timer) {
        self.record_nanos(stage, timer.elapsed().as_nanos() as u64);
    }
}

/// Forwarding impls so call sites can hold `Arc<R>` or `&R` without
/// extra generics.
impl<R: RuntimeSink + ?Sized> RuntimeSink for &R {
    type Timer = R::Timer;

    #[inline]
    fn start(&self) -> Self::Timer {
        (**self).start()
    }

    #[inline]
    fn finish(&self, stage: RtStage, timer: Self::Timer) {
        (**self).finish(stage, timer);
    }
}

impl<R: RuntimeSink + ?Sized> RuntimeSink for std::sync::Arc<R> {
    type Timer = R::Timer;

    #[inline]
    fn start(&self) -> Self::Timer {
        (**self).start()
    }

    #[inline]
    fn finish(&self, stage: RtStage, timer: Self::Timer) {
        (**self).finish(stage, timer);
    }
}

/// Default number of one-second slots a [`RateMeter`] retains.
pub const RATE_WINDOW_SLOTS: usize = 60;

/// A windowed rate meter over a monotone counter.
///
/// Call [`RateMeter::sample`] once per second with the counter's
/// current total (a ticker thread owns the meter; readers get the
/// computed rates). Rates over 1 s / 10 s / 60 s windows are the mean
/// of the most recent per-second deltas — decaying automatically as
/// slots age out.
#[derive(Debug, Clone)]
pub struct RateMeter {
    deltas: [u64; RATE_WINDOW_SLOTS],
    head: usize,
    filled: usize,
    last_total: u64,
    primed: bool,
}

impl RateMeter {
    /// An empty meter.
    #[must_use]
    pub fn new() -> Self {
        RateMeter {
            deltas: [0; RATE_WINDOW_SLOTS],
            head: 0,
            filled: 0,
            last_total: 0,
            primed: false,
        }
    }

    /// Feed the counter's current total; call at a 1 Hz cadence. The
    /// first call primes the baseline and records no delta.
    pub fn sample(&mut self, total: u64) {
        if !self.primed {
            self.primed = true;
            self.last_total = total;
            return;
        }
        let delta = total.saturating_sub(self.last_total);
        self.last_total = total;
        self.deltas[self.head] = delta;
        self.head = (self.head + 1) % RATE_WINDOW_SLOTS;
        self.filled = (self.filled + 1).min(RATE_WINDOW_SLOTS);
    }

    /// Mean events/second over the last `window_secs` samples (clamped
    /// to what has been observed). Returns 0.0 before two samples.
    #[must_use]
    pub fn rate(&self, window_secs: usize) -> f64 {
        let n = window_secs.clamp(1, RATE_WINDOW_SLOTS).min(self.filled);
        if n == 0 {
            return 0.0;
        }
        let mut sum = 0u64;
        for k in 1..=n {
            let i = (self.head + RATE_WINDOW_SLOTS - k) % RATE_WINDOW_SLOTS;
            sum += self.deltas[i];
        }
        sum as f64 / n as f64
    }
}

impl Default for RateMeter {
    fn default() -> Self {
        RateMeter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the seam the way the daemon does: generically, so the
    /// noop monomorphization is exercised without unit-value lints.
    fn time_one_stage<R: RuntimeSink>(sink: &R) {
        let t = sink.start();
        sink.finish(RtStage::Recv, t);
    }

    #[test]
    fn noop_runtime_is_inert() {
        time_one_stage(&NoopRuntime);
    }

    #[test]
    fn atomic_runtime_records_and_snapshots() {
        let rt = AtomicRuntime::new();
        rt.record_nanos(RtStage::Handle, 1_500);
        rt.record_nanos(RtStage::Handle, 1_500);
        rt.record_nanos(RtStage::Handle, 900_000);
        let snap = rt.snapshot(RtStage::Handle);
        assert_eq!(snap.count(), 3);
        assert!(snap.quantile(0.5) <= snap.quantile(0.99));
        assert!(rt.snapshot(RtStage::Recv).is_empty());
    }

    #[test]
    fn atomic_runtime_times_through_the_seam() {
        let rt = AtomicRuntime::new();
        let t = rt.start();
        std::hint::black_box(0u64);
        rt.finish(RtStage::Send, t);
        assert_eq!(rt.snapshot(RtStage::Send).count(), 1);
    }

    #[test]
    fn arc_forwarding_reaches_the_shared_plane() {
        let rt = std::sync::Arc::new(AtomicRuntime::new());
        fn drive<R: RuntimeSink>(sink: &R) {
            let t = sink.start();
            sink.finish(RtStage::Route, t);
        }
        drive(&rt);
        assert_eq!(rt.snapshot(RtStage::Route).count(), 1);
    }

    #[test]
    fn rate_meter_windows_decay() {
        let mut m = RateMeter::new();
        m.sample(0); // prime
        for k in 1..=5u64 {
            m.sample(k * 100); // 100 events/s for 5 seconds
        }
        assert_eq!(m.rate(1), 100.0);
        assert_eq!(m.rate(10), 100.0); // clamped to 5 observed slots
        m.sample(500); // one idle second
        assert_eq!(m.rate(1), 0.0);
        assert!(m.rate(10) > 0.0 && m.rate(10) < 100.0);
    }

    #[test]
    fn rate_meter_handles_counter_resets() {
        let mut m = RateMeter::new();
        m.sample(1000);
        m.sample(10); // reset: saturating delta is 0, not huge
        assert_eq!(m.rate(1), 0.0);
    }
}
