//! The recording sink: flat metric arrays, span timers, merge, and the
//! serialized artifact.

use std::fmt::Write as _;
use std::time::Instant;

use crate::hist::Histogram;
use crate::metric::{Counter, Distribution, Stage};
use crate::sink::MetricsSink;

/// Accumulated span-timer state for one [`Stage`].
///
/// `calls` is deterministic (how many spans ran) and serializes into
/// the JSON artifact; `nanos` is wall-clock and is reported only in the
/// human-readable summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTiming {
    /// Number of completed spans attributed to the stage.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub nanos: u64,
}

/// A metrics sink that actually records: counters, histograms and
/// per-stage timings in flat enum-indexed arrays.
///
/// Recorders merge by elementwise addition ([`Recorder::merge_from`]),
/// so per-worker recorders produced under `hide_par::par_map` can be
/// fanned back in **in input order** and the result is byte-identical
/// to a sequential run at any jobs count.
#[derive(Debug, Clone, PartialEq)]
pub struct Recorder {
    counters: [u64; Counter::COUNT],
    dists: [Histogram; Distribution::COUNT],
    stages: [StageTiming; Stage::COUNT],
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder {
            counters: [0; Counter::COUNT],
            dists: [Histogram::new(); Distribution::COUNT],
            stages: [StageTiming::default(); Stage::COUNT],
        }
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// The histogram behind a distribution.
    #[must_use]
    pub fn distribution(&self, dist: Distribution) -> &Histogram {
        &self.dists[dist.index()]
    }

    /// Accumulated timing for a stage.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> StageTiming {
        self.stages[stage.index()]
    }

    /// Run `f` and attribute its wall-clock time to `stage`.
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add_span(stage, start.elapsed().as_nanos() as u64);
        out
    }

    /// Record one completed span of `nanos` wall-clock nanoseconds.
    pub fn add_span(&mut self, stage: Stage, nanos: u64) {
        let t = &mut self.stages[stage.index()];
        t.calls += 1;
        t.nanos += nanos;
    }

    /// Fold another recorder into this one.
    ///
    /// Every component merges by addition (histograms elementwise), so
    /// the operation is associative and commutative and fan-in order
    /// cannot change the result.
    pub fn merge_from(&mut self, other: &Recorder) {
        for (c, o) in self.counters.iter_mut().zip(other.counters.iter()) {
            *c += o;
        }
        for (d, o) in self.dists.iter_mut().zip(other.dists.iter()) {
            d.merge_from(o);
        }
        for (s, o) in self.stages.iter_mut().zip(other.stages.iter()) {
            s.calls += o.calls;
            s.nanos += o.nanos;
        }
    }

    /// True when nothing has been recorded at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.dists.iter().all(|d| d.is_empty())
            && self.stages.iter().all(|s| s.calls == 0)
    }

    /// Serialize the deterministic part of the recorder as JSON.
    ///
    /// The schema is documented in `docs/metrics-schema.md`; its
    /// identifier is `"hide-metrics/1"`. Wall-clock nanoseconds are
    /// deliberately excluded (only per-stage call counts appear), so
    /// the output is byte-identical across runs and `--jobs` counts.
    /// Every counter and distribution key appears in declaration order
    /// whether or not it was touched, so the shape is stable.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_with_sections(&[])
    }

    /// Like [`Recorder::to_json`], but splices extra top-level sections
    /// into the artifact between the schema line and `"counters"`.
    ///
    /// Each `(name, body)` pair renders as `"name": body,` on its own
    /// line; `body` must be a single-line JSON value the caller has
    /// already serialized (the fleet engine uses this for the
    /// integer-only `"energy"` attribution section). Section order is
    /// caller-defined and therefore deterministic.
    #[must_use]
    pub fn to_json_with_sections(&self, sections: &[(&str, &str)]) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"hide-metrics/1\",\n");

        for (name, body) in sections {
            let _ = writeln!(out, "  \"{name}\": {body},");
        }

        out.push_str("  \"counters\": {\n");
        for (i, c) in Counter::ALL.iter().enumerate() {
            let sep = if i + 1 == Counter::COUNT { "" } else { "," };
            let _ = writeln!(
                out,
                "    \"{}\": {}{sep}",
                c.name(),
                self.counters[c.index()]
            );
        }
        out.push_str("  },\n");

        out.push_str("  \"distributions\": {\n");
        for (i, d) in Distribution::ALL.iter().enumerate() {
            let h = &self.dists[d.index()];
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .map(|(b, n)| format!("[{b}, {n}]"))
                .collect();
            let sep = if i + 1 == Distribution::COUNT {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \
                 \"max\": {}, \"buckets\": [{}]}}{sep}",
                d.name(),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                buckets.join(", ")
            );
        }
        out.push_str("  },\n");

        out.push_str("  \"stages\": {\n");
        for (i, s) in Stage::ALL.iter().enumerate() {
            let sep = if i + 1 == Stage::COUNT { "" } else { "," };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"calls\": {}}}{sep}",
                s.name(),
                self.stages[s.index()].calls
            );
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Render the human-readable metrics summary table.
    ///
    /// Unlike [`Recorder::to_json`] this *does* include wall-clock
    /// stage timings, so it is informative but not deterministic.
    /// Columns are wide enough for every name in the metric namespace,
    /// including the fleet kernel stages.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        for c in Counter::ALL {
            let v = self.counter(c);
            if v > 0 {
                let _ = writeln!(out, "  {:<28} {v}", c.name());
            }
        }

        let any_dist = Distribution::ALL
            .iter()
            .any(|d| !self.distribution(*d).is_empty());
        if any_dist {
            out.push_str("distributions (count / mean / min / max):\n");
            for d in Distribution::ALL {
                let h = self.distribution(d);
                if !h.is_empty() {
                    let _ = writeln!(
                        out,
                        "  {:<28} {} / {:.1} / {} / {}",
                        d.name(),
                        h.count(),
                        h.mean(),
                        h.min(),
                        h.max()
                    );
                }
            }
        }

        let any_stage = Stage::ALL.iter().any(|s| self.stage(*s).calls > 0);
        if any_stage {
            out.push_str("stage timings (wall-clock, non-deterministic):\n");
            for s in Stage::ALL {
                let t = self.stage(s);
                if t.calls > 0 {
                    let _ = writeln!(
                        out,
                        "  {:<28} {:>9.3} ms  ({} call{})",
                        s.name(),
                        t.nanos as f64 / 1e6,
                        t.calls,
                        if t.calls == 1 { "" } else { "s" }
                    );
                }
            }
        }
        out
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl MetricsSink for Recorder {
    #[inline]
    fn add(&mut self, counter: Counter, n: u64) {
        self.counters[counter.index()] += n;
    }

    #[inline]
    fn observe(&mut self, dist: Distribution, value: u64) {
        self.dists[dist.index()].record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(values: &[(Counter, u64)], obs: &[(Distribution, u64)]) -> Recorder {
        let mut r = Recorder::new();
        for &(c, n) in values {
            r.add(c, n);
        }
        for &(d, v) in obs {
            r.observe(d, v);
        }
        r
    }

    #[test]
    fn counters_and_distributions_record() {
        let mut r = Recorder::new();
        assert!(r.is_empty());
        r.incr(Counter::BtimBeacons);
        r.add(Counter::BtimBytes, 7);
        r.observe(Distribution::BtimBytesPerBeacon, 7);
        assert!(!r.is_empty());
        assert_eq!(r.counter(Counter::BtimBeacons), 1);
        assert_eq!(r.counter(Counter::BtimBytes), 7);
        assert_eq!(r.distribution(Distribution::BtimBytesPerBeacon).count(), 1);
        assert_eq!(r.counter(Counter::SimsRun), 0);
    }

    /// Recorder merge must be associative and commutative — the
    /// determinism property the hide-par fan-in relies on.
    #[test]
    fn merge_is_associative_and_commutative() {
        let a = sample(
            &[(Counter::SimsRun, 2), (Counter::FramesHidden, 10)],
            &[
                (Distribution::HiddenPerRun, 5),
                (Distribution::HiddenPerRun, 5),
            ],
        );
        let b = sample(&[(Counter::SimsRun, 1)], &[(Distribution::HiddenPerRun, 0)]);
        let c = sample(
            &[(Counter::FramesDelivered, 4)],
            &[(Distribution::DeliveredPerRun, 4)],
        );

        // (a + b) + c
        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);
        // c + b + a
        let mut rev = c.clone();
        rev.merge_from(&b);
        rev.merge_from(&a);

        assert_eq!(left, right);
        assert_eq!(left, rev);
        assert_eq!(left.counter(Counter::SimsRun), 3);
        assert_eq!(left.distribution(Distribution::HiddenPerRun).count(), 3);
        assert_eq!(left.to_json(), rev.to_json());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = sample(
            &[(Counter::PortLookups, 9)],
            &[(Distribution::PostingsPerLookup, 2)],
        );
        let mut merged = a.clone();
        merged.merge_from(&Recorder::new());
        assert_eq!(merged, a);
        let mut empty = Recorder::new();
        empty.merge_from(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn span_timers_count_calls_deterministically() {
        let mut r = Recorder::new();
        let got = r.time(Stage::Fig7, || 41 + 1);
        assert_eq!(got, 42);
        r.add_span(Stage::Fig7, 1_000);
        let t = r.stage(Stage::Fig7);
        assert_eq!(t.calls, 2);
        assert!(t.nanos >= 1_000);
    }

    #[test]
    fn json_excludes_wall_clock_and_is_merge_stable() {
        let mut a = sample(&[(Counter::SimsRun, 1)], &[]);
        let mut b = a.clone();
        // Different wall-clock spans, same call counts: the JSON must
        // not differ.
        a.add_span(Stage::Fig7, 123);
        b.add_span(Stage::Fig7, 456_789);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"schema\": \"hide-metrics/1\""));
        assert!(a.to_json().contains("\"fig7\": {\"calls\": 1}"));
        assert!(!a.to_json().contains("nanos"));
    }

    #[test]
    fn json_has_stable_shape_when_empty() {
        let json = Recorder::new().to_json();
        for c in Counter::ALL {
            assert!(json.contains(c.name()), "missing {}", c.name());
        }
        for d in Distribution::ALL {
            assert!(json.contains(d.name()), "missing {}", d.name());
        }
        for s in Stage::ALL {
            assert!(json.contains(s.name()), "missing {}", s.name());
        }
    }

    #[test]
    fn json_with_sections_splices_after_schema() {
        let r = sample(&[(Counter::SimsRun, 1)], &[]);
        let json = r.to_json_with_sections(&[("energy", "{\"total_nj\": 42}")]);
        let schema_at = json.find("\"schema\"").unwrap();
        let energy_at = json.find("\"energy\": {\"total_nj\": 42},").unwrap();
        let counters_at = json.find("\"counters\"").unwrap();
        assert!(schema_at < energy_at && energy_at < counters_at);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // No sections == plain to_json.
        assert_eq!(r.to_json_with_sections(&[]), r.to_json());
    }

    #[test]
    fn summary_mentions_recorded_metrics_only() {
        let mut r = sample(
            &[(Counter::FramesHidden, 3)],
            &[(Distribution::HiddenPerRun, 3)],
        );
        r.add_span(Stage::Extensions, 5_000_000);
        let summary = r.render_summary();
        assert!(summary.contains("frames_hidden"));
        assert!(summary.contains("hidden_per_run"));
        assert!(summary.contains("extensions"));
        assert!(!summary.contains("sims_run"));
    }
}
