//! The metric namespace: every counter, distribution and stage the
//! workspace records.
//!
//! Identifiers are closed enums rather than strings so that a
//! [`crate::Recorder`] is a pair of flat arrays (no hashing, no
//! allocation on the record path) and so the serialized artifact has a
//! fixed, documented shape — every key appears in declaration order
//! whether or not it was touched.

/// A monotonically increasing event count.
///
/// Counter semantics are additive: merging two recorders sums each
/// counter, so per-worker counts fan in without loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Marking-based simulation runs completed.
    SimsRun,
    /// Frames in the input traces of those runs.
    TraceFrames,
    /// Frames the simulated client's radio received.
    FramesDelivered,
    /// Frames HIDE kept away from the client (trace − delivered).
    FramesHidden,
    /// Delivered frames that held a nonzero wakelock.
    FramesWake,
    /// UDP Port Messages transmitted by simulated clients.
    PortMessages,
    /// Beacons that carried a BTIM element.
    BtimBeacons,
    /// Total BTIM element bytes across those beacons (header included).
    BtimBytes,
    /// Broadcast-flag bits set across all BTIM elements.
    BtimBitsSet,
    /// Client UDP Port Table lookups (the `τ_lp` operations).
    PortLookups,
    /// Lookups that found a non-empty posting list.
    PortLookupHits,
    /// Lookups that found no listener.
    PortLookupMisses,
    /// Port insertions into the table (the `τ_ins` operations).
    PortInserts,
    /// Port deletions from the table (the `τ_del` operations).
    PortDeletes,
    /// Buffered frames skipped by Algorithm 1 for not being UDP-padded.
    NonUdpFrames,
    /// Broadcast frames the AP delivered from its buffer at DTIMs.
    ApFramesDelivered,
    /// Reception-timeline frames fed to the energy model.
    TimelineFrames,
    /// Beacon intervals covered by evaluated timelines.
    BeaconsModeled,
    /// Suspend→active resume transitions in the energy state machine.
    Resumes,
    /// Suspend operations aborted by frames arriving mid-transition.
    AbortedSuspends,
    /// Energy-model evaluations performed.
    EnergyEvals,
    /// Per-BSS fleet simulations completed.
    FleetBssRuns,
    /// Discrete events processed by fleet kernels.
    FleetEvents,
    /// Broadcast frames that arrived at fleet APs.
    FleetFrames,
    /// Client associations processed by fleet APs.
    FleetAssociations,
    /// Client disassociations processed by fleet APs.
    FleetDisassociations,
    /// UDP Port Message refreshes transmitted by fleet clients.
    FleetRefreshesSent,
    /// Refreshes lost before reaching the AP.
    FleetRefreshesLost,
    /// Port-table entries dropped by staleness expiry.
    FleetPortEntriesExpired,
    /// Wake-ups of suspended fleet clients (flagged DTIM deliveries).
    FleetWakeups,
    /// Useful frames a suspended client slept through (stale AP state).
    FleetMissedWakeups,
    /// Wake-ups for frames the client no longer wanted (stale AP state).
    FleetSpuriousWakeups,
    /// HIDE wake-ups whose flagged traffic was genuinely wanted
    /// (provenance class `proper`).
    FleetWakeupsProper,
    /// Missed wakeups caused by a lost UDP Port Message refresh.
    FleetMissedRefreshLost,
    /// Missed wakeups caused by AP-side staleness expiry.
    FleetMissedEntryExpired,
    /// Missed wakeups caused by a port-churn race (client re-sampled
    /// ports, the AP had not yet heard).
    FleetMissedPortChurn,
    /// Missed wakeups with no attributable cause.
    FleetMissedUnknown,
    /// Spurious wakeups caused by a port-churn race (the AP flagged
    /// ports the client had churned away from).
    FleetSpuriousPortChurn,
    /// Spurious wakeups with no attributable cause.
    FleetSpuriousUnknown,
    /// Scheduled-wake window wake-ups (clients on a negotiated wake
    /// schedule waking inside their service period).
    FleetScheduledWakes,
    /// Useful bursts a scheduled client deep-slept through because
    /// they fell outside its service window (deferred, not missed).
    FleetDeferredWakeups,
}

impl Counter {
    /// Every counter, in declaration (serialization) order.
    pub const ALL: [Counter; 41] = [
        Counter::SimsRun,
        Counter::TraceFrames,
        Counter::FramesDelivered,
        Counter::FramesHidden,
        Counter::FramesWake,
        Counter::PortMessages,
        Counter::BtimBeacons,
        Counter::BtimBytes,
        Counter::BtimBitsSet,
        Counter::PortLookups,
        Counter::PortLookupHits,
        Counter::PortLookupMisses,
        Counter::PortInserts,
        Counter::PortDeletes,
        Counter::NonUdpFrames,
        Counter::ApFramesDelivered,
        Counter::TimelineFrames,
        Counter::BeaconsModeled,
        Counter::Resumes,
        Counter::AbortedSuspends,
        Counter::EnergyEvals,
        Counter::FleetBssRuns,
        Counter::FleetEvents,
        Counter::FleetFrames,
        Counter::FleetAssociations,
        Counter::FleetDisassociations,
        Counter::FleetRefreshesSent,
        Counter::FleetRefreshesLost,
        Counter::FleetPortEntriesExpired,
        Counter::FleetWakeups,
        Counter::FleetMissedWakeups,
        Counter::FleetSpuriousWakeups,
        Counter::FleetWakeupsProper,
        Counter::FleetMissedRefreshLost,
        Counter::FleetMissedEntryExpired,
        Counter::FleetMissedPortChurn,
        Counter::FleetMissedUnknown,
        Counter::FleetSpuriousPortChurn,
        Counter::FleetSpuriousUnknown,
        Counter::FleetScheduledWakes,
        Counter::FleetDeferredWakeups,
    ];

    /// Number of counters.
    pub const COUNT: usize = Counter::ALL.len();

    /// The stable snake_case key used in the JSON artifact.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SimsRun => "sims_run",
            Counter::TraceFrames => "trace_frames",
            Counter::FramesDelivered => "frames_delivered",
            Counter::FramesHidden => "frames_hidden",
            Counter::FramesWake => "frames_wake",
            Counter::PortMessages => "port_messages",
            Counter::BtimBeacons => "btim_beacons",
            Counter::BtimBytes => "btim_bytes",
            Counter::BtimBitsSet => "btim_bits_set",
            Counter::PortLookups => "port_lookups",
            Counter::PortLookupHits => "port_lookup_hits",
            Counter::PortLookupMisses => "port_lookup_misses",
            Counter::PortInserts => "port_inserts",
            Counter::PortDeletes => "port_deletes",
            Counter::NonUdpFrames => "non_udp_frames",
            Counter::ApFramesDelivered => "ap_frames_delivered",
            Counter::TimelineFrames => "timeline_frames",
            Counter::BeaconsModeled => "beacons_modeled",
            Counter::Resumes => "resumes",
            Counter::AbortedSuspends => "aborted_suspends",
            Counter::EnergyEvals => "energy_evals",
            Counter::FleetBssRuns => "fleet_bss_runs",
            Counter::FleetEvents => "fleet_events",
            Counter::FleetFrames => "fleet_frames",
            Counter::FleetAssociations => "fleet_associations",
            Counter::FleetDisassociations => "fleet_disassociations",
            Counter::FleetRefreshesSent => "fleet_refreshes_sent",
            Counter::FleetRefreshesLost => "fleet_refreshes_lost",
            Counter::FleetPortEntriesExpired => "fleet_port_entries_expired",
            Counter::FleetWakeups => "fleet_wakeups",
            Counter::FleetMissedWakeups => "fleet_missed_wakeups",
            Counter::FleetSpuriousWakeups => "fleet_spurious_wakeups",
            Counter::FleetWakeupsProper => "fleet_wakeups_proper",
            Counter::FleetMissedRefreshLost => "fleet_missed_refresh_lost",
            Counter::FleetMissedEntryExpired => "fleet_missed_entry_expired",
            Counter::FleetMissedPortChurn => "fleet_missed_port_churn",
            Counter::FleetMissedUnknown => "fleet_missed_unknown",
            Counter::FleetSpuriousPortChurn => "fleet_spurious_port_churn",
            Counter::FleetSpuriousUnknown => "fleet_spurious_unknown",
            Counter::FleetScheduledWakes => "fleet_scheduled_wakes",
            Counter::FleetDeferredWakeups => "fleet_deferred_wakeups",
        }
    }

    /// The counter's index into the recorder's flat array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A distribution of observed values, stored as a fixed-bucket
/// [`crate::Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// BTIM element bytes per beacon.
    BtimBytesPerBeacon,
    /// Posting-list length returned per port-table lookup.
    PostingsPerLookup,
    /// Broadcast frames buffered at each DTIM boundary (`n_f`).
    FramesPerDtim,
    /// Frames delivered to the client per simulation run.
    DeliveredPerRun,
    /// Frames hidden from the client per simulation run.
    HiddenPerRun,
    /// Resume transitions per evaluated timeline.
    ResumesPerRun,
    /// Broadcast frames delivered per fleet DTIM boundary.
    FleetFramesPerDtim,
    /// Port-table (port, client) entries per BSS at end of run.
    FleetPortOccupancy,
    /// Associated clients per BSS at end of run.
    FleetClientsPerBss,
}

impl Distribution {
    /// Every distribution, in declaration (serialization) order.
    pub const ALL: [Distribution; 9] = [
        Distribution::BtimBytesPerBeacon,
        Distribution::PostingsPerLookup,
        Distribution::FramesPerDtim,
        Distribution::DeliveredPerRun,
        Distribution::HiddenPerRun,
        Distribution::ResumesPerRun,
        Distribution::FleetFramesPerDtim,
        Distribution::FleetPortOccupancy,
        Distribution::FleetClientsPerBss,
    ];

    /// Number of distributions.
    pub const COUNT: usize = Distribution::ALL.len();

    /// The stable snake_case key used in the JSON artifact.
    pub fn name(self) -> &'static str {
        match self {
            Distribution::BtimBytesPerBeacon => "btim_bytes_per_beacon",
            Distribution::PostingsPerLookup => "postings_per_lookup",
            Distribution::FramesPerDtim => "frames_per_dtim",
            Distribution::DeliveredPerRun => "delivered_per_run",
            Distribution::HiddenPerRun => "hidden_per_run",
            Distribution::ResumesPerRun => "resumes_per_run",
            Distribution::FleetFramesPerDtim => "fleet_frames_per_dtim",
            Distribution::FleetPortOccupancy => "fleet_port_occupancy",
            Distribution::FleetClientsPerBss => "fleet_clients_per_bss",
        }
    }

    /// The distribution's index into the recorder's flat array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// An experiment stage whose wall-clock time a span timer attributes.
///
/// Stage *call counts* are deterministic and serialize into the JSON
/// artifact; the measured nanoseconds are wall-clock and appear only in
/// the human-readable summary (see the crate-level determinism rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Canonical trace generation.
    TraceGen,
    /// Table I rendering.
    Table1,
    /// Table II rendering.
    Table2,
    /// Fig. 6 (trace volumes).
    Fig6,
    /// Fig. 7 (energy comparison, Nexus One).
    Fig7,
    /// Fig. 8 (energy comparison, Galaxy S4).
    Fig8,
    /// Fig. 9 (suspend fractions).
    Fig9,
    /// Fig. 10 (capacity analysis).
    Fig10,
    /// Fig. 11 (delay vs sync interval).
    Fig11,
    /// Fig. 12 (delay vs open ports).
    Fig12,
    /// Host-measured port-table costs.
    HostCosts,
    /// Extension experiments.
    Extensions,
    /// CSV export.
    Csv,
    /// Fleet simulation (multi-BSS discrete-event runs).
    Fleet,
    /// The discrete-event kernel loop inside one BSS shard.
    FleetEventLoop,
    /// Input-order fan-in of fleet shard reports and recorders.
    FleetMerge,
    /// Cross-policy × cross-device comparison runs.
    Policy,
}

impl Stage {
    /// Every stage, in declaration (serialization) order.
    pub const ALL: [Stage; 17] = [
        Stage::TraceGen,
        Stage::Table1,
        Stage::Table2,
        Stage::Fig6,
        Stage::Fig7,
        Stage::Fig8,
        Stage::Fig9,
        Stage::Fig10,
        Stage::Fig11,
        Stage::Fig12,
        Stage::HostCosts,
        Stage::Extensions,
        Stage::Csv,
        Stage::Fleet,
        Stage::FleetEventLoop,
        Stage::FleetMerge,
        Stage::Policy,
    ];

    /// Number of stages.
    pub const COUNT: usize = Stage::ALL.len();

    /// The stable snake_case key used in the JSON artifact.
    pub fn name(self) -> &'static str {
        match self {
            Stage::TraceGen => "trace_gen",
            Stage::Table1 => "table1",
            Stage::Table2 => "table2",
            Stage::Fig6 => "fig6",
            Stage::Fig7 => "fig7",
            Stage::Fig8 => "fig8",
            Stage::Fig9 => "fig9",
            Stage::Fig10 => "fig10",
            Stage::Fig11 => "fig11",
            Stage::Fig12 => "fig12",
            Stage::HostCosts => "host_costs",
            Stage::Extensions => "extensions",
            Stage::Csv => "csv",
            Stage::Fleet => "fleet",
            Stage::FleetEventLoop => "fleet_event_loop",
            Stage::FleetMerge => "fleet_merge",
            Stage::Policy => "policy",
        }
    }

    /// The stage's index into the recorder's flat array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_arrays_are_in_index_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{}", c.name());
        }
        for (i, d) in Distribution::ALL.iter().enumerate() {
            assert_eq!(d.index(), i, "{}", d.name());
        }
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i, "{}", s.name());
        }
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        let names = Counter::ALL
            .iter()
            .map(|c| c.name())
            .chain(Distribution::ALL.iter().map(|d| d.name()))
            .chain(Stage::ALL.iter().map(|s| s.name()));
        for name in names {
            assert!(seen.insert(name), "duplicate metric name {name}");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{name} is not snake_case"
            );
        }
    }
}
