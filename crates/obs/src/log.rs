//! Leveled structured logging for the workspace binaries.
//!
//! A deliberately small facility (no external crates, no global
//! subscriber machinery): one process-wide level gate, RFC 3339
//! timestamps, `key=value`-friendly single-line records on stderr, and
//! a bounded in-memory ring of the most recent warn/error records so a
//! running daemon can include them in its `hide-apd-health/1` report.
//!
//! * `--log-level off` is **byte-silent**: nothing is ever written to
//!   stderr, which un-interleaves multi-threaded test output.
//! * Levels order `Error < Warn < Info < Debug`; a record is emitted
//!   when its level is at or below the configured maximum.
//! * The [`log_error!`](crate::log_error)/[`log_warn!`](crate::log_warn)/[`log_info!`](crate::log_info)/[`log_debug!`](crate::log_debug)
//!   macros capture the caller's crate name as the record target and
//!   format lazily — arguments are not evaluated when the level is
//!   disabled.

use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Verbosity levels, in increasing order of chattiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Nothing is ever written (byte-silent stderr).
    Off,
    /// Unrecoverable or correctness-relevant failures.
    Error,
    /// Degraded-but-running conditions (watchdog stalls, drops).
    Warn,
    /// Lifecycle and progress messages. The default.
    Info,
    /// Per-operation detail for debugging sessions.
    Debug,
}

impl LogLevel {
    /// Stable lowercase name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }

    fn from_u8(v: u8) -> LogLevel {
        match v {
            0 => LogLevel::Off,
            1 => LogLevel::Error,
            2 => LogLevel::Warn,
            4 => LogLevel::Debug,
            _ => LogLevel::Info,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            LogLevel::Off => 0,
            LogLevel::Error => 1,
            LogLevel::Warn => 2,
            LogLevel::Info => 3,
            LogLevel::Debug => 4,
        }
    }
}

impl std::str::FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "silent" => Ok(LogLevel::Off),
            "error" => Ok(LogLevel::Error),
            "warn" | "warning" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!(
                "unknown log level {other:?} (expected off|error|warn|info|debug)"
            )),
        }
    }
}

/// One retained warn/error record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Nanoseconds since the UNIX epoch at emission.
    pub unix_nanos: u64,
    /// Severity of the record.
    pub level: LogLevel,
    /// Crate (or subsystem) that emitted it.
    pub target: String,
    /// The formatted single-line message.
    pub message: String,
}

impl LogRecord {
    /// The record as its stderr line: `TS LEVEL target: message`.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{} {:5} {}: {}",
            rfc3339_nanos(self.unix_nanos),
            self.level.label(),
            self.target,
            self.message
        )
    }
}

/// Default capacity of the retained warn/error ring.
pub const DEFAULT_LOG_RING: usize = 64;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(3); // Info
static RING_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_LOG_RING);
static RING: OnceLock<Mutex<VecDeque<LogRecord>>> = OnceLock::new();

fn ring() -> &'static Mutex<VecDeque<LogRecord>> {
    RING.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Set the process-wide maximum level.
pub fn set_level(level: LogLevel) {
    MAX_LEVEL.store(level.as_u8(), Ordering::Relaxed);
}

/// The current process-wide maximum level.
#[must_use]
pub fn level() -> LogLevel {
    LogLevel::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// True when a record at `at` would be emitted.
#[inline]
#[must_use]
pub fn enabled(at: LogLevel) -> bool {
    at != LogLevel::Off && at.as_u8() <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Resize the retained warn/error ring (existing overflow is trimmed).
pub fn set_ring_capacity(capacity: usize) {
    RING_CAP.store(capacity, Ordering::Relaxed);
    let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    while ring.len() > capacity {
        ring.pop_front();
    }
}

/// The retained warn/error records, oldest first.
#[must_use]
pub fn recent_records() -> Vec<LogRecord> {
    ring()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect()
}

/// Drop all retained records (test isolation).
pub fn clear_records() {
    ring().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Emit one record: write the line to stderr and, for warn/error,
/// retain it in the bounded ring. Callers normally go through the
/// level macros, which check [`enabled`] first.
pub fn log(at: LogLevel, target: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(at) {
        return;
    }
    let unix_nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let record = LogRecord {
        unix_nanos,
        level: at,
        target: target.to_string(),
        message: args.to_string(),
    };
    {
        let stderr = std::io::stderr();
        let mut out = stderr.lock();
        let _ = writeln!(out, "{}", record.render());
    }
    if at <= LogLevel::Warn {
        let cap = RING_CAP.load(Ordering::Relaxed);
        let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
        while ring.len() >= cap.max(1) {
            ring.pop_front();
        }
        if cap > 0 {
            ring.push_back(record);
        }
    }
}

/// Format nanoseconds-since-epoch as RFC 3339 UTC with nanosecond
/// precision, e.g. `2026-08-08T12:34:56.000000789Z`.
#[must_use]
pub fn rfc3339_nanos(unix_nanos: u64) -> String {
    let secs = (unix_nanos / 1_000_000_000) as i64;
    let nanos = unix_nanos % 1_000_000_000;
    let days = secs.div_euclid(86_400);
    let sod = secs.rem_euclid(86_400);
    let (year, month, day) = civil_from_days(days);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}.{nanos:09}Z",
        sod / 3600,
        (sod % 3600) / 60,
        sod % 60
    )
}

/// Proleptic-Gregorian date from days since 1970-01-01 (Howard
/// Hinnant's `civil_from_days` algorithm, integer-only).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + i64::from(m <= 2), m, d)
}

/// Log at [`LogLevel::Error`]; format args evaluate only when enabled.
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Error) {
            $crate::log::log(
                $crate::log::LogLevel::Error,
                env!("CARGO_PKG_NAME"),
                format_args!($($arg)*),
            );
        }
    };
}

/// Log at [`LogLevel::Warn`]; format args evaluate only when enabled.
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Warn) {
            $crate::log::log(
                $crate::log::LogLevel::Warn,
                env!("CARGO_PKG_NAME"),
                format_args!($($arg)*),
            );
        }
    };
}

/// Log at [`LogLevel::Info`]; format args evaluate only when enabled.
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Info) {
            $crate::log::log(
                $crate::log::LogLevel::Info,
                env!("CARGO_PKG_NAME"),
                format_args!($($arg)*),
            );
        }
    };
}

/// Log at [`LogLevel::Debug`]; format args evaluate only when enabled.
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Debug) {
            $crate::log::log(
                $crate::log::LogLevel::Debug,
                env!("CARGO_PKG_NAME"),
                format_args!($($arg)*),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The logger is process-global state; tests that touch the level
    /// or the ring serialize on this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Error < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
        for (text, level) in [
            ("off", LogLevel::Off),
            ("ERROR", LogLevel::Error),
            ("warn", LogLevel::Warn),
            ("info", LogLevel::Info),
            ("debug", LogLevel::Debug),
        ] {
            assert_eq!(text.parse::<LogLevel>().unwrap(), level);
        }
        assert!("verbose".parse::<LogLevel>().is_err());
    }

    #[test]
    fn rfc3339_known_instants() {
        assert_eq!(rfc3339_nanos(0), "1970-01-01T00:00:00.000000000Z");
        // 2026-08-08T00:00:00Z = 1786147200 seconds.
        assert_eq!(
            rfc3339_nanos(1_786_147_200_000_000_000),
            "2026-08-08T00:00:00.000000000Z"
        );
        // Leap-year day: 2024-02-29T12:00:00Z = 1709208000.
        assert_eq!(
            rfc3339_nanos(1_709_208_000_123_456_789),
            "2024-02-29T12:00:00.123456789Z"
        );
    }

    #[test]
    fn ring_retains_warn_and_error_only() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear_records();
        set_level(LogLevel::Debug);
        log(LogLevel::Info, "test", format_args!("not retained"));
        log(LogLevel::Warn, "test", format_args!("w1"));
        log(LogLevel::Error, "test", format_args!("e1"));
        let recent = recent_records();
        let msgs: Vec<&str> = recent.iter().map(|r| r.message.as_str()).collect();
        assert!(msgs.contains(&"w1"));
        assert!(msgs.contains(&"e1"));
        assert!(!msgs.contains(&"not retained"));
        set_level(LogLevel::Info);
        clear_records();
    }

    #[test]
    fn off_is_silent_and_disabled() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = level();
        set_level(LogLevel::Off);
        assert!(!enabled(LogLevel::Error));
        assert!(!enabled(LogLevel::Debug));
        set_level(prev);
    }

    #[test]
    fn ring_is_bounded() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear_records();
        set_level(LogLevel::Debug);
        set_ring_capacity(4);
        for i in 0..10 {
            log(LogLevel::Warn, "test", format_args!("w{i}"));
        }
        let recent = recent_records();
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[0].message, "w6");
        assert_eq!(recent[3].message, "w9");
        set_ring_capacity(DEFAULT_LOG_RING);
        set_level(LogLevel::Info);
        clear_records();
    }
}
