//! The event-tracing layer: a zero-cost [`TraceSink`] and the bounded
//! [`FlightRecorder`] ring buffer behind it.
//!
//! Tracing follows the same pattern as metrics ([`crate::MetricsSink`]):
//! hot paths are generic over a sink, and the default [`NoopTrace`]
//! monomorphizes to nothing — [`TraceSink::is_enabled`] returns a
//! compile-time `false`, so event-payload construction is guarded out
//! and the instrumented code compiles to the uninstrumented code.
//!
//! Determinism rules mirror the recorder's: events carry **simulation
//! time**, never wall clock; every recorder stamps its events with a
//! `(source, seq)` pair; and [`FlightRecorder::merge_from`] performs an
//! ordered merge on `(time, source, seq)`. Per-shard logs depend only
//! on the shard's inputs, and shards are folded in input order, so the
//! merged log — and every byte exported from it — is identical at any
//! `--jobs` count.

use std::collections::VecDeque;

/// How a DTIM wake decision is classified against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WakeClass {
    /// The client was woken and genuinely wanted the traffic.
    Proper,
    /// The client slept through traffic it wanted (stale AP state).
    Missed,
    /// The client was woken for traffic it no longer wanted.
    Spurious,
    /// A legacy (non-HIDE) client woken by any buffered broadcast.
    Legacy,
}

impl WakeClass {
    /// Stable snake_case label used in exported traces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WakeClass::Proper => "proper",
            WakeClass::Missed => "missed",
            WakeClass::Spurious => "spurious",
            WakeClass::Legacy => "legacy",
        }
    }
}

/// The causal event behind a wake decision, found by walking the event
/// log backward from the decision to the nearest de-synchronizing event
/// for that client (see [`crate::provenance`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WakeCause {
    /// Nothing went wrong: AP state matched ground truth.
    Proper,
    /// A UDP Port Message refresh was lost before reaching the AP.
    RefreshLost,
    /// The AP aged the client's port entries out (staleness expiry).
    EntryExpired,
    /// The client re-sampled its ports and the AP has not yet heard.
    PortChurn,
    /// No causal event found in the retained window.
    Unknown,
}

impl WakeCause {
    /// Stable snake_case label used in exported traces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WakeCause::Proper => "proper",
            WakeCause::RefreshLost => "refresh_lost",
            WakeCause::EntryExpired => "entry_expired",
            WakeCause::PortChurn => "port_churn",
            WakeCause::Unknown => "unknown",
        }
    }
}

/// Payload of one trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// A DTIM boundary: the AP evaluates its buffered broadcast burst.
    DtimBoundary {
        /// Broadcast frames buffered since the previous boundary.
        buffered: u32,
        /// `(port, client)` entries live in the AP port table.
        table_entries: u32,
    },
    /// A BTIM element went on air.
    BtimEmitted {
        /// Encoded element bytes (2-byte ID/length header included).
        bytes: u32,
        /// Broadcast-flag bits set in the partial virtual bitmap.
        bits_set: u32,
    },
    /// A per-client wake decision at a DTIM boundary.
    WakeDecision {
        /// The client's association ID.
        aid: u16,
        /// The UDP port that decided the outcome (the flagged port for
        /// wakes, the wanted-but-unflagged port for missed wakeups, 0
        /// for legacy receive-all wakes).
        port: u16,
        /// Id of the first buffered frame on that port (0 when none).
        frame_id: u64,
        /// Classification against the ground-truth table.
        class: WakeClass,
        /// Causal attribution (online; cross-checked by the analyzer).
        cause: WakeCause,
    },
    /// A client's UDP Port Message reached the AP and was applied.
    RefreshApplied {
        /// The client's association ID.
        aid: u16,
    },
    /// A client's UDP Port Message was lost on the way to the AP.
    RefreshLost {
        /// The client's association ID.
        aid: u16,
    },
    /// A client re-sampled its listened-on ports (ground truth moved).
    PortChurn {
        /// The client's association ID.
        aid: u16,
    },
    /// The AP aged out a client's port entries (staleness expiry).
    EntryExpired {
        /// The client's association ID.
        aid: u16,
    },
    /// A client associated.
    Join {
        /// The AID the AP assigned.
        aid: u16,
        /// Whether the client negotiated HIDE support.
        hide: bool,
    },
    /// A client disassociated.
    Leave {
        /// The association ID the client held.
        aid: u16,
    },
}

impl TraceEventKind {
    /// Stable snake_case label used in exported traces.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::DtimBoundary { .. } => "dtim_boundary",
            TraceEventKind::BtimEmitted { .. } => "btim_emitted",
            TraceEventKind::WakeDecision { .. } => "wake_decision",
            TraceEventKind::RefreshApplied { .. } => "refresh_applied",
            TraceEventKind::RefreshLost { .. } => "refresh_lost",
            TraceEventKind::PortChurn { .. } => "port_churn",
            TraceEventKind::EntryExpired { .. } => "entry_expired",
            TraceEventKind::Join { .. } => "join",
            TraceEventKind::Leave { .. } => "leave",
        }
    }
}

/// One recorded event: simulation time, source lane (BSS index),
/// per-source sequence number, and the payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulation time in seconds.
    pub time: f64,
    /// Source lane — the BSS index in fleet runs, 0 elsewhere.
    pub source: u32,
    /// Per-source emission sequence number (ties within one source
    /// replay in emission order).
    pub seq: u64,
    /// The payload.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// The total order merged logs observe: time, then source lane,
    /// then per-source sequence.
    #[must_use]
    pub fn sort_key(&self) -> (f64, u32, u64) {
        (self.time, self.source, self.seq)
    }

    fn precedes(&self, other: &TraceEvent) -> bool {
        match self.time.total_cmp(&other.time) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => (self.source, self.seq) <= (other.source, other.seq),
        }
    }
}

/// A sink for structured trace events.
///
/// Mirrors [`crate::MetricsSink`]: instrumented code is generic over
/// `T: TraceSink` and passes [`NoopTrace`] when tracing is off, which
/// monomorphizes every `emit` to nothing. Guard payload construction
/// with [`TraceSink::is_enabled`] so a disabled sink costs no work at
/// all:
///
/// ```
/// use hide_obs::{NoopTrace, TraceEventKind, TraceSink};
///
/// fn hot_path<T: TraceSink>(trace: &mut T) {
///     if trace.is_enabled() {
///         trace.emit(0.5, TraceEventKind::EntryExpired { aid: 1 });
///     }
/// }
/// hot_path(&mut NoopTrace);
/// ```
pub trait TraceSink {
    /// Record one event at simulation time `time` (seconds).
    ///
    /// Callers must emit in nondecreasing `time` order — the
    /// discrete-event kernels guarantee this — so a recorder's log is
    /// sorted by construction.
    fn emit(&mut self, time: f64, kind: TraceEventKind);

    /// Whether emitted events are retained. `false` lets callers skip
    /// building payloads entirely; the constant answer folds the guard
    /// away after monomorphization.
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The zero-cost sink: events vanish, [`TraceSink::is_enabled`] is a
/// compile-time `false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopTrace;

impl TraceSink for NoopTrace {
    #[inline]
    fn emit(&mut self, _time: f64, _kind: TraceEventKind) {}

    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    #[inline]
    fn emit(&mut self, time: f64, kind: TraceEventKind) {
        (**self).emit(time, kind);
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
}

/// Default per-recorder event capacity (events retained before the
/// oldest are dropped).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// A bounded, deterministic in-memory event log.
///
/// Live recording keeps at most `capacity` events, dropping the oldest
/// (and counting the drops) when full — a flight recorder keeps the
/// most recent window, which is the window that explains a failure.
/// [`FlightRecorder::merge_from`] never drops: per-shard logs are
/// complete within their own bound, and the merged log is their ordered
/// union, so fan-in order cannot change the bytes exported from it.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    source: u32,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// An empty recorder with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        FlightRecorder::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An empty recorder retaining at most `capacity` events (floored
    /// at 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            source: 0,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Sets the source lane stamped on subsequently emitted events
    /// (the BSS index in fleet runs).
    pub fn set_source(&mut self, source: u32) {
        self.source = source;
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped by the ring bound (oldest-first), summed across
    /// merges.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The live-recording retention bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained events in `(time, source, seq)` order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Removes and returns every retained event together with the drop
    /// count accumulated since the last take, leaving the recorder
    /// live (source lane, sequence counter and capacity all carry on).
    ///
    /// This is the spill seam: the caller becomes responsible for the
    /// returned events **and** the returned drops — the recorder's own
    /// [`dropped`](Self::dropped) resets to 0, so a spill file that
    /// records the taken count and a recorder that keeps dropping
    /// afterwards never double-count, and the sum of all taken counts
    /// plus the final residue is exact across any number of spill
    /// boundaries.
    pub fn take_spill_chunk(&mut self) -> (Vec<TraceEvent>, u64) {
        let events = self.events.drain(..).collect();
        let dropped = std::mem::take(&mut self.dropped);
        (events, dropped)
    }

    /// Folds another recorder's log into this one with an ordered merge
    /// on `(time, source, seq)`.
    ///
    /// Merging never drops events (only live recording does), so
    /// folding per-shard recorders in input order yields the same log
    /// regardless of how the shards were scheduled.
    pub fn merge_from(&mut self, other: &FlightRecorder) {
        self.dropped += other.dropped;
        if other.events.is_empty() {
            return;
        }
        let mut merged = VecDeque::with_capacity(self.events.len() + other.events.len());
        let mut mine = self.events.iter().copied().peekable();
        let mut theirs = other.events.iter().copied().peekable();
        loop {
            match (mine.peek(), theirs.peek()) {
                (Some(a), Some(b)) => {
                    if a.precedes(b) {
                        merged.push_back(mine.next().unwrap());
                    } else {
                        merged.push_back(theirs.next().unwrap());
                    }
                }
                (Some(_), None) => merged.push_back(mine.next().unwrap()),
                (None, Some(_)) => merged.push_back(theirs.next().unwrap()),
                (None, None) => break,
            }
        }
        self.events = merged;
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl TraceSink for FlightRecorder {
    fn emit(&mut self, time: f64, kind: TraceEventKind) {
        // `>=`, not `==`: a merge can legitimately leave more than
        // `capacity` events retained (merging never drops), and the
        // next live emission must restore the ring bound and count
        // every evicted event — an equality check would stop dropping
        // entirely and let the ring grow without bound.
        while self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push_back(TraceEvent {
            time,
            source: self.source,
            seq,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(source: u32, times: &[f64]) -> FlightRecorder {
        let mut r = FlightRecorder::new();
        r.set_source(source);
        for &t in times {
            r.emit(t, TraceEventKind::EntryExpired { aid: 1 });
        }
        r
    }

    #[test]
    fn noop_trace_is_disabled() {
        let mut t = NoopTrace;
        assert!(!t.is_enabled());
        t.emit(1.0, TraceEventKind::RefreshLost { aid: 3 });
        let fr = FlightRecorder::new();
        assert!(fr.is_empty());
        // The forwarding impl must preserve the compile-time disable.
        let mut inner = NoopTrace;
        let forwarded: &mut NoopTrace = &mut inner;
        assert!(!<&mut NoopTrace as TraceSink>::is_enabled(&forwarded));
    }

    #[test]
    fn emit_stamps_source_and_sequence() {
        let r = rec(7, &[0.1, 0.2, 0.2]);
        let events: Vec<&TraceEvent> = r.events().collect();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.source == 7));
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn ring_bound_drops_oldest() {
        let mut r = FlightRecorder::with_capacity(2);
        for t in [0.1, 0.2, 0.3, 0.4] {
            r.emit(t, TraceEventKind::RefreshLost { aid: 1 });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 2);
        let times: Vec<f64> = r.events().map(|e| e.time).collect();
        assert_eq!(times, vec![0.3, 0.4]);
    }

    #[test]
    fn merge_interleaves_by_time_then_source() {
        let a = rec(0, &[0.1, 0.5, 0.5]);
        let b = rec(1, &[0.2, 0.5]);
        let mut merged = a.clone();
        merged.merge_from(&b);
        let keys: Vec<(f64, u32, u64)> = merged.events().map(|e| e.sort_key()).collect();
        assert_eq!(
            keys,
            vec![
                (0.1, 0, 0),
                (0.2, 1, 0),
                (0.5, 0, 1),
                (0.5, 0, 2),
                (0.5, 1, 1),
            ]
        );
    }

    #[test]
    fn merge_order_of_disjoint_sources_is_immaterial() {
        let shards = [rec(0, &[0.3, 0.9]), rec(1, &[0.1]), rec(2, &[0.3, 0.4])];
        let mut fwd = FlightRecorder::new();
        for s in &shards {
            fwd.merge_from(s);
        }
        let mut rev = FlightRecorder::new();
        for s in shards.iter().rev() {
            rev.merge_from(s);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn ring_bound_recovers_after_merge_growth() {
        // Regression: merging can push the ring past its capacity; the
        // next live emission must evict back down to the bound and
        // count every eviction, instead of growing without bound (the
        // old `==` check never fired again once len > capacity).
        let mut a = FlightRecorder::with_capacity(3);
        a.set_source(0);
        for t in [0.1, 0.2, 0.3] {
            a.emit(t, TraceEventKind::RefreshLost { aid: 1 });
        }
        let b = rec(1, &[0.15, 0.25, 0.35]);
        a.merge_from(&b);
        assert_eq!(a.len(), 6, "merge itself never drops");
        assert_eq!(a.dropped(), 0);
        a.emit(0.4, TraceEventKind::RefreshLost { aid: 2 });
        assert_eq!(a.len(), 3, "live recording restores the bound");
        assert_eq!(a.dropped(), 4, "every evicted event is counted");
        a.emit(0.5, TraceEventKind::RefreshLost { aid: 2 });
        assert_eq!(a.len(), 3);
        assert_eq!(a.dropped(), 5);
    }

    #[test]
    fn take_spill_chunk_moves_drop_responsibility() {
        let mut r = FlightRecorder::with_capacity(2);
        r.set_source(4);
        for t in [0.1, 0.2, 0.3] {
            r.emit(t, TraceEventKind::RefreshLost { aid: 1 });
        }
        assert_eq!(r.dropped(), 1);
        let (events, taken) = r.take_spill_chunk();
        assert_eq!(events.len(), 2);
        assert_eq!(taken, 1, "drops travel with the spilled chunk");
        assert_eq!(r.dropped(), 0, "the live recorder starts a new tally");
        assert!(r.is_empty());
        // Recording continues with the same source and sequence stream.
        r.emit(0.4, TraceEventKind::RefreshLost { aid: 1 });
        let next: Vec<&TraceEvent> = r.events().collect();
        assert_eq!(next[0].seq, 3);
        assert_eq!(next[0].source, 4);
        // Exactness across boundaries: taken + residue == total drops.
        for t in [0.5, 0.6, 0.7] {
            r.emit(t, TraceEventKind::RefreshLost { aid: 1 });
        }
        let (more, taken2) = r.take_spill_chunk();
        assert_eq!(more.len(), 2);
        assert_eq!(taken + taken2, 3);
    }

    #[test]
    fn partially_spilled_merge_accounting_is_exact() {
        // A recorder that already spilled a chunk (drops taken by the
        // spill file) merges another shard that also dropped: the
        // merged count must be exactly the *unspilled* drops of both —
        // nothing double-counted, nothing lost.
        let mut a = FlightRecorder::with_capacity(2);
        a.set_source(0);
        for t in [0.1, 0.2, 0.3] {
            a.emit(t, TraceEventKind::RefreshLost { aid: 1 });
        }
        let (_, spilled_a) = a.take_spill_chunk();
        assert_eq!(spilled_a, 1);
        for t in [0.4, 0.5, 0.6] {
            a.emit(t, TraceEventKind::RefreshLost { aid: 1 });
        }
        assert_eq!(a.dropped(), 1);

        let mut b = FlightRecorder::with_capacity(2);
        b.set_source(1);
        for t in [0.35, 0.45, 0.55, 0.65] {
            b.emit(t, TraceEventKind::RefreshLost { aid: 2 });
        }
        assert_eq!(b.dropped(), 2);

        a.merge_from(&b);
        assert_eq!(a.dropped(), 3, "merged residue excludes spilled drops");
        assert_eq!(spilled_a + a.dropped(), 4, "file + live == total");
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn merge_accumulates_drops_without_truncating() {
        let mut a = FlightRecorder::with_capacity(2);
        a.set_source(0);
        for t in [0.1, 0.2, 0.3] {
            a.emit(t, TraceEventKind::RefreshLost { aid: 1 });
        }
        let b = rec(1, &[0.15, 0.25, 0.35]);
        let mut merged = a.clone();
        merged.merge_from(&b);
        assert_eq!(merged.len(), 5);
        assert_eq!(merged.dropped(), 1);
    }
}
