//! Deterministic observability for the HIDE workspace.
//!
//! Every crate in the workspace emits metrics through one narrow
//! interface — the [`MetricsSink`] trait — so the hot paths stay
//! instrumentable without paying for instrumentation they don't use:
//!
//! * [`NoopSink`] is a zero-sized sink whose methods are empty and
//!   `#[inline]`; code generic over `S: MetricsSink` monomorphizes the
//!   calls away entirely (the `bench_throughput` binary verifies the
//!   simulation hot path is unaffected).
//! * [`Recorder`] is the real sink: flat arrays of [`Counter`]s,
//!   fixed-bucket [`Histogram`]s keyed by [`Distribution`], and
//!   per-[`Stage`] span timings.
//!
//! Event tracing follows the same shape one level down: hot paths are
//! generic over a [`TraceSink`], [`NoopTrace`] monomorphizes to
//! nothing, and the [`FlightRecorder`] is the real sink — a bounded
//! ring buffer of structured [`TraceEvent`]s in simulation-time order,
//! exportable as JSONL or Chrome-trace JSON ([`crate::export`]) and
//! analyzable for wakeup provenance ([`crate::provenance`]).
//!
//! A third seam serves long-running services and is deliberately kept
//! on the *other* side of the determinism fence: the wall-clock
//! runtime plane ([`crate::runtime`]) times hot-path stages into
//! log-scale [`LatencyHistogram`]s behind a [`RuntimeSink`]
//! ([`NoopRuntime`] is zero-cost and never reads the clock), and the
//! leveled structured logger ([`crate::log`]) gates stderr output and
//! retains recent warn/error records. Nothing from this plane may
//! feed the `hide-metrics/1` artifact.
//!
//! # Determinism rules
//!
//! The recorder is built for **byte-identical output at any `--jobs`
//! count**:
//!
//! 1. Counters and histograms only ever record *values computed by the
//!    simulation* — frame counts, byte lengths, table sizes — never
//!    wall-clock time, addresses, or thread identity.
//! 2. Merging is elementwise addition, which is associative and
//!    commutative, so per-worker recorders fanned in **in input order**
//!    (the `hide-par` convention) equal the sequential recorder exactly.
//! 3. Span timers *do* measure wall-clock time, so they are excluded
//!    from the serialized artifact: [`Recorder::to_json`] emits counter
//!    and histogram values plus per-stage *call counts*, while the
//!    nanosecond totals appear only in the human-readable
//!    [`Recorder::render_summary`] table.
//!
//! # Example
//!
//! ```
//! use hide_obs::{Counter, Distribution, MetricsSink, Recorder, Stage};
//!
//! fn deliver<S: MetricsSink>(frames: &[u32], sink: &mut S) {
//!     sink.add(Counter::FramesDelivered, frames.len() as u64);
//!     sink.observe(Distribution::DeliveredPerRun, frames.len() as u64);
//! }
//!
//! let mut a = Recorder::new();
//! let mut b = Recorder::new();
//! a.time(Stage::Extensions, || deliver(&[1, 2, 3], &mut b));
//! a.merge_from(&b);
//! assert_eq!(a.counter(Counter::FramesDelivered), 3);
//! assert!(a.to_json().contains("\"frames_delivered\": 3"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod latency;
pub mod log;
pub mod metric;
pub mod provenance;
pub mod recorder;
pub mod runtime;
pub mod sink;
pub mod spill;
pub mod trace;

pub use hist::Histogram;
pub use latency::{LatencyHistogram, LatencySummary, LATENCY_BUCKETS};
pub use log::{LogLevel, LogRecord};
pub use metric::{Counter, Distribution, Stage};
pub use provenance::{CauseCounts, ClientKey, ClientWakes, ProvenanceBreakdown, ProvenanceLedger};
pub use recorder::{Recorder, StageTiming};
pub use runtime::{AtomicRuntime, NoopRuntime, RateMeter, RtStage, RuntimeSink};
pub use sink::{MetricsSink, NoopSink};
pub use spill::{
    EventSource, HashingWriter, KWayMerge, MemSource, RunMeta, RunReader, SpillError, SpillIndex,
    SpillWriter, DEFAULT_CHUNK_EVENTS, SPILL_MAGIC,
};
pub use trace::{
    FlightRecorder, NoopTrace, TraceEvent, TraceEventKind, TraceSink, WakeCause, WakeClass,
    DEFAULT_TRACE_CAPACITY,
};
