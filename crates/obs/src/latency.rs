//! Log-scale latency histograms for the wall-clock telemetry plane.
//!
//! [`LatencyHistogram`] is the wall-clock sibling of the deterministic
//! [`crate::Histogram`]: fixed log-scale buckets (so two histograms
//! merge by elementwise addition), sized for nanosecond latencies from
//! ~100 ns to ~10 s, with deterministic quantile readout. Unlike the
//! deterministic plane it is *expected* to hold wall-clock values, so
//! it must never feed the `hide-metrics/1` artifact — it belongs to
//! `hide-apd-health/1` and the Prometheus-style exposition.
//!
//! # Bucket layout
//!
//! An HdrHistogram-style linear-log grid with 8 sub-buckets per power
//! of two (3 mantissa bits, so ≤ 12.5 % relative bucket width):
//!
//! * values `0..8` get one exact bucket each (indices 0..8);
//! * a value with floor-log2 `e >= 3` lands in index
//!   `(e - 3) * 8 + 8 + sub`, where `sub` is the 3 bits after the
//!   leading one;
//! * everything at or above 2^34 ns (~17.2 s) saturates into the last
//!   bucket, comfortably past the 10 s ceiling the daemon cares about.
//!
//! The layout is pure integer arithmetic on `u64`, so bucket
//! boundaries are identical on every platform — a property the
//! cross-platform proptests pin.

/// Mantissa bits per bucket: 2^3 = 8 sub-buckets per octave.
const SUB_BITS: u32 = 3;

/// Sub-buckets per power of two.
const SUBS: u64 = 1 << SUB_BITS;

/// Number of buckets in every [`LatencyHistogram`]: 8 exact unit
/// buckets plus 31 octaves (exponents 3..=33) of 8 sub-buckets.
pub const LATENCY_BUCKETS: usize = (SUBS + (34 - SUB_BITS as u64) * SUBS) as usize;

/// A mergeable log-scale histogram of nanosecond latencies.
///
/// Recording is an index computation plus an array increment; merging
/// is elementwise addition (associative and commutative), so per-shard
/// histograms fold into a daemon-wide view in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    sum: u64,
    /// `u64::MAX` while empty so the first `record` always wins.
    min: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket a nanosecond value lands in.
    #[inline]
    #[must_use]
    pub fn bucket_index(nanos: u64) -> usize {
        if nanos < SUBS {
            nanos as usize
        } else {
            let exp = 63 - u64::from(nanos.leading_zeros());
            let sub = (nanos >> (exp - u64::from(SUB_BITS))) & (SUBS - 1);
            let index = (exp - u64::from(SUB_BITS)) * SUBS + SUBS + sub;
            (index as usize).min(LATENCY_BUCKETS - 1)
        }
    }

    /// Inclusive lower bound of a bucket, in nanoseconds.
    #[must_use]
    pub fn bucket_lower_bound(index: usize) -> u64 {
        let index = index as u64;
        if index < SUBS {
            index
        } else {
            let octave = (index - SUBS) / SUBS;
            let sub = (index - SUBS) % SUBS;
            (SUBS + sub) << octave
        }
    }

    /// Record one latency observation, in nanoseconds.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        self.buckets[Self::bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        if nanos < self.min {
            self.min = nanos;
        }
        if nanos > self.max {
            self.max = nanos;
        }
    }

    /// Fold another histogram into this one (elementwise addition).
    pub fn merge_from(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations (saturating), in nanoseconds.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded observation, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded observation (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean latency in nanoseconds, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Rebuild a histogram from raw parts — the snapshot path of the
    /// atomic runtime plane, where buckets and extremes are read from
    /// separate atomics. `count` is derived from the buckets so
    /// quantile walks always terminate consistently.
    #[must_use]
    pub(crate) fn from_raw(buckets: [u64; LATENCY_BUCKETS], sum: u64, min: u64, max: u64) -> Self {
        let count = buckets.iter().sum();
        LatencyHistogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// The latency at quantile `q` in `[0, 1]`, in nanoseconds.
    ///
    /// Walks the bucket counts to the observation of rank
    /// `ceil(q * count)` and returns that bucket's lower bound clamped
    /// into `[min, max]` — deterministic, monotone in `q`, within one
    /// bucket width (≤ 12.5 %) of the true order statistic, and exact
    /// at the extremes. Returns 0 when the histogram is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // Extremes read from racy atomics in the live plane can be
        // transiently inconsistent; order the clamp bounds defensively.
        let hi = self.max;
        let lo = self.min().min(hi);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_lower_bound(i).clamp(lo, hi);
            }
        }
        hi
    }

    /// Shorthand: the p50/p90/p99/max readout the health artifact
    /// reports.
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ns: self.mean(),
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p99_ns: self.quantile(0.99),
            max_ns: self.max(),
        }
    }

    /// The non-empty buckets as `(lower bound ns, observation count)`
    /// pairs, in latency order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_lower_bound(i), n))
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// The fixed readout of one [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Observations recorded.
    pub count: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: f64,
    /// Median (bucket-resolution) in nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile (bucket-resolution) in nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile (bucket-resolution) in nanoseconds.
    pub p99_ns: u64,
    /// Exact maximum in nanoseconds.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_deterministic() {
        // Unit buckets.
        for v in 0..8u64 {
            assert_eq!(LatencyHistogram::bucket_index(v), v as usize);
            assert_eq!(LatencyHistogram::bucket_lower_bound(v as usize), v);
        }
        // First octave bucket: 8 lands at index 8.
        assert_eq!(LatencyHistogram::bucket_index(8), 8);
        // Every bucket's lower bound maps back to its own index, and
        // the value just below the next bound stays put.
        for i in 0..LATENCY_BUCKETS - 1 {
            let lo = LatencyHistogram::bucket_lower_bound(i);
            let next = LatencyHistogram::bucket_lower_bound(i + 1);
            assert!(next > lo, "bounds must be strictly increasing at {i}");
            assert_eq!(LatencyHistogram::bucket_index(lo), i, "lower bound of {i}");
            assert_eq!(LatencyHistogram::bucket_index(next - 1), i, "top of {i}");
        }
        // ~100 ns and ~10 s both resolve inside the grid; 2^34 ns and
        // beyond saturate into the last bucket.
        assert!(LatencyHistogram::bucket_index(100) > 8);
        assert!(LatencyHistogram::bucket_index(10_000_000_000) < LATENCY_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_index(1 << 34), LATENCY_BUCKETS - 1);
        assert_eq!(
            LatencyHistogram::bucket_index(u64::MAX),
            LATENCY_BUCKETS - 1
        );
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in 9..LATENCY_BUCKETS - 1 {
            let lo = LatencyHistogram::bucket_lower_bound(i);
            let hi = LatencyHistogram::bucket_lower_bound(i + 1);
            assert!(
                (hi - lo) as f64 / lo as f64 <= 0.125 + 1e-9,
                "bucket {i} is wider than 12.5%: [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn quantiles_read_out_in_order() {
        let mut h = LatencyHistogram::new();
        for v in [150u64, 150, 150, 900, 900, 5_000, 80_000, 2_000_000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 8);
        assert!(s.p50_ns <= s.p90_ns);
        assert!(s.p90_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.max_ns);
        assert_eq!(s.max_ns, 2_000_000);
        assert_eq!(h.min(), 150);
        // p50 of 8 values is rank 4: the 900 bucket.
        assert_eq!(
            h.quantile(0.5),
            LatencyHistogram::bucket_lower_bound(LatencyHistogram::bucket_index(900))
        );
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(12_345);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 12_345, "q={q}");
        }
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let parts: [&[u64]; 3] = [&[1, 100, 100, 1_000_000], &[], &[0, 0, 77_777]];
        let mut seq = LatencyHistogram::new();
        let mut merged = LatencyHistogram::new();
        for part in parts {
            let mut h = LatencyHistogram::new();
            for &v in part {
                h.record(v);
                seq.record(v);
            }
            merged.merge_from(&h);
        }
        assert_eq!(merged, seq);
        assert_eq!(merged.count(), 7);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
