//! Provenance classification coverage: wakeup cause attribution under
//! controlled churn configurations, and the online-counters vs
//! log-analyzer cross-check.

use hide_fleet::{ChurnConfig, FleetConfig};
use hide_obs::provenance::{self, ProvenanceBreakdown};
use hide_obs::{Counter, TraceEventKind, WakeCause, WakeClass};

fn base() -> FleetConfig {
    FleetConfig {
        bss_count: 8,
        clients_per_bss: 8,
        adoption: 1.0,
        duration_secs: 20.0,
        seed: 0xC0FFEE,
        churn: ChurnConfig {
            mean_present_secs: 30.0,
            mean_absent_secs: 5.0,
            mean_active_secs: 3.0,
            mean_suspended_secs: 10.0,
            refresh_interval_secs: 2.0,
            stale_timeout_secs: 7.0,
            ..ChurnConfig::default()
        },
        ..FleetConfig::default()
    }
}

fn cause_counters(rec: &hide_obs::Recorder) -> [u64; 7] {
    [
        Counter::FleetWakeupsProper,
        Counter::FleetMissedRefreshLost,
        Counter::FleetMissedEntryExpired,
        Counter::FleetMissedPortChurn,
        Counter::FleetMissedUnknown,
        Counter::FleetSpuriousPortChurn,
        Counter::FleetSpuriousUnknown,
    ]
    .map(|c| rec.counter(c))
}

/// The analyzer's backward walk over the log must agree with the
/// engine's online attribution, event by event and in aggregate.
fn assert_analyzer_matches_counters(breakdown: &ProvenanceBreakdown, rec: &hide_obs::Recorder) {
    let [proper, m_lost, m_exp, m_churn, m_unk, s_churn, s_unk] = cause_counters(rec);
    assert_eq!(breakdown.proper, proper);
    assert_eq!(breakdown.missed.refresh_lost, m_lost);
    assert_eq!(breakdown.missed.entry_expired, m_exp);
    assert_eq!(breakdown.missed.port_churn, m_churn);
    assert_eq!(breakdown.missed.unknown, m_unk);
    assert_eq!(breakdown.spurious.port_churn, s_churn);
    assert_eq!(breakdown.spurious.unknown, s_unk);
}

#[test]
fn loss_free_churn_free_run_attributes_every_wakeup_proper() {
    let mut cfg = base();
    cfg.churn.refresh_loss = 0.0;
    cfg.churn.port_churn = 0.0;
    let (result, flight) = cfg.try_run_traced_with_jobs(2, 1 << 16).unwrap();

    assert!(result.report.hide_wakeups > 0, "run produced no wakeups");
    assert_eq!(result.report.missed_wakeups, 0);
    assert_eq!(result.report.spurious_wakeups, 0);
    assert_eq!(
        result.recorder.counter(Counter::FleetWakeupsProper),
        result.report.hide_wakeups
    );
    let [_, m_lost, m_exp, m_churn, m_unk, s_churn, s_unk] = cause_counters(&result.recorder);
    assert_eq!([m_lost, m_exp, m_churn, m_unk, s_churn, s_unk], [0; 6]);

    // Every wake decision in the log is proper too.
    for e in flight.events() {
        if let TraceEventKind::WakeDecision { class, cause, .. } = e.kind {
            if class != WakeClass::Legacy {
                assert_eq!(class, WakeClass::Proper);
                assert_eq!(cause, WakeCause::Proper);
            }
        }
    }
    let breakdown = provenance::analyze(&flight);
    assert_eq!(breakdown.proper, result.report.hide_wakeups);
    assert!(breakdown.fully_attributed());
    assert_analyzer_matches_counters(&breakdown, &result.recorder);
}

#[test]
fn lost_refreshes_attribute_exactly_the_missed_wakeups_to_refresh_lost() {
    let mut cfg = base();
    cfg.bss_count = 12;
    cfg.churn.refresh_loss = 0.6;
    cfg.churn.port_churn = 0.0;
    // A stale timeout beyond the horizon: no expiry, so a lost refresh
    // is the only way the AP's view can fall behind.
    cfg.churn.stale_timeout_secs = 1_000.0;
    let (result, flight) = cfg.try_run_traced_with_jobs(3, 1 << 16).unwrap();

    assert!(result.report.refreshes_lost > 0);
    assert!(result.report.missed_wakeups > 0, "no missed wakeups seeded");
    let [_, m_lost, m_exp, m_churn, m_unk, s_churn, s_unk] = cause_counters(&result.recorder);
    assert_eq!(
        m_lost, result.report.missed_wakeups,
        "every missed wakeup must be attributed to the lost refresh"
    );
    assert_eq!([m_exp, m_churn, m_unk], [0; 3]);
    // Without port churn the AP can never believe in ports the client
    // left, so no spurious wakes at all.
    assert_eq!(result.report.spurious_wakeups, 0);
    assert_eq!([s_churn, s_unk], [0; 2]);

    let breakdown = provenance::analyze(&flight);
    assert!(breakdown.fully_attributed());
    assert_analyzer_matches_counters(&breakdown, &result.recorder);
}

#[test]
fn churn_and_expiry_runs_stay_fully_attributed() {
    let mut cfg = base();
    cfg.churn.refresh_loss = 0.3;
    cfg.churn.port_churn = 0.4;
    cfg.churn.stale_timeout_secs = 5.0;
    let (result, flight) = cfg.try_run_traced_with_jobs(2, 1 << 16).unwrap();

    assert!(result.report.missed_wakeups + result.report.spurious_wakeups > 0);
    let [_, _, _, _, m_unk, _, s_unk] = cause_counters(&result.recorder);
    assert_eq!(m_unk, 0, "missed wakeup without a cause");
    assert_eq!(s_unk, 0, "spurious wakeup without a cause");
    let breakdown = provenance::analyze(&flight);
    assert!(breakdown.fully_attributed());
    assert_analyzer_matches_counters(&breakdown, &result.recorder);
    assert_eq!(
        breakdown.missed.total(),
        result.report.missed_wakeups,
        "per-cause missed tallies must sum to the report's total"
    );
    assert_eq!(breakdown.spurious.total(), result.report.spurious_wakeups);
}

#[test]
fn tracing_does_not_change_the_metrics_artifact() {
    let mut cfg = base();
    cfg.churn.refresh_loss = 0.4;
    cfg.churn.port_churn = 0.3;
    let plain = cfg.try_run_with_jobs(2).unwrap();
    let (traced, _) = cfg.try_run_traced_with_jobs(2, 1 << 16).unwrap();
    assert_eq!(plain.metrics_json(), traced.metrics_json());
    assert_eq!(plain.summary_json(), traced.summary_json());
    assert_eq!(plain.report, traced.report);
}

#[test]
fn traced_log_is_identical_across_job_counts() {
    let cfg = base();
    let (_, serial) = cfg.try_run_traced_with_jobs(1, 1 << 16).unwrap();
    let (_, parallel) = cfg.try_run_traced_with_jobs(4, 1 << 16).unwrap();
    assert_eq!(
        hide_obs::export::to_jsonl(&serial),
        hide_obs::export::to_jsonl(&parallel)
    );
    assert_eq!(serial, parallel);
}
