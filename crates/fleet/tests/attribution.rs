//! Fleet-level attribution invariants: the differential check against
//! the aggregate joule tally, the loss-free zero-missed-energy
//! guarantee, and the engine-online vs trace-join exact equality.

use hide_energy::AttributionLedger;
use hide_fleet::{ChurnConfig, FleetConfig};
use hide_obs::provenance;
use proptest::prelude::*;

fn base(seed: u64) -> FleetConfig {
    FleetConfig {
        bss_count: 4,
        clients_per_bss: 6,
        adoption: 1.0,
        duration_secs: 15.0,
        seed,
        churn: ChurnConfig {
            mean_present_secs: 30.0,
            mean_absent_secs: 5.0,
            mean_active_secs: 3.0,
            mean_suspended_secs: 10.0,
            refresh_interval_secs: 2.0,
            stale_timeout_secs: 7.0,
            ..ChurnConfig::default()
        },
        ..FleetConfig::default()
    }
}

/// Pinned differential epsilon: every ledger charge rounds once to a
/// whole nanojoule, so the relative gap to the f64 aggregate stays far
/// below this at any realistic charge count.
const DIFFERENTIAL_REL_EPS: f64 = 1e-5;

#[test]
fn differential_spent_equals_aggregate_energy() {
    let mut cfg = base(0xA77);
    cfg.churn.refresh_loss = 0.3;
    cfg.churn.port_churn = 0.3;
    let result = cfg.try_run_with_jobs(2).unwrap();
    let spent_j = result.attribution().spent_nj() as f64 / 1e9;
    let total_j = result.report.total_energy_j;
    assert!(total_j > 0.0);
    assert!(
        (spent_j - total_j).abs() / total_j < DIFFERENTIAL_REL_EPS,
        "ledger {spent_j} J vs aggregate {total_j} J"
    );
}

proptest! {
    // Fleet runs are comparatively expensive; a handful of seeds per
    // property keeps the suite fast while still sweeping the RNG space.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A loss-free fleet attributes zero missed-wakeup energy — the
    /// joule-space restatement of the tier-1 "no missed wakeups without
    /// refresh loss" invariant — at every seed.
    #[test]
    fn lossfree_fleet_has_zero_missed_energy(seed in 0u64..1 << 48) {
        let mut cfg = base(seed);
        cfg.churn.refresh_loss = 0.0;
        cfg.churn.port_churn = 0.25; // churn alone must not cost missed energy
        let result = cfg.try_run_with_jobs(2).unwrap();
        let totals = result.attribution().totals();
        prop_assert_eq!(totals.missed_forgone_nj.total(), 0);
        prop_assert_eq!(result.report.missed_wakeups, 0);
        // The fleet still does real work and spends real energy.
        prop_assert!(result.attribution().spent_nj() > 0);
    }

    /// The engine's online ledger and the flight-recorder trace join
    /// price wakes identically — same integer prices, same counts — at
    /// every seed, including lossy ones.
    #[test]
    fn online_ledger_matches_trace_join(seed in 0u64..1 << 48) {
        let mut cfg = base(seed);
        cfg.churn.refresh_loss = 0.4;
        let (result, flight) = cfg.try_run_traced_with_jobs(2, 1 << 16).unwrap();
        let counts = provenance::per_client(&flight);
        let priced = AttributionLedger::price(&counts, &cfg.profile);
        prop_assert!(result.attribution().wake_columns_eq(&priced));
    }

    /// The differential invariant holds across seeds, not just the
    /// pinned scenario.
    #[test]
    fn differential_holds_across_seeds(seed in 0u64..1 << 48) {
        let mut cfg = base(seed);
        cfg.churn.refresh_loss = 0.2;
        let result = cfg.try_run_with_jobs(2).unwrap();
        let spent_j = result.attribution().spent_nj() as f64 / 1e9;
        let total_j = result.report.total_energy_j;
        prop_assert!(total_j > 0.0);
        prop_assert!((spent_j - total_j).abs() / total_j < DIFFERENTIAL_REL_EPS);
    }
}
