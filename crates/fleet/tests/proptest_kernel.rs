//! Property-based differential test: the hierarchical timing wheel
//! ([`EventQueue`]) must pop the *identical* `(time, tie, seq, event)`
//! sequence as the retained binary-heap calendar ([`HeapEventQueue`])
//! for any interleaving of schedules and pops — exact time ties,
//! zero-delay self-reschedules, and far-horizon outliers included.
//! Both queues draw their tie-break words from the same seeded
//! SplitMix64 stream, so any divergence is a wheel ordering bug, not
//! noise.

use hide_fleet::{EventQueue, HeapEventQueue};
use proptest::collection::vec;
use proptest::prelude::*;

/// One scripted action against both queues.
#[derive(Debug, Clone, Copy)]
enum Action {
    Schedule(f64),
    /// Pop once; on `Some`, reschedule the popped event `delay`
    /// seconds later (zero models the self-rescheduling DTIM).
    PopThenReschedule(Option<f64>),
}

/// Actions mix three time regimes the wheel buckets differently — a
/// dense near-horizon band (sub-second gaps), repeats of round values
/// (rung-0 tie groups), and far-horizon outliers (top rungs) — with
/// pops, some of which self-reschedule at zero or positive delay.
fn action_strategy() -> impl Strategy<Value = Action> {
    (0u32..8, 0u32..2_000, 0u32..100).prop_map(|(kind, t, d)| match kind {
        0..=2 => Action::Schedule(t as f64 * 0.1024),
        3 => Action::Schedule((t % 50) as f64),
        4 => Action::Schedule((t % 6) as f64 * 86_400.0),
        5 => Action::PopThenReschedule(None),
        6 => Action::PopThenReschedule(Some(0.0)),
        _ => Action::PopThenReschedule(Some(d as f64 * 0.5)),
    })
}

proptest! {
    /// Replay a random schedule/pop script against both queues and
    /// demand keyed-pop equality at every step, then drain both.
    #[test]
    fn wheel_and_heap_pop_identical_keyed_sequences(
        seed in any::<u64>(),
        script in vec(action_strategy(), 1..200),
    ) {
        let mut wheel = EventQueue::with_seed(seed);
        let mut heap = HeapEventQueue::with_seed(seed);
        let mut next_id: u32 = 0;
        for action in script {
            match action {
                Action::Schedule(t) => {
                    wheel.schedule(t, next_id);
                    heap.schedule(t, next_id);
                    next_id += 1;
                }
                Action::PopThenReschedule(delay) => {
                    let w = wheel.pop_keyed();
                    let h = heap.pop_keyed();
                    prop_assert_eq!(w, h);
                    if let (Some((t, _, _, ev)), Some(delay)) = (w, delay) {
                        wheel.schedule(t + delay, ev);
                        heap.schedule(t + delay, ev);
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        loop {
            let w = wheel.pop_keyed();
            let h = heap.pop_keyed();
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty() && heap.is_empty());
    }

    /// Exact ties are the adversarial case for a bucketed queue: many
    /// events on one timestamp must still come out in seeded-tie order.
    #[test]
    fn exact_tie_groups_pop_in_identical_order(
        seed in any::<u64>(),
        group_sizes in vec(1usize..12, 1..8),
    ) {
        let mut wheel = EventQueue::with_seed(seed);
        let mut heap = HeapEventQueue::with_seed(seed);
        let mut id: u32 = 0;
        for (g, &size) in group_sizes.iter().enumerate() {
            let t = g as f64 * 0.1024;
            for _ in 0..size {
                wheel.schedule(t, id);
                heap.schedule(t, id);
                id += 1;
            }
        }
        while let Some(h) = heap.pop_keyed() {
            prop_assert_eq!(wheel.pop_keyed(), Some(h));
        }
        prop_assert!(wheel.pop_keyed().is_none());
    }
}
