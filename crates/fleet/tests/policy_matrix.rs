//! Cross-policy fleet invariants: the wake-policy seam must leave HIDE
//! byte-identical, keep every policy deterministic at any `--jobs`, and
//! preserve the paper's energy ordering (HIDE ≤ legacy PSM on loss-free
//! traffic-bearing fleets).

use hide_energy::battery::Battery;
use hide_energy::profile::{DeviceProfile, GALAXY_S4, NEXUS_ONE};
use hide_fleet::{ChurnConfig, FleetConfig, ScheduleConfig, WakePolicy};
use hide_traces::scenario::Scenario;

fn traffic_bearing(seed: u64, profile: DeviceProfile, policy: WakePolicy) -> FleetConfig {
    FleetConfig {
        bss_count: 4,
        clients_per_bss: 8,
        adoption: 1.0,
        duration_secs: 12.0,
        scenario: Scenario::Classroom,
        seed,
        profile,
        policy,
        churn: ChurnConfig {
            mean_present_secs: 30.0,
            mean_absent_secs: 4.0,
            mean_active_secs: 2.0,
            mean_suspended_secs: 10.0,
            refresh_interval_secs: 2.0,
            stale_timeout_secs: 8.0,
            refresh_loss: 0.0,
            ..ChurnConfig::default()
        },
        ..FleetConfig::default()
    }
}

#[test]
fn every_policy_is_jobs_deterministic() {
    for policy in [
        WakePolicy::Hide,
        WakePolicy::LegacyPsm,
        WakePolicy::ScheduledWake(ScheduleConfig::default()),
    ] {
        let cfg = traffic_bearing(2016, NEXUS_ONE, policy);
        let serial = cfg.try_run_with_jobs(1).unwrap();
        let parallel = cfg.try_run_with_jobs(4).unwrap();
        assert_eq!(
            serial.metrics_json_with_energy(),
            parallel.metrics_json_with_energy(),
            "policy {} diverges across jobs",
            policy.name()
        );
        assert_eq!(serial.report, parallel.report);
    }
}

#[test]
fn psm_never_beats_hide_loss_free() {
    // The paper's core claim as a pinned inequality: on a loss-free
    // fleet with traffic, receive-all PSM spends at least as much as
    // HIDE — for every seed and on both Table I devices.
    for profile in [NEXUS_ONE, GALAXY_S4] {
        for seed in [1u64, 7, 42, 99, 2016, 31337, 65537, 424242] {
            let hide = traffic_bearing(seed, profile, WakePolicy::Hide)
                .try_run_with_jobs(2)
                .unwrap();
            let psm = traffic_bearing(seed, profile, WakePolicy::LegacyPsm)
                .try_run_with_jobs(2)
                .unwrap();
            assert_eq!(hide.report.missed_wakeups, 0);
            assert!(
                psm.report.total_energy_j >= hide.report.total_energy_j,
                "seed {seed} {}: psm {} J < hide {} J",
                profile.name,
                psm.report.total_energy_j,
                hide.report.total_energy_j
            );
            // PSM *is* the receive-all baseline run as a live protocol.
            let rel = (psm.report.total_energy_j - psm.report.baseline_energy_j).abs()
                / psm.report.baseline_energy_j;
            assert!(rel < 1e-9, "seed {seed}: psm diverges from its baseline");
        }
    }
}

#[test]
fn psm_disables_hide_machinery() {
    let psm = traffic_bearing(2016, NEXUS_ONE, WakePolicy::LegacyPsm)
        .try_run_with_jobs(2)
        .unwrap();
    assert_eq!(psm.report.refreshes_sent, 0);
    assert_eq!(psm.report.refresh_airtime_secs, 0.0);
    assert_eq!(psm.report.hide_wakeups, 0);
    assert_eq!(psm.report.missed_wakeups, 0);
    assert_eq!(psm.report.spurious_wakeups, 0);
    assert!(psm.report.wakeups > 0);
    assert_eq!(psm.report.scheduled_wakes, 0);
}

#[test]
fn scheduled_wake_defers_instead_of_missing() {
    let sched = traffic_bearing(
        2016,
        NEXUS_ONE,
        WakePolicy::ScheduledWake(ScheduleConfig {
            interval_dtims: 8,
            period_dtims: 1,
        }),
    )
    .try_run_with_jobs(2)
    .unwrap();
    // Out-of-window useful bursts are deferred, never missed; wakes
    // happen only inside the service window.
    assert_eq!(sched.report.missed_wakeups, 0);
    assert!(sched.report.scheduled_wakes > 0);
    assert!(sched.report.deferred_wakeups > 0);
    assert_eq!(sched.report.wakeups, sched.report.scheduled_wakes);
    assert_eq!(sched.report.refreshes_sent, 0);

    // Sleeping through 7 of 8 beacons and most wake cycles undercuts
    // receive-all PSM on the same seed.
    let psm = traffic_bearing(2016, NEXUS_ONE, WakePolicy::LegacyPsm)
        .try_run_with_jobs(2)
        .unwrap();
    assert!(sched.report.total_energy_j < psm.report.total_energy_j);
}

#[test]
fn policy_and_battery_sections_land_in_the_artifact() {
    let cfg = FleetConfig {
        battery: Battery::GALAXY_S4,
        ..traffic_bearing(2016, GALAXY_S4, WakePolicy::Hide)
    };
    let result = cfg.try_run_with_jobs(2).unwrap();
    let json = result.metrics_json_with_energy();
    assert!(json.contains("\"policy\": {\"kind\":0,"));
    assert!(json.contains("\"battery\": {\"capacity_mwh\":9880,"));
    assert!(json.contains("\"lifetime_gain_ppm\":"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    // HIDE saves energy, so its projected lifetime beats the baseline.
    assert!(result.lifetime.lifetime_gain_ppm > 0);
    assert!(result.lifetime.projected_secs > result.lifetime.baseline_secs);

    // The scheduled artifact carries its knobs and tallies.
    let sched = traffic_bearing(
        2016,
        NEXUS_ONE,
        WakePolicy::ScheduledWake(ScheduleConfig::default()),
    )
    .try_run_with_jobs(2)
    .unwrap();
    let json = sched.metrics_json_with_energy();
    assert!(json.contains("\"policy\": {\"kind\":2,\"interval_dtims\":8,\"period_dtims\":1,"));
}

#[test]
fn hide_with_policy_field_matches_pre_seam_default() {
    // FleetConfig::default() is WakePolicy::Hide: the seam's default
    // wiring must not perturb an existing config in any field.
    let mut cfg = traffic_bearing(2016, NEXUS_ONE, WakePolicy::Hide);
    cfg.policy = WakePolicy::default();
    let a = traffic_bearing(2016, NEXUS_ONE, WakePolicy::Hide)
        .try_run_with_jobs(2)
        .unwrap();
    let b = cfg.try_run_with_jobs(2).unwrap();
    assert_eq!(a.metrics_json_with_energy(), b.metrics_json_with_energy());
}
