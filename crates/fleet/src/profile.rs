//! Per-stage wall-time profiling for the fleet kernel.
//!
//! The global [`hide_obs::Stage`] timings ride inside the
//! `hide-metrics/1` artifact, whose key set is golden-gated — adding a
//! stage there would move every golden. Kernel profiling therefore
//! lives in this fleet-local seam instead: a [`StageProfiler`] trait
//! with a zero-cost [`NoopProfiler`] (the same compile-time on/off
//! idiom as [`hide_obs::TraceSink`]), accumulating into a
//! [`StageProfile`] that exports its own `hide-fleet-stages/1` JSON
//! line. Wall-clock is inherently nondeterministic, so this schema is
//! **never** embedded in `hide-metrics/1` and never diffed against
//! goldens — it exists so kernel work can see where the time goes.
//!
//! Granularity: the event loop attributes each handler invocation to
//! one [`FleetStage`] bucket (timer calls per kernel event are cheap
//! relative to a handler, and [`NoopProfiler`] compiles them out
//! entirely). `queue_pop` covers only the wheel pop itself; schedules
//! made *inside* a handler are charged to that handler's bucket, which
//! is where a calendar-structure regression would surface anyway.

use hide_obs::StageTiming;
use std::fmt::Write as _;

/// The fleet kernel's profiling buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetStage {
    /// Engine construction: client sampling, stream setup, initial
    /// schedule.
    Setup,
    /// Timing-wheel pops (the kernel's dequeue half).
    QueuePop,
    /// DTIM boundaries: expiry, batched flag pass, client sweep.
    DtimSweep,
    /// Lifecycle churn handlers: join, leave, suspend, resume.
    Churn,
    /// UDP Port Message refresh handling.
    Refresh,
    /// Broadcast frame arrivals (stream pull + buffering).
    Arrival,
    /// Sequential fan-in of shard reports and recorders.
    Merge,
}

impl FleetStage {
    /// Number of buckets.
    pub const COUNT: usize = 7;

    /// All buckets in display order.
    pub const ALL: [FleetStage; FleetStage::COUNT] = [
        FleetStage::Setup,
        FleetStage::QueuePop,
        FleetStage::DtimSweep,
        FleetStage::Churn,
        FleetStage::Refresh,
        FleetStage::Arrival,
        FleetStage::Merge,
    ];

    /// Stable snake_case name used in JSON keys and table rows.
    pub fn name(self) -> &'static str {
        match self {
            FleetStage::Setup => "setup",
            FleetStage::QueuePop => "queue_pop",
            FleetStage::DtimSweep => "dtim_sweep",
            FleetStage::Churn => "churn",
            FleetStage::Refresh => "refresh",
            FleetStage::Arrival => "arrival",
            FleetStage::Merge => "merge",
        }
    }

    fn index(self) -> usize {
        match self {
            FleetStage::Setup => 0,
            FleetStage::QueuePop => 1,
            FleetStage::DtimSweep => 2,
            FleetStage::Churn => 3,
            FleetStage::Refresh => 4,
            FleetStage::Arrival => 5,
            FleetStage::Merge => 6,
        }
    }
}

/// A sink for per-stage span timings. The engine's event loop is
/// generic over this, so the no-op path costs nothing — the
/// compile-time on/off idiom [`hide_obs::TraceSink`] uses.
pub trait StageProfiler {
    /// `false` compiles every timer read out of the event loop.
    const ENABLED: bool;

    /// Records one completed span of `nanos` against `stage`.
    fn add(&mut self, stage: FleetStage, nanos: u64);
}

/// The profiler that records nothing at zero cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProfiler;

impl StageProfiler for NoopProfiler {
    const ENABLED: bool = false;

    #[inline(always)]
    fn add(&mut self, _stage: FleetStage, _nanos: u64) {}
}

/// Accumulated per-stage wall time, one [`StageTiming`] per bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageProfile {
    timings: [StageTiming; FleetStage::COUNT],
}

impl StageProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        StageProfile::default()
    }

    /// The accumulated timing for one bucket.
    #[must_use]
    pub fn stage(&self, stage: FleetStage) -> StageTiming {
        self.timings[stage.index()]
    }

    /// Total nanoseconds across all buckets.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.timings.iter().map(|t| t.nanos).sum()
    }

    /// Adds another profile into this one (shard fan-in).
    pub fn merge_from(&mut self, other: &StageProfile) {
        for (mine, theirs) in self.timings.iter_mut().zip(other.timings.iter()) {
            mine.calls += theirs.calls;
            mine.nanos += theirs.nanos;
        }
    }

    /// One line of `hide-fleet-stages/1` JSON: per-bucket calls and
    /// nanoseconds in fixed [`FleetStage::ALL`] order. Wall-clock, so
    /// deliberately a separate schema from the golden-gated
    /// `hide-metrics/1`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\": \"hide-fleet-stages/1\", \"stages\": {");
        for (i, stage) in FleetStage::ALL.iter().enumerate() {
            let t = self.stage(*stage);
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}\": {{\"calls\": {}, \"nanos\": {}}}",
                stage.name(),
                t.calls,
                t.nanos
            );
        }
        out.push_str("}}");
        out
    }

    /// Human-readable breakdown table, one row per bucket with its
    /// share of the profiled total.
    #[must_use]
    pub fn render(&self) -> String {
        let total = self.total_nanos().max(1);
        let mut out = String::from("stage         calls          wall      share\n");
        for stage in FleetStage::ALL {
            let t = self.stage(stage);
            let _ = writeln!(
                out,
                "{:<11} {:>9}  {:>10.3} ms  {:>6.2}%",
                stage.name(),
                t.calls,
                t.nanos as f64 / 1e6,
                t.nanos as f64 * 100.0 / total as f64
            );
        }
        out
    }
}

impl StageProfiler for StageProfile {
    const ENABLED: bool = true;

    #[inline]
    fn add(&mut self, stage: FleetStage, nanos: u64) {
        let t = &mut self.timings[stage.index()];
        t.calls += 1;
        t.nanos += nanos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_merge_and_totals() {
        let mut a = StageProfile::new();
        a.add(FleetStage::QueuePop, 100);
        a.add(FleetStage::QueuePop, 50);
        a.add(FleetStage::DtimSweep, 300);
        let mut b = StageProfile::new();
        b.add(FleetStage::Merge, 25);
        a.merge_from(&b);
        assert_eq!(a.stage(FleetStage::QueuePop).calls, 2);
        assert_eq!(a.stage(FleetStage::QueuePop).nanos, 150);
        assert_eq!(a.stage(FleetStage::Merge).nanos, 25);
        assert_eq!(a.total_nanos(), 475);
    }

    #[test]
    fn json_is_schema_tagged_and_covers_every_stage() {
        let mut p = StageProfile::new();
        p.add(FleetStage::Setup, 7);
        let json = p.to_json();
        assert!(json.starts_with("{\"schema\": \"hide-fleet-stages/1\""));
        for stage in FleetStage::ALL {
            assert!(json.contains(stage.name()), "missing {}", stage.name());
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = p.render();
        assert!(table.contains("setup"));
        assert!(table.contains("100.00%"));
    }

    #[test]
    fn noop_profiler_is_disabled() {
        const { assert!(!NoopProfiler::ENABLED) };
        const { assert!(StageProfile::ENABLED) };
        let mut p = NoopProfiler;
        p.add(FleetStage::Churn, 1); // no-op, just exercising the call
    }
}
